"""Merge-phase throughput (§III.F) as a first-class bench scenario.

The ablation suite checks the *claim* (merge < 10% of build time); this
module times the merge itself under the ``repro bench`` protocol so the
perf trajectory tracks it per PR — the streaming splice introduced in
PR 4 is exactly the kind of change this scenario exists to gate.
"""

from __future__ import annotations

import os
import shutil

from conftest import report

from repro.obs.bench import BenchOp, scenario
from repro.postings.merge import merge_index
from repro.util.fmt import render_table
from repro.util.timing import Timer


@scenario("merge_index_mini", group="merge")
def bench_merge(ctx):
    """Full merge of the cached mini-ClueWeb build's run files.

    Each timed call merges into a fresh directory (the rmtree is part of
    the op, a constant cost dwarfed by the splice).  ``bytes_processed``
    is the merger's input-run byte count, so the result file carries a
    merge MB/s figure comparable across PRs.
    """
    result = ctx.engine_build()
    merged_dir = os.path.join(ctx.fresh_dir("merge_scratch"), "out")
    probe = merge_index(result.output_dir, merged_dir)

    def op():
        shutil.rmtree(merged_dir, ignore_errors=True)
        return merge_index(result.output_dir, merged_dir)

    return BenchOp(
        op=op,
        bytes_processed=probe["input_bytes"],
        stage_timings=ctx.build_stage_timings(result),
    )


def test_merge_throughput(benchmark, engine_result, data_dir):
    """Standalone pytest path: one timed merge with the stats table."""
    merged_dir = os.path.join(data_dir, "bench_merge_out")

    def do_merge():
        shutil.rmtree(merged_dir, ignore_errors=True)
        with Timer() as t:
            stats = merge_index(engine_result.output_dir, merged_dir)
        return stats, t.elapsed

    stats, merge_wall = benchmark.pedantic(do_merge, rounds=1, iterations=1)
    mbps = stats["input_bytes"] / 1e6 / merge_wall if merge_wall > 0 else 0.0
    rows = [
        ["input runs", stats["input_runs"]],
        ["terms", stats["terms"]],
        ["postings", stats["postings"]],
        ["input bytes", stats["input_bytes"]],
        ["output bytes", stats["output_bytes"]],
        ["peak resident postings", stats["peak_resident_postings"]],
        ["wall seconds", f"{merge_wall:.3f}"],
        ["MB/s", f"{mbps:.1f}"],
    ]
    report(
        "merge_throughput",
        render_table(["Metric", "Value"], rows),
        data={**stats, "wall_seconds": merge_wall, "throughput_mbps": mbps},
    )
    assert stats["terms"] > 0 and stats["postings"] > 0
