"""Ablation F — postings codecs (§II) and the post-processing merge (§III.F).

Compares variable-byte (the engine's production codec), Elias-γ and
Golomb on the *real* postings of the mini ClueWeb build: compressed
size, encode and decode wall time.  Also checks the paper's merge claim:
"we can combine the partial postings lists of each term into a single
list in a post-processing step, with an additional cost of less than 10%
of the total running time."
"""

from __future__ import annotations

import os

from conftest import report

from repro.postings.compression import CODECS, get_codec
from repro.postings.merge import merge_index
from repro.postings.reader import PostingsReader
from repro.util.fmt import render_table
from repro.util.timing import Timer


def _real_postings(engine_result):
    reader = PostingsReader(engine_result.output_dir)
    vocab = reader.vocabulary()
    return [reader.postings(term) for term in sorted(vocab)[:4000]]


def test_codec_comparison(benchmark, engine_result):
    lists = _real_postings(engine_result)
    raw_bytes = sum(len(pl) for pl in lists) * 8  # uncompressed (doc, tf)

    def measure(name):
        codec = get_codec(name)
        with Timer() as enc:
            blobs = [codec.encode(pl) for pl in lists]
        with Timer() as dec:
            decoded = [codec.decode(b) for b in blobs]
        assert decoded == lists
        return sum(len(b) for b in blobs), enc.elapsed, dec.elapsed

    plain_codecs = sorted(n for n in CODECS if not CODECS[n].positional)
    results = {name: measure(name) for name in plain_codecs}
    benchmark.pedantic(measure, args=("varbyte",), rounds=1, iterations=1)

    rows = [
        [name, size, f"{size / raw_bytes:.1%}", f"{enc:.3f}", f"{dec:.3f}"]
        for name, (size, enc, dec) in results.items()
    ]
    rows.append(["raw (doc,tf) pairs", raw_bytes, "100.0%", "-", "-"])
    report(
        "ablation_compression",
        render_table(
            ["Codec", "Bytes", "vs raw", "Encode s", "Decode s"], rows
        ),
    )
    # All codecs beat raw storage; bit codecs beat bytes on size.
    for name, (size, _, _) in results.items():
        assert size < raw_bytes, name
    assert results["gamma"][0] < results["varbyte"][0]


def test_merge_cost_under_10_percent(benchmark, engine_result, data_dir):
    """The §III.F merge-cost claim, against the simulated build time."""
    merged_dir = os.path.join(data_dir, "merged_out")

    def do_merge():
        with Timer() as t:
            stats = merge_index(engine_result.output_dir, merged_dir)
        return stats, t.elapsed

    (stats, merge_wall) = benchmark.pedantic(do_merge, rounds=1, iterations=1)

    # Compare like with like: both sides real wall-clock on this machine.
    build_wall = engine_result.wall_seconds
    ratio = merge_wall / build_wall
    report(
        "ablation_merge",
        render_table(
            ["Metric", "Value"],
            [
                ["input runs", stats["input_runs"]],
                ["terms merged", stats["terms"]],
                ["postings", stats["postings"]],
                ["merge wall seconds", f"{merge_wall:.3f}"],
                ["full build wall seconds", f"{build_wall:.3f}"],
                ["merge / build", f"{ratio:.1%}"],
                ["[paper] claim", "< 10%"],
            ],
        ),
    )
    assert ratio < 0.25  # generous bound for wall-clock noise
