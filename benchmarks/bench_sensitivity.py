"""Robustness — are the reproduced claims artifacts of tuned constants?

The cost model has two fitted scalars and several structural parameters
estimated from the paper (popular token share, Heaps exponent, largest
collection share, hot-path cache fractions).  This bench perturbs each
structural parameter ±20% and re-checks the qualitative Table IV claims:

- 2 GPUs alone slower than 1 CPU indexer,
- combined 2 CPU + 2 GPU fastest of all configurations,
- near-superlinear CPU+GPU split.

If the orderings only held at the fitted point, the reproduction would be
a curve-fit, not a model; the bench asserts they hold across the grid.
"""

from __future__ import annotations

from conftest import report

from repro.core.config import PlatformConfig
from repro.core.pipeline import simulate_pipeline
from repro.core.workload import WorkloadModel
from repro.util.fmt import render_table

BASE = dict(
    popular_token_share=0.443,
    popular_term_share=0.286,
    largest_popular_share=0.0474,
    largest_unpopular_share=0.006,
    popular_hot_fraction=0.95,
    unpopular_hot_fraction=0.35,
)


def _model_with(**overrides) -> WorkloadModel:
    model = WorkloadModel.paper_scale("clueweb09")
    for key, value in overrides.items():
        setattr(model, key, value)
    return model


def _orderings(works) -> dict[str, float]:
    cfgs = {
        "gpu_only": PlatformConfig(num_cpu_indexers=0, num_gpus=2),
        "one_cpu": PlatformConfig(num_cpu_indexers=1, num_gpus=0),
        "two_cpu": PlatformConfig(num_cpu_indexers=2, num_gpus=0),
        "combined": PlatformConfig(),
    }
    return {
        name: simulate_pipeline(works, cfg).indexing_throughput_mbps
        for name, cfg in cfgs.items()
    }


def test_claims_robust_to_structural_perturbation(benchmark):
    def sweep():
        rows = []
        verdicts = []
        for param, base_value in BASE.items():
            for factor in (0.8, 1.2):
                value = min(0.99, base_value * factor)
                works = _model_with(**{param: value}).files()
                t = _orderings(works)
                ordering_ok = (
                    t["combined"] > t["two_cpu"] > t["one_cpu"] > t["gpu_only"]
                )
                split_ok = t["combined"] > 0.90 * (t["two_cpu"] + t["gpu_only"])
                verdicts.append(ordering_ok and split_ok)
                rows.append(
                    [
                        param,
                        f"{value:.3f}",
                        f"{t['gpu_only']:.0f}",
                        f"{t['one_cpu']:.0f}",
                        f"{t['two_cpu']:.0f}",
                        f"{t['combined']:.0f}",
                        "ok" if (ordering_ok and split_ok) else "BROKEN",
                    ]
                )
        return rows, verdicts

    rows, verdicts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "sensitivity",
        render_table(
            ["Perturbed parameter", "Value", "2GPU", "1CPU", "2CPU",
             "2CPU+2GPU", "orderings"],
            rows,
        )
        + f"\n\n{sum(verdicts)}/{len(verdicts)} perturbations keep the "
        "paper's qualitative orderings",
    )
    assert all(verdicts), "a ±20% structural perturbation broke the claims"
