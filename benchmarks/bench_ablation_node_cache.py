"""Ablation C — node string caches on/off and B-tree degree sweep (§III.B.2).

The 4-byte caches exist so "the required comparison between two term
strings can be done with only these four bytes".  We measure real insert
wall-time and pointer-dereference counts with the cache enabled/disabled,
and sweep the degree to show why 16 (31 keys = warp size) is the sweet
spot between node size and tree height.
"""

from __future__ import annotations

from conftest import report

from repro.corpus.zipf import ZipfSampler, ZipfVocabulary
from repro.dictionary.btree import BTree, node_layout
from repro.util.fmt import render_table
from repro.util.timing import Timer


def _workload(n_tokens: int = 40_000):
    vocab = ZipfVocabulary(size=8_000, seed=5)
    return [t.encode() for t in ZipfSampler(vocab, seed=6).sample_terms(n_tokens)]


def test_string_cache_ablation(benchmark, request):
    suffixes = _workload()

    def run(use_cache: bool):
        tree = BTree(use_string_cache=use_cache)
        with Timer() as t:
            for s in suffixes:
                tree.insert(s)
        return tree, t.elapsed

    tree_on, _ = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    _, time_on = run(True)
    tree_off, time_off = run(False)

    on, off = tree_on.stats, tree_off.stats
    rows = [
        ["cache enabled", f"{time_on:.3f}", on.key_comparisons,
         on.full_string_fetches, f"{on.cache_hit_rate:.1%}"],
        ["cache disabled", f"{time_off:.3f}", off.key_comparisons,
         off.full_string_fetches, "0.0%"],
    ]
    report(
        "ablation_string_cache",
        render_table(
            ["Variant", "Wall seconds", "Comparisons", "Full-string fetches",
             "Cache-resolved"],
            rows,
        ),
    )
    # The design claim: almost every comparison resolves inside the cache.
    assert on.cache_hit_rate > 0.9
    assert on.full_string_fetches < off.full_string_fetches / 5


def test_degree_sweep(benchmark):
    suffixes = _workload(20_000)

    def sweep():
        out = []
        for degree in (2, 4, 8, 16, 32, 64):
            tree = BTree(degree=degree)
            with Timer() as t:
                for s in suffixes:
                    tree.insert(s)
            out.append((degree, tree, t.elapsed))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            degree,
            2 * degree - 1,
            node_layout(degree)["total"],
            tree.height(),
            tree.stats.node_visits,
            f"{elapsed:.3f}",
        ]
        for degree, tree, elapsed in results
    ]
    report(
        "ablation_degree_sweep",
        render_table(
            ["Degree", "Keys/node", "Node bytes", "Height", "Node visits", "Wall s"],
            rows,
        ),
    )
    by_degree = {d: tree for d, tree, _ in results}
    # Higher degree → flatter trees → fewer node visits (the GPU's whole
    # coalesced-load budget rides on this trade).
    assert by_degree[16].height() < by_degree[2].height()
    assert by_degree[16].stats.node_visits < by_degree[2].stats.node_visits
    # Degree 16 packs a node into exactly eight 64-byte lines.
    assert node_layout(16)["total"] == 512
