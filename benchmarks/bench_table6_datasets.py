"""Table VI — performance on the three document collections.

Simulates full paper-scale builds (sampling → pipeline → dictionary
combine/write) for ClueWeb09 (± GPUs), Wikipedia 01-07 and the Library of
Congress crawl, printing every row against the published value.  Also
runs the *functional* engine over the three mini collections as a
real-execution cross-check of relative ordering.
"""

from __future__ import annotations

import os

from conftest import report

from repro.analysis.tables import TABLE6_PAPER, table6_datasets
from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.util.fmt import render_table


def test_table6_report(benchmark):
    headers, rows = benchmark.pedantic(table6_datasets, rounds=1, iterations=1)
    report("table6_datasets", render_table(headers, rows))

    ours = {r[0]: [float(v) for v in r[1:]] for r in rows if not r[0].startswith("  [paper]")}
    thpt = dict(zip(headers[1:], ours["Throughput (MB/s)"]))
    # Ordering claims: GPUs help ClueWeb; Wikipedia is the slowest in MB/s
    # ("the slower than 100MB/s throughput ... amounts to a very high
    # processing speed" because it is pure text).
    assert thpt["ClueWeb09"] > thpt["ClueWeb09 w/o GPUs"]
    assert thpt["Wikipedia 01-07"] < 100
    assert thpt["Wikipedia 01-07"] < min(
        thpt["ClueWeb09"], thpt["Library of Congress"]
    )
    # Within 25% of every published throughput.
    for name, got in thpt.items():
        want = TABLE6_PAPER[name]["mbps"]
        assert abs(got - want) / want < 0.25, (name, got, want)


def test_table6_functional_minis(benchmark, cw_mini, wiki_mini, congress_mini_coll, data_dir):
    """Real builds of the three mini collections (simulated clocks)."""

    def build_all():
        rows = []
        for coll, html in [(cw_mini, True), (wiki_mini, False), (congress_mini_coll, True)]:
            out = os.path.join(data_dir, f"t6_{coll.name}")
            cfg = PlatformConfig(sample_fraction=0.05, strip_html=html)
            res = IndexingEngine(cfg).build(coll, out)
            rows.append(
                [
                    coll.name,
                    res.term_count,
                    res.token_count,
                    f"{res.report.total_s:.2f}",
                    f"{res.report.throughput_mbps:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build_all, rounds=1, iterations=1)
    report(
        "table6_functional_minis",
        render_table(
            ["Mini collection", "Terms", "Tokens", "Sim total (s)", "Sim MB/s"], rows
        ),
    )
    assert len(rows) == 3
