"""Table I — the trie-collection index table.

Times the trie lookup hot path (it runs once per token in every parser)
and regenerates Table I with the measured per-category token distribution
of the mini ClueWeb collection.
"""

from __future__ import annotations

from conftest import report

from repro.analysis.tables import table1_trie_categories
from repro.corpus.zipf import ZipfSampler, ZipfVocabulary
from repro.dictionary.trie import TrieTable
from repro.indexers.assignment import sample_collection
from repro.util.fmt import render_table


def test_table1_report(benchmark, cw_mini):
    trie = TrieTable()
    sampled = sample_collection(cw_mini, sample_fraction=0.2)

    def build():
        return table1_trie_categories(trie, sampled)

    headers, rows = benchmark(build)
    report("table1_trie", render_table(headers, rows))
    assert sum(r[2] for r in rows) == 17613


def test_trie_lookup_throughput(benchmark):
    """Tokens per second through ``trie_index`` (the Step-2 byproduct)."""
    trie = TrieTable()
    vocab = ZipfVocabulary(size=20_000, seed=1)
    tokens = ZipfSampler(vocab, seed=2).sample_terms(50_000)

    def lookup_all():
        index = trie.trie_index
        total = 0
        for t in tokens:
            total += index(t)
        return total

    total = benchmark(lookup_all)
    assert total > 0
