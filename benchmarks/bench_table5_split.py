"""Table V — workload between CPU and GPU indexers.

Uses the cached functional build of the mini ClueWeb collection: tokens,
distinct terms and dictionary characters actually routed to the CPU
(popular) and GPU (unpopular) sides, next to the paper's full-scale
ratios.  The checked shape: the GPU side sees comparably many tokens but
*several times* the distinct terms — the whole point of the split.
"""

from __future__ import annotations

from conftest import report

from repro.analysis.tables import table5_work_split
from repro.indexers.assignment import build_assignment, sample_collection
from repro.util.fmt import render_table


def test_table5_report(benchmark, engine_result, cw_mini):
    # Time the assignment construction (sampling dominates in practice).
    def assign():
        sampled = sample_collection(cw_mini, sample_fraction=0.02)
        return build_assignment(sampled, num_cpu_indexers=2, num_gpus=2)

    benchmark(assign)

    headers, rows = table5_work_split(engine_result.split)
    report("table5_split", render_table(headers, rows))

    split = engine_result.split
    token_ratio = split.gpu_tokens / max(1, split.cpu_tokens)
    term_ratio = split.gpu_terms / max(1, split.cpu_terms)
    # Paper: tokens split 0.80:1 GPU:CPU; terms 2.50:1.  Shape: tokens
    # near parity, terms heavily GPU-side.
    assert 0.5 < token_ratio < 2.5
    assert term_ratio > 2.0
    assert term_ratio > token_ratio
