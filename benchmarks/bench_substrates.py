"""Substrate microbenchmarks: the library's own hot paths.

Not a paper experiment — these time the building blocks a downstream user
inherits: the Porter stemmer, the discrete-event engine, the warp node
search, the postings codecs, and the full parser pipeline, in operations
per second.
"""

from __future__ import annotations

import random

from repro.corpus.zipf import ZipfSampler, ZipfVocabulary
from repro.gpusim.reduction import warp_find_slot
from repro.parsing.parser import Parser
from repro.parsing.porter import PorterStemmer
from repro.postings.compression import VarByteCodec
from repro.sim.events import Request, Simulator, Timeout
from repro.sim.resources import Resource


def test_porter_stemmer_throughput(benchmark):
    """Cold-cache stemming rate (every token distinct)."""
    vocab = ZipfVocabulary(size=20_000, seed=31)

    def stem_all():
        stemmer = PorterStemmer()  # fresh: no memo hits
        return sum(len(stemmer.stem(w)) for w in vocab.terms)

    assert benchmark(stem_all) > 0


def test_parser_pipeline_throughput(benchmark):
    """Steps 2–5 over realistic Zipf text (memoized hot path)."""
    vocab = ZipfVocabulary(size=8_000, seed=32)
    sampler = ZipfSampler(vocab, seed=33)
    texts = [" ".join(sampler.sample_terms(400)) for _ in range(50)]
    parser = Parser(strip_html=False)
    parser.parse_texts(texts[:2])  # warm the token cache

    def parse():
        batch, _ = parser.parse_texts(texts)
        return batch.total_tokens

    tokens = benchmark(parse)
    assert tokens > 0


def test_des_event_rate(benchmark):
    """Simulator events per second (timeouts + mutex handoffs)."""

    def run_sim():
        sim = Simulator()
        res = Resource("r", capacity=1)

        def worker():
            for _ in range(500):
                yield Request(res)
                yield Timeout(0.001)
                res.release()

        for i in range(4):
            sim.add_process(worker(), f"w{i}")
        return sim.run()

    assert benchmark(run_sim) > 0


def test_warp_find_slot_rate(benchmark):
    """Fig 7 searches over full 31-key nodes."""
    rng = random.Random(7)
    keys = sorted({bytes(rng.choices(range(97, 123), k=6)) for _ in range(40)})[:31]
    queries = [bytes(rng.choices(range(97, 123), k=6)) for _ in range(500)]

    def search_all():
        return sum(warp_find_slot(q, keys)[0] for q in queries)

    assert benchmark(search_all) >= 0


def test_varbyte_codec_rate(benchmark):
    """Encode+decode throughput on a long postings list."""
    postings = [(i * 3, (i % 7) + 1) for i in range(20_000)]
    codec = VarByteCodec()

    def round_trip():
        return len(codec.decode(codec.encode(postings)))

    assert benchmark(round_trip) == 20_000
