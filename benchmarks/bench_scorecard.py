"""The reproduction scorecard: every headline claim checked in one run.

Prints the full pass/fail matrix of the paper's claims against the
current models — the one-stop answer to "did the reproduction hold?".
"""

from __future__ import annotations

from conftest import report

from repro.analysis.scorecard import reproduction_scorecard
from repro.util.fmt import render_table


def test_scorecard(benchmark):
    claims = benchmark.pedantic(reproduction_scorecard, rounds=1, iterations=1)
    rows = [
        [
            "PASS" if c.passed else "FAIL",
            c.source,
            c.statement,
            c.paper_value,
            c.ours_value,
        ]
        for c in claims
    ]
    passed = sum(c.passed for c in claims)
    table = render_table(["", "Source", "Claim", "Paper", "Ours"], rows)
    report(
        "scorecard",
        table + f"\n\n{passed}/{len(claims)} claims reproduced",
    )
    failures = [c for c in claims if not c.passed]
    assert not failures, [f"{c.source}: {c.statement} → {c.ours_value}" for c in failures]
