"""Execution-backend sweep: one full build per ``--exec`` mode.

The fig10 sweep asks "how many parsers"; this one asks "which execution
substrate" — the same mini-ClueWeb build through the ``serial``,
``threaded`` and ``multiprocess`` backends, as three scenarios so the
perf trajectory tracks each backend's build time per PR.  Byte-identity
across the three is asserted by the tier-1 suite
(``tests/test_exec_backend.py``); here only the clock differs.
"""

from __future__ import annotations

import hashlib
import os
import shutil

from conftest import report

from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.obs.bench import BenchOp, scenario
from repro.util.fmt import render_table

BACKENDS = ("serial", "threaded", "multiprocess")


def _build_op(ctx, backend: str):
    coll = ctx.mini_collection()
    out = os.path.join(ctx.fresh_dir(f"exec_{backend}_scratch"), "idx")
    cfg_kwargs = dict(sample_fraction=ctx.sample_fraction,
                      files_per_run=8, exec_backend=backend)

    def op():
        shutil.rmtree(out, ignore_errors=True)
        cfg = PlatformConfig(**cfg_kwargs)
        return IndexingEngine(cfg).build(coll, out)

    return BenchOp(
        op=op,
        bytes_processed=coll.uncompressed_bytes,
        stage_timings=ctx.build_stage_timings,
    )


@scenario("build_exec_serial", group="exec")
def bench_exec_serial(ctx):
    """Mini-ClueWeb build through the inline serial loop."""
    return _build_op(ctx, "serial")


@scenario("build_exec_threaded", group="exec")
def bench_exec_threaded(ctx):
    """Same build through the worker-thread pipeline."""
    return _build_op(ctx, "threaded")


@scenario("build_exec_multiprocess", group="exec")
def bench_exec_multiprocess(ctx):
    """Same build through supervised worker processes + shm rings."""
    return _build_op(ctx, "multiprocess")


def _digest(out_dir: str) -> str:
    skip = {"build.manifest", "checkpoint.bin", "run.metrics.json", "trace.json"}
    h = hashlib.sha256()
    for name in sorted(os.listdir(out_dir)):
        path = os.path.join(out_dir, name)
        if name in skip or os.path.isdir(path):
            continue
        h.update(name.encode())
        with open(path, "rb") as fh:
            h.update(fh.read())
    return h.hexdigest()


def test_backend_sweep_report(benchmark, cw_mini, data_dir):
    """One build per backend: wall-clock table + byte-identity check."""
    results = {}
    digests = set()

    def build(backend: str):
        out = os.path.join(data_dir, f"exec_sweep_{backend}")
        shutil.rmtree(out, ignore_errors=True)
        cfg = PlatformConfig(sample_fraction=0.05, files_per_run=8,
                             exec_backend=backend)
        res = IndexingEngine(cfg).build(cw_mini, out)
        digests.add(_digest(out))
        return res

    for backend in BACKENDS[:-1]:
        results[backend] = build(backend)
    results["multiprocess"] = benchmark.pedantic(
        build, args=("multiprocess",), rounds=1, iterations=1
    )

    rows = []
    for backend in BACKENDS:
        res = results[backend]
        sup = res.supervisor
        rows.append([
            backend,
            f"{res.wall_seconds:.2f}",
            str(res.pipeline.workers) if res.pipeline else "-",
            f"{sup.workers} procs" if sup else "-",
        ])
    report(
        "exec_backends",
        render_table(["Backend", "wall s", "indexer lanes", "processes"], rows),
        data={b: results[b].wall_seconds for b in BACKENDS},
    )
    assert len(digests) == 1  # all three backends: same bytes
    assert results["multiprocess"].supervisor.clean
