"""Ablation G — the hybrid dictionary against its alternatives (§III.B).

The paper argues for trie + B-tree forest over (a) a hash table ("a hash
function will still require comparisons and searches on full strings"),
(b) one big B-tree (lock contention + extra depth), and implicitly builds
on (c) the adaptive burst trie [10].  This bench runs the same Zipf term
stream through all four structures and reports the cost drivers: string
bytes compared, pointer dereferences, structure depth, and lock
contention under concurrent writers.
"""

from __future__ import annotations

from conftest import report

from repro.baselines.bursttrie import BurstTrie
from repro.baselines.dictionaries import GlobalBTreeDictionary, HashDictionary
from repro.corpus.zipf import ZipfSampler, ZipfVocabulary
from repro.dictionary.dictionary import Dictionary
from repro.util.fmt import render_table
from repro.util.timing import Timer


def _stream(n_tokens: int = 50_000):
    vocab = ZipfVocabulary(size=12_000, seed=21)
    return ZipfSampler(vocab, seed=22).sample_terms(n_tokens)


def test_dictionary_structures(benchmark):
    terms = _stream()
    term_bytes = [t.encode() for t in terms]

    def run_all():
        out = {}

        hybrid = Dictionary()
        with Timer() as t:
            for term in terms:
                hybrid.add_term(term)
        stats = hybrid.stats()
        heights = [tree.height() for tree in hybrid.trees.values()]
        out["hybrid trie + B-tree forest"] = dict(
            wall=t.elapsed,
            distinct=hybrid.term_count(),
            compares=stats.key_comparisons,
            derefs=stats.full_string_fetches,
            depth=max(heights) if heights else 0,
            contended=0,
        )

        hashd = HashDictionary()
        with Timer() as t:
            for tb in term_bytes:
                hashd.insert(tb)
        out["hash table (open addressing)"] = dict(
            wall=t.elapsed,
            distinct=len(hashd),
            compares=hashd.stats.full_string_comparisons,
            derefs=hashd.stats.full_string_comparisons,
            depth=0,
            contended=0,
        )

        globalb = GlobalBTreeDictionary(writer_threads=4)
        with Timer() as t:
            for tb in term_bytes:
                globalb.insert(tb)
        out["single global B-tree (4 writers)"] = dict(
            wall=t.elapsed,
            distinct=len(globalb),
            compares=globalb.tree.stats.key_comparisons,
            derefs=globalb.tree.stats.full_string_fetches,
            depth=globalb.height(),
            contended=globalb.lock_stats.contended_acquisitions,
        )

        burst = BurstTrie()
        with Timer() as t:
            for tb in term_bytes:
                burst.insert(tb)
        out["burst trie [10]"] = dict(
            wall=t.elapsed,
            distinct=len(burst),
            compares=burst.stats.container_scans,
            derefs=burst.stats.container_scans,
            depth=0,
            contended=0,
        )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{r['wall']:.3f}",
            r["distinct"],
            r["compares"],
            r["derefs"],
            r["depth"],
            r["contended"],
        ]
        for name, r in results.items()
    ]
    report(
        "ablation_dictionary",
        render_table(
            ["Structure", "Wall s", "Distinct terms", "Key compares",
             "Full-string derefs", "Max tree height", "Contended locks"],
            rows,
        ),
    )
    # Same vocabulary everywhere.
    distincts = {r["distinct"] for r in results.values()}
    assert len(distincts) == 1
    hybrid = results["hybrid trie + B-tree forest"]
    hashd = results["hash table (open addressing)"]
    globalb = results["single global B-tree (4 writers)"]
    # The paper's §III.B claims, measured:
    # The hash table dereferences the full string on every occupied probe;
    # the hybrid's caches resolve most comparisons in 4 bytes (ties on
    # long shared prefixes still dereference, so the win is ~2.5x in
    # dereference count and larger in bytes compared, since the trie strip
    # shortened every stored string by up to 3 characters).
    assert hybrid["derefs"] < hashd["derefs"] / 2
    assert hybrid["compares"] - hybrid["derefs"] > hybrid["derefs"]  # cache-resolved majority
    assert hybrid["depth"] < globalb["depth"]  # forest trees are shallower
    assert globalb["contended"] > 0  # one tree = lock contention
    assert hybrid["contended"] == 0  # forest = lock-free parallelism
