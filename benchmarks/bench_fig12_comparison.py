"""Table VII + Fig 12 — comparison with the fastest known indexers.

Prints the Table VII platform matrix and the Fig 12 throughput bars:
this paper (± GPUs, from the calibrated pipeline simulation) against
Ivory MapReduce (99 nodes, ClueWeb09) and Single-Pass MapReduce (8
nodes, .GOV2) from the cluster cost model.  Checked claim: "our ...
algorithm achieves the best raw performance with or without GPUs even
when compared to much larger clusters."
"""

from __future__ import annotations

from conftest import report

from repro.analysis.figures import fig12_comparison
from repro.analysis.tables import table7_platforms
from repro.baselines.cluster import (
    CLUEWEB09_MR_STATS,
    IVORY_PLATFORM,
    ClusterModel,
)
from repro.obs.bench import BenchOp, scenario
from repro.util.ascii_chart import bar_chart
from repro.util.fmt import render_table


@scenario("fig12_comparison", group="simulation")
def bench_fig12(ctx):
    """Fig 12 regeneration: throughput bars vs the cluster baselines."""
    return BenchOp(
        op=fig12_comparison,
        stage_timings=ctx.simulated_stage_timings(),
    )


def test_table7_report(benchmark):
    headers, rows = benchmark(table7_platforms)
    report("table7_platforms", render_table(headers, rows))
    assert len(rows) == 3


def test_fig12_report(benchmark):
    bars = benchmark.pedantic(fig12_comparison, rounds=1, iterations=1)
    rows = [
        [b.system, b.dataset, b.nodes, b.cores,
         f"{b.throughput_mbps:.2f}", f"{b.mbps_per_core:.2f}"]
        for b in bars
    ]
    rows.append(["[paper] This paper", "ClueWeb09", 1, 8, "262.76", "32.85"])
    rows.append(["[paper] This paper (no GPUs)", "ClueWeb09", 1, 8, "204.32", "25.54"])
    chart = bar_chart({b.system: b.throughput_mbps for b in bars}, unit=" MB/s")
    report(
        "fig12_comparison",
        render_table(
            ["System", "Dataset", "Nodes", "Cores", "MB/s", "MB/s/core"], rows
        )
        + "\n\n" + chart,
        data={b.system: b.throughput_mbps for b in bars},
    )
    thpt = [b.throughput_mbps for b in bars]
    assert thpt == sorted(thpt, reverse=True)  # ours-GPU > ours > Ivory > SP-MR


def test_cluster_model_breakdown(benchmark):
    """Time the Ivory job pricing and print its phase breakdown."""
    model = ClusterModel(IVORY_PLATFORM)
    breakdown = benchmark(model.index_time_breakdown, CLUEWEB09_MR_STATS, "ivory")
    rows = [[k, f"{v:.1f}"] for k, v in breakdown.items()]
    report("fig12_ivory_breakdown", render_table(["Phase", "Seconds"], rows))
    assert breakdown["total_s"] > breakdown["raw_total_s"]
