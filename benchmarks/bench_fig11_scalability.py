"""Fig 11 — scalability of the parallel indexers (per-file throughput).

Regenerates the per-file indexing-throughput series for scenarios (ii),
(iii) and (iv) over the 1,492-file paper-scale workload.  Checked claims:
the sharp early decline flattening out (the inverse-B-tree-depth shape),
the cliff at file index 1,200 where the Wikipedia.org files begin, and
the combined CPU+GPU configuration being "especially affected".
"""

from __future__ import annotations

from conftest import report

from repro.analysis.figures import fig11_per_file_series
from repro.util.ascii_chart import line_chart
from repro.util.fmt import render_table


def test_fig11_report(benchmark):
    out = benchmark.pedantic(
        fig11_per_file_series, kwargs={"sample_points": 16}, rounds=1, iterations=1
    )
    headers = ["File index"] + [str(i) for i in out["file_index"]]
    rows = []
    for name in ("1 CPU indexer", "2 CPU indexers", "2 CPU + 2 GPU indexers"):
        rows.append([name] + [f"{v:.0f}" for v in out[name]])
    rows.append([
        "[paper] qualitative",
        *(["decline→plateau"] + ["·"] * (len(out["file_index"]) - 2) + ["cliff@1200"]),
    ])
    table = render_table(headers, rows)
    drops = "\n".join(
        f"{name}: post-cliff/pre-cliff throughput ratio = {out[f'{name} drop']:.2f}"
        for name in ("1 CPU indexer", "2 CPU indexers", "2 CPU + 2 GPU indexers")
    )
    chart = line_chart(
        out["file_index"],
        {name: out[name] for name in
         ("1 CPU indexer", "2 CPU indexers", "2 CPU + 2 GPU indexers")},
    )
    report(
        "fig11_scalability",
        table + "\n\nWikipedia-segment drop factors:\n" + drops
        + "\n\nper-file MB/s vs file index:\n" + chart,
    )

    assert out["segment_boundary"] == 1200
    combined = out["2 CPU + 2 GPU indexers"]
    assert combined[0] > combined[3]  # early decline
    assert out["2 CPU + 2 GPU indexers drop"] < out["2 CPU indexers drop"]
