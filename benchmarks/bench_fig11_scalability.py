"""Fig 11 — scalability of the parallel indexers (per-file throughput).

Regenerates the per-file indexing-throughput series for scenarios (ii),
(iii) and (iv) over the 1,492-file paper-scale workload.  Checked claims:
the sharp early decline flattening out (the inverse-B-tree-depth shape),
the cliff at file index 1,200 where the Wikipedia.org files begin, and
the combined CPU+GPU configuration being "especially affected".

Also measures the *functional* engine's pipelined mode for real: a
serial and a pipelined build of the mini ClueWeb, asserting the
pipelined one is faster in wall-clock while staying byte-identical
(docs/ARCHITECTURE.md, "Pipeline execution").
"""

from __future__ import annotations

import hashlib
import os
import shutil

from conftest import report

from repro.analysis.figures import fig11_per_file_series
from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.obs.bench import BenchOp, scenario
from repro.robustness.faults import FaultPlan, FaultSpec, inject
from repro.util.ascii_chart import line_chart
from repro.util.fmt import render_table


@scenario("fig11_per_file_series", group="simulation", sample_points=16)
def bench_fig11(ctx):
    """Fig 11 regeneration: per-file throughput series, 16 sample points."""
    return BenchOp(
        op=lambda: fig11_per_file_series(sample_points=16),
        stage_timings=ctx.simulated_stage_timings(),
    )


def test_fig11_report(benchmark):
    out = benchmark.pedantic(
        fig11_per_file_series, kwargs={"sample_points": 16}, rounds=1, iterations=1
    )
    headers = ["File index"] + [str(i) for i in out["file_index"]]
    rows = []
    for name in ("1 CPU indexer", "2 CPU indexers", "2 CPU + 2 GPU indexers"):
        rows.append([name] + [f"{v:.0f}" for v in out[name]])
    rows.append([
        "[paper] qualitative",
        *(["decline→plateau"] + ["·"] * (len(out["file_index"]) - 2) + ["cliff@1200"]),
    ])
    table = render_table(headers, rows)
    drops = "\n".join(
        f"{name}: post-cliff/pre-cliff throughput ratio = {out[f'{name} drop']:.2f}"
        for name in ("1 CPU indexer", "2 CPU indexers", "2 CPU + 2 GPU indexers")
    )
    chart = line_chart(
        out["file_index"],
        {name: out[name] for name in
         ("1 CPU indexer", "2 CPU indexers", "2 CPU + 2 GPU indexers")},
    )
    report(
        "fig11_scalability",
        table + "\n\nWikipedia-segment drop factors:\n" + drops
        + "\n\nper-file MB/s vs file index:\n" + chart,
    )

    assert out["segment_boundary"] == 1200
    combined = out["2 CPU + 2 GPU indexers"]
    assert combined[0] > combined[3]  # early decline
    assert out["2 CPU + 2 GPU indexers drop"] < out["2 CPU indexers drop"]


def _index_digest(out_dir: str) -> str:
    """One hash over the index artifacts (build logs / telemetry excluded)."""
    skip = {"build.manifest", "checkpoint.bin", "run.metrics.json", "trace.json"}
    h = hashlib.sha256()
    for name in sorted(os.listdir(out_dir)):
        path = os.path.join(out_dir, name)
        if name in skip or os.path.isdir(path):
            continue
        h.update(name.encode())
        with open(path, "rb") as fh:
            h.update(fh.read())
    return h.hexdigest()


def test_pipelined_build_beats_serial(benchmark, cw_mini, data_dir):
    """Real wall-clock: pipelined engine vs the serial loop, same bytes.

    What threading can and cannot buy here is governed by the GIL: on a
    hot page cache this corpus is almost entirely Python-bound (its
    read+gunzip portion is ~1% of the build), so the overlap the paper
    gets from extra *cores* is not reachable from CPython threads and
    the pipelined mode's win is hiding **I/O latency** — exactly the
    paper's slow-shared-disk setting.  The measured comparison therefore
    runs both modes under the robustness layer's seeded slow-storage
    profile (one `slow` fault per container read, as a cold
    network-attached store would behave): the serial loop eats every
    read stall inline, the pipelined engine hides them behind indexing
    on the parser-w*/indexer worker threads.  A hot-cache pair is
    reported too (unasserted) so the GIL caveat stays visible.
    """

    def build(mode: str, depth: int, delay_s: float = 0.0):
        out = os.path.join(data_dir, f"pipeline_bench_{mode}")
        shutil.rmtree(out, ignore_errors=True)
        cfg = PlatformConfig(
            sample_fraction=0.05, files_per_run=8, pipeline_depth=depth
        )
        plan = FaultPlan(specs=[
            FaultSpec(kind="slow", stage="build", delay_s=delay_s),
        ])
        with inject(plan):
            return IndexingEngine(cfg).build(cw_mini, out), out

    delay = 0.15  # per-file read latency of the simulated slow store
    hot_serial, _ = build("hot_serial", 0)
    hot_piped, _ = build("hot_piped", 4)
    serial, serial_out = build("serial", 0, delay_s=delay)
    piped, piped_out = benchmark.pedantic(
        build, args=("piped", 4), kwargs={"delay_s": delay},
        rounds=1, iterations=1,
    )
    assert piped.pipeline is not None and piped.pipeline.workers > 1
    rows = [
        ["serial, hot cache", f"{hot_serial.wall_seconds:.2f}", "-"],
        ["pipelined, hot cache", f"{hot_piped.wall_seconds:.2f}", "-"],
        ["serial, slow store", f"{serial.wall_seconds:.2f}", "-"],
        ["pipelined (depth 4), slow store", f"{piped.wall_seconds:.2f}",
         str(piped.pipeline.workers)],
    ]
    speedup = serial.wall_seconds / piped.wall_seconds
    report(
        "fig11_pipelined_wall_clock",
        render_table(["Mode", "wall s", "workers"], rows)
        + f"\n\nslow-store speedup: {speedup:.2f}x "
        + f"({delay * 1000:.0f} ms injected latency per container read)",
    )
    # Identical index bytes, strictly less wall time under I/O latency.
    assert _index_digest(serial_out) == _index_digest(piped_out)
    assert piped.wall_seconds < serial.wall_seconds
