"""Ablation A — Step-5 regrouping on vs off (§III.C).

"Even in the case when indexing is carried out by a serial CPU thread,
regrouping results in approximately 15-fold speedup ... due to improved
cache performance caused by the additional temporal locality."

Functionally both paths build identical indexes (asserted); the modeled
serial-indexing time ratio comes from the cache cost model, and the
wall-clock benchmark times the real grouped pipeline.
"""

from __future__ import annotations

from conftest import report

from repro.dictionary.dictionary import DictionaryShard
from repro.dictionary.trie import TrieTable
from repro.indexers.cpu import CPUIndexer
from repro.parsing.parser import Parser
from repro.util.fmt import render_table


def _index_batches(collection, regroup: bool, n_files: int = 4):
    trie = TrieTable()
    parser = Parser(trie=trie, regroup=regroup)
    indexer = CPUIndexer(0, DictionaryShard(trie))
    modeled = 0.0
    doc_offset = 0
    for seq, path in enumerate(collection.files[:n_files]):
        parsed = parser.parse_file(path, sequence=seq)
        rep = indexer.index_batch(parsed.batch, doc_offset)
        modeled += rep.modeled_seconds
        doc_offset += parsed.batch.num_docs
    return indexer, modeled


def test_regroup_ablation(benchmark, cw_mini):
    grouped, grouped_s = benchmark.pedantic(
        _index_batches, args=(cw_mini, True), rounds=1, iterations=1
    )
    ungrouped, ungrouped_s = _index_batches(cw_mini, False)

    # Identical dictionaries and postings either way.
    assert dict(grouped.shard.terms()).keys() == dict(ungrouped.shard.terms()).keys()
    assert grouped.total.tokens == ungrouped.total.tokens

    speedup = ungrouped_s / grouped_s
    rows = [
        ["regrouped (Step 5 on)", f"{grouped_s:.4f}", "1.00x"],
        ["document order (Step 5 off)", f"{ungrouped_s:.4f}", f"{speedup:.1f}x slower"],
        ["[paper] serial-indexer speedup from regrouping", "", "~15x"],
    ]
    report(
        "ablation_regroup",
        render_table(["Serial CPU indexing", "Modeled seconds", "Relative"], rows),
    )
    # The cache-locality model should put the win in the paper's decade.
    assert 4.0 < speedup < 40.0
