"""Ablation B — trie height 2 vs 3 vs 4 (§III.B.1).

"The height of three for the trie seems to work best since a smaller
height will lead to a wide variety of trie collections, some very large
and some very small ... A larger value for the trie height will generate
many small trie collections, which will be again hard to manage."

For each height we parse the mini ClueWeb sample and report: number of
non-empty collections, the largest collection's token share (the GPU
serial floor), the Gini-style imbalance across collections, and the
mean suffix length left after the strip.
"""

from __future__ import annotations

from conftest import report

from repro.dictionary.trie import TrieTable
from repro.parsing.parser import Parser
from repro.util.fmt import render_table


def _profile(collection, height: int, n_files: int = 4):
    trie = TrieTable(height=height)
    parser = Parser(trie=trie)
    counts: dict[int, int] = {}
    chars = 0
    tokens = 0
    for seq, path in enumerate(collection.files[:n_files]):
        parsed = parser.parse_file(path, sequence=seq)
        for cidx, tok in parsed.batch.tokens_per_collection.items():
            counts[cidx] = counts.get(cidx, 0) + tok
        for cidx, ch in parsed.batch.chars_per_collection.items():
            chars += ch
        tokens += parsed.batch.total_tokens
    total = sum(counts.values())
    largest = max(counts.values()) / total
    # Imbalance: share of tokens in the top 1% of non-empty collections.
    ranked = sorted(counts.values(), reverse=True)
    top1pct = sum(ranked[: max(1, len(ranked) // 100)]) / total
    return {
        "height": height,
        "possible": trie.num_collections,
        "nonempty": len(counts),
        "largest_share": largest,
        "top1pct_share": top1pct,
        "mean_suffix_chars": chars / tokens,
    }


def test_trie_height_ablation(benchmark, cw_mini):
    profiles = benchmark.pedantic(
        lambda: [_profile(cw_mini, h) for h in (1, 2, 3, 4)], rounds=1, iterations=1
    )
    rows = [
        [
            p["height"],
            p["possible"],
            p["nonempty"],
            f"{p['largest_share']:.1%}",
            f"{p['top1pct_share']:.1%}",
            f"{p['mean_suffix_chars']:.2f}",
        ]
        for p in profiles
    ]
    report(
        "ablation_trie_height",
        render_table(
            ["Height", "Possible collections", "Non-empty",
             "Largest collection", "Top-1% share", "Mean suffix chars"],
            rows,
        ),
    )
    by_h = {p["height"]: p for p in profiles}
    # Smaller heights → lumpier collections (worse load balance).
    assert by_h[1]["largest_share"] > by_h[2]["largest_share"] > by_h[3]["largest_share"]
    # Larger heights → collection explosion ("many small trie collections").
    assert by_h[4]["possible"] > 25 * by_h[3]["possible"]
    # Deeper strips shorten stored suffixes (string-comparison win).
    assert by_h[3]["mean_suffix_chars"] < by_h[1]["mean_suffix_chars"]
