"""Table IV — detailed running times of the four indexer configurations.

Simulates the paper-scale ClueWeb09 build under (6P+2GPU), (6P+1CPU),
(6P+2CPU) and (6P+2CPU+2GPU) and prints every row next to the published
value.  Checked claims: the 1.77× two-indexer speedup, the +37.7% GPU
gain over two CPU indexers, and the superlinear CPU+GPU combination.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.analysis.tables import table4_indexer_configs
from repro.core.workload import WorkloadModel
from repro.util.fmt import render_table


def test_table4_report(benchmark):
    works = WorkloadModel.paper_scale("clueweb09").files()
    headers, rows = benchmark.pedantic(
        table4_indexer_configs, args=(works,), rounds=1, iterations=1
    )
    report("table4_configs", render_table(headers, rows))

    ours = {r[0]: [float(v) for v in r[1:]] for r in rows if not r[0].startswith("  [paper]")}
    thpt = ours["Indexing Throughput (MB/s)"]
    gpu_only, one_cpu, two_cpu, combined = thpt

    # 2 CPU indexers ≈ 1.77× one (paper: 229.08 / 129.53).
    assert two_cpu / one_cpu == pytest.approx(1.77, rel=0.05)
    # GPUs add ≈ 37.7% over two CPU indexers (paper: 315.46 / 229.08).
    assert combined / two_cpu == pytest.approx(1.377, rel=0.08)
    # Superlinear split: combined beats the sum of its parts.
    assert combined > 0.97 * (two_cpu + gpu_only)
    # Two GPUs alone lose to even a single CPU indexer.
    assert gpu_only < one_cpu
