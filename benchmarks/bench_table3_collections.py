"""Table III — statistics of the document collections.

Generates all three mini collections, parses them end to end to count
documents/terms/tokens, and prints our (scaled) rows above the paper's
full-scale numbers.  The benchmark times the statistics pass over the
ClueWeb-profile collection (a full parse of every file).
"""

from __future__ import annotations

from conftest import report

from repro.analysis.tables import table3_collection_stats
from repro.corpus.collection import collection_statistics
from repro.util.fmt import render_table


def test_table3_report(benchmark, cw_mini, wiki_mini, congress_mini_coll):
    stats_cw = benchmark(collection_statistics, cw_mini)
    stats_wiki = collection_statistics(wiki_mini, strip_html=False)
    stats_congress = collection_statistics(congress_mini_coll)

    headers, rows = table3_collection_stats([stats_cw, stats_wiki, stats_congress])
    report("table3_collections", render_table(headers, rows))

    # Profile shape checks (scaled analogues of Table III):
    # ClueWeb is markup-heavy → fewer tokens per byte than pure-text wiki.
    cw_density = stats_cw.num_tokens / stats_cw.uncompressed_bytes
    wiki_density = stats_wiki.num_tokens / stats_wiki.uncompressed_bytes
    assert wiki_density > 1.5 * cw_density
    # Vocabulary: the web crawl has the fattest term set per token.
    assert (
        stats_cw.num_terms / stats_cw.num_tokens
        > stats_wiki.num_terms / stats_wiki.num_tokens
    )
