"""Extension — the model as a design tool: hardware what-if sweeps.

"Our algorithm can easily be adapted to any other such heterogeneous
configuration" (§III).  With the calibrated pipeline model we can ask
what the paper's authors could not measure: how does the 2009 design
scale with more cores and more GPUs, and where does the bottleneck move?

Held fixed: per-core and per-GPU speeds (still 2009 silicon), the 100
MB/s remote disk, and the ClueWeb09 workload.  Swept: core count (split
between parsers and CPU indexers at the measured 3:1 parser:indexer work
ratio) and GPU count.
"""

from __future__ import annotations

from conftest import report

from repro.core.config import PlatformConfig
from repro.core.pipeline import simulate_pipeline
from repro.core.workload import WorkloadModel
from repro.util.fmt import render_table


def _best_split(cores: int, gpus: int, works) -> tuple[PlatformConfig, float]:
    """Exhaustive parser/indexer split for a core budget."""
    best_cfg, best = None, -1.0
    min_cpu = 0 if gpus else 1
    for parsers in range(1, cores):
        cpus = cores - parsers
        if cpus < min_cpu:
            continue
        cfg = PlatformConfig(
            num_parsers=parsers, num_cpu_indexers=cpus, num_gpus=gpus,
            total_cores=cores,
        )
        thpt = simulate_pipeline(works, cfg).overall_throughput_mbps
        if thpt > best:
            best, best_cfg = thpt, cfg
    assert best_cfg is not None
    return best_cfg, best


def test_hardware_whatif(benchmark):
    works = WorkloadModel.paper_scale("clueweb09").files()

    def sweep():
        rows = []
        results = {}
        for cores in (4, 8, 16, 32):
            for gpus in (0, 2, 4):
                cfg, thpt = _best_split(cores, gpus, works)
                results[(cores, gpus)] = thpt
                rows.append(
                    [cores, gpus, cfg.num_parsers, cfg.num_cpu_indexers,
                     f"{thpt:.1f}"]
                )
        return rows, results

    rows, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        if row[0] == 8 and row[1] == 2:
            row.append("← the paper's node")
        else:
            row.append("")
    report(
        "whatif_hardware",
        render_table(
            ["Cores", "GPUs", "Best parsers", "Best CPU idx", "MB/s", ""], rows
        )
        + "\n\nTwo bottleneck shifts the model predicts:\n"
        "1. The fixed popular/unpopular binding ages badly: with 16+ cores,\n"
        "   pinning the long tail to two 2009-era GPUs (≈3.1 s/file floor)\n"
        "   LOSES to an all-CPU split — the §III.E heuristic presumes CPU\n"
        "   cores are scarce.  Four GPUs restore the advantage.\n"
        "2. Toward 32 cores the 100 MB/s remote disk (≈618 MB/s uncompressed\n"
        "   intake ceiling, §IV.A) becomes the governing limit.",
    )

    # The paper's configuration reproduces within the sweep.
    assert abs(results[(8, 2)] - 255) / 255 < 0.10
    # More hardware helps, with diminishing returns toward the disk bound.
    assert results[(16, 2)] > results[(8, 2)]
    disk_bound_mbps = 100e6 / (1024 * 1024) * 6.39  # 1GB unc per 160MB comp
    assert results[(32, 4)] <= disk_bound_mbps * 1.05
    # GPUs matter less as CPU cores become plentiful.
    gain_8 = results[(8, 2)] / results[(8, 0)]
    gain_32 = results[(32, 2)] / results[(32, 0)]
    assert gain_8 > gain_32
