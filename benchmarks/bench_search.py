"""Extension — query latency over the run-file output format (§III.F).

Times the retrieval paths the output format was designed for: dictionary
lookup → postings fetch, Boolean intersection, TF-IDF ranking, and the
docID-range-narrowed variant that touches only overlapping run files.
"""

from __future__ import annotations

from conftest import report

from repro.obs.bench import BenchOp, scenario
from repro.search.query import SearchEngine
from repro.util.fmt import render_table
from repro.util.timing import Timer


@scenario("search_ranked_top10", group="search", terms=3, k=10)
def bench_ranked_query(ctx):
    """TF-IDF top-10 retrieval over the cached mini-ClueWeb build.

    The stage summary attached is the *build's* run.metrics.json
    timings: a query-latency regression usually traces back to what the
    build wrote (codec choice, run layout), not the query code itself.
    """
    result = ctx.engine_build()
    engine = SearchEngine(result.output_dir, num_docs=result.document_count)
    query = " ".join(_query_terms(engine)[:3])
    return BenchOp(
        op=lambda: engine.ranked(query, k=10),
        stage_timings=ctx.build_stage_timings(result),
    )


def _query_terms(engine: SearchEngine, n: int = 8) -> list[str]:
    """Mid-frequency alphabetic terms (non-trivial but selective)."""
    vocab = engine.reader.vocabulary()
    lo, hi = engine.num_docs // 20, engine.num_docs // 2
    return [
        t
        for t in sorted(vocab, key=lambda t: -engine.reader.document_frequency(t))
        if t.isalpha() and lo < engine.reader.document_frequency(t) < hi
    ][:n]


def test_query_latency(benchmark, engine_result):
    engine = SearchEngine(engine_result.output_dir, num_docs=engine_result.document_count)
    terms = _query_terms(engine)
    assert len(terms) >= 4
    query = " ".join(terms[:3])

    def ranked():
        return engine.ranked(query, k=10)

    hits = benchmark(ranked)
    assert hits

    # One-shot latency comparison across the retrieval modes.
    timings = {}
    with Timer() as t:
        single = engine.reader.postings(terms[0])
    timings["single-term postings fetch"] = (t.elapsed, len(single))
    with Timer() as t:
        docs = engine.boolean_and(query)
    timings["boolean AND (3 terms)"] = (t.elapsed, len(docs))
    with Timer() as t:
        docs = engine.boolean_or(query)
    timings["boolean OR (3 terms)"] = (t.elapsed, len(docs))
    with Timer() as t:
        top = engine.ranked(query, k=10)
    timings["TF-IDF top-10 (3 terms)"] = (t.elapsed, len(top))
    lo, hi = 0, engine.num_docs // 4
    fetches0 = engine.reader.partial_fetches
    with Timer() as t:
        top = engine.ranked_in_range(query, lo, hi, k=10)
    narrowed_fetches = engine.reader.partial_fetches - fetches0
    timings[f"range-narrowed top-10 (docs {lo}..{hi})"] = (t.elapsed, len(top))

    rows = [
        [name, f"{seconds * 1e3:.3f}", results]
        for name, (seconds, results) in timings.items()
    ]
    rows.append(
        ["runs touched by the narrowed query",
         f"{narrowed_fetches} of {engine.reader.run_count() * 3}", ""]
    )
    report("search_latency", render_table(["Operation", "ms", "results"], rows))
