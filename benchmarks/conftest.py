"""Shared benchmark fixtures: cached corpora, engine builds, reporting.

Benchmarks are run with ``pytest benchmarks/ --benchmark-only``.  Each
bench both *times* a representative operation (the ``benchmark`` fixture)
and *regenerates* one of the paper's tables/figures, printing the rows and
writing them to ``benchmarks/reports/<name>.txt`` so the output survives
pytest's capture.

Generated corpora and engine builds are cached under ``.bench_data/`` in
the repository root to keep repeated benchmark runs fast.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping

import pytest

from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.corpus.datasets import clueweb09_mini, congress_mini, wikipedia_mini

BENCH_ROOT = os.path.dirname(os.path.abspath(__file__))
DATA_DIR = os.path.join(os.path.dirname(BENCH_ROOT), ".bench_data")
REPORTS_DIR = os.path.join(BENCH_ROOT, "reports")


def report(name: str, text: str, data: Mapping[str, Any] | None = None) -> None:
    """Print a report block and persist it under benchmarks/reports/.

    ``data``, when given, is the machine-readable twin of the text table:
    it lands in ``benchmarks/reports/<name>.json`` so tooling (and the
    ``repro bench`` trajectory work) can consume bench output without
    scraping ASCII.  The text path is unchanged — both always coexist.
    """
    os.makedirs(REPORTS_DIR, exist_ok=True)
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    with open(os.path.join(REPORTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    if data is not None:
        with open(
            os.path.join(REPORTS_DIR, f"{name}.json"), "w", encoding="utf-8"
        ) as fh:
            json.dump(dict(data), fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")


@pytest.fixture(scope="session")
def data_dir():
    os.makedirs(DATA_DIR, exist_ok=True)
    return DATA_DIR


@pytest.fixture(scope="session")
def cw_mini(data_dir):
    """The ClueWeb09-profile mini collection (web + wikipedia segments)."""
    return clueweb09_mini(data_dir, scale=0.5)


@pytest.fixture(scope="session")
def wiki_mini(data_dir):
    return wikipedia_mini(data_dir, scale=0.5)


@pytest.fixture(scope="session")
def congress_mini_coll(data_dir):
    return congress_mini(data_dir, scale=0.5)


@pytest.fixture(scope="session")
def engine_result(cw_mini, data_dir):
    """One full functional engine build on the mini ClueWeb, cached for
    every bench that needs real measured artifacts."""
    out = os.path.join(data_dir, "engine_out")
    engine = IndexingEngine(PlatformConfig(sample_fraction=0.05))
    return engine.build(cw_mini, out)
