"""Ablation E — dynamic round-robin vs static block scheduling (§III.D.2).

"Since the trie collections are of different sizes and depend on the
input documents, any static allocation of these collections to the
available thread blocks is likely to incur a serious load imbalance.  In
our algorithm we use a dynamic round-robin scheduling strategy."

Two comparisons:

1. **Measured items** from the functional GPU indexer on the mini
   collection — small batches where both schedules do fine (reported for
   context).
2. **Paper-scale skew**: per-collection work drawn from the Zipf profile
   of a full 1GB run (a few multi-second collections among ~17k tiny
   ones) — where static ``i mod B`` assignment stacks recurring heavy
   collections on the same blocks and dynamic scheduling wins.
"""

from __future__ import annotations

from conftest import report

from repro.dictionary.dictionary import DictionaryShard
from repro.dictionary.trie import TrieTable
from repro.gpusim.kernel import KernelLaunch, WorkItem
from repro.indexers.gpu import GPUIndexer
from repro.parsing.parser import Parser
from repro.util.fmt import render_table
from repro.util.rng import make_rng


def _measured_items(collection, n_files: int = 3):
    trie = TrieTable()
    parser = Parser(trie=trie)
    gpu = GPUIndexer(0, DictionaryShard(trie))
    items = []
    doc_offset = 0
    for seq, path in enumerate(collection.files[:n_files]):
        parsed = parser.parse_file(path, sequence=seq)
        items.extend(gpu.index_batch(parsed.batch, doc_offset).work_items)
        doc_offset += parsed.batch.num_docs
    return items


def _paper_scale_items(n_collections: int = 17_000, total_cycles: float = 4.5e9):
    """Zipf-skewed per-collection cycles matching one 1GB run."""
    rng = make_rng(42)
    weights = 1.0 / (1.0 + rng.permutation(n_collections).astype(float)) ** 0.9
    weights /= weights.sum()
    return [
        WorkItem(
            key=i,
            compute_cycles=0.1 * w * total_cycles,
            memory_stall_cycles=0.9 * w * total_cycles,
        )
        for i, w in enumerate(weights)
    ]


def test_dynamic_vs_static(benchmark, cw_mini):
    measured = _measured_items(cw_mini)
    skewed = _paper_scale_items()

    def run_all():
        out = {}
        for label, items in [("measured-mini", measured), ("paper-scale", skewed)]:
            out[label] = (
                KernelLaunch(num_blocks=480, schedule="dynamic").run(items),
                KernelLaunch(num_blocks=480, schedule="static").run(items),
            )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for label, (dyn, stat) in results.items():
        rows.append(
            [label, "dynamic", f"{dyn.elapsed_seconds * 1e3:.3f}",
             f"{dyn.load_imbalance:.3f}"]
        )
        rows.append(
            [label, "static (i mod B)", f"{stat.elapsed_seconds * 1e3:.3f}",
             f"{stat.load_imbalance:.3f}"]
        )
    report(
        "ablation_scheduling",
        render_table(["Workload", "Schedule", "Kernel ms", "SM load imbalance"], rows),
    )
    dyn, stat = results["paper-scale"]
    assert dyn.elapsed_seconds < stat.elapsed_seconds
    assert dyn.load_imbalance <= stat.load_imbalance
