"""Fig 10 — optimal number of parallel parsers and indexers.

Sweeps M = 1..7 parsers under the paper's three scenarios on the
paper-scale ClueWeb09 workload and prints the three curves.  The claims
checked: near-linear scaling for M ≤ 5, the no-GPU optimum at five
parsers (the 5:3 ratio), the with-GPU optimum at six, and the regression
at seven.
"""

from __future__ import annotations

from conftest import report

from repro.analysis.figures import fig10_parser_sweep
from repro.core.workload import WorkloadModel
from repro.obs.bench import BenchOp, scenario
from repro.util.ascii_chart import line_chart
from repro.util.fmt import render_table


@scenario("fig10_parser_sweep", group="simulation")
def bench_fig10(ctx):
    """Fig 10 regeneration: the 7-point parser sweep over paper scale."""
    works = WorkloadModel.paper_scale("clueweb09").files()
    return BenchOp(
        op=lambda: fig10_parser_sweep(works),
        stage_timings=ctx.simulated_stage_timings(works),
    )


def test_fig10_report(benchmark):
    works = WorkloadModel.paper_scale("clueweb09").files()
    series = benchmark.pedantic(fig10_parser_sweep, args=(works,), rounds=1, iterations=1)

    headers = ["Parsers"] + [str(m) for m in series["parsers"]]
    rows = []
    for name in (
        "M parsers + (8-M) CPU indexers",
        "M parsers + CPU + 2 GPU indexers",
        "M parsers only",
    ):
        rows.append([name] + [f"{v:.1f}" for v in series[name]])
    rows.append(
        ["[paper] qualitative", "linear", "linear", "linear", "linear",
         "no-GPU peak", "GPU peak (262.8)", "regression"]
    )
    chart = line_chart(
        series["parsers"],
        {
            "no GPU": series["M parsers + (8-M) CPU indexers"],
            "with 2 GPUs": series["M parsers + CPU + 2 GPU indexers"],
            "parse only": series["M parsers only"],
        },
    )
    report(
        "fig10_parsers",
        render_table(headers, rows) + "\n\nMB/s vs parsers:\n" + chart,
        data=series,
    )

    no_gpu = series["M parsers + (8-M) CPU indexers"]
    with_gpu = series["M parsers + CPU + 2 GPU indexers"]
    assert max(range(7), key=lambda i: no_gpu[i]) == 4  # 5 parsers
    assert max(range(7), key=lambda i: with_gpu[i]) == 5  # 6 parsers
