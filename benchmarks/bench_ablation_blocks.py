"""Ablation D — thread blocks per GPU (§IV.B: "480 thread blocks").

"After extensive testing using a wide range of values for the number of
thread blocks, it turns out that the best performance is achieved by
using 480 thread blocks per GPU."

The sweep runs the kernel scheduling simulation over the *real* per-trie-
collection work items measured from the functional GPU indexer on the
mini ClueWeb collection.
"""

from __future__ import annotations

from conftest import report

from repro.dictionary.dictionary import DictionaryShard
from repro.dictionary.trie import TrieTable
from repro.gpusim.kernel import KernelLaunch
from repro.indexers.gpu import GPUIndexer
from repro.parsing.parser import Parser
from repro.util.fmt import render_table

BLOCKS = [30, 60, 120, 240, 360, 480, 720, 960, 1920, 3840]


def _real_work_items(collection, n_files: int = 3):
    trie = TrieTable()
    parser = Parser(trie=trie)
    gpu = GPUIndexer(0, DictionaryShard(trie))
    items = []
    doc_offset = 0
    for seq, path in enumerate(collection.files[:n_files]):
        parsed = parser.parse_file(path, sequence=seq)
        out = gpu.index_batch(parsed.batch, doc_offset)
        items.extend(out.work_items)
        doc_offset += parsed.batch.num_docs
    return items


def test_block_count_sweep(benchmark, cw_mini):
    items = _real_work_items(cw_mini)
    # Scale cycles so one launch carries paper-like volume (~3.5s of GPU
    # work per run at 1.3 GHz) — the optimum's position depends on the
    # work-to-overhead ratio, so the sweep must run in the right regime.
    total_raw = sum(it.total_cycles for it in items) or 1.0
    scale = 4.5e9 / total_raw
    scaled = [
        type(it)(
            key=it.key,
            compute_cycles=it.compute_cycles * scale,
            memory_stall_cycles=it.memory_stall_cycles * scale,
            bus_cycles=it.bus_cycles * scale,
        )
        for it in items
    ]

    def sweep():
        return {
            nb: KernelLaunch(num_blocks=nb).run(scaled) for nb in BLOCKS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    best = min(BLOCKS, key=lambda nb: results[nb].elapsed_seconds)
    rows = [
        [
            nb,
            f"{results[nb].elapsed_seconds * 1e3:.2f}",
            results[nb].resident_blocks_per_sm,
            f"{results[nb].load_imbalance:.3f}",
            "← best" if nb == best else ("← paper" if nb == 480 else ""),
        ]
        for nb in BLOCKS
    ]
    report(
        "ablation_blocks",
        render_table(
            ["Blocks/GPU", "Kernel ms", "Resident/SM", "SM imbalance", ""], rows
        ),
    )
    # The optimum sits in the paper's band: hundreds of blocks, not tens
    # or thousands.
    assert 240 <= best <= 960
    assert results[480].elapsed_seconds < results[30].elapsed_seconds
    assert results[480].elapsed_seconds < results[3840].elapsed_seconds
