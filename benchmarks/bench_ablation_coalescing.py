"""Ablation H — "careful organization of memory accesses" (§IV.D).

The paper credits part of its win to "the careful organization of memory
accesses on the GPU in such a way as to exploit coalesced memory accesses
and shared memory".  This bench quantifies both halves on the simulator:

- **Coalescing**: a 64-byte-aligned 512B node load costs 8 transactions;
  misalignment costs 9 (+12.5% bus traffic on the hottest access in the
  kernel), and an uncoalesced per-word gather costs 16× the stalls.
- **Shared-memory banking**: the staged node is read conflict-free
  (16 consecutive words = 1 pass); a column-strided layout would
  serialize 16-way.
"""

from __future__ import annotations

from conftest import report

from repro.gpusim.costmodel import TESLA_C1060
from repro.gpusim.memory import SharedMemory, coalesced_transactions, half_warp_transactions
from repro.gpusim.warp import WarpExecutor
from repro.util.fmt import render_table


def test_coalescing_report(benchmark):
    def measure():
        rows = []
        # Node loads at different alignments.
        for label, start in [("64B-aligned node", 0), ("4B-misaligned node", 4),
                             ("60B-misaligned node", 60)]:
            rows.append([label, coalesced_transactions(start, 512), ""])
        # Half-warp patterns.
        seq = half_warp_transactions([i * 4 for i in range(16)])
        strided = half_warp_transactions([i * 64 for i in range(16)])
        rows.append(["half-warp, 16 consecutive words", seq, "coalesced"])
        rows.append(["half-warp, stride-16 words", strided, "1 txn per lane"])
        # Warp-level cycle cost of coalesced vs gathered node loads.
        coalesced = WarpExecutor(TESLA_C1060)
        coalesced.load_node(count=1000)
        gathered = WarpExecutor(TESLA_C1060)
        gathered.fetch_full_string(4, count=1000 * 8)  # word-by-word
        rows.append([
            "1000 node loads, coalesced",
            f"{coalesced.counters.total_cycles:.0f} cycles", "",
        ])
        rows.append([
            "same bytes, uncoalesced gather",
            f"{gathered.counters.total_cycles:.0f} cycles",
            f"{gathered.counters.total_cycles / coalesced.counters.total_cycles:.1f}x",
        ])
        return rows, coalesced.counters.total_cycles, gathered.counters.total_cycles

    rows, fast, slow = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Bank conflicts on the staged node.
    sm = SharedMemory()
    conflict_free = sm.access([i * 4 for i in range(16)])
    broadcast = sm.access([128] * 16)
    worst = sm.access([i * 64 for i in range(16)])
    rows.append(["shared-mem read, consecutive words", f"{conflict_free} pass", ""])
    rows.append(["shared-mem read, broadcast", f"{broadcast} pass", ""])
    rows.append(["shared-mem read, same-bank stride", f"{worst} passes", "16-way serial"])

    report(
        "ablation_coalescing",
        render_table(["Access pattern", "Cost", "Note"], rows),
    )
    assert coalesced_transactions(0, 512) == 8
    assert coalesced_transactions(4, 512) == 9
    assert slow > 5 * fast  # the paper's coalescing discipline matters
    assert conflict_free == 1 and worst == 16
