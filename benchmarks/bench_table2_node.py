"""Table II — the 512-byte B-tree node layout and its insert hot path.

Regenerates the node layout table (ours vs paper, byte for byte) and
times B-tree insertion with the 4-byte string caches enabled, reporting
the cache-resolution rate that motivates the design.
"""

from __future__ import annotations

from conftest import report

from repro.analysis.tables import table2_node_layout
from repro.corpus.zipf import ZipfSampler, ZipfVocabulary
from repro.dictionary.btree import BTree
from repro.util.fmt import render_table


def test_table2_report(benchmark):
    headers, rows = benchmark(table2_node_layout)
    report("table2_node_layout", render_table(headers, rows))
    assert rows[-1][1] == 512


def test_btree_insert_throughput(benchmark):
    """Zipf-stream inserts into one collection-sized B-tree."""
    vocab = ZipfVocabulary(size=5_000, seed=3)
    suffixes = [t.encode() for t in ZipfSampler(vocab, seed=4).sample_terms(30_000)]

    def build_tree():
        tree = BTree()
        insert = tree.insert
        for s in suffixes:
            insert(s)
        return tree

    tree = benchmark(build_tree)
    stats = tree.stats
    report(
        "table2_cache_stats",
        "\n".join(
            [
                f"terms inserted:      {len(tree)}",
                f"node visits:         {stats.node_visits}",
                f"key comparisons:     {stats.key_comparisons}",
                f"cache-resolved:      {stats.cache_resolved} "
                f"({stats.cache_hit_rate:.1%})",
                f"full string fetches: {stats.full_string_fetches}",
                f"tree height:         {tree.height()}",
            ]
        ),
    )
    assert stats.cache_hit_rate > 0.5
