"""The DES pipeline: Fig 9 structure and Table IV/VI outputs."""

from __future__ import annotations

import pytest

from repro.core.config import PlatformConfig
from repro.core.costs import StageCosts
from repro.core.pipeline import simulate_full_build, simulate_pipeline
from repro.core.workload import WorkloadModel


@pytest.fixture(scope="module")
def works():
    # A truncated ClueWeb-scale workload keeps the suite fast while
    # preserving both segments.
    model = WorkloadModel.paper_scale("clueweb09")
    all_works = model.files()
    return all_works[:80] + all_works[1190:1230]


class TestConfig:
    def test_defaults_match_paper_best(self):
        cfg = PlatformConfig()
        assert (cfg.num_parsers, cfg.num_cpu_indexers, cfg.num_gpus) == (6, 2, 2)
        assert cfg.thread_blocks_per_gpu == 480

    def test_core_oversubscription_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(num_parsers=7, num_cpu_indexers=2)

    def test_no_indexers_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(num_cpu_indexers=0, num_gpus=0)

    def test_with_(self):
        cfg = PlatformConfig().with_(num_parsers=3)
        assert cfg.num_parsers == 3
        assert cfg.num_cpu_indexers == 2

    def test_describe(self):
        assert "6 parsers" in PlatformConfig().describe()
        assert "no GPU" in PlatformConfig(num_gpus=0).describe()


class TestPipeline:
    def test_accounting_consistent(self, works):
        r = simulate_pipeline(works, PlatformConfig())
        assert r.num_files == len(works)
        assert len(r.per_file_indexing_s) == len(works)
        assert r.sum_of_three_s == pytest.approx(
            r.pre_total_s + r.indexing_total_s + r.post_total_s
        )
        assert r.indexer_finish_s >= r.sum_of_three_s
        assert r.indexer_wait_s >= 0
        assert r.pipeline_s == max(r.parser_finish_s, r.indexer_finish_s)

    def test_parsers_and_indexers_overlap(self, works):
        """Pipelining: wall time far below the serial sum of stages."""
        r = simulate_pipeline(works, PlatformConfig())
        parser_busy = sum(
            StageCosts().read_seconds(w)
            + StageCosts().decompress_seconds(w)
            + StageCosts().parse_seconds(w)
            for w in works
        )
        assert r.pipeline_s < parser_busy  # M parsers in parallel
        assert r.pipeline_s < parser_busy / 6 + r.indexer_finish_s

    def test_parse_only_mode(self, works):
        r = simulate_pipeline(works, PlatformConfig(), parse_only=True)
        assert r.indexer_finish_s == 0.0
        assert r.indexing_total_s == 0.0
        assert r.parser_finish_s > 0
        assert r.overall_throughput_mbps > 0

    def test_more_parsers_more_parse_throughput(self, works):
        t1 = simulate_pipeline(
            works, PlatformConfig(num_parsers=1), parse_only=True
        ).overall_throughput_mbps
        t4 = simulate_pipeline(
            works, PlatformConfig(num_parsers=4), parse_only=True
        ).overall_throughput_mbps
        assert t4 > 3.0 * t1  # near-linear below the disk limit

    def test_gpu_config_beats_cpu_only(self, works):
        cpu = simulate_pipeline(works, PlatformConfig(num_gpus=0))
        both = simulate_pipeline(works, PlatformConfig())
        assert both.indexing_total_s < cpu.indexing_total_s

    def test_per_file_throughput_series(self, works):
        r = simulate_pipeline(works, PlatformConfig())
        series = r.per_file_throughput_mbps()
        assert len(series) == len(works)
        assert all(v > 0 for v in series)

    def test_buffer_ordering_enforced(self, works):
        # The stage raises if files arrive out of order; a healthy run
        # must simply complete.
        r = simulate_pipeline(works, PlatformConfig(num_parsers=5, num_cpu_indexers=3))
        assert r.indexer_finish_s > 0

    def test_deterministic(self, works):
        a = simulate_pipeline(works, PlatformConfig())
        b = simulate_pipeline(works, PlatformConfig())
        assert a.pipeline_s == b.pipeline_s
        assert a.per_file_indexing_s == b.per_file_indexing_s


class TestFullBuild:
    def test_rows_present(self, works):
        b = simulate_full_build(works, PlatformConfig())
        assert b.sampling_s > 0
        assert b.dict_combine_s > 0
        assert b.dict_write_s > b.dict_combine_s  # write ≫ combine (Table VI)
        assert b.total_s > b.pipeline.pipeline_s
        assert b.throughput_mbps > 0
        assert b.total_terms > 0

