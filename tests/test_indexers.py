"""CPU and GPU indexers: functional equality and cost accounting."""

from __future__ import annotations

import pytest

from repro.dictionary.dictionary import Dictionary, DictionaryShard
from repro.dictionary.trie import TrieTable
from repro.indexers.cpu import CPUCostModel, CPUIndexer
from repro.indexers.gpu import GPUIndexer
from repro.parsing.parser import Parser


def _parse_batch(texts, regroup=True, trie=None):
    parser = Parser(strip_html=False, regroup=regroup, trie=trie)
    batch, _ = parser.parse_texts(texts)
    return batch, parser.trie


TEXTS = [
    "parallel indexers build inverted files quickly on heterogeneous platforms",
    "the indexers consume parsed streams while parsers produce them 1999 zé",
    "parallel parsing with trie collections groups terms for cache locality",
]


def _index_of(indexer, trie):
    """Materialize {term: [(doc, tf)]} from an indexer's state."""
    out = {}
    for cidx, tree in indexer.shard.trees.items():
        prefix = trie.prefix_for(cidx)
        for suffix, tid in tree.items():
            plist = indexer.accumulator.lists.get(tid)
            if plist:
                out[prefix + suffix.decode()] = plist.postings()
    return out


class TestCPUIndexer:
    def test_builds_correct_postings(self):
        batch, trie = _parse_batch(TEXTS)
        ix = CPUIndexer(0, DictionaryShard(trie))
        report = ix.index_batch(batch, doc_offset=0)
        assert report.tokens == batch.total_tokens
        assert report.documents >= len(TEXTS)
        index = _index_of(ix, trie)
        parallel = trie.split("parallel")
        assert index["parallel"] == [(0, 1), (2, 1)]

    def test_doc_offset_applied(self):
        batch, trie = _parse_batch(["solo document words here"])
        ix = CPUIndexer(0, DictionaryShard(trie))
        ix.index_batch(batch, doc_offset=100)
        for plist in ix.accumulator.lists.values():
            assert all(doc == 100 for doc, _ in plist.postings())

    def test_modeled_seconds_positive(self):
        batch, trie = _parse_batch(TEXTS)
        ix = CPUIndexer(0, DictionaryShard(trie))
        report = ix.index_batch(batch, 0)
        assert report.modeled_seconds > 0

    def test_ungrouped_matches_grouped_functionally(self):
        trie = TrieTable()
        grouped, _ = _parse_batch(TEXTS, regroup=True, trie=trie)
        ungrouped, _ = _parse_batch(TEXTS, regroup=False, trie=trie)
        a = CPUIndexer(0, DictionaryShard(trie, shard_id=0))
        b = CPUIndexer(1, DictionaryShard(trie, shard_id=1))
        ra = a.index_batch(grouped, 0)
        rb = b.index_batch(ungrouped, 0)
        assert _index_of(a, trie) == _index_of(b, trie)
        assert ra.tokens == rb.tokens
        assert ra.new_terms == rb.new_terms
        # The ablation's point: same work, far worse modeled locality.
        assert rb.modeled_seconds > ra.modeled_seconds

    def test_cost_model_cache_interpolation(self):
        cost = CPUCostModel()
        hot = cost.visit_cost(tree_bytes=1024)
        cold = cost.visit_cost(tree_bytes=1 << 30)
        assert hot == pytest.approx(cost.node_visit_hot_s)
        assert cold > hot
        assert cold <= cost.node_visit_cold_s


class TestGPUIndexer:
    def test_requires_regrouped_input(self):
        batch, trie = _parse_batch(TEXTS, regroup=False)
        gpu = GPUIndexer(0, DictionaryShard(trie))
        with pytest.raises(ValueError):
            gpu.index_batch(batch, 0)

    def test_matches_cpu_result(self):
        trie = TrieTable()
        batch, _ = _parse_batch(TEXTS, trie=trie)
        cpu = CPUIndexer(0, DictionaryShard(trie, shard_id=0))
        gpu = GPUIndexer(1, DictionaryShard(trie, shard_id=1))
        cpu.index_batch(batch, 0)
        gpu.index_batch(batch, 0)
        assert _index_of(cpu, trie) == _index_of(gpu, trie)

    def test_fast_and_warp_fidelity_identical(self):
        trie = TrieTable()
        batch, _ = _parse_batch(TEXTS, trie=trie)
        fast = GPUIndexer(0, DictionaryShard(trie, shard_id=0), fidelity="fast")
        warp = GPUIndexer(1, DictionaryShard(trie, shard_id=1), fidelity="warp")
        rf = fast.index_batch(batch, 0)
        rw = warp.index_batch(batch, 0)
        assert _index_of(fast, trie) == _index_of(warp, trie)
        # Same events → identical cycle charges in both fidelity modes.
        assert fast.warp_counters.node_loads == warp.warp_counters.node_loads
        assert fast.warp_counters.total_cycles == pytest.approx(
            warp.warp_counters.total_cycles
        )
        assert rf.report.btree.node_visits == rw.report.btree.node_visits

    def test_kernel_and_transfers_reported(self):
        batch, trie = _parse_batch(TEXTS)
        gpu = GPUIndexer(0, DictionaryShard(trie))
        out = gpu.index_batch(batch, 0)
        assert out.kernel is not None
        assert out.h2d_seconds > 0
        assert out.d2h_seconds > 0
        assert out.total_seconds >= out.kernel.elapsed_seconds
        assert len(out.work_items) == len(batch.collections)

    def test_invalid_fidelity(self):
        with pytest.raises(ValueError):
            GPUIndexer(0, DictionaryShard(TrieTable()), fidelity="fake")

    def test_ownership_respected(self):
        trie = TrieTable()
        batch, _ = _parse_batch(TEXTS, trie=trie)
        some_cidx = next(iter(batch.collections))
        gpu = GPUIndexer(0, DictionaryShard(trie, owned_collections={some_cidx}))
        out = gpu.index_batch(batch, 0)
        assert set(gpu.shard.trees) == {some_cidx}
        assert out.report.collections == 1


class TestDrain:
    def test_drain_between_runs(self):
        batch, trie = _parse_batch(TEXTS)
        ix = CPUIndexer(0, DictionaryShard(trie))
        ix.index_batch(batch, 0)
        first = ix.drain_postings()
        assert first
        assert not ix.accumulator.lists
        # Dictionary persists across runs; postings restart.
        batch2, _ = _parse_batch(["parallel again"], trie=trie)
        ix.index_batch(batch2, doc_offset=50)
        second = ix.drain_postings()
        tid = ix.shard.lookup("parallel")
        assert [d for d, _ in second[tid].postings()] == [50]
