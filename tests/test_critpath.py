"""Critical-path analysis: attribution, projection, schema, CLI.

The synthetic-span tests pin the causal model from
``repro.obs.critpath``'s docstring: engine waits are refined against
worker compute / supervisor recovery, the multiprocess run boundary's
drain transport is ring-wait (not flush), and blame always sums to the
path, which always covers the wall.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.cli import main
from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.obs.critpath import (
    PathEdge,
    _intersect,
    _subtract,
    _union,
    analyze_spans,
    build_critpath_payload,
    default_projections,
    parse_what_if,
    project,
    render_critpath_diff,
    render_critpath_report,
    summarize_for_bench,
)
from repro.obs.critpath_schema import (
    CRITPATH_FILENAME,
    CRITPATH_SCHEMA_VERSION,
    load_critpath,
    validate_critpath,
    write_critpath,
)
from repro.obs.schema import METRICS_FILENAME, TRACE_FILENAME
from repro.obs.trace import Span, load_chrome_trace
from repro.robustness.checkpoint import CHECKPOINT_FILENAME, MANIFEST_FILENAME


def S(name, lane, start, end, cat="x", **args):
    return Span(name=name, cat=cat, lane=lane, start_s=float(start),
                end_s=float(end), depth=0, parent=None, args=dict(args))


# ---------------------------------------------------------------------------
# Interval arithmetic


class TestIntervals:
    def test_union_merges_overlaps_and_drops_empties(self):
        assert _union([(3, 4), (0, 1), (0.5, 2), (5, 5)]) == [(0, 2), (3, 4)]

    def test_intersect(self):
        assert _intersect([(0, 4), (6, 8)], [(1, 2), (3, 7)]) == [
            (1, 2), (3, 4), (6, 7),
        ]

    def test_subtract(self):
        assert _subtract([(0, 10)], [(2, 3), (5, 7)]) == [
            (0, 2), (3, 5), (7, 10),
        ]
        assert _subtract([(0, 2)], [(0, 2)]) == []


# ---------------------------------------------------------------------------
# Attribution on synthetic traces


def _mp_spans():
    """A hand-built multiprocess build: wall 10s, every second accounted.

    parse.wait 0-2 (parser busy 0-1), dispatch 2-3 (pure transport),
    pipeline.wait 3-6 (indexer busy 3-5), write_run 6-9 with drain.wait
    6-8 (run-boundary transport), dict.write 9-10.
    """
    return [
        S("build", "engine", 0, 10),
        S("run_loop", "engine", 0, 10, backend="multiprocess"),
        S("parse.wait", "engine", 0, 2, cp="collect:0", cp_from="parse:0"),
        S("pipeline.dispatch", "engine", 2, 3, cp="dispatch:0"),
        S("pipeline.wait", "engine", 3, 6, cp="drain:0"),
        S("write_run", "engine", 6, 9, cp="flush:0"),
        S("drain.wait", "engine", 6, 8, cp="boundary:cpu-0"),
        S("dict.write", "engine", 9, 10),
        S("parse_file", "parser-0", 0, 1),
        S("index_batch", "cpu-0", 3, 5),
    ]


class TestAttribution:
    def test_blame_decomposition_on_a_multiprocess_build(self):
        cp = analyze_spans(_mp_spans())
        assert cp.backend == "multiprocess"
        assert cp.wall_seconds == pytest.approx(10.0)
        assert cp.path_seconds == pytest.approx(10.0)  # full coverage
        blame = cp.blame()
        assert blame["parse"] == pytest.approx(1.0)    # parse.wait overlap
        assert blame["index"] == pytest.approx(2.0)    # pipeline.wait overlap
        # 1s parse.wait tail + 1s dispatch + 1s pipeline.wait tail
        # + 2s run-boundary drain = pure transport.
        assert blame["ring-wait"] == pytest.approx(5.0)
        assert blame["flush"] == pytest.approx(1.0)
        assert blame["merge"] == pytest.approx(1.0)
        assert cp.top_resource() == "ring-wait"
        assert sum(blame.values()) == pytest.approx(cp.path_seconds)

    def test_run_drain_transport_is_ring_wait_not_flush(self):
        cp = analyze_spans(_mp_spans())
        drains = [e for e in cp.edges if e.detail == "run-drain"]
        assert len(drains) == 1 and drains[0].resource == "ring-wait"
        assert drains[0].seconds == pytest.approx(2.0)

    def test_same_waits_without_workers_are_stall_in_threaded(self):
        spans = [
            S("build", "engine", 0, 4),
            S("run_loop", "engine", 0, 4, backend="threaded"),
            S("parse.wait", "engine", 0, 2),
            S("pipeline.wait", "engine", 2, 4, reason="quiesce"),
        ]
        blame = analyze_spans(spans).blame()
        assert blame == {"stall": pytest.approx(4.0)}

    def test_supervisor_recovery_outranks_compute_overlap(self):
        spans = [
            S("build", "engine", 0, 4),
            S("run_loop", "engine", 0, 4, backend="multiprocess"),
            S("pipeline.wait", "engine", 0, 4),
            S("supervisor.recover", "engine", 0, 1, action="restart"),
            S("index_batch", "cpu-0", 0, 3),
        ]
        blame = analyze_spans(spans).blame()
        assert blame["supervisor"] == pytest.approx(1.0)
        assert blame["index"] == pytest.approx(2.0)
        assert blame["ring-wait"] == pytest.approx(1.0)

    def test_uninstrumented_gaps_fall_to_the_engine(self):
        spans = [
            S("build", "engine", 0, 5),
            S("parse", "engine", 1, 2, cp="parse:0"),
            S("index", "engine", 3, 4.5, cp="index:0"),
        ]
        cp = analyze_spans(spans, backend="serial")
        blame = cp.blame()
        assert blame["engine"] == pytest.approx(2.5)  # 0-1, 2-3, 4.5-5 gaps
        assert blame["parse"] == pytest.approx(1.0)
        assert blame["index"] == pytest.approx(1.5)
        assert cp.top_resource() == "index"  # ignores "engine"

    def test_edges_use_wired_cp_ids(self):
        cp = analyze_spans(_mp_spans())
        nodes = {e.dst for e in cp.edges} | {e.src for e in cp.edges}
        assert "collect:0" in nodes and "flush:0" in nodes

    def test_empty_trace_is_an_error(self):
        with pytest.raises(ValueError):
            analyze_spans([])


# ---------------------------------------------------------------------------
# What-if projection


class TestProjection:
    def test_zeroing_ring_wait_projects_the_serial_equivalent(self):
        cp = analyze_spans(_mp_spans())
        proj = project(cp, {"ring-wait": 0.0}, "ring-wait -> 0")
        assert proj.predicted_wall_s == pytest.approx(5.0)
        assert proj.speedup == pytest.approx(2.0)

    def test_lane_floor_caps_the_prediction(self):
        # Zeroing every wait cannot beat the busiest worker lane.
        cp = analyze_spans(_mp_spans())
        proj = project(
            cp,
            {"ring-wait": 0.0, "parse": 0.0, "flush": 0.0, "merge": 0.0},
            "all waits gone",
        )
        # path would be 2s (index), floor is cpu-0's 2s busy — equal here;
        # now scale index down too and the parser floor (1s) holds.
        assert proj.predicted_wall_s == pytest.approx(2.0)
        proj2 = project(
            cp,
            {"ring-wait": 0.0, "parse": 1.0, "flush": 0.0, "merge": 0.0,
             "index": 0.0},
            "index free",
        )
        assert proj2.predicted_wall_s == pytest.approx(1.0)

    def test_unknown_resource_is_rejected(self):
        cp = analyze_spans(_mp_spans())
        with pytest.raises(ValueError, match="unknown resource"):
            project(cp, {"gpu": 0.5}, "bad")

    def test_default_projections_lead_with_frame_batching(self):
        cp = analyze_spans(_mp_spans())
        projections = default_projections(cp)
        labels = [p.label for p in projections]
        assert "batch ring frames (-90% ring-wait)" in labels
        assert "ring-wait -> 0" in labels
        assert "engine -> 0" not in labels
        speedups = [p.speedup for p in projections]
        assert speedups == sorted(speedups, reverse=True)

    def test_parse_what_if(self):
        assert parse_what_if(["ring-wait=0", "index=0.5"]) == {
            "ring-wait": 0.0, "index": 0.5,
        }
        for bad in ("ring-wait", "gpu=1", "index=fast", "index=-1"):
            with pytest.raises(ValueError):
                parse_what_if([bad])


# ---------------------------------------------------------------------------
# Schema


class TestSchema:
    def payload(self):
        return build_critpath_payload(
            analyze_spans(_mp_spans()), meta={"collection": "synthetic"}
        )

    def test_payload_is_valid_and_round_trips(self, tmp_path):
        payload = self.payload()
        assert payload["schema"] == CRITPATH_SCHEMA_VERSION
        assert validate_critpath(payload) == []
        path = write_critpath(str(tmp_path / CRITPATH_FILENAME), payload)
        assert load_critpath(path) == json.loads(json.dumps(payload))

    @pytest.mark.parametrize(
        "mutate, needle",
        [
            (lambda p: p.pop("blame"), "missing required section"),
            (lambda p: p.update(extra=1), "unknown section"),
            (lambda p: p.update(schema="repro.run.critpath/2"), "!= supported"),
            (lambda p: p.update(schema="other/1"), "is not a"),
            (lambda p: p["blame"].update(gpu=1.0), "unknown resource"),
            (lambda p: p["blame"].update(engine=99.0), "blame sums to"),
            (lambda p: p["edges"][0].pop("src"), "missing key"),
            (lambda p: p["edges"][0].update(resource="gpu"), "unknown resource"),
            (lambda p: p["edges"][0].update(seconds=-1), "negative seconds"),
            (lambda p: p["lanes"].update({"cpu-0": -1}), "non-negative"),
            (lambda p: p["projections"][0].pop("label"), "empty 'label'"),
            (lambda p: p["projections"][0]["scales"].update(gpu=1),
             "unknown resource"),
            (lambda p: p["projections"][0].update(speedup=-2), "speedup"),
        ],
    )
    def test_validator_rejects_malformations(self, mutate, needle):
        payload = self.payload()
        mutate(payload)
        problems = validate_critpath(payload)
        assert problems and any(needle in p for p in problems), problems

    def test_write_refuses_invalid(self, tmp_path):
        payload = self.payload()
        payload["blame"]["engine"] = 1e9
        with pytest.raises(ValueError, match="refusing to write"):
            write_critpath(str(tmp_path / "x.json"), payload)
        assert not (tmp_path / "x.json").exists()


# ---------------------------------------------------------------------------
# Rendering


class TestRendering:
    def test_report_names_the_top_resource_and_ranks_projections(self):
        payload = build_critpath_payload(analyze_spans(_mp_spans()))
        metrics = {"counters": {"shm.ring.consumer_wait_s": 4.2,
                                "shm.ring.producer_wait_s": 0.3}}
        text = render_critpath_report(payload, metrics)
        assert "backend multiprocess" in text
        assert "top blame resource: ring-wait" in text
        assert "measured ring waits: consumer ~4.200s" in text
        assert "batch ring frames (-90% ring-wait)" in text
        assert "lane cpu-0" in text

    def test_diff_flags_the_slowest_growing_resource(self):
        old = build_critpath_payload(analyze_spans(_mp_spans()))
        spans = _mp_spans()
        grown = [
            S(s.name, s.lane, s.start_s, s.end_s + 3, **s.args)
            if s.name in ("build", "run_loop", "write_run") else s
            for s in spans
        ]
        new = build_critpath_payload(analyze_spans(grown))
        text = render_critpath_diff(old, new)
        assert "slowest-growing resource: flush" in text
        assert "backends multiprocess -> multiprocess" in text


# ---------------------------------------------------------------------------
# End-to-end: real builds, the CLI, and the bench block


@pytest.fixture(scope="module")
def built_index(tiny_collection, tmp_path_factory):
    out = str(tmp_path_factory.mktemp("critpath_idx") / "idx")
    IndexingEngine(PlatformConfig(sample_fraction=0.2)).build(
        tiny_collection, out
    )
    return out


class TestCli:
    def test_report_and_artifact(self, built_index, capsys):
        assert main(["critpath", built_index]) == 0
        text = capsys.readouterr().out
        assert "critical path: backend serial" in text
        payload = load_critpath(os.path.join(built_index, CRITPATH_FILENAME))
        assert payload["backend"] == "serial"
        assert payload["coverage"] == pytest.approx(1.0, abs=1e-6)
        assert payload["meta"]["index_dir"] == os.path.abspath(built_index)

    def test_what_if_flag(self, built_index, capsys):
        assert main(["critpath", built_index, "--no-write",
                     "--what-if", "index=0.5"]) == 0
        assert "what-if index=0.5" in capsys.readouterr().out

    def test_bad_what_if_is_a_usage_error(self, built_index, capsys):
        assert main(["critpath", built_index, "--what-if", "gpu=1"]) == 2
        assert "bad what-if spec" in capsys.readouterr().err

    def test_missing_target_and_missing_trace(self, tmp_path, capsys):
        assert main(["critpath"]) == 2
        empty = tmp_path / "no_trace"
        empty.mkdir()
        assert main(["critpath", str(empty)]) == 2
        capsys.readouterr()

    def test_diff_of_two_artifacts(self, built_index, tmp_path, capsys):
        assert main(["critpath", built_index]) == 0
        capsys.readouterr()
        assert main(["critpath", "--diff", built_index, built_index]) == 0
        out = capsys.readouterr().out
        assert "critpath diff" in out

    def test_chrome_overlay_adds_a_critical_path_lane(
            self, built_index, tmp_path, capsys):
        overlay = str(tmp_path / "overlay.json")
        assert main(["critpath", built_index, "--no-write",
                     "--chrome", overlay]) == 0
        capsys.readouterr()
        events = load_chrome_trace(overlay)
        names = {ev.get("args", {}).get("name") for ev in events
                 if ev.get("ph") == "M"}
        assert "critical-path" in names
        cp_events = [ev for ev in events if ev.get("cat") == "critpath"]
        assert cp_events
        original = load_chrome_trace(
            os.path.join(built_index, TRACE_FILENAME)
        )
        assert len(events) == len(original) + 1 + len(cp_events)


class TestBenchBlock:
    def test_summarize_for_bench_shape(self, built_index):
        block = summarize_for_bench(
            os.path.join(built_index, TRACE_FILENAME)
        )
        assert set(block) == {
            "backend", "wall_s", "path_s", "blame_s", "top_resource",
        }
        assert block["backend"] == "serial"
        assert 0 < block["path_s"] <= block["wall_s"] + 1e-9
        assert block["top_resource"] in block["blame_s"]


# ---------------------------------------------------------------------------
# The instrumentation must not change the index


_BUILD_LOGS = {MANIFEST_FILENAME, CHECKPOINT_FILENAME,
               METRICS_FILENAME, TRACE_FILENAME, CRITPATH_FILENAME}


def _digest(out_dir: str) -> str:
    h = hashlib.sha256()
    for name in sorted(os.listdir(out_dir)):
        if name in _BUILD_LOGS or os.path.isdir(os.path.join(out_dir, name)):
            continue
        h.update(name.encode())
        with open(os.path.join(out_dir, name), "rb") as fh:
            h.update(fh.read())
    return h.hexdigest()


class TestByteIdentity:
    @pytest.mark.parametrize("backend", ["serial", "multiprocess"])
    def test_telemetry_toggle_leaves_the_index_bytes_alone(
            self, backend, tiny_collection, tmp_path):
        digests = []
        for telemetry in (True, False):
            out = str(tmp_path / f"{backend}_{telemetry}")
            cfg = PlatformConfig(
                exec_backend=backend, telemetry=telemetry,
                num_parsers=2, num_cpu_indexers=1, num_gpus=1,
                sample_fraction=0.2, files_per_run=2,
            )
            IndexingEngine(cfg).build(tiny_collection, out)
            digests.append(_digest(out))
        assert digests[0] == digests[1]
