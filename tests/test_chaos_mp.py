"""Chaos tests for the multiprocess backend: crash, stall, poison, leaks.

Each scenario injects a process-level fault (``worker_crash`` SIGKILLs
the worker from inside, ``worker_stall`` wedges it past the heartbeat
timeout), then asserts the core robustness contract: the build completes
**byte-identical to a serial build**, ``repro verify`` passes, the
supervisor's account of events lands in ``run.metrics.json``, and no
shared-memory segment outlives the build.
"""

from __future__ import annotations

import hashlib
import os

import pytest

from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.core.shm_ring import SHM_PREFIX, ShmRing, list_repro_segments
from repro.obs.profile_schema import PROFILE_FILENAME
from repro.obs.schema import METRICS_FILENAME, TRACE_FILENAME, load_metrics
from repro.robustness.checkpoint import CHECKPOINT_FILENAME, MANIFEST_FILENAME
from repro.robustness.faults import FaultPlan, FaultSpec, inject
from repro.robustness.supervise import SupervisorPolicy
from repro.robustness.verify import verify_index

pytestmark = pytest.mark.chaos

_BUILD_LOGS = {MANIFEST_FILENAME, CHECKPOINT_FILENAME,
               METRICS_FILENAME, TRACE_FILENAME, PROFILE_FILENAME}

#: Tight supervision so stall detection fits in test time.
_POLICY = SupervisorPolicy(heartbeat_timeout_s=0.4, supervise_interval_s=0.05)


def _cfg(**overrides) -> PlatformConfig:
    defaults = dict(
        num_parsers=3, num_cpu_indexers=2, num_gpus=2,
        sample_fraction=0.2, files_per_run=2, pipeline_depth=0,
        exec_backend="multiprocess", supervisor=_POLICY,
    )
    defaults.update(overrides)
    return PlatformConfig(**defaults)


def _digest(out_dir: str) -> str:
    h = hashlib.sha256()
    for name in sorted(os.listdir(out_dir)):
        if name in _BUILD_LOGS or os.path.isdir(os.path.join(out_dir, name)):
            continue
        h.update(name.encode())
        with open(os.path.join(out_dir, name), "rb") as fh:
            h.update(fh.read())
    return h.hexdigest()


@pytest.fixture(scope="module")
def serial_reference(tiny_collection, tmp_path_factory):
    out = str(tmp_path_factory.mktemp("chaos_ref") / "idx")
    IndexingEngine(_cfg(exec_backend="serial")).build(tiny_collection, out)
    return out


def _chaos_build(spec: FaultSpec, tiny_collection, out: str):
    with inject(FaultPlan(seed=11, specs=(spec,))):
        return IndexingEngine(_cfg()).build(tiny_collection, out)


def _assert_recovered(out: str, serial_reference: str) -> dict:
    assert _digest(out) == _digest(serial_reference)
    assert verify_index(out).ok
    assert list_repro_segments() == []
    return load_metrics(os.path.join(out, METRICS_FILENAME))["counters"]


class TestWorkerCrash:
    def test_sigkilled_indexer_is_restarted_and_replayed(
            self, tiny_collection, serial_reference, tmp_path):
        out = str(tmp_path / "idx")
        result = _chaos_build(
            FaultSpec(kind="worker_crash", worker="cpu-0",
                      path_substring="file_00001", stage="build"),
            tiny_collection, out,
        )
        sup = result.supervisor
        assert sup.restarts == 1
        assert sup.requeued >= 1
        assert [f.kind for f in sup.failures] == ["crash"]
        assert [f.action for f in sup.failures] == ["restart"]
        counters = _assert_recovered(out, serial_reference)
        assert counters["supervisor.restarts"] == 1
        assert counters["supervisor.requeued"] >= 1

    def test_sigkilled_gpu_worker_recovers(self, tiny_collection,
                                           serial_reference, tmp_path):
        out = str(tmp_path / "idx")
        result = _chaos_build(
            FaultSpec(kind="worker_crash", worker="gpu-1",
                      path_substring="file_00002", stage="build"),
            tiny_collection, out,
        )
        assert result.supervisor.restarts == 1
        _assert_recovered(out, serial_reference)

    def test_sigkilled_parser_requeues_its_files(self, tiny_collection,
                                                 serial_reference, tmp_path):
        out = str(tmp_path / "idx")
        result = _chaos_build(
            FaultSpec(kind="worker_crash", worker="parser-0",
                      path_substring="file_00003", stage="build"),
            tiny_collection, out,
        )
        sup = result.supervisor
        assert sup.restarts == 1
        assert sup.failures[0].worker == "parser-0"
        _assert_recovered(out, serial_reference)


class TestWorkerStall:
    def test_stalled_parser_trips_heartbeat_and_restarts(
            self, tiny_collection, serial_reference, tmp_path):
        out = str(tmp_path / "idx")
        result = _chaos_build(
            FaultSpec(kind="worker_stall", worker="parser-1", delay_s=1.5,
                      path_substring="file_00001", stage="build"),
            tiny_collection, out,
        )
        sup = result.supervisor
        assert sup.heartbeat_misses == 1
        assert [f.kind for f in sup.failures] == ["stall"]
        counters = _assert_recovered(out, serial_reference)
        assert counters["supervisor.heartbeat_misses"] == 1

    def test_short_stall_under_timeout_is_not_a_failure(
            self, tiny_collection, serial_reference, tmp_path):
        out = str(tmp_path / "idx")
        result = _chaos_build(
            FaultSpec(kind="worker_stall", worker="cpu-1", delay_s=0.05,
                      path_substring="file_00002", stage="build"),
            tiny_collection, out,
        )
        assert result.supervisor.clean
        _assert_recovered(out, serial_reference)


class TestPoison:
    def test_repeat_killer_task_degrades_the_slot(
            self, tiny_collection, serial_reference, tmp_path):
        """A sub-batch that kills every incarnation must not loop forever:
        after ``poison_threshold`` kills the slot finishes inline."""
        out = str(tmp_path / "idx")
        result = _chaos_build(
            FaultSpec(kind="worker_crash", worker="cpu-1",
                      path_substring="file_00004", stage="build", times=3),
            tiny_collection, out,
        )
        sup = result.supervisor
        assert sup.poisoned == 1
        assert sup.degraded == 1
        assert sup.degraded_slots == ["cpu-1"]
        assert any(f.action == "degrade" for f in sup.failures)
        counters = _assert_recovered(out, serial_reference)
        assert counters["supervisor.degraded"] == 1
        assert counters["supervisor.poisoned"] == 1

    def test_restart_budget_exhaustion_degrades(
            self, tiny_collection, serial_reference, tmp_path):
        """Crashes on *different* tasks exhaust the per-slot budget."""
        out = str(tmp_path / "idx")
        plan = FaultPlan(seed=11, specs=(
            FaultSpec(kind="worker_crash", worker="cpu-0",
                      path_substring="file_00000", stage="build"),
            FaultSpec(kind="worker_crash", worker="cpu-0",
                      path_substring="file_00002", stage="build", times=2),
            FaultSpec(kind="worker_crash", worker="cpu-0",
                      path_substring="file_00004", stage="build", times=3),
        ))
        with inject(plan):
            result = IndexingEngine(
                _cfg(supervisor=SupervisorPolicy(
                    max_restarts=2,
                    heartbeat_timeout_s=_POLICY.heartbeat_timeout_s,
                    supervise_interval_s=_POLICY.supervise_interval_s,
                ))
            ).build(tiny_collection, out)
        sup = result.supervisor
        assert sup.restarts == 2
        assert sup.degraded == 1
        _assert_recovered(out, serial_reference)


class TestRingSanitizer:
    """``REPRO_SANITIZE=ring`` must be invisible except in counters.

    The sanitizer stamps a (sequence, crc32) trailer inside every ring
    frame and strips it on receipt (see ``repro.core.shm_san``); a
    sanitized build therefore has to stay byte-identical to the serial
    reference while ``run.metrics.json`` proves the checks actually ran
    and found nothing.
    """

    _ERROR_COUNTERS = ("shm_san.seq_errors", "shm_san.crc_errors",
                       "shm_san.use_after_unlink",
                       "shm_san.overlapping_writes")

    def test_sanitized_build_is_byte_identical(
            self, tiny_collection, serial_reference, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "ring")
        out = str(tmp_path / "idx")
        result = IndexingEngine(_cfg()).build(tiny_collection, out)
        assert result.supervisor.clean
        counters = _assert_recovered(out, serial_reference)
        assert counters["shm_san.frames_stamped"] > 0
        assert counters["shm_san.frames_verified"] > 0
        for key in self._ERROR_COUNTERS:
            assert counters.get(key, 0) == 0, key

    def test_sanitizer_survives_worker_crash(
            self, tiny_collection, serial_reference, tmp_path, monkeypatch):
        """Ring recreation on restart resets the frame numbering on both
        sides, so replay must not read as a sequence error."""
        monkeypatch.setenv("REPRO_SANITIZE", "ring")
        out = str(tmp_path / "idx")
        result = _chaos_build(
            FaultSpec(kind="worker_crash", worker="cpu-0",
                      path_substring="file_00001", stage="build"),
            tiny_collection, out,
        )
        assert result.supervisor.restarts == 1
        counters = _assert_recovered(out, serial_reference)
        assert counters["shm_san.frames_stamped"] > 0
        for key in self._ERROR_COUNTERS:
            assert counters.get(key, 0) == 0, key

    def test_unsanitized_build_has_no_sanitizer_counters(
            self, tiny_collection, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        out = str(tmp_path / "idx")
        IndexingEngine(_cfg()).build(tiny_collection, out)
        counters = load_metrics(os.path.join(out, METRICS_FILENAME))["counters"]
        assert not [k for k in counters if k.startswith("shm_san.")]


class TestShmLeaks:
    def test_no_segments_after_crashy_build(self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx")
        _chaos_build(
            FaultSpec(kind="worker_crash", worker="cpu-0",
                      path_substring="file_00001", stage="build"),
            tiny_collection, out,
        )
        assert list_repro_segments() == []

    def test_backend_close_is_reentrant_after_abort(self, tiny_collection,
                                                    tmp_path):
        """A build-fatal fault mid-run still reclaims every segment."""
        from repro.robustness.errors import FatalFault

        out = str(tmp_path / "idx")
        plan = FaultPlan(seed=5, specs=(
            FaultSpec(kind="fatal", path_substring="file_00002",
                      stage="build"),
        ))
        with inject(plan):
            with pytest.raises(FatalFault):
                IndexingEngine(_cfg()).build(tiny_collection, out)
        assert list_repro_segments() == []

    def test_verify_check_shm_flags_orphans(self, tiny_collection,
                                            serial_reference, capsys):
        """``repro verify --check-shm`` fails on a dead-pid segment and
        passes once it is gone."""
        from multiprocessing import shared_memory

        from repro.cli import main

        assert main([
            "verify", serial_reference, "--check-shm"
        ]) == 0
        fake = f"{SHM_PREFIX}_999999999_0_ghost"
        seg = shared_memory.SharedMemory(name=fake, create=True, size=64)
        try:
            assert main([
                "verify", serial_reference, "--check-shm"
            ]) == 1
            err = capsys.readouterr().err
            assert "ghost" in err
        finally:
            seg.close()
            seg.unlink()
        assert main(["verify", serial_reference, "--check-shm"]) == 0

    def test_orphans_do_not_fail_verify_without_flag(self, serial_reference):
        from multiprocessing import shared_memory

        from repro.cli import main

        fake = f"{SHM_PREFIX}_999999999_1_ghost2"
        seg = shared_memory.SharedMemory(name=fake, create=True, size=64)
        try:
            assert main(["verify", serial_reference]) == 0
        finally:
            seg.close()
            seg.unlink()


class TestProfileUnderChaos:
    def test_profile_survives_worker_crash_mid_build(
            self, tiny_collection, serial_reference, tmp_path):
        """A SIGKILLed worker takes its unsent samples with it, but the
        merged artifact must stay schema-valid and the build recovered —
        profile deltas ride every reply, so loss is bounded by one task
        and the restarted incarnation's pid joins the same lane."""
        from repro.obs.profile_schema import load_profile

        out = str(tmp_path / "idx")
        with inject(FaultPlan(seed=11, specs=(
                FaultSpec(kind="worker_crash", worker="cpu-0",
                          path_substring="file_00001", stage="build"),))):
            result = IndexingEngine(
                _cfg(profile=True, profile_interval_s=0.002)
            ).build(tiny_collection, out)
        assert result.supervisor.restarts >= 1
        _assert_recovered(out, serial_reference)
        payload = load_profile(os.path.join(out, PROFILE_FILENAME))
        assert "engine" in payload["lanes"]
        for lane, entry in payload["lanes"].items():
            assert entry["samples"] >= 0, lane
