"""Report builders: shapes and the headline qualitative claims."""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    ablation_block_sweep,
    fig10_parser_sweep,
    fig11_per_file_series,
    fig12_comparison,
)
from repro.analysis.tables import (
    TABLE4_PAPER,
    table1_trie_categories,
    table2_node_layout,
    table4_indexer_configs,
    table5_work_split,
    table7_platforms,
)
from repro.core.workload import WorkloadModel
from repro.gpusim.kernel import WorkItem


@pytest.fixture(scope="module")
def works():
    model = WorkloadModel.paper_scale("clueweb09")
    all_works = model.files()
    # Subsample for speed but keep both segments and total mass shape.
    return all_works[::10]


class TestTables:
    def test_table1_shape(self):
        headers, rows = table1_trie_categories()
        assert len(rows) == 4
        total_entries = sum(r[2] for r in rows)
        assert total_entries == 17613

    def test_table1_with_distribution(self):
        headers, rows = table1_trie_categories(sampled_tokens={11: 50, 40: 50})
        assert "Token share" in headers
        assert rows[2][-1] == "50.0%"

    def test_table2_matches_paper(self):
        _, rows = table2_node_layout()
        for name, ours, paper in rows:
            assert ours == paper, name

    def test_table4_rows(self, works):
        headers, rows = table4_indexer_configs(works)
        assert len(headers) == 5
        labels = [r[0] for r in rows]
        assert "Indexing Throughput (MB/s)" in labels
        assert len(rows) == 2 * len(TABLE4_PAPER)  # ours + paper per metric

    def test_table5_ratios(self):
        from repro.core.engine import WorkSplit

        split = WorkSplit(
            cpu_tokens=100, gpu_tokens=80, cpu_terms=10, gpu_terms=30,
            cpu_characters=50, gpu_characters=100,
        )
        _, rows = table5_work_split(split)
        assert rows[0][3] == "0.80"
        assert rows[1][3] == "3.00"

    def test_table7(self):
        _, rows = table7_platforms()
        assert [r[0] for r in rows] == [
            "This paper", "Ivory MapReduce", "Single-Pass MapReduce",
        ]
        assert rows[1][1] == 99 and rows[2][1] == 8


class TestFig10:
    def test_shape_and_claims(self, works):
        series = fig10_parser_sweep(works)
        no_gpu = series["M parsers + (8-M) CPU indexers"]
        with_gpu = series["M parsers + CPU + 2 GPU indexers"]
        parse_only = series["M parsers only"]
        # Near-linear scaling for M=1..5 in every scenario.
        for s in (no_gpu, with_gpu, parse_only):
            for m in range(1, 5):
                assert s[m] / s[0] == pytest.approx(m + 1, rel=0.12)
        # Without GPUs the best is 5 parsers (the paper's 5:3 ratio)...
        assert max(range(7), key=lambda i: no_gpu[i]) == 4
        # ...with GPUs six parsers win and seven regress.
        assert max(range(7), key=lambda i: with_gpu[i]) == 5
        assert with_gpu[6] < with_gpu[5]
        # GPUs only matter once CPU indexers become the bottleneck.
        assert with_gpu[5] > no_gpu[5]


class TestFig11:
    def test_decline_and_cliff(self):
        out = fig11_per_file_series(sample_points=12)
        combined = out["2 CPU + 2 GPU indexers"]
        points = out["file_index"]
        boundary = out["segment_boundary"]
        assert boundary == 1200
        # Sharp decrease near the beginning, then flattening.
        assert combined[0] > combined[2] > combined[4]
        early_drop = combined[0] - combined[2]
        late_drop = abs(combined[4] - combined[6])
        assert early_drop > late_drop
        # The Wikipedia cliff hits the combined configuration hardest.
        assert out["2 CPU + 2 GPU indexers drop"] < out["2 CPU indexers drop"] < 1.0


class TestFig12:
    def test_ordering(self):
        bars = {b.system: b for b in fig12_comparison()}
        ours_gpu = bars["This paper (2 CPU + 2 GPU)"].throughput_mbps
        ours_cpu = bars["This paper (no GPUs)"].throughput_mbps
        ivory = bars["Ivory MapReduce"].throughput_mbps
        spmr = bars["Single-Pass MapReduce"].throughput_mbps
        assert ours_gpu > ours_cpu > ivory > spmr
        # Per-core the single node is an order of magnitude ahead.
        assert bars["This paper (2 CPU + 2 GPU)"].mbps_per_core > 10 * bars[
            "Ivory MapReduce"
        ].mbps_per_core


class TestBlockSweep:
    def test_u_shape(self):
        items = [
            WorkItem(key=i, compute_cycles=2e4, memory_stall_cycles=4e5)
            for i in range(3000)
        ]
        sweep = ablation_block_sweep(items)
        assert sweep[480] < sweep[30]
        assert sweep[480] < sweep[1920]
