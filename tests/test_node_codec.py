"""The binary Table II node layout and device-image search."""

from __future__ import annotations

import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dictionary.btree import BTree
from repro.dictionary.node_codec import (
    NULL_POINTER,
    DeviceTreeImage,
    _offsets,
    pack_node,
    unpack_node,
)
from repro.gpusim.memory import SharedMemory

suffixes = st.binary(min_size=0, max_size=10).filter(lambda b: 0 not in b)


class TestFieldOffsets:
    def test_table2_offsets_for_degree_16(self):
        off = _offsets(16)
        assert off["valid_term_number"] == 0
        assert off["term_string_pointers"] == 4
        assert off["leaf_indicator"] == 128
        assert off["postings_pointers"] == 132
        assert off["child_pointers"] == 256
        assert off["string_caches"] == 384
        assert off["padding"] == 508
        assert off["total"] == 512


class TestPackUnpack:
    def _leaf_with(self, words):
        tree = BTree()
        for w in words:
            tree.insert(w)
        assert tree.root.leaf
        return tree

    def test_round_trip_leaf(self):
        tree = self._leaf_with([b"alpha", b"beta", b"zz"])
        raw = pack_node(tree.root, [], 16)
        assert len(raw) == 512
        node = unpack_node(raw, 16)
        assert node.nkeys == 3
        assert node.leaf
        assert node.string_ptrs == tree.root.string_ptrs
        assert node.postings_ptrs == tree.root.postings_ptrs
        assert node.caches == tree.root.caches

    def test_unused_slots_are_null(self):
        tree = self._leaf_with([b"only"])
        raw = pack_node(tree.root, [], 16)
        off = _offsets(16)
        # Slot 30's string pointer must be the null sentinel.
        (val,) = struct.unpack_from("<I", raw, off["term_string_pointers"] + 4 * 30)
        assert val == NULL_POINTER

    def test_internal_node_child_ids(self):
        tree = BTree(degree=2)
        for i in range(10):
            tree.insert(f"{i:02d}".encode())
        assert not tree.root.leaf
        child_ids = list(range(1, len(tree.root.children) + 1))
        raw = pack_node(tree.root, child_ids, 2)
        node = unpack_node(raw, 2)
        assert not node.leaf
        assert node.child_ids == child_ids

    def test_oversized_pointer_rejected(self):
        tree = self._leaf_with([b"x"])
        tree.root.string_ptrs[0] = 1 << 33
        with pytest.raises(ValueError):
            pack_node(tree.root, [], 16)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            unpack_node(b"\x00" * 100, 16)

    def test_corrupt_key_count_rejected(self):
        raw = bytearray(512)
        struct.pack_into("<I", raw, 0, 99)
        with pytest.raises(ValueError):
            unpack_node(bytes(raw), 16)


class TestDeviceImage:
    def _tree(self, n=500, seed=0):
        rng = random.Random(seed)
        tree = BTree()
        words = {
            bytes(rng.choices(range(97, 123), k=rng.randint(1, 9))) for _ in range(n)
        }
        for w in words:
            tree.insert(w)
        return tree, words

    def test_image_dimensions(self):
        tree, _ = self._tree()
        image = DeviceTreeImage.build(tree)
        assert image.node_count == tree.node_count
        assert len(image.nodes) == tree.node_count * 512
        assert image.heap == tree.store.raw_bytes()

    def test_byte_search_equals_object_search(self):
        tree, words = self._tree()
        image = DeviceTreeImage.build(tree)
        for w in list(words)[:200]:
            assert image.search(w) == tree.search(w)
        assert image.search(b"absent-term") is None
        assert image.search(b"") == tree.search(b"")

    def test_search_through_shared_memory(self):
        tree, words = self._tree(200, seed=3)
        image = DeviceTreeImage.build(tree)
        shared = SharedMemory()
        for w in list(words)[:50]:
            assert image.search(w, shared=shared) == tree.search(w)
        # Every node visit staged one access pattern through shared memory.
        assert shared.allocated == 512

    def test_heap_string_dereference(self):
        tree = BTree()
        tree.insert(b"lication")
        image = DeviceTreeImage.build(tree)
        ptr = tree.root.string_ptrs[0]
        assert image.heap_string(ptr) == b"lication"

    def test_node_bytes_bounds(self):
        tree, _ = self._tree(10)
        image = DeviceTreeImage.build(tree)
        with pytest.raises(IndexError):
            image.node_bytes(image.node_count)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(suffixes, min_size=1, max_size=150))
    def test_image_search_random_trees(self, words):
        tree = BTree()
        ids = {}
        for w in words:
            ids[w], _ = tree.insert(w)
        image = DeviceTreeImage.build(tree)
        for w, tid in ids.items():
            assert image.search(w) == tid


class TestIdRemap:
    def test_engine_shard_tree_needs_remap(self, tiny_collection, tmp_path):
        """GPU shard term ids exceed u32; the remapped image still works."""
        from repro.core.config import PlatformConfig
        from repro.core.engine import IndexingEngine

        out = str(tmp_path / "idx")
        result = IndexingEngine(
            PlatformConfig(num_parsers=2, num_cpu_indexers=0, num_gpus=1,
                           sample_fraction=0.3)
        ).build(tiny_collection, out)
        # Grab the biggest tree of the (only) GPU shard via the combined
        # dictionary the engine returns.
        tree = max(result.dictionary.trees.values(), key=len)
        with pytest.raises(ValueError):
            DeviceTreeImage.build(tree)  # shard ids don't fit u32
        image = DeviceTreeImage.build(tree, remap_ids=True)
        for suffix, term_id in list(tree.items())[:50]:
            device_ptr = image.search(suffix)
            assert device_ptr is not None
            assert image.term_id_of(device_ptr) == term_id
        # The tree itself is untouched by the packing.
        tree.check_invariants()

    def test_remap_without_need_is_identity_compatible(self):
        tree = BTree()
        ids = {w: tree.insert(w)[0] for w in [b"aa", b"bb", b"cc"]}
        image = DeviceTreeImage.build(tree, remap_ids=True)
        for w, tid in ids.items():
            assert image.term_id_of(image.search(w)) == tid
        plain = DeviceTreeImage.build(tree)
        assert plain.term_id_of(plain.search(b"aa")) == ids[b"aa"]
