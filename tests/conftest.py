"""Shared fixtures: tiny deterministic collections and reference indexes.

The engine/baseline integration tests need real on-disk collections; a
session-scoped tiny corpus keeps the whole suite fast while exercising
every code path (HTML stripping, gzip containers, multi-file ordering,
the Wikipedia-segment shift).
"""

from __future__ import annotations

import pytest

from repro.corpus.synthetic import CollectionSpec, SegmentSpec, generate_collection


def _tiny_spec(name: str, seed: int, html: bool = True) -> CollectionSpec:
    return CollectionSpec(
        name=name,
        seed=seed,
        segments=(
            SegmentSpec(
                name="main",
                num_files=4,
                docs_per_file=10,
                tokens_per_doc_mean=60,
                vocab_size=3000,
                zipf_s=1.0,
                html=html,
            ),
            SegmentSpec(
                name="tail",
                num_files=2,
                docs_per_file=8,
                tokens_per_doc_mean=50,
                vocab_size=1500,
                zipf_s=0.9,
                html=html,
            ),
        ),
    )


@pytest.fixture(scope="session")
def tiny_collection(tmp_path_factory):
    """A 6-file, 56-document collection with two segments."""
    root = tmp_path_factory.mktemp("corpus")
    return generate_collection(_tiny_spec("tiny", seed=7), str(root))


@pytest.fixture(scope="session")
def tiny_text_collection(tmp_path_factory):
    """Pure-text variant (no HTML), for strip_html=False paths."""
    root = tmp_path_factory.mktemp("corpus_text")
    return generate_collection(_tiny_spec("tiny_text", seed=8, html=False), str(root))


@pytest.fixture(scope="session")
def reference_index(tiny_collection):
    """Ground-truth ``{term: [(doc, tf), ...]}`` built naively."""
    from repro.baselines.common import count_tf, parsed_documents

    index: dict[str, list[tuple[int, int]]] = {}
    for doc_id, terms in parsed_documents(tiny_collection):
        for term, tf in count_tf(terms).items():
            index.setdefault(term, []).append((doc_id, tf))
    return index
