"""RPR008 fixture: benchmark-style timeit clocks outside the harness.

Models the clock misuse a ``benchmarks/bench_*.py`` script would commit:
timing must flow through the ``repro bench`` harness / util/timing.py,
not a private ``timeit.default_timer`` read.
"""

import timeit

from timeit import default_timer  # noqa: F401


def measure():
    """Direct bench-clock call."""
    start = timeit.default_timer()
    return timeit.default_timer() - start


def injected(clock=timeit.default_timer):
    """Passing the timer as a callable is dependency injection — ok."""
    return clock


def quiet():
    """Same violation, suppressed."""
    return timeit.default_timer()  # repro-lint: disable=RPR008 - fixture: suppression check
