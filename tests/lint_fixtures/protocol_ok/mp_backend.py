"""Passing conformance fixture: journal-write happens-before ring-send.

The vetted negative for RPR121, shaped like the real
``core/mp_backend.py`` dispatch path.  Parsed by ``repro lint``, never
imported.
"""


class GoodEngine:
    def _dispatch(self, slot, task):
        slot.journal.append(task)        # record first ...
        self._put(slot, task.to_frame()) # ... then send

    def _top_up(self, slot, task):
        slot.outstanding.append(task)
        self._put(slot, task.to_frame())
