"""Passing conformance fixture: the modeled ring order, reduced to bones.

The vetted negative for RPR120/RPR122/RPR123 — copy-then-publish,
single-writer monotonic heartbeats, and registry hygiene, shaped like
the real ``core/shm_ring.py``.  Parsed by ``repro lint``, never
imported.
"""

_TAIL_OFF = 0
_HEAD_OFF = 8
_PROD_HB_OFF = 16
_CONS_HB_OFF = 24


class GoodRing:
    def put_frame(self, payload):
        tail = self._load(_TAIL_OFF)
        self._buf[0:len(payload)] = payload
        self._store(_TAIL_OFF, tail + len(payload))  # publish *after* the copy

    def get_frame(self):
        head = self._load(_HEAD_OFF)
        data = bytes(self._buf[0:4])
        self._store(_HEAD_OFF, head + 4)             # free *after* the copy-out
        return data

    def beat(self, role):
        off = _PROD_HB_OFF if role == "producer" else _CONS_HB_OFF
        self._store(off, self._load(off) + 1)

    def attach(self, name):
        self._shm = SharedMemory(name=name)
        _untrack(name)
        return self

    def unlink(self):
        _forget_created(self._name)
        _retrack(self._name)
        self._shm.unlink()

    def create(self, name, capacity):
        self._shm = SharedMemory(name, create=True, size=capacity)
        _register_created(name)
        return self
