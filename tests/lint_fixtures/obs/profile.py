"""RPR008 negative fixture: the same clock reads, inside the carve-out.

This file sits under an ``obs/`` path component and is literally named
``obs/profile.py`` — both halves of the RPR008 exemption — so the exact
reads flagged in ``rpr008_profile.py`` must produce zero findings here.
A sampling profiler *is* a clock consumer; fencing it out of the rule
is the point of the carve-out.
"""

import time

from time import monotonic  # noqa: F401


def tick_anchor():
    """Sampler tick anchored on a direct monotonic read — exempt."""
    return time.monotonic()


def sample_stamp():
    """Per-sample timestamp from a raw perf counter — exempt."""
    return time.perf_counter()
