"""Passing fixture for RPR112: every create is dominated by a release.

Parsed by ``repro lint``, never imported.
"""


def roundtrip(capacity):
    ring = ShmRing.create("repro_mp_a", capacity)
    try:
        return ring.name()
    finally:
        ring.close()
        ring.unlink()


class Engine:
    def open_rings(self, capacity):
        self._ring = ShmRing.create("repro_mp_b", capacity)

    def shutdown(self):
        self._ring.unlink()
