"""Passing fixture for RPR111: the WorkerSpec pattern, cross-module.

The spawn target and the spec class live in ``worker_like.py`` — the
project model must resolve both through the import edge and conclude
that only plain data crosses the boundary (a ``.spec()`` descriptor
call on a live ring is data, not the ring).  Parsed, never imported.
"""

from multiprocessing import Process

from worker_like import WorkerSpec, worker_main


def launch(key, ring):
    spec = WorkerSpec(key, 4, ring.spec())
    proc = Process(target=worker_main, args=(spec,), daemon=True)
    proc.start()
    return proc
