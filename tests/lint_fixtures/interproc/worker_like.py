"""Companion module for the RPR111 vetted negative: a plain-data spec
and a module-level entry, imported by ``rpr111_forkok.py`` so the
cross-module resolution path is exercised.  Parsed, never imported.
"""


class WorkerSpec:
    def __init__(self, key, shards, ring_name):
        self.key = key
        self.shards = shards
        self.ring_name = ring_name


def worker_main(spec):
    return spec.key
