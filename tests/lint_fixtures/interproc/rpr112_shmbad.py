"""Failing fixture for RPR112: created segments with no release path.

Parsed by ``repro lint``, never imported.
"""


def leak(capacity):
    ring = ShmRing.create("repro_mp_demo", capacity)     # RPR112: never released
    return ring.name()


class Pool:
    def grow(self):
        self._spare = ShmRing.create("repro_mp_spare", 1024)  # RPR112: no release


def dropped(capacity):
    ShmRing.create("repro_mp_tmp", capacity)             # RPR112: result discarded


def vetted_twin(capacity):
    orphan = ShmRing.create("repro_mp_twin", capacity)  # repro-lint: disable=RPR112 - fixture twin
    return orphan
