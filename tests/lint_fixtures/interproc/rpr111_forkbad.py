"""Failing fixture for RPR111: parent-only values crossing the fork.

Parsed by ``repro lint``, never imported.
"""

import threading
from multiprocessing import Process


def spin(guard):
    with guard:
        pass


def leaky_closure():
    log = open("/tmp/pump.log", "a")

    def worker():
        log.write("hi from the child\n")

    Process(target=worker).start()                  # RPR111: captured handle


def lock_through_args():
    guard = threading.Lock()
    Process(target=spin, args=(guard,)).start()     # RPR111: lock across fork


class Pump:
    def __init__(self):
        self._lock = threading.Lock()

    def start(self):
        Process(target=self._run).start()           # RPR111: bound method

    def _run(self):
        with self._lock:
            pass


def vetted_twin():
    guard = threading.Lock()
    Process(target=spin, args=(guard,)).start()  # repro-lint: disable=RPR111 - fixture twin
