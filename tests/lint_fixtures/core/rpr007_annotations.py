"""RPR007 fixture: incomplete signatures in a gated package path.

Lives under a ``core/`` path component so the annotation-completeness
gate applies.
"""


def untyped(x, y):
    """Missing parameter and return annotations — two findings."""
    return x + y


def typed(x: int, y: int) -> int:
    """Fully annotated — compliant."""
    return x + y


def quiet(x, y):  # repro-lint: disable=RPR007 - fixture: suppression check
    """Same violations, suppressed (both anchor to the def line)."""
    return x + y
