"""RPR008 fixture: ad-hoc clock calls outside util/timing.py and obs/."""

import time

from time import perf_counter  # noqa: F401


def stamp():
    """Direct clock call."""
    return time.perf_counter()


def epoch():
    """Wall-clock read."""
    return time.time()


def injected(clock=time.monotonic):
    """Passing a clock *callable* is dependency injection — no call, ok."""
    return clock


def quiet():
    """Same violation, suppressed."""
    return time.monotonic()  # repro-lint: disable=RPR008 - fixture: suppression check
