"""RPR001 fixture: re-typed Table I/II layout literals."""

NODE_SIZE = 512
TRIE_TABLE_ENTRIES = 17613
TRIE_TAIL = 17576

NODE_SIZE_OK = 512  # repro-lint: disable=RPR001 - fixture: suppression check


def make_node(degree=16):
    """Degree defaulted to a literal 16 instead of DEFAULT_DEGREE."""
    return degree
