"""RPR005 fixture: broad/bare excepts outside robustness/."""


def load(path):
    """Broad except swallowing everything."""
    try:
        return open(path).read()
    except Exception:
        return ""


def probe(path):
    """Bare except."""
    try:
        return open(path).read()
    except:  # noqa: E722
        return ""


def relay(path):
    """Compliant: unconditionally re-raises, so nothing is hidden."""
    try:
        return open(path).read()
    except Exception:
        raise


def quiet(path):
    """Same violation, suppressed."""
    try:
        return open(path).read()
    except Exception:  # repro-lint: disable=RPR005 - fixture: suppression check
        return ""
