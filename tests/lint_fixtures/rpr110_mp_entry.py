"""RPR110 fixture: process construction outside fork-bomb-safe layouts."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Pool


def work() -> None:
    pass


# Violation 1: Process at module top level (spawn children re-run this).
proc = multiprocessing.Process(target=work)

# Violation 2: Pool at module top level.
pool = Pool(2)

# Violation 3: executor at module top level.
executor = ProcessPoolExecutor(max_workers=2)


def start_with_lambda() -> None:
    # Violation 4: lambda target never pickles under spawn.
    multiprocessing.Process(target=lambda: None).start()


def safe_inside_function() -> None:
    multiprocessing.Process(target=work).start()  # fine: only runs when called


# Suppressed twin of violation 1.
suppressed = multiprocessing.Process(target=work)  # repro-lint: disable=RPR110

if __name__ == "__main__":
    multiprocessing.Process(target=work).start()  # fine: guarded
