"""Failing conformance fixture: dispatch that sends before journaling.

Named ``mp_backend.py`` on purpose — RPR121 scopes by filename so the
real backend cannot drift from the supervisor-replay model.  Parsed by
``repro lint``, never imported.
"""


class SendFirstEngine:
    def _dispatch(self, slot, task):                 # RPR121: send before journal
        self._put(slot, task.to_frame())
        slot.journal.append(task)

    def _top_up(self, slot, task):                   # RPR121: send before record
        self._put(slot, task.to_frame())
        slot.outstanding.append(task)


class ForgetfulEngine:
    def _dispatch(self, slot, task):                 # RPR121: journal append gone
        self._put(slot, task.to_frame())


class SuppressedTwinEngine:
    def _dispatch(self, slot, task):  # repro-lint: disable=RPR121 - fixture twin
        self._put(slot, task.to_frame())
        slot.journal.append(task)
