"""Failing conformance fixture: a ring that breaks the modeled order.

Named ``shm_ring.py`` on purpose — the RPR12x conformance rules scope by
filename so the real ring cannot drift from the protocol model.  Parsed
by ``repro lint``, never imported.
"""

_TAIL_OFF = 0
_HEAD_OFF = 8
_PROD_HB_OFF = 16
_CONS_HB_OFF = 24


class PublishBeforeCopyRing:
    def put_frame(self, payload):
        tail = self._load(_TAIL_OFF)
        self._store(_TAIL_OFF, tail + len(payload))  # RPR120: publish first
        self._buf[0:len(payload)] = payload          # ... copy after

    def get_frame(self):
        head = self._load(_HEAD_OFF)
        self._store(_HEAD_OFF, head + 4)             # RPR120: free before copy-out
        return bytes(self._buf[0:4])

    def beat(self, role):
        off = _PROD_HB_OFF if role == "producer" else _CONS_HB_OFF
        self._store(off, 0)                          # RPR122: reset, not increment

    def poke_liveness(self):
        self._store(_PROD_HB_OFF, 7)                 # RPR122: second writer

    def attach(self, name):
        self._shm = SharedMemory(name=name)          # RPR123: no _untrack
        return self

    def unlink(self):
        self._shm.unlink()                           # RPR123: no _forget_created

    def create(self, name, capacity):                # RPR123: no _register_created
        self._shm = SharedMemory(name, create=True, size=capacity)
        return self


class SuppressedTwinRing:
    """The same violations, vetted — proves the suppression machinery."""

    def put_frame(self, payload):
        tail = self._load(_TAIL_OFF)
        self._store(_TAIL_OFF, tail + len(payload))  # repro-lint: disable=RPR120 - fixture twin
        self._buf[0:len(payload)] = payload

    def beat(self, role):
        self._store(_PROD_HB_OFF, 0)  # repro-lint: disable=RPR122 - fixture twin

    def unlink(self):
        self._shm.unlink()  # repro-lint: disable=RPR123 - fixture twin
