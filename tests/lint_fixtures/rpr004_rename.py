"""RPR004 fixture: atomic rename without a preceding fsync."""

import os


def swap(src, dst):
    """Rename with no fsync — not crash-durable."""
    os.replace(src, dst)


def durable(fd, src, dst):
    """Compliant: data is synced before the rename makes it visible."""
    os.fsync(fd)
    os.replace(src, dst)


def swap_quietly(src, dst):
    """Same violation, suppressed."""
    os.replace(src, dst)  # repro-lint: disable=RPR004 - fixture: suppression check
