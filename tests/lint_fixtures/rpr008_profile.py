"""RPR008 fixture: sampler-style direct clock reads outside obs/.

A profiler copy-pasted out of ``obs/profile.py`` loses the carve-out:
the clock fence only exempts ``util/timing.py`` and the obs/ layer, so
a tick loop anchored on ad-hoc monotonic reads must be flagged.
"""

import time

from time import monotonic  # noqa: F401


def tick_anchor():
    """Sampler tick anchored on a direct monotonic read."""
    return time.monotonic()


def sample_stamp():
    """Per-sample timestamp from a raw perf counter."""
    return time.perf_counter()


def injected_sampler(clock=time.monotonic):
    """Injecting the clock *callable* is the sanctioned shape — ok."""
    return clock


def next_tick():
    """Same tick-anchor violation, suppressed."""
    return time.monotonic()  # repro-lint: disable=RPR008 - fixture: suppression check
