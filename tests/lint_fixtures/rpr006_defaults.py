"""RPR006 fixture: mutable default arguments."""


def accumulate(value, items=[]):
    """Classic shared-list default."""
    items.append(value)
    return items


def tally(key, counts={}):
    """Shared-dict default."""
    counts[key] = counts.get(key, 0) + 1
    return counts


def grow(value, items=None):
    """Compliant: None default."""
    return (items or []) + [value]


def quiet(value, items=[]):  # repro-lint: disable=RPR006 - fixture: suppression check
    """Same violation, suppressed."""
    return items + [value]
