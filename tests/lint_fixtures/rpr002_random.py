"""RPR002 fixture: unseeded global random generators."""

import random

from random import shuffle  # noqa: F401


def pick(values):
    """Uses the global generator."""
    return random.choice(values)


def fresh_generator():
    """Unseeded Random() instance."""
    return random.Random()


def quiet():
    """Same violation, suppressed."""
    return random.random()  # repro-lint: disable=RPR002 - fixture: suppression check
