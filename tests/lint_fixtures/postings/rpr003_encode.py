"""RPR003 fixture: float arithmetic inside an encode path.

Lives under a ``postings/`` path component because the rule is scoped to
the packages whose byte streams must be bit-identical across platforms.
"""


def encode_gaps(gaps):
    """True division and a float literal in an encode function."""
    total = sum(gaps)
    avg = total / len(gaps)
    scale = 0.69
    quiet = 1.5  # repro-lint: disable=RPR003 - fixture: suppression check
    return int(avg + scale + quiet)


def describe(gaps):
    """Floats outside an encode path are fine."""
    return len(gaps) * 2.5
