"""RPR101 fixture: unguarded writes to state shared with a worker thread."""

import threading


class Counter:
    """A worker thread and the main thread both touch ``count``."""

    def __init__(self):
        self.count = 0
        self.total = 0
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._worker)

    def _worker(self):
        """Worker entry: reads and writes shared attributes."""
        for _ in range(1000):
            self.count += 1
            with self._lock:
                self.total += 1

    def reset(self):
        """Main-thread write racing the worker — also a finding."""
        self.count = 0

    def reset_quietly(self):
        """Same violation, suppressed."""
        self.count = 0  # repro-lint: disable=RPR101 - fixture: suppression check
