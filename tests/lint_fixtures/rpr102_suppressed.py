# repro-lint: disable-file=RPR102 - fixture: file-level suppression check
"""Same lock-order cycle as rpr102_deadlock.py, suppressed file-wide."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def transfer_ab():
    """Acquires A then B."""
    with lock_a:
        with lock_b:
            pass


def transfer_ba():
    """Acquires B then A."""
    with lock_b:
        with lock_a:
            pass
