"""RPR102 fixture: two paths acquire the same locks in opposite orders."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def transfer_ab():
    """Acquires A then B."""
    with lock_a:
        with lock_b:
            pass


def transfer_ba():
    """Acquires B then A — closes the cycle."""
    with lock_b:
        with lock_a:
            pass
