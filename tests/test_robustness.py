"""Fault-tolerant builds end to end (docs/ROBUSTNESS.md).

Acceptance behaviors from the robustness issue:

* an interrupted build restarted with ``resume=True`` produces an index
  byte-identical to an uninterrupted one;
* ``on_error="skip"`` with one corrupt container completes the build and
  reports exactly one skipped file;
* transient faults are retried with backoff and leave the output intact;
* a dying GPU fails over to a CPU indexer mid-build without changing a
  single output byte;
* ``repro verify`` exits non-zero on a tampered index;
* the ``chaos`` property test: any single flipped byte in a built index
  is *detected* — never returned as silently wrong postings.
"""

from __future__ import annotations

import hashlib
import os
import random
import shutil

import pytest

from repro.cli import main
from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.obs.schema import METRICS_FILENAME, TRACE_FILENAME
from repro.postings.reader import PostingsReader
from repro.robustness import faults
from repro.robustness.checkpoint import (
    CHECKPOINT_FILENAME,
    MANIFEST_FILENAME,
    BuildManifest,
    load_checkpoint,
)
from repro.robustness.errors import FatalFault, RetryExhausted, TransientReadError
from repro.robustness.faults import FaultInjector, FaultPlan, FaultSpec, inject
from repro.robustness.retry import RetryPolicy, retry_call
from repro.robustness.verify import verify_index

#: Build-log files that are not part of the queryable index.
# Build metadata, not index content: the manifest/checkpoint pair plus
# the telemetry artifacts (which legitimately differ when faults fire —
# that is what the robustness.* counters are *for*).
_BUILD_LOGS = {MANIFEST_FILENAME, CHECKPOINT_FILENAME,
               METRICS_FILENAME, TRACE_FILENAME}


def _config(**overrides) -> PlatformConfig:
    defaults = dict(
        num_parsers=3, num_cpu_indexers=2, num_gpus=2,
        sample_fraction=0.2, files_per_run=2,
    )
    defaults.update(overrides)
    return PlatformConfig(**defaults)


def _digest(out_dir: str) -> str:
    """One hash over every index artifact (build logs excluded)."""
    h = hashlib.sha256()
    for name in sorted(os.listdir(out_dir)):
        if name in _BUILD_LOGS or os.path.isdir(os.path.join(out_dir, name)):
            continue
        h.update(name.encode())
        with open(os.path.join(out_dir, name), "rb") as fh:
            h.update(fh.read())
    return h.hexdigest()


@pytest.fixture(scope="module")
def baseline(tmp_path_factory, tiny_collection):
    """A fault-free build to compare every perturbed build against."""
    out = str(tmp_path_factory.mktemp("baseline"))
    result = IndexingEngine(_config()).build(tiny_collection, out)
    return result, out


# ---------------------------------------------------------------------- #
# Fault injection plumbing
# ---------------------------------------------------------------------- #


class TestFaultInjector:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor")

    def test_same_plan_corrupts_same_bytes(self):
        plan = FaultPlan(seed=42, specs=[FaultSpec(kind="flip")])
        payload = bytes(range(256))
        outputs = set()
        for _ in range(3):
            inj = FaultInjector(plan)
            outputs.add(inj.corrupt_inflated("some/file.warc.gz", payload))
        assert len(outputs) == 1  # deterministic: seed + path decide the byte
        assert next(iter(outputs)) != payload

    def test_different_seeds_differ(self):
        payload = bytes(range(256))
        a = FaultInjector(FaultPlan(seed=1, specs=[FaultSpec(kind="flip")]))
        b = FaultInjector(FaultPlan(seed=2, specs=[FaultSpec(kind="flip")]))
        assert a.corrupt_inflated("f", payload) != b.corrupt_inflated("f", payload)

    def test_times_budget_per_path(self):
        plan = FaultPlan(specs=[FaultSpec(kind="transient", times=2)])
        inj = FaultInjector(plan)
        for _ in range(2):
            with pytest.raises(TransientReadError):
                inj.before_read("a")
        inj.before_read("a")  # budget exhausted: read succeeds
        with pytest.raises(TransientReadError):
            inj.before_read("b")  # separate budget per path
        assert inj.counts["transient"] == 3

    def test_stage_filter(self):
        plan = FaultPlan(specs=[FaultSpec(kind="fatal", stage="build")])
        inj = FaultInjector(plan)
        inj.stage = "sampling"
        inj.before_read("x")  # no-op outside the targeted stage
        inj.stage = "build"
        with pytest.raises(FatalFault):
            inj.before_read("x")

    def test_install_uninstall(self):
        inj = FaultInjector(FaultPlan())
        assert faults.active() is None
        with inject(FaultPlan()) as active:
            assert faults.active() is active
        assert faults.active() is None
        faults.install(inj)
        faults.uninstall()
        assert faults.active() is None


class TestRetry:
    def test_backoff_schedule_and_jitter_bounds(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, multiplier=2.0,
            max_delay_s=0.5, jitter=0.0,
        )
        assert [policy.delay_for(a, random.Random(0)) for a in range(1, 5)] == [
            pytest.approx(0.1), pytest.approx(0.2),
            pytest.approx(0.4), pytest.approx(0.5),  # capped
        ]

    def test_transient_then_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientReadError("p", "try again")
            return "ok"

        slept: list[float] = []
        result, outcome = retry_call(
            flaky, RetryPolicy(max_attempts=4), "p", sleep=slept.append
        )
        assert result == "ok"
        assert outcome.retries == 2 and len(slept) == 2
        assert outcome.backoff_s == pytest.approx(sum(slept))

    def test_exhaustion_chains_last_error(self):
        def always():
            raise TransientReadError("p", "still down")

        with pytest.raises(RetryExhausted) as err:
            retry_call(always, RetryPolicy(max_attempts=3), "p", sleep=lambda s: None)
        assert err.value.attempts == 3
        assert isinstance(err.value.__cause__, TransientReadError)

    def test_permanent_errors_not_retried(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise FileNotFoundError("gone")

        with pytest.raises(FileNotFoundError):
            retry_call(broken, RetryPolicy(), "p", sleep=lambda s: None)
        assert calls["n"] == 1


# ---------------------------------------------------------------------- #
# Engine-level policies
# ---------------------------------------------------------------------- #


class TestEnginePolicies:
    def test_transient_faults_retried_output_identical(
        self, tiny_collection, tmp_path, baseline
    ):
        _, base_out = baseline
        out = str(tmp_path / "idx")
        plan = FaultPlan(specs=[
            FaultSpec(kind="transient", path_substring="file_00002",
                      stage="build", times=2),
        ])
        with inject(plan, sleep=lambda s: None) as inj:
            result = IndexingEngine(_config()).build(tiny_collection, out)
        assert inj.counts["transient"] == 2
        assert result.robustness.retries == 2
        assert result.robustness.retry_backoff_s > 0
        assert _digest(out) == _digest(base_out)

    def test_strict_raises_on_corrupt_container(self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx")
        plan = FaultPlan(specs=[
            FaultSpec(kind="truncate", path_substring="file_00003", stage="build"),
        ])
        with inject(plan):
            with pytest.raises(ValueError):
                IndexingEngine(_config(on_error="strict")).build(tiny_collection, out)

    def test_skip_reports_exactly_one_file(self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx")
        plan = FaultPlan(specs=[
            FaultSpec(kind="truncate", path_substring="file_00003", stage="build"),
        ])
        with inject(plan):
            result = IndexingEngine(_config(on_error="skip")).build(tiny_collection, out)
        rb = result.robustness
        assert rb.skipped_count == 1 and rb.quarantined_count == 0
        (skipped,) = rb.skipped
        assert skipped.action == "skip" and "file_00003" in skipped.path
        # The build completed and the remaining five files are queryable.
        reader = PostingsReader(out)
        assert result.document_count == tiny_collection.num_docs - 10
        assert len(reader.vocabulary()) == result.term_count

    def test_quarantine_moves_file(self, tmp_path):
        from repro.corpus.synthetic import generate_collection
        from tests.conftest import _tiny_spec

        coll = generate_collection(_tiny_spec("quar", seed=11), str(tmp_path / "c"))
        out = str(tmp_path / "idx")
        qdir = str(tmp_path / "bad")
        plan = FaultPlan(specs=[
            FaultSpec(kind="flip_raw", path_substring="file_00001", stage="build"),
        ])
        with inject(plan):
            result = IndexingEngine(
                _config(on_error="quarantine", quarantine_dir=qdir)
            ).build(coll, out)
        (skipped,) = result.robustness.skipped
        assert skipped.action == "quarantine"
        assert skipped.quarantined_to and os.path.exists(skipped.quarantined_to)
        assert not os.path.exists(coll.files[1])

    def test_gpu_failover_preserves_postings(self, tiny_collection, tmp_path, baseline):
        base_result, base_out = baseline
        out = str(tmp_path / "idx")
        plan = FaultPlan(specs=[
            FaultSpec(kind="gpu_fail", gpu_index=0, file_index=3),
        ])
        with inject(plan):
            result = IndexingEngine(_config()).build(tiny_collection, out)
        (fo,) = result.robustness.gpu_failovers
        assert fo.gpu_ordinal == 0 and fo.file_index == 3
        assert "GPU 0" in fo.describe()
        # The CPU fallback adopts the GPU's dictionary shard in place, so
        # the degraded build yields exactly the same postings.  (Term *ids*
        # may be allocated in a different order after the handoff, so this
        # is semantic equality, not byte equality.)
        base = PostingsReader(base_out)
        degraded = PostingsReader(out)
        assert set(degraded.vocabulary()) == set(base.vocabulary())
        for term in base.vocabulary():
            assert degraded.postings(term) == base.postings(term), term
        # Work migrated: Table V attributes the failed GPU's tokens to CPU.
        assert result.split.gpu_tokens < base_result.split.gpu_tokens


class TestCheckpointResume:
    def test_crash_then_resume_byte_identical(
        self, tiny_collection, tmp_path, baseline
    ):
        _, base_out = baseline
        out = str(tmp_path / "idx")
        plan = FaultPlan(specs=[
            FaultSpec(kind="fatal", path_substring="file_00004", stage="build"),
        ])
        with inject(plan):
            with pytest.raises(FatalFault):
                IndexingEngine(_config()).build(tiny_collection, out)
        # The crash left durable state: two complete runs + a checkpoint.
        assert os.path.exists(os.path.join(out, CHECKPOINT_FILENAME))
        state = load_checkpoint(out)
        assert state["run_count"] == 2 and state["next_file_index"] == 4

        result = IndexingEngine(_config()).build(tiny_collection, out, resume=True)
        assert result.robustness.resumed_runs == 2
        assert result.run_count == 3
        assert _digest(out) == _digest(base_out)
        assert not os.path.exists(os.path.join(out, CHECKPOINT_FILENAME))

    def test_resume_without_checkpoint_is_fresh_build(
        self, tiny_collection, tmp_path, baseline
    ):
        _, base_out = baseline
        out = str(tmp_path / "idx")
        result = IndexingEngine(_config()).build(tiny_collection, out, resume=True)
        assert result.robustness.resumed_runs == 0
        assert _digest(out) == _digest(base_out)

    def test_fingerprint_mismatch_rejected(self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx")
        plan = FaultPlan(specs=[
            FaultSpec(kind="fatal", path_substring="file_00004", stage="build"),
        ])
        with inject(plan):
            with pytest.raises(FatalFault):
                IndexingEngine(_config()).build(tiny_collection, out)
        with pytest.raises(ValueError, match="different"):
            IndexingEngine(_config(codec="gamma")).build(
                tiny_collection, out, resume=True
            )

    def test_manifest_records_every_run(self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx")
        IndexingEngine(_config()).build(tiny_collection, out)
        header, runs = BuildManifest(out).load()
        assert header["collection"] == tiny_collection.name
        assert [r.run_id for r in runs] == [0, 1, 2]
        assert sum(r.docs for r in runs) == tiny_collection.num_docs
        for rec in runs:
            assert rec.crc32 == _file_crc(os.path.join(out, rec.path))

    def test_manifest_truncate(self, tmp_path):
        manifest = BuildManifest(str(tmp_path))
        manifest.start("abc", "coll", 4)
        from repro.robustness.checkpoint import RunRecord

        for i in range(3):
            manifest.append_run(RunRecord(
                run_id=i, path=f"run_{i:05d}.post", crc32=i, min_doc=i,
                max_doc=i, entry_count=1, byte_size=10, first_doc=i,
                docs=1, postings=1, file_indices=(i,), files=(f"f{i}",),
            ))
        manifest.truncate_runs(1)
        header, runs = manifest.load()
        assert header["fingerprint"] == "abc"
        assert [r.run_id for r in runs] == [0]


def _file_crc(path: str) -> int:
    import zlib

    return zlib.crc32(open(path, "rb").read()) & 0xFFFFFFFF


# ---------------------------------------------------------------------- #
# verify: the offline index checker
# ---------------------------------------------------------------------- #


class TestVerify:
    def test_clean_index_verifies(self, baseline):
        _, out = baseline
        res = verify_index(out)
        assert res.ok and res.runs_checked == 3
        assert res.docs_checked > 0 and res.terms_checked > 0

    def test_flipped_run_byte_flagged(self, baseline, tmp_path):
        _, out = baseline
        bad = _copy_index(out, tmp_path)
        _flip(os.path.join(bad, "run_00001.post"), offset=40)
        res = verify_index(bad)
        assert not res.ok
        assert any(i.check == "run-crc" for i in res.issues)

    def test_missing_run_flagged(self, baseline, tmp_path):
        _, out = baseline
        bad = _copy_index(out, tmp_path)
        os.remove(os.path.join(bad, "run_00002.post"))
        res = verify_index(bad)
        assert any(i.check == "run-missing" for i in res.issues)

    def test_keep_going_collects_multiple(self, baseline, tmp_path):
        _, out = baseline
        bad = _copy_index(out, tmp_path)
        _flip(os.path.join(bad, "run_00000.post"), offset=40)
        _flip(os.path.join(bad, "dictionary.bin"), offset=40)
        res = verify_index(bad, keep_going=True)
        assert {i.check for i in res.issues} >= {"run-crc", "dictionary-crc"}

    def test_cli_verify_exit_codes(self, baseline, tmp_path, capsys):
        _, out = baseline
        assert main(["verify", out]) == 0
        assert "ok:" in capsys.readouterr().out
        bad = _copy_index(out, tmp_path)
        _flip(os.path.join(bad, "doctable.tsv"), offset=10)
        assert main(["verify", bad]) == 1
        assert "doctable" in capsys.readouterr().err


def _copy_index(src: str, tmp_path) -> str:
    dst = str(tmp_path / "tampered")
    shutil.copytree(src, dst)
    return dst


def _flip(path: str, offset: int) -> None:
    data = bytearray(open(path, "rb").read())
    data[offset % len(data)] ^= 0x10
    with open(path, "wb") as fh:
        fh.write(bytes(data))


# ---------------------------------------------------------------------- #
# Chaos property: one flipped byte anywhere is always detected
# ---------------------------------------------------------------------- #


@pytest.mark.chaos
def test_any_single_flipped_byte_never_lies(baseline, tmp_path):
    """Flip one random byte per trial; the index must never lie.

    For every trial one of three things must happen: ``verify_index``
    flags an issue, opening/reading raises, or — when neither fires —
    every posting still matches the pristine index exactly (the flip was
    semantics-preserving, e.g. the case of a hex digit inside a ``#crc``
    line).  Silently *wrong* postings are the one forbidden outcome.
    """
    _, out = baseline
    pristine = PostingsReader(out)
    vocab = sorted(pristine.vocabulary())
    truth = {t: pristine.postings(t) for t in vocab}

    targets = [
        n for n in sorted(os.listdir(out))
        if n not in _BUILD_LOGS and os.path.isfile(os.path.join(out, n))
    ]
    rng = random.Random(0xC0FFEE)
    for trial in range(60):
        bad = str(tmp_path / f"trial_{trial}")
        shutil.copytree(out, bad)
        name = rng.choice(targets)
        path = os.path.join(bad, name)
        data = bytearray(open(path, "rb").read())
        pos = rng.randrange(len(data))
        data[pos] ^= 1 << rng.randrange(8)
        with open(path, "wb") as fh:
            fh.write(bytes(data))

        if verify_index(bad).ok:
            # Not flagged: reading must either raise or be fully correct.
            try:
                reader = PostingsReader(bad)
                readable = {t: reader.postings(t) for t in reader.vocabulary()}
            except Exception:
                pass  # detected at read time — acceptable
            else:
                assert readable == truth, (
                    f"trial {trial}: silently wrong postings after flipping "
                    f"byte {pos} of {name}"
                )
        shutil.rmtree(bad)
