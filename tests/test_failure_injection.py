"""Failure injection: corrupt and inconsistent on-disk artifacts.

A downstream system reads these files long after the build; corruption
must surface as clear errors, never as silently wrong postings.
"""

from __future__ import annotations

import os
import zlib

import pytest

from repro.dictionary.dictionary import Dictionary
from repro.dictionary.serialize import save_dictionary, load_dictionary
from repro.postings.doctable import DocTable
from repro.postings.lists import PostingsList
from repro.postings.output import DocRangeMap, RUN_CRC_BYTES, RunWriter, read_run_header
from repro.postings.reader import PostingsReader
from repro.robustness.errors import ChecksumError


def _plist(pairs):
    pl = PostingsList()
    for d, tf in pairs:
        pl.add_posting(d, tf)
    return pl


def _refresh_crc(data: bytearray) -> bytes:
    """Recompute a run file's trailing CRC after deliberate tampering."""
    body = bytes(data[:-RUN_CRC_BYTES])
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return body + crc.to_bytes(RUN_CRC_BYTES, "little")


def _write_index(out_dir: str) -> None:
    writer = RunWriter(out_dir)
    mapping = DocRangeMap()
    for run_id in range(2):
        mapping.add(
            writer.write_run(run_id, {1: _plist([(run_id * 10, 1), (run_id * 10 + 3, 2)])})
        )
    mapping.save(out_dir)


class TestCorruptRunFiles:
    def test_truncated_payload_raises(self, tmp_path):
        _write_index(str(tmp_path))
        path = tmp_path / "run_00000.post"
        data = path.read_bytes()
        path.write_bytes(data[:-2])  # chop the payload tail
        reader = PostingsReader(str(tmp_path))
        # The trailing CRC32 no longer matches, so the checksum check
        # fires before any decode is attempted.
        with pytest.raises(ChecksumError):
            reader.postings(1)

    def test_zeroed_header_raises(self, tmp_path):
        _write_index(str(tmp_path))
        path = tmp_path / "run_00001.post"
        path.write_bytes(b"\x00" * 64)
        reader = PostingsReader(str(tmp_path))
        with pytest.raises(ValueError):
            reader.postings(1)

    def test_unknown_codec_name_raises(self, tmp_path):
        _write_index(str(tmp_path))
        path = tmp_path / "run_00000.post"
        data = bytearray(path.read_bytes())
        # Patch the codec name bytes ("varbyte" follows magic + run_id +
        # name length) to an unregistered name of the same length.
        idx = data.find(b"varbyte")
        data[idx : idx + 7] = b"zzzbyte"
        # Refresh the CRC so the *codec* check is what fires, not the
        # checksum (an attacker-grade consistency failure, not bit rot).
        path.write_bytes(_refresh_crc(data))
        reader = PostingsReader(str(tmp_path))
        with pytest.raises(KeyError):
            reader.postings(1)

    def test_overlapping_run_doc_ranges_detected(self, tmp_path):
        # Two runs whose documents interleave: splicing must refuse.
        writer = RunWriter(str(tmp_path))
        mapping = DocRangeMap()
        mapping.add(writer.write_run(0, {1: _plist([(0, 1), (10, 1)])}))
        mapping.add(writer.write_run(1, {1: _plist([(5, 1)])}))
        mapping.save(str(tmp_path))
        reader = PostingsReader(str(tmp_path))
        with pytest.raises(ValueError, match="overlap"):
            reader.postings(1)

    def test_missing_run_file(self, tmp_path):
        _write_index(str(tmp_path))
        os.remove(tmp_path / "run_00001.post")
        with pytest.raises(FileNotFoundError):
            PostingsReader(str(tmp_path))


class TestMissingArtifacts:
    def test_missing_runs_map(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            PostingsReader(str(tmp_path))

    def test_corrupt_runs_map_line(self, tmp_path):
        _write_index(str(tmp_path))
        with open(tmp_path / "runs.map", "a") as fh:
            fh.write("not a valid line\n")
        with pytest.raises(ValueError):
            PostingsReader(str(tmp_path))


class TestCorruptDictionary:
    def test_truncated_dictionary(self, tmp_path):
        d = Dictionary()
        for t in ["alpha", "beta", "gamma"]:
            d.add_term(t)
        path = str(tmp_path / "dictionary.bin")
        save_dictionary(d, path)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        with pytest.raises(ChecksumError):
            load_dictionary(path)

    def test_flipped_dictionary_byte_raises(self, tmp_path):
        d = Dictionary()
        for t in ["alpha", "beta", "gamma"]:
            d.add_term(t)
        path = str(tmp_path / "dictionary.bin")
        save_dictionary(d, path)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0x40  # one bit, mid-body
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(ChecksumError):
            load_dictionary(path)

    def test_reader_surfaces_dictionary_corruption(self, tmp_path):
        _write_index(str(tmp_path))
        with open(tmp_path / "dictionary.bin", "wb") as fh:
            fh.write(b"JUNKJUNKJUNK")
        with pytest.raises(ValueError):
            PostingsReader(str(tmp_path))


class TestCorruptDocTable:
    def _table(self, tmp_path) -> str:
        table = DocTable()
        for i in range(5):
            table.add(f"file_{i % 2}.warc.gz", f"doc://{i}", i * 100)
        return table.save(str(tmp_path))

    def test_flipped_doctable_byte_raises(self, tmp_path):
        path = self._table(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 3] ^= 0x01
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(ChecksumError):
            DocTable.load(str(tmp_path))

    def test_dropped_doctable_row_raises(self, tmp_path):
        path = self._table(tmp_path)
        lines = open(path, "r").readlines()
        with open(path, "w") as fh:
            fh.writelines(lines[:2] + lines[3:])  # silently lose doc 2
        with pytest.raises(ValueError):
            DocTable.load(str(tmp_path))

    def test_doctable_round_trips(self, tmp_path):
        self._table(tmp_path)
        table = DocTable.load(str(tmp_path))
        assert len(table) == 5
        assert table.lookup(3).uri == "doc://3"


class TestCorruptRunsMap:
    def test_flipped_map_byte_raises(self, tmp_path):
        _write_index(str(tmp_path))
        path = tmp_path / "runs.map"
        data = bytearray(path.read_bytes())
        # Flip a digit inside the body (not in the #crc line).
        idx = data.index(b"\t")
        data[idx + 1] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(ChecksumError):
            DocRangeMap.load(str(tmp_path))


class TestHeaderParser:
    def test_header_fields_robust(self, tmp_path):
        writer = RunWriter(str(tmp_path))
        run = writer.write_run(3, {9: _plist([(4, 2)])})
        data = open(run.path, "rb").read()
        run_id, codec, min_doc, max_doc, table, payload_start = read_run_header(data)
        assert run_id == 3 and codec == "varbyte"
        assert (min_doc, max_doc) == (4, 4)
        assert set(table) == {9}
        assert payload_start < len(data)
