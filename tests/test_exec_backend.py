"""The execution-backend seam: resolution, and byte-identity across modes.

The engine's contract (docs/ARCHITECTURE.md, "Execution backends"): the
``serial``, ``threaded`` and ``multiprocess`` backends produce
byte-identical index artifacts and identical deterministic metrics —
only the ``pipeline.*`` / ``supervisor.*`` instruments (absent in serial
builds) and the wall-clock ``timings`` quarantine may differ.
"""

from __future__ import annotations

import hashlib
import os

import pytest

from repro.core.config import EXEC_BACKEND_ENV, PlatformConfig
from repro.core.engine import IndexingEngine
from repro.core.exec_backend import resolve_backend_name
from repro.core.shm_ring import list_repro_segments
from repro.obs.schema import METRICS_FILENAME, TRACE_FILENAME, load_metrics
from repro.robustness.checkpoint import CHECKPOINT_FILENAME, MANIFEST_FILENAME
from repro.robustness.supervise import SupervisorPolicy

_BUILD_LOGS = {MANIFEST_FILENAME, CHECKPOINT_FILENAME,
               METRICS_FILENAME, TRACE_FILENAME}

BACKENDS = ("serial", "threaded", "multiprocess")


def _cfg(**overrides) -> PlatformConfig:
    defaults = dict(
        num_parsers=3, num_cpu_indexers=2, num_gpus=2,
        sample_fraction=0.2, files_per_run=2, pipeline_depth=0,
        supervisor=SupervisorPolicy(supervise_interval_s=0.02),
    )
    defaults.update(overrides)
    return PlatformConfig(**defaults)


def _digest(out_dir: str) -> str:
    h = hashlib.sha256()
    for name in sorted(os.listdir(out_dir)):
        if name in _BUILD_LOGS or os.path.isdir(os.path.join(out_dir, name)):
            continue
        h.update(name.encode())
        with open(os.path.join(out_dir, name), "rb") as fh:
            h.update(fh.read())
    return h.hexdigest()


def _metric_sections(index_dir: str) -> dict:
    """Deterministic metric sections, with the backend-specific extras cut.

    ``pipeline.*`` and ``supervisor.*`` only exist for the concurrent
    backends, ``shm_san.*`` only when ``REPRO_SANITIZE=ring`` arms the
    ring sanitizer, ``shm.ring.*`` is wall-clock ring telemetry (wait
    polls and occupancy vary run to run), and ``checkpoint.bytes``
    tracks the output directory's path length; everything else must
    match exactly across backends.
    """
    payload = load_metrics(os.path.join(index_dir, METRICS_FILENAME))
    sections = {}
    for section in ("counters", "gauges", "histograms"):
        sections[section] = {
            k: v for k, v in payload[section].items()
            if not k.startswith(("pipeline.", "supervisor.", "shm_san.",
                                 "shm.ring."))
        }
    sections["histograms"].pop("checkpoint.bytes", None)
    return sections


class TestResolution:
    @pytest.fixture(autouse=True)
    def _hermetic_env(self, monkeypatch):
        # The CI matrix exports REPRO_EXEC_BACKEND suite-wide; these
        # tests pin the *default* resolution, so clear it first (the
        # env-specific tests below re-set it explicitly).
        monkeypatch.delenv(EXEC_BACKEND_ENV, raising=False)

    def test_auto_is_serial_at_depth_zero(self):
        assert resolve_backend_name(_cfg()) == "serial"

    def test_auto_is_threaded_with_depth(self):
        assert resolve_backend_name(_cfg(pipeline_depth=2)) == "threaded"

    @pytest.mark.parametrize("name", BACKENDS)
    def test_explicit_name_wins(self, name):
        assert resolve_backend_name(_cfg(exec_backend=name,
                                         pipeline_depth=2)) == name

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv(EXEC_BACKEND_ENV, "multiprocess")
        assert _cfg().exec_backend == "multiprocess"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(EXEC_BACKEND_ENV, "multiprocess")
        assert _cfg(exec_backend="serial").exec_backend == "serial"

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(EXEC_BACKEND_ENV, "warp")
        with pytest.raises(ValueError):
            _cfg()

    def test_bad_config_value_rejected(self):
        with pytest.raises(ValueError):
            _cfg(exec_backend="warp")

    def test_describe_mentions_non_auto_backend(self):
        assert "multiprocess" in _cfg(exec_backend="multiprocess").describe()
        assert "exec" not in _cfg().describe()


class TestByteIdentity:
    @pytest.fixture(scope="class")
    def reference(self, tiny_collection, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("ref") / "idx")
        IndexingEngine(_cfg(exec_backend="serial")).build(tiny_collection, out)
        return out

    @pytest.mark.parametrize("backend", ["threaded", "multiprocess"])
    def test_backend_matches_serial(self, backend, reference,
                                    tiny_collection, tmp_path):
        out = str(tmp_path / backend)
        result = IndexingEngine(_cfg(exec_backend=backend)).build(
            tiny_collection, out
        )
        assert _digest(out) == _digest(reference)
        assert _metric_sections(out) == _metric_sections(reference)
        if backend == "multiprocess":
            assert result.supervisor is not None
            assert result.supervisor.clean
            assert result.supervisor.workers > 0
            assert result.pipeline.backend == "multiprocess"

    def test_multiprocess_leaves_no_segments(self, reference,
                                             tiny_collection, tmp_path):
        out = str(tmp_path / "mp")
        IndexingEngine(_cfg(exec_backend="multiprocess")).build(
            tiny_collection, out
        )
        assert list_repro_segments() == []

    def test_env_override_reaches_the_build(self, monkeypatch, reference,
                                            tiny_collection, tmp_path):
        monkeypatch.setenv(EXEC_BACKEND_ENV, "multiprocess")
        out = str(tmp_path / "env")
        result = IndexingEngine(_cfg()).build(tiny_collection, out)
        assert result.supervisor is not None  # only the mp backend reports
        assert _digest(out) == _digest(reference)


class TestErrorPickling:
    def test_errors_survive_the_process_boundary(self):
        """Workers ship exceptions home pickled; every custom error must
        unpickle to an equal instance (default exception pickling replays
        the formatted message into ``__init__`` and breaks multi-arg
        signatures)."""
        import pickle

        from repro.corpus.warc import CorruptContainerError
        from repro.robustness.errors import (
            ChecksumError,
            FatalFault,
            RetryExhausted,
            TransientReadError,
        )

        errors = [
            CorruptContainerError("f.warc.gz", "bad magic", offset=12),
            CorruptContainerError("f.warc.gz", "bad crc"),
            ChecksumError("run_00001.post", 1, 2),
            TransientReadError("f.warc.gz"),
            TransientReadError("f.warc.gz", "injected"),
            FatalFault("f.warc.gz"),
            RetryExhausted("f.warc.gz", 3, 0.5, OSError("disk sneeze")),
        ]
        for err in errors:
            back = pickle.loads(pickle.dumps(err))
            assert type(back) is type(err)
            assert str(back) == str(err)
            assert back.path == err.path


class TestResume:
    def test_resume_under_multiprocess_matches_serial(self, tiny_collection,
                                                      tmp_path):
        """Interrupt after the first run, resume with the mp backend."""
        from repro.robustness.faults import FaultPlan, FaultSpec, inject
        from repro.robustness.errors import FatalFault

        ref = str(tmp_path / "ref")
        IndexingEngine(_cfg(exec_backend="serial")).build(tiny_collection, ref)

        out = str(tmp_path / "resumed")
        plan = FaultPlan(seed=5, specs=(
            FaultSpec(kind="fatal", path_substring="file_00003",
                      stage="build"),
        ))
        with inject(plan):
            with pytest.raises(FatalFault):
                IndexingEngine(_cfg(exec_backend="multiprocess")).build(
                    tiny_collection, out
                )
        assert list_repro_segments() == []  # the abort path swept its rings
        IndexingEngine(_cfg(exec_backend="multiprocess")).build(
            tiny_collection, out, resume=True
        )
        assert _digest(out) == _digest(ref)
