"""Cross-cutting properties: conservation and cross-implementation equality.

These are the reproduction's strongest correctness guarantees: whatever
the configuration — parser counts, indexer mixes, codecs, trie heights —
every token emitted by the parser lands in the index exactly once, and
the heterogeneous engine agrees byte for byte with all five classical
baselines.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.ivory import IvoryIndexer
from repro.baselines.sortbased import SortBasedIndexer
from repro.baselines.spimi import SPIMIIndexer
from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.corpus.synthetic import CollectionSpec, SegmentSpec, generate_collection
from repro.postings.reader import PostingsReader


class TestEngineEqualsBaselines:
    def test_same_index_everywhere(self, tiny_collection, reference_index, tmp_path):
        out = str(tmp_path / "eng")
        IndexingEngine(
            PlatformConfig(num_parsers=2, num_cpu_indexers=2, num_gpus=1,
                           sample_fraction=0.2)
        ).build(tiny_collection, out)
        reader = PostingsReader(out)
        engine_index = {
            term: reader.postings(term) for term in reader.vocabulary()
        }
        assert engine_index == reference_index
        assert IvoryIndexer().build(tiny_collection) == reference_index
        assert SPIMIIndexer(memory_limit_bytes=1 << 14).build(tiny_collection) == reference_index
        assert SortBasedIndexer(memory_limit_bytes=1 << 14).build(tiny_collection) == reference_index


class TestConservation:
    """Every parsed token is indexed exactly once (no loss, no duplication)."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_parsers=st.integers(min_value=1, max_value=4),
        n_cpu=st.integers(min_value=0, max_value=2),
        n_gpu=st.integers(min_value=0, max_value=2),
    )
    def test_token_conservation_random_configs(
        self, tmp_path_factory, seed, n_parsers, n_cpu, n_gpu
    ):
        if n_cpu == 0 and n_gpu == 0:
            n_cpu = 1
        root = tmp_path_factory.mktemp("prop")
        coll = generate_collection(
            CollectionSpec(
                name=f"prop{seed}",
                seed=seed,
                segments=(
                    SegmentSpec(
                        name="s", num_files=2, docs_per_file=4,
                        tokens_per_doc_mean=25, vocab_size=300,
                    ),
                ),
            ),
            str(root),
        )
        out = str(root / "idx")
        result = IndexingEngine(
            PlatformConfig(
                num_parsers=n_parsers, num_cpu_indexers=n_cpu, num_gpus=n_gpu,
                sample_fraction=0.5,
            )
        ).build(coll, out)
        reader = PostingsReader(out)
        indexed_occurrences = sum(
            tf for term in reader.vocabulary() for _, tf in reader.postings(term)
        )
        assert indexed_occurrences == result.token_count
        assert result.split.cpu_tokens + result.split.gpu_tokens == result.token_count
        # Every posting's docID is within the document range.
        for term in list(reader.vocabulary())[:50]:
            for doc, tf in reader.postings(term):
                assert 0 <= doc < result.document_count
                assert tf >= 1


class TestDocOrderInvariant:
    def test_postings_globally_sorted(self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx")
        IndexingEngine(
            PlatformConfig(num_parsers=3, num_cpu_indexers=1, num_gpus=2,
                           sample_fraction=0.3)
        ).build(tiny_collection, out)
        reader = PostingsReader(out)
        for term in reader.vocabulary():
            docs = [d for d, _ in reader.postings(term)]
            assert docs == sorted(docs)
            assert len(docs) == len(set(docs))


@pytest.mark.slow
class TestLargerScale:
    """The tiny fixtures prove correctness at ~400 tokens/doc × 56 docs;
    this re-proves it at ~5× that volume against an independent builder."""

    def test_engine_equals_spimi_at_scale(self, tmp_path):
        from repro.baselines.spimi import SPIMIIndexer
        from repro.corpus.datasets import clueweb09_mini

        coll = clueweb09_mini(str(tmp_path / "data"), scale=0.6)
        out = str(tmp_path / "idx")
        IndexingEngine(
            PlatformConfig(sample_fraction=0.05, files_per_run=3)
        ).build(coll, out)
        reader = PostingsReader(out)
        spimi = SPIMIIndexer(memory_limit_bytes=1 << 18).build(coll)
        assert set(reader.vocabulary()) == set(spimi)
        for term in list(spimi)[::7]:  # every 7th term, full list equality
            assert reader.postings(term) == spimi[term], term
