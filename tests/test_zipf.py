"""Zipf vocabulary/sampler and Heaps' law."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.zipf import ZipfSampler, ZipfVocabulary, heaps_vocabulary_size


class TestVocabulary:
    def test_size_and_uniqueness(self):
        v = ZipfVocabulary(size=2000, seed=1)
        assert len(v) == 2000
        assert len(set(v.terms)) == 2000

    def test_deterministic(self):
        assert ZipfVocabulary(500, seed=5).terms == ZipfVocabulary(500, seed=5).terms

    def test_different_seeds_differ(self):
        assert ZipfVocabulary(500, seed=5).terms != ZipfVocabulary(500, seed=6).terms

    def test_mean_length_near_target(self):
        v = ZipfVocabulary(size=5000, seed=2, mean_length=7.2)
        mean = np.mean([len(t) for t in v.terms])
        assert 5.5 < mean < 9.0

    def test_category_mix(self):
        v = ZipfVocabulary(size=5000, seed=3, number_fraction=0.02, special_fraction=0.01)
        numbers = sum(t[0].isdigit() for t in v.terms)
        specials = sum(any(not ("a" <= c <= "z") for c in t) and not t[0].isdigit() for t in v.terms)
        assert 30 < numbers < 300
        assert 10 < specials < 200

    def test_first_letter_skew(self):
        v = ZipfVocabulary(size=10000, seed=4)
        t_count = sum(t.startswith("t") for t in v.terms)
        z_count = sum(t.startswith("z") for t in v.terms)
        assert t_count > 5 * max(1, z_count)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ZipfVocabulary(0)


class TestSampler:
    def test_zipf_skew(self):
        v = ZipfVocabulary(size=1000, seed=1)
        s = ZipfSampler(v, s=1.0, seed=2)
        ranks = s.sample_ranks(50_000)
        top10 = np.sum(ranks < 10) / len(ranks)
        assert top10 > 0.25  # the head dominates

    def test_exponent_zero_is_uniform(self):
        v = ZipfVocabulary(size=100, seed=1)
        s = ZipfSampler(v, s=0.0, seed=2)
        ranks = s.sample_ranks(50_000)
        head = np.sum(ranks < 10) / len(ranks)
        assert 0.05 < head < 0.15

    def test_terms_come_from_vocabulary(self):
        v = ZipfVocabulary(size=50, seed=1)
        s = ZipfSampler(v, seed=3)
        assert set(s.sample_terms(500)) <= set(v.terms)

    def test_expected_frequency_sums_to_one(self):
        v = ZipfVocabulary(size=200, seed=1)
        s = ZipfSampler(v, seed=1)
        total = sum(s.expected_frequency(r) for r in range(200))
        assert total == pytest.approx(1.0)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(ZipfVocabulary(10, seed=1), s=-1.0)

    def test_deterministic_stream(self):
        v = ZipfVocabulary(size=100, seed=1)
        a = ZipfSampler(v, seed=9).sample_ranks(100)
        b = ZipfSampler(v, seed=9).sample_ranks(100)
        assert np.array_equal(a, b)


class TestHeaps:
    def test_monotone_and_sublinear(self):
        v1 = heaps_vocabulary_size(1e6)
        v2 = heaps_vocabulary_size(1e8)
        assert v2 > v1
        assert v2 / v1 < 100  # sublinear growth

    def test_paper_scale_fit(self):
        # k/β chosen so ClueWeb09's 32.6G tokens ↔ tens of millions of terms.
        v = heaps_vocabulary_size(32_644_508_255)
        assert 3e7 < v < 3e8

    def test_edge_cases(self):
        assert heaps_vocabulary_size(0) == 0
        assert heaps_vocabulary_size(1) >= 1
