"""Step-5 regrouping: the paper's cache-locality transform."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.parsing.regroup import ParsedBatch, regroup

doc_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.binary(min_size=1, max_size=6),
            ),
            max_size=20,
        ),
    ),
    max_size=15,
).map(lambda docs: [(i, toks) for i, (_, toks) in enumerate(docs)])


class TestRegroup:
    def test_paper_output_shape(self):
        """Trie collection i: (Doc_ID1, term1, term2, ...), (Doc_ID2, ...)"""
        docs = [
            (0, [(5, b"x"), (7, b"y"), (5, b"z")]),
            (1, [(5, b"w")]),
        ]
        collections, tokens, chars, _ = regroup(docs)
        assert collections[5] == [(0, [b"x", b"z"]), (1, [b"w"])]
        assert collections[7] == [(0, [b"y"])]
        assert tokens == {5: 3, 7: 1}
        assert chars == {5: 3, 7: 1}

    def test_document_order_preserved_within_collection(self):
        docs = [(i, [(3, f"t{i}".encode())]) for i in range(10)]
        collections, _, _, _ = regroup(docs)
        assert [doc for doc, _ in collections[3]] == list(range(10))

    def test_empty_documents_skipped(self):
        collections, tokens, chars, _ = regroup([(0, []), (1, [(2, b"a")])])
        assert 0 not in {doc for streams in collections.values() for doc, _ in streams}
        assert tokens == {2: 1}

    @given(doc_streams)
    def test_token_conservation(self, docs):
        """Every (doc, suffix) occurrence survives regrouping exactly once."""
        collections, tokens, chars, _ = regroup(docs)
        original: list[tuple[int, int, bytes]] = []
        for doc_id, toks in docs:
            for cidx, suffix in toks:
                original.append((cidx, doc_id, suffix))
        regrouped: list[tuple[int, int, bytes]] = []
        for cidx, streams in collections.items():
            for doc_id, suffixes in streams:
                for suffix in suffixes:
                    regrouped.append((cidx, doc_id, suffix))
        assert sorted(original) == sorted(regrouped)
        assert sum(tokens.values()) == len(original)
        assert sum(chars.values()) == sum(len(s) for _, _, s in original)

    def test_positions_track_token_ordinals(self):
        docs = [
            (0, [(5, b"x"), (7, b"y"), (5, b"z")]),
            (1, [(7, b"w"), (7, b"v")]),
        ]
        collections, _, _, positions = regroup(docs, with_positions=True)
        assert positions[5] == [[0, 2]]
        assert positions[7] == [[1], [0, 1]]
        # positions[cidx] is parallel to collections[cidx].
        for cidx in collections:
            assert len(positions[cidx]) == len(collections[cidx])
            for (d, sufs), pos in zip(collections[cidx], positions[cidx]):
                assert len(sufs) == len(pos)
                assert pos == sorted(pos)

    def test_positions_none_by_default(self):
        _, _, _, positions = regroup([(0, [(1, b"a")])])
        assert positions is None

    @given(doc_streams)
    def test_within_doc_order_preserved(self, docs):
        collections, _, _, _ = regroup(docs)
        for cidx, streams in collections.items():
            for doc_id, suffixes in streams:
                expected = [s for c, s in dict(docs)[doc_id] if c == cidx]
                assert suffixes == expected


class TestParsedBatch:
    def test_totals(self):
        batch = ParsedBatch(parser_id=0, sequence=0, source_file="f")
        (
            batch.collections,
            batch.tokens_per_collection,
            batch.chars_per_collection,
            _,
        ) = regroup([(0, [(1, b"ab"), (2, b"c")])])
        assert batch.total_tokens == 2
        assert batch.total_chars == 3
        assert batch.regrouped

    def test_ungrouped_totals(self):
        batch = ParsedBatch(parser_id=0, sequence=0, source_file="f")
        batch.ungrouped = [(0, [(1, b"ab")]), (1, [(1, b"c"), (2, b"d")])]
        assert batch.total_tokens == 3
        assert not batch.regrouped
