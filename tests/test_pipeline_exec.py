"""Pipelined execution: bounded queues, identical bytes, clean resume.

The contract under test (docs/ARCHITECTURE.md, "Pipeline execution"):
``pipeline_depth > 0`` overlaps parsing with indexing on worker threads,
but the index that comes out — runs, dictionary, doctable, runs.map —
is byte-identical to a serial build, and every deterministic metric
matches too.  Only wall-clock ``timings`` and the ``pipeline.*``
instruments (absent in serial builds) may differ.
"""

from __future__ import annotations

import filecmp
import hashlib
import os

import pytest

from repro.core.config import PIPELINE_DEPTH_ENV, PlatformConfig
from repro.core.engine import IndexingEngine
from repro.obs.schema import METRICS_FILENAME, TRACE_FILENAME, load_metrics
from repro.postings.reader import PostingsReader
from repro.robustness.checkpoint import (
    CHECKPOINT_FILENAME,
    MANIFEST_FILENAME,
    load_checkpoint,
)
from repro.robustness.errors import FatalFault
from repro.robustness.faults import FaultPlan, FaultSpec, inject

_BUILD_LOGS = {MANIFEST_FILENAME, CHECKPOINT_FILENAME,
               METRICS_FILENAME, TRACE_FILENAME}


def _cfg(**overrides) -> PlatformConfig:
    defaults = dict(
        num_parsers=3, num_cpu_indexers=2, num_gpus=2,
        sample_fraction=0.2, files_per_run=2, pipeline_depth=0,
    )
    defaults.update(overrides)
    return PlatformConfig(**defaults)


def _digest(out_dir: str) -> str:
    """One hash over every index artifact (build logs excluded)."""
    h = hashlib.sha256()
    for name in sorted(os.listdir(out_dir)):
        if name in _BUILD_LOGS or os.path.isdir(os.path.join(out_dir, name)):
            continue
        h.update(name.encode())
        with open(os.path.join(out_dir, name), "rb") as fh:
            h.update(fh.read())
    return h.hexdigest()


def _metric_sections(index_dir: str) -> dict:
    """Deterministic metric sections, with the pipelined-only extras cut.

    ``pipeline.*`` gauges/histograms only exist in pipelined builds and
    ``checkpoint.bytes`` tracks the output directory's path length (the
    checkpoint pickle embeds absolute run paths), so neither is
    comparable across modes; everything else must match exactly.
    ``supervisor.*`` / ``shm.ring.*`` / ``shm_san.*`` only appear when
    the CI matrix forces ``REPRO_EXEC_BACKEND=multiprocess`` onto both
    builds, and are wall-clock or path-length dependent (ring result
    frames pickle the run paths) — same cut as ``test_exec_backend``.
    """
    payload = load_metrics(os.path.join(index_dir, METRICS_FILENAME))
    sections = {}
    for section in ("counters", "gauges", "histograms"):
        sections[section] = {
            k: v for k, v in payload[section].items()
            if not k.startswith(("pipeline.", "supervisor.", "shm_san.",
                                 "shm.ring."))
        }
    sections["histograms"].pop("checkpoint.bytes", None)
    return sections


class TestByteIdentical:
    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_pipelined_build_matches_serial(self, depth, tiny_collection, tmp_path):
        serial_dir = str(tmp_path / "serial")
        piped_dir = str(tmp_path / "piped")
        IndexingEngine(_cfg()).build(tiny_collection, serial_dir)
        result = IndexingEngine(_cfg(pipeline_depth=depth)).build(
            tiny_collection, piped_dir
        )
        assert result.document_count == tiny_collection.num_docs
        excluded = {"build.manifest", METRICS_FILENAME, TRACE_FILENAME}
        names = sorted(n for n in os.listdir(serial_dir) if n not in excluded)
        assert names == sorted(
            n for n in os.listdir(piped_dir) if n not in excluded
        )
        for name in names:
            assert filecmp.cmp(
                os.path.join(serial_dir, name),
                os.path.join(piped_dir, name),
                shallow=False,
            ), name
        assert _metric_sections(serial_dir) == _metric_sections(piped_dir)

    def test_pipelined_with_prefetch_and_positions(self, tiny_collection, tmp_path):
        serial_dir = str(tmp_path / "serial")
        piped_dir = str(tmp_path / "piped")
        IndexingEngine(_cfg(positional=True)).build(tiny_collection, serial_dir)
        IndexingEngine(
            _cfg(positional=True, pipeline_depth=3, parse_prefetch=2)
        ).build(tiny_collection, piped_dir)
        assert _digest(serial_dir) == _digest(piped_dir)
        reader = PostingsReader(piped_dir)
        assert reader.is_positional and reader.vocabulary()

    def test_two_pipelined_builds_deterministic(self, tiny_collection, tmp_path):
        # Same-named output dirs under same-length parents: even
        # checkpoint.bytes (which embeds absolute paths) must agree, as
        # must every pipeline.* counter/gauge/histogram — the pipeline
        # instruments are pure functions of the dispatch sequence.
        # (shm.ring.* wait polls/seconds and occupancy are wall-clock
        # measurements, so they stay out even between identical builds
        # when the CI matrix forces the multiprocess backend.)
        a = str(tmp_path / "a" / "idx")
        b = str(tmp_path / "b" / "idx")
        IndexingEngine(_cfg(pipeline_depth=2)).build(tiny_collection, a)
        IndexingEngine(_cfg(pipeline_depth=2)).build(tiny_collection, b)
        assert _digest(a) == _digest(b)
        am = load_metrics(os.path.join(a, METRICS_FILENAME))
        bm = load_metrics(os.path.join(b, METRICS_FILENAME))
        for section in ("counters", "gauges", "histograms"):
            cut = {
                side: {k: v for k, v in payload[section].items()
                       if not k.startswith("shm.ring.")}
                for side, payload in (("a", am), ("b", bm))
            }
            assert cut["a"] == cut["b"], section


class TestPipelineStats:
    def test_stats_surfaced_and_exported(self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx")
        # Pin the threaded backend: the idle accounting asserted below is
        # the worker-*thread* pool's (REPRO_EXEC_BACKEND may say otherwise).
        result = IndexingEngine(
            _cfg(pipeline_depth=3, exec_backend="threaded")
        ).build(tiny_collection, out)
        p = result.pipeline
        assert p is not None
        assert p.depth == 3
        assert p.workers == 4  # 2 CPU shards + 2 simulated GPUs
        assert p.files == tiny_collection.num_files
        assert p.tasks >= p.files  # grouped mode fans each file out
        assert 1 <= p.max_inflight <= 3
        assert sum(p.worker_tasks.values()) == p.tasks
        # Wall-clock pipeline accounting lands in the quarantined
        # timings section, never in the deterministic registry.
        payload = load_metrics(os.path.join(out, METRICS_FILENAME))
        assert any(k.startswith("pipeline.idle.") for k in payload["timings"])
        assert payload["gauges"]["pipeline.depth"] == 3
        assert payload["gauges"]["pipeline.queue_depth"] == 0  # drained
        assert "pipeline.inflight" in payload["histograms"]

    def test_serial_build_has_no_pipeline(self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx")
        result = IndexingEngine(_cfg(exec_backend="serial")).build(
            tiny_collection, out
        )
        assert result.pipeline is None
        payload = load_metrics(os.path.join(out, METRICS_FILENAME))
        assert not any(k.startswith("pipeline.") for k in payload["gauges"])


class TestFaultsUnderPipelining:
    def test_crash_then_resume_byte_identical(self, tiny_collection, tmp_path):
        """Resume × concurrency: prefetch + pipelining + mid-build crash."""
        concurrent = _cfg(pipeline_depth=2, parse_prefetch=2)
        base_out = str(tmp_path / "base")
        IndexingEngine(_cfg()).build(tiny_collection, base_out)
        out = str(tmp_path / "idx")
        plan = FaultPlan(specs=[
            FaultSpec(kind="fatal", path_substring="file_00004", stage="build"),
        ])
        with inject(plan):
            with pytest.raises(FatalFault):
                IndexingEngine(concurrent).build(tiny_collection, out)
        # The quiesced run boundaries left durable state behind.
        state = load_checkpoint(out)
        assert state["run_count"] == 2 and state["next_file_index"] == 4
        result = IndexingEngine(concurrent).build(
            tiny_collection, out, resume=True
        )
        assert result.robustness.resumed_runs == 2
        assert result.run_count == 3
        assert _digest(out) == _digest(base_out)
        assert not os.path.exists(os.path.join(out, CHECKPOINT_FILENAME))

    def test_gpu_failover_quiesces_and_preserves_postings(
        self, tiny_collection, tmp_path
    ):
        base_out = str(tmp_path / "base")
        base_result = IndexingEngine(_cfg()).build(tiny_collection, base_out)
        out = str(tmp_path / "idx")
        plan = FaultPlan(specs=[FaultSpec(kind="gpu_fail", gpu_index=0, file_index=3)])
        with inject(plan):
            result = IndexingEngine(_cfg(pipeline_depth=2)).build(
                tiny_collection, out
            )
        (fo,) = result.robustness.gpu_failovers
        assert fo.gpu_ordinal == 0 and fo.file_index == 3
        base = PostingsReader(base_out)
        degraded = PostingsReader(out)
        assert set(degraded.vocabulary()) == set(base.vocabulary())
        for term in base.vocabulary():
            assert degraded.postings(term) == base.postings(term), term
        assert result.split.gpu_tokens < base_result.split.gpu_tokens


class TestConfig:
    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError, match="pipeline_depth"):
            PlatformConfig(pipeline_depth=-1)

    def test_env_override_sets_default(self, monkeypatch):
        monkeypatch.setenv(PIPELINE_DEPTH_ENV, "5")
        assert PlatformConfig().pipeline_depth == 5
        # An explicit value still wins over the environment.
        assert PlatformConfig(pipeline_depth=0).pipeline_depth == 0

    def test_malformed_env_rejected(self, monkeypatch):
        monkeypatch.setenv(PIPELINE_DEPTH_ENV, "fast")
        with pytest.raises(ValueError, match=PIPELINE_DEPTH_ENV):
            PlatformConfig()

    def test_describe_mentions_pipelining(self):
        assert "pipelined (depth 2)" in PlatformConfig(pipeline_depth=2).describe()
        assert "pipelined" not in PlatformConfig(pipeline_depth=0).describe()
