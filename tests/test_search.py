"""The query layer: boolean, ranked, phrase, and range retrieval."""

from __future__ import annotations

import pytest

from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.corpus.warc import write_packed_file
from repro.corpus.collection import Collection
from repro.search.query import SearchEngine, normalize_query


@pytest.fixture(scope="module")
def handmade_index(tmp_path_factory):
    """A collection with known documents so query results are exact."""
    root = tmp_path_factory.mktemp("searchable")
    docs = [
        # doc 0
        ("u://0", "parallel indexing of inverted files on heterogeneous platforms"),
        # doc 1
        ("u://1", "the indexing pipeline runs parsers and indexers in parallel"),
        # doc 2
        ("u://2", "btree dictionaries with string caches accelerate lookups"),
        # doc 3
        ("u://3", "inverted files map terms to postings lists for retrieval"),
        # doc 4
        ("u://4", "parallel indexing parallel indexing parallel indexing"),
    ]
    path = str(root / "file_00000.warc")
    comp, uncomp = write_packed_file(path, docs, compress=False)
    coll = Collection(
        name="handmade", directory=str(root), files=[path],
        file_segments=["main"], compressed_bytes=comp,
        uncompressed_bytes=uncomp, num_docs=len(docs),
    )
    coll.save_manifest()
    out = str(root / "index")
    result = IndexingEngine(
        PlatformConfig(num_parsers=1, num_cpu_indexers=1, num_gpus=0,
                       sample_fraction=1.0, strip_html=False, positional=True)
    ).build(coll, out)
    return SearchEngine(out, num_docs=result.document_count)


class TestNormalize:
    def test_pipeline_normalization(self):
        assert normalize_query("The Parallel INDEXERS!") == ["parallel", "index"]

    def test_keep_stop_words(self):
        assert "the" in normalize_query("the parser", keep_stop_words=True)

    def test_empty(self):
        assert normalize_query("") == []
        assert normalize_query("the of and") == []


class TestBoolean:
    def test_and(self, handmade_index):
        assert handmade_index.boolean_and("parallel indexing") == [0, 1, 4]
        assert handmade_index.boolean_and("inverted files") == [0, 3]
        assert handmade_index.boolean_and("parallel btree") == []

    def test_or(self, handmade_index):
        assert handmade_index.boolean_or("btree retrieval") == [2, 3]

    def test_not(self, handmade_index):
        assert handmade_index.boolean_not("parallel indexing", "pipeline") == [0, 4]

    def test_unknown_term(self, handmade_index):
        assert handmade_index.boolean_and("zzzznotaword") == []
        assert handmade_index.boolean_or("") == []


class TestRanked:
    def test_tf_scaling(self, handmade_index):
        results = handmade_index.ranked("parallel indexing", k=5)
        assert results[0].doc_id == 4  # tf=3 for both terms
        assert {r.doc_id for r in results} == {0, 1, 4}
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits(self, handmade_index):
        assert len(handmade_index.ranked("parallel indexing", k=1)) == 1

    def test_range_restricted(self, handmade_index):
        results = handmade_index.ranked_in_range("parallel indexing", 0, 1, k=5)
        assert {r.doc_id for r in results} == {0, 1}


class TestBM25:
    def test_bm25_orders_by_relevance(self, handmade_index):
        results = handmade_index.ranked_bm25("parallel indexing", k=5)
        assert results
        assert results[0].doc_id == 4  # highest tf for both terms
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)
        assert all(r.score > 0 for r in results)

    def test_bm25_tf_saturation(self, handmade_index):
        """BM25 saturates tf: doc 4 (tf=3) scores less than 3x doc 0 (tf=1)."""
        results = {r.doc_id: r.score for r in handmade_index.ranked_bm25(
            "parallel indexing", k=5)}
        assert results[4] < 3 * results[0]

    def test_bm25_unknown_term(self, handmade_index):
        assert handmade_index.ranked_bm25("zzznotaword") == []

    def test_doc_lengths_cached(self, handmade_index):
        l1 = handmade_index._doc_lengths()
        l2 = handmade_index._doc_lengths()
        assert l1 is l2
        assert len(l1) == 5
        assert all(v > 0 for v in l1.values())


class TestPhrase:
    def test_exact_phrase(self, handmade_index):
        # "parallel indexing" appears contiguously in docs 0 and 4 but in
        # doc 1 the words are "indexing ... in parallel" (not adjacent).
        assert handmade_index.phrase("parallel indexing") == [0, 4]

    def test_phrase_across_stop_words(self, handmade_index):
        # "parsers and indexers": 'and' is a stop word, removed before
        # positions were assigned, so the content terms are adjacent.
        assert handmade_index.phrase("parsers and indexers") == [1]

    def test_phrase_order_matters(self, handmade_index):
        # Reversed order matches doc 4's repetition and doc 1's
        # "indexers in parallel" ('in' was removed before positions).
        assert handmade_index.phrase("indexing parallel") == [1, 4]
        # Order genuinely matters: docs matching one order but not both.
        assert handmade_index.phrase("parallel indexing") != handmade_index.phrase(
            "indexing parallel"
        )

    def test_single_term_phrase(self, handmade_index):
        assert handmade_index.phrase("btree") == [2]

    def test_phrase_frequency(self, handmade_index):
        freq = handmade_index.phrase_frequency("parallel indexing")
        assert freq == {0: 1, 4: 3}

    def test_phrase_needs_positional_index(self, tmp_path, tiny_collection):
        out = str(tmp_path / "plain")
        result = IndexingEngine(
            PlatformConfig(num_parsers=2, num_cpu_indexers=1, num_gpus=0,
                           sample_fraction=0.3)
        ).build(tiny_collection, out)
        engine = SearchEngine(out, num_docs=result.document_count)
        with pytest.raises(ValueError):
            engine.phrase("any phrase")


class TestInference:
    def test_num_docs_inferred_from_range_map(self, handmade_index):
        inferred = SearchEngine(handmade_index.reader.output_dir)
        assert inferred.num_docs == 5


class TestGallopingIntersection:
    """The conjunctive walk must equal a naive set intersection."""

    def test_known_lists(self):
        g = SearchEngine._gallop_intersect
        assert g([2, 5, 9], [1, 2, 3, 5, 8, 9, 12]) == [2, 5, 9]
        assert g([], [1, 2, 3]) == []
        assert g([1, 2, 3], []) == []
        assert g([4], [1, 2, 3]) == []
        assert g([1, 100], list(range(0, 200, 2))) == [100]

    def test_matches_set_intersection_random(self):
        import random

        rng = random.Random(9)
        for _ in range(200):
            a = sorted(rng.sample(range(500), rng.randint(0, 40)))
            b = sorted(rng.sample(range(500), rng.randint(0, 200)))
            expected = sorted(set(a) & set(b))
            assert SearchEngine._gallop_intersect(a, b) == expected, (a, b)

    def test_boolean_and_uses_it_correctly(self, handmade_index):
        # Same results as before the optimization (cross-checked above).
        assert handmade_index.boolean_and("parallel indexing") == [0, 1, 4]
        assert handmade_index.boolean_and("inverted files retrieval") == [3]
