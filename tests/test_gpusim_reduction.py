"""The Fig 7 warp-parallel comparison + reduction, checked against
sequential binary search."""

from __future__ import annotations

import bisect

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpusim.reduction import (
    REDUCTION_STEPS,
    WARP_SIZE,
    warp_compare_keys,
    warp_find_slot,
    warp_reduce_min,
)

keys_strategy = st.lists(
    st.binary(min_size=1, max_size=5), max_size=31, unique=True
).map(sorted)


class TestCompareKeys:
    def test_lane_results(self):
        lanes = warp_compare_keys(b"m", [b"a", b"m", b"z"])
        assert lanes[:3] == [1, 0, -1]
        assert all(v == -1 for v in lanes[3:])  # +∞ sentinels

    def test_too_many_keys_rejected(self):
        with pytest.raises(ValueError):
            warp_compare_keys(b"x", [b"k"] * 32)

    def test_custom_comparator(self):
        lanes = warp_compare_keys(b"x", [0, 1], compare=lambda q, k: k)  # type: ignore[arg-type]
        assert lanes[0] == 0 and lanes[1] == 1


class TestReduceMin:
    def test_finds_minimum_and_lane(self):
        values = list(range(WARP_SIZE))
        values[17] = -5
        assert warp_reduce_min(values) == (-5, 17)

    def test_tie_resolves_to_lowest_lane(self):
        values = [9] * WARP_SIZE
        values[4] = 1
        values[20] = 1
        assert warp_reduce_min(values) == (1, 4)

    def test_requires_full_warp(self):
        with pytest.raises(ValueError):
            warp_reduce_min([1, 2, 3])

    def test_step_count_is_log2_warp(self):
        assert REDUCTION_STEPS == 5
        assert 2**REDUCTION_STEPS == WARP_SIZE

    @given(st.lists(st.integers(-1000, 1000), min_size=32, max_size=32))
    def test_matches_python_min(self, values):
        val, lane = warp_reduce_min(values)
        assert val == min(values)
        assert lane == values.index(val)


class TestFindSlot:
    def test_empty_node(self):
        assert warp_find_slot(b"x", []) == (0, False)

    def test_exact_hit(self):
        keys = [b"b", b"d", b"f"]
        assert warp_find_slot(b"d", keys) == (1, True)

    def test_insert_positions(self):
        keys = [b"b", b"d", b"f"]
        assert warp_find_slot(b"a", keys) == (0, False)
        assert warp_find_slot(b"c", keys) == (1, False)
        assert warp_find_slot(b"z", keys) == (3, False)

    def test_full_node_31_keys(self):
        keys = [bytes([97 + i]) for i in range(26)] + [b"zz", b"zzz", b"zzzz", b"zzzzz", b"zzzzzz"]
        assert len(keys) == 31
        slot, found = warp_find_slot(b"zzz", keys)
        assert (slot, found) == (27, True)

    @given(keys_strategy, st.binary(min_size=1, max_size=5))
    def test_agrees_with_binary_search(self, keys, query):
        slot, found = warp_find_slot(query, keys)
        expected_slot = bisect.bisect_left(keys, query)
        expected_found = expected_slot < len(keys) and keys[expected_slot] == query
        assert (slot, found) == (expected_slot, expected_found)
