"""Tests for the sampling profiler (``repro.obs.profile``).

Four layers, mirroring the subsystem's contract:

- **Sampler**: deterministic-interval capture, lane naming, drain
  semantics, depth truncation — driven through the injectable
  ``frames_source`` so aggregates are bit-reproducible.
- **Schema**: ``run.profile.json`` round-trips and the validator
  rejects every malformation class (``write_profile`` refuses to
  persist a lie).
- **Exports/reports**: folded text and speedscope JSON are loss-free
  re-renderings; the report ranks the shm codec hot path; the diff
  localizes a regression to the offending function.
- **Gates**: profiling a fixed workload costs ≤ 5% wall clock, and a
  profiled build writes a schema-valid artifact.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

import pytest

from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.obs.profile import (
    Profile,
    SamplingProfiler,
    cumulative_seconds,
    frame_id,
    render_profile_diff,
    render_profile_report,
    self_seconds,
    to_folded,
    to_speedscope,
    top_functions,
    top_regressed,
)
from repro.obs.profile_schema import (
    PROFILE_FILENAME,
    PROFILE_SCHEMA_VERSION,
    build_profile_payload,
    load_profile,
    validate_profile,
    write_profile,
)


def _grab_frame():
    """A real frame object captured inside a known nested call chain."""
    box = {}

    def codec_inner():
        box["frame"] = sys._getframe()

    def ring_outer():
        codec_inner()

    ring_outer()
    return box["frame"]


def _frames_source_for(frame, ident=201):
    return lambda: {ident: frame}


# ---------------------------------------------------------------------------
# Sampler


class TestSamplingProfiler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0)
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=-0.1)

    def test_frame_id_shortens_to_repro_root(self):
        class Code:
            co_filename = os.sep.join(["", "venv", "x", "repro", "core", "engine.py"])
            co_name = "build"
            co_firstlineno = 42

        assert frame_id(Code()) == "repro/core/engine.py:build:42"

    def test_frame_id_foreign_code_keeps_basename(self):
        class Code:
            co_filename = "/usr/lib/python3.11/threading.py"
            co_name = "wait"
            co_firstlineno = 320

        assert frame_id(Code()) == "threading.py:wait:320"

    def test_sample_once_aggregates_injected_frames(self):
        frame = _grab_frame()
        prof = SamplingProfiler(
            interval_s=0.01, lane="engine", frames_source=_frames_source_for(frame)
        )
        for _ in range(3):
            prof.sample_once()
        pid, samples, stacks = prof.drain_delta()
        assert pid == os.getpid()
        # Unknown ident → a named sub-lane, never the bare lane.
        assert list(samples) == ["engine/unnamed"]
        assert samples["engine/unnamed"] == 3
        (lane, frames, count), = stacks
        assert (lane, count) == ("engine/unnamed", 3)
        # Root-first order: the leaf is the innermost call.
        assert frames[-1].startswith("test_profile.py:codec_inner:")
        assert frames[-2].startswith("test_profile.py:ring_outer:")

    def test_primary_ident_maps_to_bare_lane(self):
        frame = _grab_frame()
        prof = SamplingProfiler(
            interval_s=0.01, lane="cpu-0",
            frames_source=_frames_source_for(frame, ident=77),
        )
        prof._primary_ident = 77
        prof.sample_once()
        _, samples, _ = prof.drain_delta()
        assert list(samples) == ["cpu-0"]

    def test_call_site_sets_are_reproducible(self):
        """The determinism contract: same source → identical stack keys;
        only the counts are wall-clock measurements."""
        frame = _grab_frame()

        def run(ticks):
            prof = SamplingProfiler(
                interval_s=0.01, frames_source=_frames_source_for(frame)
            )
            for _ in range(ticks):
                prof.sample_once()
            return prof.drain_delta()

        _, _, stacks_a = run(2)
        _, _, stacks_b = run(5)
        keys_a = {(lane, frames) for lane, frames, _ in stacks_a}
        keys_b = {(lane, frames) for lane, frames, _ in stacks_b}
        assert keys_a == keys_b
        assert [n for _, _, n in stacks_a] != [n for _, _, n in stacks_b]

    def test_drain_clears_and_empty_returns_none(self):
        frame = _grab_frame()
        prof = SamplingProfiler(frames_source=_frames_source_for(frame))
        assert prof.drain_delta() is None
        prof.sample_once()
        assert prof.drain_delta() is not None
        assert prof.drain_delta() is None

    def test_depth_is_truncated_at_the_root(self):
        def deep(n):
            if n == 0:
                return sys._getframe()
            return deep(n - 1)

        frame = deep(200)
        prof = SamplingProfiler(frames_source=_frames_source_for(frame))
        prof.sample_once()
        _, _, stacks = prof.drain_delta()
        (_, frames, _), = stacks
        assert len(frames) == 128
        # The leaf survives; it is the root frames that are dropped.
        assert frames[-1].startswith("test_profile.py:deep:")

    def test_live_sampling_captures_the_primary_thread(self):
        prof = SamplingProfiler(interval_s=0.002, lane="engine")
        prof.start()
        with pytest.raises(RuntimeError):
            prof.start()
        deadline = time.monotonic() + 0.2
        x = 0
        while time.monotonic() < deadline:
            x += 1
        prof.stop()
        prof.stop()  # idempotent
        delta = prof.drain_delta()
        assert delta is not None
        _, samples, _ = delta
        assert samples.get("engine", 0) > 0
        assert not any(
            t.name == "repro-prof-sampler" for t in threading.enumerate()
        )


class TestProfileMerge:
    def test_absorb_merges_lanes_and_records_restart_pids(self):
        prof = Profile(interval_s=0.01)
        prof.absorb(None)  # tolerated
        prof.absorb((100, {"cpu-0": 2}, [("cpu-0", ("a:f:1", "b:g:2"), 2)]))
        prof.absorb((200, {"cpu-0": 3}, [("cpu-0", ("a:f:1", "b:g:2"), 3)]))
        payload = prof.to_payload(meta={"collection": "tiny"})
        assert validate_profile(payload) == []
        assert payload["lanes"]["cpu-0"] == {"pids": [100, 200], "samples": 5}
        (entry,) = payload["stacks"]
        assert entry == {"lane": "cpu-0", "frames": ["a:f:1", "b:g:2"], "count": 5}

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Profile(interval_s=0)


# ---------------------------------------------------------------------------
# Schema


def _valid_payload():
    return build_profile_payload(
        0.01,
        {"engine": 10, "cpu-0": (20, 21)},
        {
            "engine": {("a:f:1", "b:g:2"): 3, ("a:f:1",): 1},
            "cpu-0": {("c:h:3",): 2},
        },
        meta={"collection": "tiny"},
    )


class TestProfileSchema:
    def test_round_trip(self, tmp_path):
        path = write_profile(str(tmp_path / PROFILE_FILENAME), _valid_payload())
        loaded = load_profile(path)
        assert loaded == _valid_payload()
        assert loaded["schema"] == PROFILE_SCHEMA_VERSION
        # Deterministic serialization: a rewrite is byte-identical.
        with open(path, "rb") as fh:
            first = fh.read()
        write_profile(path, loaded)
        with open(path, "rb") as fh:
            assert fh.read() == first

    def test_lane_samples_sum_their_stacks(self):
        payload = _valid_payload()
        assert payload["lanes"]["engine"]["samples"] == 4
        assert payload["lanes"]["cpu-0"]["samples"] == 2

    @pytest.mark.parametrize(
        "mutate,needle",
        [
            (lambda p: p.pop("interval_s"), "missing required section"),
            (lambda p: p.__setitem__("bogus", 1), "unknown section"),
            (lambda p: p.__setitem__("schema", "repro.run.metrics/1"), "is not a"),
            (lambda p: p.__setitem__("schema", "repro.run.profile/9"), "!= supported"),
            (lambda p: p.__setitem__("interval_s", 0), "not positive"),
            (lambda p: p.__setitem__("interval_s", True), "expected a number"),
            (lambda p: p["lanes"]["engine"].__setitem__("pids", []), "pids"),
            (lambda p: p["lanes"]["engine"].__setitem__("samples", -1),
             "non-negative"),
            (lambda p: p["stacks"][0].__setitem__("lane", "ghost"), "not declared"),
            (lambda p: p["stacks"][0].__setitem__("frames", []), "non-empty"),
            (lambda p: p["stacks"][0].__setitem__("count", 0), "positive integer"),
            (lambda p: p["stacks"].append(dict(p["stacks"][0])), "duplicate"),
            (lambda p: p["stacks"][0].__setitem__("count", 99), "sum to"),
        ],
    )
    def test_validator_rejects_malformations(self, mutate, needle):
        payload = _valid_payload()
        mutate(payload)
        problems = validate_profile(payload)
        assert problems, f"expected a problem containing {needle!r}"
        assert any(needle in p for p in problems), problems

    def test_write_refuses_invalid(self, tmp_path):
        payload = _valid_payload()
        payload["interval_s"] = -1
        with pytest.raises(ValueError, match="refusing to write"):
            write_profile(str(tmp_path / PROFILE_FILENAME), payload)
        assert not os.path.exists(str(tmp_path / PROFILE_FILENAME))

    def test_load_rejects_tampered_file(self, tmp_path):
        path = write_profile(str(tmp_path / PROFILE_FILENAME), _valid_payload())
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["stacks"][0]["count"] = 999
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        with pytest.raises(ValueError):
            load_profile(path)


# ---------------------------------------------------------------------------
# Aggregation, exports, reports


def _codec_payload():
    """A payload with frames on and off the shm codec hot path."""
    return build_profile_payload(
        0.01,
        {"engine": 1, "cpu-0": 2},
        {
            "engine": {
                ("repro/core/engine.py:build:10",
                 "repro/parsing/stream_codec.py:encode_batch:227"): 30,
                ("repro/core/engine.py:build:10",
                 "repro/core/shm_ring.py:put_frame:100"): 20,
                ("repro/core/engine.py:build:10",
                 "repro/core/shm_ring.py:put_frame:100",
                 "repro/core/shm_ring.py:_wait:50"): 10,
                ("repro/core/engine.py:build:10",): 5,
            },
            "cpu-0": {
                ("repro/core/mp_worker.py:worker_main:30",
                 "repro/parsing/stream_codec.py:decode_batch:234"): 15,
            },
        },
    )


class TestAggregation:
    def test_self_and_cumulative_seconds(self):
        payload = _codec_payload()
        slf = self_seconds(payload)
        assert slf["repro/parsing/stream_codec.py:encode_batch:227"] == pytest.approx(0.30)
        assert slf["repro/core/shm_ring.py:put_frame:100"] == pytest.approx(0.20)
        assert slf["repro/core/engine.py:build:10"] == pytest.approx(0.05)
        cum = cumulative_seconds(payload)
        # build is on every engine stack: 65 samples × 10ms.
        assert cum["repro/core/engine.py:build:10"] == pytest.approx(0.65)
        # put_frame appears on two stacks (leaf + under _wait).
        assert cum["repro/core/shm_ring.py:put_frame:100"] == pytest.approx(0.30)

    def test_top_functions_modes_and_bad_mode(self):
        payload = _codec_payload()
        top_self = top_functions(payload, mode="self", n=1)
        assert top_self[0][0] == "repro/parsing/stream_codec.py:encode_batch:227"
        top_cum = top_functions(payload, mode="cum", n=1)
        assert top_cum[0][0] == "repro/core/engine.py:build:10"
        with pytest.raises(ValueError):
            top_functions(payload, mode="wall")

    def test_top_regressed_orders_by_delta(self):
        old = {"f": 1.0, "g": 2.0, "gone": 5.0}
        new = {"f": 3.0, "g": 2.5, "fresh": 0.5}
        rows = top_regressed(old, new)
        assert [r[0] for r in rows] == ["f", "fresh", "g"]
        assert rows[0] == ("f", 1.0, 3.0, 2.0)


class TestExports:
    def test_folded_lines_are_lane_prefixed(self):
        text = to_folded(_codec_payload())
        lines = text.splitlines()
        assert text.endswith("\n")
        assert len(lines) == 5
        assert (
            "cpu-0;repro/core/mp_worker.py:worker_main:30;"
            "repro/parsing/stream_codec.py:decode_batch:234 15" in lines
        )
        assert to_folded(build_profile_payload(0.01, {}, {})) == ""

    def test_speedscope_document_is_loss_free(self):
        payload = _codec_payload()
        doc = to_speedscope(payload, name="tiny")
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        assert doc["name"] == "tiny"
        assert [p["name"] for p in doc["profiles"]] == ["cpu-0", "engine"]
        frames = [f["name"] for f in doc["shared"]["frames"]]
        assert len(frames) == len(set(frames))
        for prof, lane_entries in zip(
            doc["profiles"],
            ([e for e in payload["stacks"] if e["lane"] == "cpu-0"],
             [e for e in payload["stacks"] if e["lane"] == "engine"]),
        ):
            assert prof["type"] == "sampled"
            assert len(prof["samples"]) == len(prof["weights"]) == len(lane_entries)
            total = sum(e["count"] for e in lane_entries) * payload["interval_s"]
            assert prof["endValue"] == pytest.approx(total)
            for sample, entry in zip(prof["samples"], lane_entries):
                assert [frames[i] for i in sample] == entry["frames"]


class TestReports:
    def test_report_ranks_the_shm_hot_path(self):
        metrics = {
            "counters": {
                "shm.ring.producer_wait_polls": 12,
                "shm.ring.producer_wait_s": 0.034,
                "shm.ring.consumer_wait_polls": 3,
                "shm.ring.consumer_wait_s": 0.007,
            }
        }
        text = render_profile_report(_codec_payload(), metrics=metrics, top=5)
        assert "profile: 80 sample(s) across 2 lane(s)" in text
        assert "shm codec hot path:" in text
        lines = text.splitlines()
        hot = lines[lines.index("shm codec hot path:") :]
        roles = [line.split()[1] for line in hot if line.startswith("   ")
                 and "role" not in line and "ring waits" not in line]
        # encode (0.30s) outranks chunk-copy (0.20s) outranks decode (0.15s).
        assert roles[:4] == ["encode", "chunk-copy", "decode", "ring-wait"]
        assert "ring waits: producer 12 poll(s) (~0.034s), consumer 3 poll(s)" in text

    def test_report_without_codec_samples_or_metrics(self):
        payload = build_profile_payload(
            0.01, {"engine": 1}, {"engine": {("a:f:1",): 2}}
        )
        text = render_profile_report(payload)
        assert "(no samples landed in shm codec frames)" in text
        assert "ring waits" not in text
        with_metrics = render_profile_report(payload, metrics={"counters": {}})
        assert "ring waits: none recorded" in with_metrics

    def test_diff_localizes_the_regressed_function(self):
        old = build_profile_payload(
            0.01, {"engine": 1},
            {"engine": {("a:f:1", "slow:mod:9"): 10, ("a:f:1",): 10}},
        )
        new = build_profile_payload(
            0.01, {"engine": 1},
            {"engine": {("a:f:1", "slow:mod:9"): 40, ("a:f:1",): 10}},
        )
        text = render_profile_diff(old, new)
        assert "~0.200s -> ~0.500s attributed" in text
        reg = text[text.index("regressed") : text.index("improved")]
        assert "slow:mod:9" in reg
        assert "+  0.300s" in reg
        # The mirror direction lands in "improved".
        back = render_profile_diff(new, old)
        imp = back[back.index("improved") :]
        assert "slow:mod:9" in imp

    def test_diff_notes_disjoint_lanes(self):
        old = build_profile_payload(
            0.01, {"engine": 1, "gpu-0": 2},
            {
                "engine": {("a:f:1",): 10},
                "gpu-0": {("g:k:5",): 7},
            },
        )
        new = build_profile_payload(
            0.01, {"engine": 1, "cpu-0": 2},
            {
                "engine": {("a:f:1",): 10},
                "cpu-0": {("c:k:5",): 4},
            },
        )
        text = render_profile_diff(old, new)
        assert "lane 'gpu-0' only in OLD" in text
        assert "7 sample(s)" in text
        assert "lane 'cpu-0' only in NEW" in text
        assert "4 sample(s)" in text
        # Identical lane sets stay note-free.
        clean = render_profile_diff(old, old)
        assert "only in" not in clean


# ---------------------------------------------------------------------------
# Gates


class TestOverheadGate:
    def test_profiling_costs_at_most_five_percent(self):
        """ISSUE gate: a profiled run of a fixed pure-python workload is
        ≤ 5% slower than unprofiled (min-of-5, plus a 10ms floor for
        timer noise on a loaded machine)."""

        def busy():
            total = 0
            for i in range(1_500_000):
                total += i & 7
            return total

        def measure(profiled):
            best = float("inf")
            for _ in range(5):
                prof = None
                if profiled:
                    prof = SamplingProfiler(interval_s=0.01)
                    prof.start()
                t0 = time.perf_counter()
                busy()
                elapsed = time.perf_counter() - t0
                if prof is not None:
                    prof.stop()
                best = min(best, elapsed)
            return best

        plain = measure(profiled=False)
        profiled = measure(profiled=True)
        assert profiled <= plain * 1.05 + 0.010, (
            f"profiled {profiled:.4f}s vs plain {plain:.4f}s"
        )


class TestProfiledBuild:
    def test_serial_profiled_build_writes_valid_artifact(
            self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx")
        cfg = PlatformConfig(
            sample_fraction=0.2, profile=True, profile_interval_s=0.002
        )
        result = IndexingEngine(cfg).build(tiny_collection, out)
        assert result.profile_path == os.path.join(out, PROFILE_FILENAME)
        payload = load_profile(result.profile_path)
        assert "engine" in payload["lanes"]
        assert payload["interval_s"] == pytest.approx(0.002)
        assert payload["meta"]["collection"] == tiny_collection.name
        # The report renders end to end on a real artifact.
        text = render_profile_report(payload)
        assert "shm codec hot path:" in text

    def test_unprofiled_build_writes_no_artifact(self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx")
        result = IndexingEngine(
            PlatformConfig(sample_fraction=0.2)
        ).build(tiny_collection, out)
        assert result.profile_path is None
        assert not os.path.exists(os.path.join(out, PROFILE_FILENAME))

    def test_multiprocess_profiled_build_merges_worker_lanes(
            self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx")
        cfg = PlatformConfig(
            num_parsers=2, num_cpu_indexers=2, num_gpus=1,
            sample_fraction=0.2, exec_backend="multiprocess",
            profile=True, profile_interval_s=0.002,
        )
        result = IndexingEngine(cfg).build(tiny_collection, out)
        payload = load_profile(result.profile_path)
        lanes = set(payload["lanes"])
        assert "engine" in lanes
        # At least one worker lane made it across the process boundary.
        worker_lanes = {l for l in lanes if l.split("/")[0] != "engine"}
        assert worker_lanes, lanes
        for entry in payload["lanes"].values():
            assert all(p > 0 for p in entry["pids"])
