"""The discrete-event simulator: effects, resources, stores, determinism."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import Get, Put, Request, Simulator, Timeout
from repro.sim.resources import Resource, Store


class TestTimeouts:
    def test_clock_advances(self):
        sim = Simulator()
        times = []

        def proc():
            yield Timeout(1.5)
            times.append(sim.now)
            yield Timeout(2.0)
            times.append(sim.now)

        sim.add_process(proc(), "p")
        end = sim.run()
        assert times == [1.5, 3.5]
        assert end == 3.5

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1)

    def test_until_horizon(self):
        sim = Simulator()

        def proc():
            yield Timeout(100.0)

        sim.add_process(proc(), "slow")
        assert sim.run(until=10.0) == 10.0
        assert sim.run() == 100.0  # resumable past the horizon

    def test_process_result(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return "done"

        p = sim.add_process(proc(), "p")
        sim.run()
        assert p.finished and p.result == "done" and p.finish_time == 1.0

    def test_unknown_effect_rejected(self):
        sim = Simulator()

        def proc():
            yield "not an effect"

        sim.add_process(proc(), "bad")
        with pytest.raises(TypeError):
            sim.run()


class TestResources:
    def test_mutex_serializes(self):
        sim = Simulator()
        disk = Resource("disk", capacity=1)
        grants = []

        def proc(name):
            yield Request(disk)
            grants.append((sim.now, name, "acq"))
            yield Timeout(1.0)
            disk.release()

        sim.add_process(proc("a"), "a")
        sim.add_process(proc("b"), "b")
        sim.run()
        assert [(t, n) for t, n, _ in grants] == [(0.0, "a"), (1.0, "b")]
        assert disk.total_wait_s == 1.0
        assert disk.grants == 2

    def test_fifo_order(self):
        sim = Simulator()
        res = Resource("r", capacity=1)
        order = []

        def holder():
            yield Request(res)
            yield Timeout(5.0)
            res.release()

        def waiter(name, delay):
            yield Timeout(delay)
            yield Request(res)
            order.append(name)
            res.release()

        sim.add_process(holder(), "h")
        sim.add_process(waiter("late", 2.0), "late")
        sim.add_process(waiter("early", 1.0), "early")
        sim.run()
        assert order == ["early", "late"]

    def test_capacity_two(self):
        sim = Simulator()
        res = Resource("r", capacity=2)
        concurrent = []

        def proc():
            yield Request(res)
            concurrent.append(res.in_use)
            yield Timeout(1.0)
            res.release()

        for i in range(3):
            sim.add_process(proc(), f"p{i}")
        sim.run()
        assert max(concurrent) == 2

    def test_release_idle_rejected(self):
        with pytest.raises(RuntimeError):
            Resource("r").release()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource("r", capacity=0)


class TestStores:
    def test_put_get_fifo(self):
        sim = Simulator()
        store = Store("s", capacity=10)
        got = []

        def producer():
            for i in range(5):
                yield Put(store, i)
                yield Timeout(1.0)

        def consumer():
            for _ in range(5):
                item = yield Get(store)
                got.append(item)

        sim.add_process(producer(), "prod")
        sim.add_process(consumer(), "cons")
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_bounded_buffer_backpressure(self):
        sim = Simulator()
        store = Store("s", capacity=1)
        put_times = []

        def producer():
            for i in range(3):
                yield Put(store, i)
                put_times.append(sim.now)

        def consumer():
            for _ in range(3):
                yield Get(store)
                yield Timeout(2.0)

        sim.add_process(producer(), "prod")
        sim.add_process(consumer(), "cons")
        sim.run()
        # First two puts immediate (one handed to consumer, one buffered);
        # the third blocks until the consumer frees a slot at t=2.
        assert put_times == [0.0, 0.0, 2.0]
        assert store.producer_blocked_s == pytest.approx(2.0)

    def test_consumer_blocks_until_put(self):
        sim = Simulator()
        store = Store("s")
        got_at = []

        def producer():
            yield Timeout(3.0)
            yield Put(store, "x")

        def consumer():
            item = yield Get(store)
            got_at.append((sim.now, item))

        sim.add_process(consumer(), "cons")
        sim.add_process(producer(), "prod")
        sim.run()
        assert got_at == [(3.0, "x")]
        assert store.consumer_blocked_s == pytest.approx(3.0)

    def test_deadlock_detected(self):
        sim = Simulator()
        store = Store("s")

        def consumer():
            yield Get(store)  # nobody will ever put

        sim.add_process(consumer(), "stuck")
        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Store("s", capacity=0)


class TestDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=4),
    )
    def test_identical_runs(self, delays, nprocs):
        """Same program → same timeline, twice."""

        def build():
            sim = Simulator()
            res = Resource("r", capacity=1)
            store = Store("s", capacity=2)
            log = []

            def worker(wid):
                for d in delays:
                    yield Request(res)
                    yield Timeout(d)
                    res.release()
                    yield Put(store, (wid, d))

            def sink():
                for _ in range(len(delays) * nprocs):
                    item = yield Get(store)
                    log.append((sim.now, item))

            for w in range(nprocs):
                sim.add_process(worker(w), f"w{w}")
            sim.add_process(sink(), "sink")
            end = sim.run()
            return end, log

        assert build() == build()
