"""Run grouping: multiple collection files per run (Fig 8 batch sizing)."""

from __future__ import annotations

import pytest

from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.postings.reader import PostingsReader


@pytest.mark.parametrize("files_per_run", [1, 2, 4, 100])
def test_grouped_runs_same_index(
    files_per_run, tiny_collection, reference_index, tmp_path
):
    out = str(tmp_path / f"idx{files_per_run}")
    result = IndexingEngine(
        PlatformConfig(
            num_parsers=2, num_cpu_indexers=1, num_gpus=1,
            sample_fraction=0.3, files_per_run=files_per_run,
        )
    ).build(tiny_collection, out)
    expected_runs = -(-tiny_collection.num_files // files_per_run)
    assert result.run_count == expected_runs
    reader = PostingsReader(out)
    assert reader.run_count() == expected_runs
    # Postings are identical regardless of run batching.
    for term, expected in reference_index.items():
        assert reader.postings(term) == expected, term


def test_grouped_runs_preserve_range_narrowing(tiny_collection, tmp_path):
    out = str(tmp_path / "grouped")
    result = IndexingEngine(
        PlatformConfig(num_parsers=2, num_cpu_indexers=1, num_gpus=0,
                       sample_fraction=0.3, files_per_run=2)
    ).build(tiny_collection, out)
    reader = PostingsReader(out)
    term = next(iter(reader.vocabulary()))
    full = reader.postings(term)
    lo, hi = 0, result.document_count // 2
    assert reader.postings_in_range(term, lo, hi) == [
        p for p in full if lo <= p[0] <= hi
    ]


def test_invalid_files_per_run():
    with pytest.raises(ValueError):
        PlatformConfig(files_per_run=0)
