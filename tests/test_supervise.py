"""Supervision policy and bookkeeping (no processes involved).

The mechanism (restart, replay, degrade) is exercised end-to-end in
``test_chaos_mp.py``; here the *decisions* are pinned: restart budgets
are per-slot, backoff is deterministic, poison counting crosses the
threshold exactly once, and every record_* call lands in both the
report and the metrics registry.
"""

from __future__ import annotations

import pytest

from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer
from repro.robustness.retry import RetryPolicy
from repro.robustness.supervise import (
    Supervisor,
    SupervisorPolicy,
    SupervisorReport,
    WorkerFailure,
)


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = SupervisorPolicy()
        assert policy.max_restarts == 2
        assert policy.poison_threshold == 2

    @pytest.mark.parametrize("kwargs", [
        {"max_restarts": -1},
        {"heartbeat_timeout_s": 0.0},
        {"poison_threshold": 0},
        {"ring_capacity_bytes": 16},
        {"start_method": "teleport"},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorPolicy(**kwargs)


class TestRestartBudget:
    def test_budget_is_per_worker(self):
        sup = Supervisor(SupervisorPolicy(max_restarts=1))
        assert sup.allow_restart("cpu-0")
        sup.record_restart("cpu-0", requeued=0)
        assert not sup.allow_restart("cpu-0")
        assert sup.allow_restart("parser-0")  # other slots unaffected

    def test_zero_budget_never_restarts(self):
        sup = Supervisor(SupervisorPolicy(max_restarts=0))
        assert not sup.allow_restart("cpu-0")

    def test_backoff_is_deterministic_and_grows(self):
        policy = SupervisorPolicy(
            restart_backoff=RetryPolicy(max_attempts=5, base_delay_s=0.01)
        )
        a = Supervisor(policy)
        b = Supervisor(policy)
        first_a = a.restart_delay_s("cpu-0")
        first_b = b.restart_delay_s("cpu-0")
        assert first_a == first_b  # same (worker, ordinal) → same delay
        a.record_restart("cpu-0", requeued=0)
        assert a.restart_delay_s("cpu-0") != first_a or True  # ordinal advanced
        assert a.restart_delay_s("cpu-0") >= 0.0

    def test_backoff_differs_across_workers(self):
        sup = Supervisor(SupervisorPolicy())
        # Jitter is seeded from the worker name; the exact values do not
        # matter, only that they are pure functions of (worker, ordinal).
        assert sup.restart_delay_s("cpu-0") == sup.restart_delay_s("cpu-0")


class TestPoison:
    def test_threshold_crossing(self):
        sup = Supervisor(SupervisorPolicy(poison_threshold=2))
        assert not sup.note_task_crash("file.gz::cpu-0")
        assert sup.note_task_crash("file.gz::cpu-0")

    def test_tags_count_independently(self):
        sup = Supervisor(SupervisorPolicy(poison_threshold=2))
        assert not sup.note_task_crash("a::cpu-0")
        assert not sup.note_task_crash("b::cpu-0")

    def test_threshold_one_is_immediate(self):
        sup = Supervisor(SupervisorPolicy(poison_threshold=1))
        assert sup.note_task_crash("a::cpu-0")


class TestRecording:
    @pytest.fixture
    def registry(self):
        reg = MetricsRegistry()
        obs_runtime.install(obs_runtime.Telemetry(tracer=NullTracer(), metrics=reg))
        yield reg
        obs_runtime.uninstall()

    def test_restart_counts_into_report_and_registry(self, registry):
        sup = Supervisor(SupervisorPolicy())
        sup.record_restart("cpu-0", requeued=3)
        assert sup.report.restarts == 1
        assert sup.report.requeued == 3
        counters = registry.snapshot()["counters"]
        assert counters["supervisor.restarts"] == 1
        assert counters["supervisor.requeued"] == 3

    def test_stall_counts_heartbeat_miss(self, registry):
        sup = Supervisor(SupervisorPolicy())
        sup.record_failure(WorkerFailure(
            worker="parser-1", kind="stall", incarnation=1, action="restart"
        ))
        assert sup.report.heartbeat_misses == 1
        assert registry.snapshot()["counters"]["supervisor.heartbeat_misses"] == 1
        assert not sup.report.clean

    def test_crash_does_not_count_heartbeat_miss(self, registry):
        sup = Supervisor(SupervisorPolicy())
        sup.record_failure(WorkerFailure(
            worker="cpu-0", kind="crash", incarnation=1, action="restart"
        ))
        assert sup.report.heartbeat_misses == 0

    def test_degrade_and_poison_bookkeeping(self, registry):
        sup = Supervisor(SupervisorPolicy())
        sup.record_poisoned("bad.gz::cpu-1")
        sup.record_degraded("cpu-1", requeued=2)
        assert sup.report.degraded == 1
        assert sup.report.degraded_slots == ["cpu-1"]
        assert sup.report.poisoned_tasks == ["bad.gz::cpu-1"]
        counters = registry.snapshot()["counters"]
        assert counters["supervisor.degraded"] == 1
        assert counters["supervisor.poisoned"] == 1
        assert counters["supervisor.requeued"] == 2

    def test_recording_safe_without_telemetry(self):
        obs_runtime.uninstall()
        sup = Supervisor(SupervisorPolicy())
        sup.record_restart("cpu-0", requeued=1)  # must not raise
        assert sup.report.restarts == 1

    def test_clean_report(self):
        assert SupervisorReport().clean
