"""Front-coded dictionary persistence ("Dictionary Write")."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dictionary.dictionary import Dictionary, DictionaryShard
from repro.dictionary.serialize import load_dictionary, save_dictionary
from repro.dictionary.trie import TrieTable

terms = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789é"),
    min_size=1,
    max_size=10,
)


class TestRoundTrip:
    def test_basic(self, tmp_path):
        d = Dictionary()
        expected = {}
        for t in ["application", "apple", "applied", "zoo", "01", "-80", "a"]:
            tid, _ = d.add_term(t)
            expected[t] = tid
        path = str(tmp_path / "dict.bin")
        nbytes = save_dictionary(d, path)
        assert nbytes == os.path.getsize(path)
        assert load_dictionary(path) == expected

    def test_empty_dictionary(self, tmp_path):
        path = str(tmp_path / "dict.bin")
        save_dictionary(Dictionary(), path)
        assert load_dictionary(path) == {}

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.bin")
        with open(path, "wb") as fh:
            fh.write(b"NOTADICT")
        with pytest.raises(ValueError):
            load_dictionary(path)

    def test_non_default_trie_height(self, tmp_path):
        d = DictionaryShard(TrieTable(height=2))
        d.add_term("application")
        path = str(tmp_path / "h2.bin")
        save_dictionary(d, path)
        assert "application" in load_dictionary(path)

    def test_front_coding_compresses_shared_prefixes(self, tmp_path):
        d = Dictionary()
        # Many shared-prefix terms in one collection.
        for i in range(200):
            d.add_term(f"prefixsharing{i:04d}")
        path = str(tmp_path / "fc.bin")
        nbytes = save_dictionary(d, path)
        raw = sum(len(t) for t, _ in d.terms())
        assert nbytes < raw  # front-coding beats storing full strings

    @settings(max_examples=30, deadline=None)
    @given(st.lists(terms, max_size=150))
    def test_round_trip_random(self, tmp_path_factory, words):
        d = Dictionary()
        for w in words:
            d.add_term(w)
        path = str(tmp_path_factory.mktemp("ser") / "d.bin")
        save_dictionary(d, path)
        assert load_dictionary(path) == dict(d.terms())
