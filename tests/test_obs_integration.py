"""Telemetry end to end: one real build's artifacts, coverage, CLI.

Complements tests/test_obs.py (component contracts) and the determinism
test in tests/test_engine_integration.py (two identical seeded builds
produce identical counters/gauges/histograms — only ``timings`` and span
timestamps may differ).
"""

from __future__ import annotations

import os

import pytest

from repro.cli import main
from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.obs.schema import (
    METRICS_FILENAME,
    METRICS_SCHEMA_VERSION,
    TRACE_FILENAME,
    load_metrics,
)
from repro.obs.stats import lane_utilization, span_coverage, spans_from_chrome
from repro.obs.trace import load_chrome_trace


def _config(**overrides) -> PlatformConfig:
    defaults = dict(num_parsers=3, num_cpu_indexers=2, num_gpus=2, sample_fraction=0.2)
    defaults.update(overrides)
    return PlatformConfig(**defaults)


@pytest.fixture(scope="module")
def telemetry_build(tmp_path_factory, tiny_collection):
    out = str(tmp_path_factory.mktemp("obs_index"))
    result = IndexingEngine(_config()).build(tiny_collection, out)
    return result, out


class TestArtifacts:
    def test_paths_reported_and_present(self, telemetry_build):
        result, out = telemetry_build
        assert result.metrics_path == os.path.join(out, METRICS_FILENAME)
        assert result.trace_path == os.path.join(out, TRACE_FILENAME)
        assert os.path.exists(result.metrics_path)
        assert os.path.exists(result.trace_path)

    def test_metrics_schema_valid_and_consistent(self, telemetry_build):
        result, out = telemetry_build
        payload = load_metrics(result.metrics_path)  # raises if invalid
        assert payload["schema"] == METRICS_SCHEMA_VERSION
        counters = payload["counters"]
        # The registry's totals agree with the engine's own accounting.
        assert counters["build.docs"] == result.document_count
        assert counters["build.tokens"] == result.token_count
        assert counters["runs.written"] == result.run_count
        assert (
            counters["index.cpu.tokens"] + counters["index.gpu.tokens"]
            == result.token_count
        )
        assert payload["gauges"]["dictionary.terms"] == result.term_count
        assert payload["timings"]["wall_seconds"] > 0

    def test_trace_loads_and_covers_build(self, telemetry_build):
        result, out = telemetry_build
        events = load_chrome_trace(result.trace_path)
        spans = spans_from_chrome(events)
        names = {s.name for s in spans}
        assert {"build", "sampling", "parse_file", "index_batch",
                "write_run"} <= names
        # The acceptance gate: instrumented spans account for >= 95% of
        # the build's wall time.
        assert span_coverage(spans, "build") >= 0.95
        lanes = set(lane_utilization(spans, "build"))
        assert "engine" in lanes
        assert any(lane.startswith("parser-") for lane in lanes)

    def test_engine_result_clock_split(self, telemetry_build):
        result, _ = telemetry_build
        assert result.wall_seconds > 0
        # cpu_seconds sums per-stage buckets; with overlapping workers it
        # may exceed wall time but never collapses to zero.
        assert result.cpu_seconds > 0
        assert result.measured_throughput_mbps > 0

    def test_disabled_telemetry_writes_nothing(self, tiny_collection, tmp_path):
        out = str(tmp_path / "quiet")
        result = IndexingEngine(_config(telemetry=False)).build(tiny_collection, out)
        assert result.metrics_path is None and result.trace_path is None
        names = set(os.listdir(out))
        assert METRICS_FILENAME not in names
        assert TRACE_FILENAME not in names
        # The clock split still works without telemetry.
        assert result.wall_seconds > 0 and result.cpu_seconds > 0


class TestCli:
    def test_stats_on_index_dir(self, telemetry_build, capsys):
        _, out = telemetry_build
        assert main(["stats", out]) == 0
        text = capsys.readouterr().out
        assert "counters:" in text and "build.tokens" in text
        assert "timings (wall-clock" in text

    def test_trace_report(self, telemetry_build, capsys):
        _, out = telemetry_build
        assert main(["trace", out]) == 0
        text = capsys.readouterr().out
        assert "root span 'build'" in text
        assert "lane utilization" in text
        assert "stage totals:" in text

    def test_stats_diff(self, telemetry_build, tiny_collection, tmp_path, capsys):
        _, out = telemetry_build
        other = str(tmp_path / "other")
        IndexingEngine(_config(num_gpus=0)).build(tiny_collection, other)
        assert main(["stats", "--diff", out, other]) == 0
        text = capsys.readouterr().out
        assert "per-stage timings" in text
        assert "index.gpu.tokens" in text  # gpu work disappears in the diff

    def test_verify_reports_robustness_counters(self, telemetry_build, capsys):
        _, out = telemetry_build
        assert main(["verify", out]) == 0
        text = capsys.readouterr().out
        assert "robustness counters" in text
        assert "robustness.checkpoint_saves" in text

    def test_verify_fails_on_damaged_metrics(self, telemetry_build, tmp_path, capsys):
        import shutil

        _, out = telemetry_build
        damaged = str(tmp_path / "damaged")
        shutil.copytree(out, damaged)
        with open(os.path.join(damaged, METRICS_FILENAME), "w") as fh:
            fh.write('{"schema": "other/1"}')
        assert main(["verify", damaged]) == 1
        err = capsys.readouterr().err
        assert "metrics-schema" in err

    def test_stats_without_target_errors(self, capsys):
        assert main(["stats"]) == 2
        assert "collection/index directory" in capsys.readouterr().err
