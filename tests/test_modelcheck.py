"""Tests for the bounded protocol model checker (``repro lint --protocol``).

Two layers: the explorer itself (:mod:`repro.lint.modelcheck`) against a
toy model, and the three shipped protocol models
(:mod:`repro.lint.protocol`) — the correct variants must pass an
exhaustive exploration, and every seeded *bug knob* (the exact mistakes
the checker exists to prevent) must be caught with a counterexample
trace and the right invariant family.
"""

from __future__ import annotations

import pytest

from repro.lint.modelcheck import explore
from repro.lint.protocol import (
    INVARIANT_FAMILIES,
    RingProtocolModel,
    SegmentProtocolModel,
    SupervisorProtocolModel,
    default_models,
    verify_protocol,
)


# ---------------------------------------------------------------------- #
# The explorer, on a toy model
# ---------------------------------------------------------------------- #


class _Counter:
    """Counts 0..limit; optionally violates, optionally deadlocks."""

    name = "counter"

    def __init__(self, limit=3, violate_at=None, deadlock_at=None):
        self.limit = limit
        self.violate_at = violate_at
        self.deadlock_at = deadlock_at

    def initial_states(self):
        return [0]

    def actions(self, s):
        if s == self.deadlock_at:
            return []
        if s < self.limit:
            return [("inc", s + 1)]
        return []

    def invariants(self):
        def check(s):
            if self.violate_at is not None and s == self.violate_at:
                return f"hit forbidden value {s}"
            return None

        return [("no-forbidden-value", check)]

    def is_terminal(self, s):
        return s == self.limit


class TestExplorer:
    def test_clean_model_explores_every_state(self):
        result = explore(_Counter(limit=4))
        assert result.ok
        assert result.complete
        assert result.states == 5
        assert result.transitions == 4
        assert result.terminal_states == 1
        assert result.violations == []
        assert result.deadlocks == []

    def test_violation_carries_a_minimal_trace(self):
        result = explore(_Counter(limit=4, violate_at=2))
        assert not result.ok
        v = result.violations[0]
        assert v.invariant == "no-forbidden-value"
        assert "forbidden" in v.detail
        assert v.trace == ("inc", "inc")
        assert "no-forbidden-value" in v.render()

    def test_nonterminal_dead_end_is_a_bounded_wait_deadlock(self):
        result = explore(_Counter(limit=4, deadlock_at=2))
        assert not result.ok
        assert result.deadlocks
        assert result.violations == []

    def test_state_budget_marks_exploration_incomplete(self):
        result = explore(_Counter(limit=100), max_states=10)
        assert not result.complete
        assert result.states == 10


# ---------------------------------------------------------------------- #
# The shipped models, correct variants
# ---------------------------------------------------------------------- #


class TestCorrectProtocols:
    def test_ring_model_passes_exhaustively(self):
        result = explore(RingProtocolModel())
        assert result.ok, [v.render() for v in result.violations]
        assert result.complete
        assert result.states > 100  # a real interleaving space, not a toy
        assert result.terminal_states > 0

    def test_supervisor_model_passes_exhaustively(self):
        result = explore(SupervisorProtocolModel())
        assert result.ok, [v.render() for v in result.violations]
        assert result.complete

    def test_segment_model_passes_exhaustively(self):
        result = explore(SegmentProtocolModel())
        assert result.ok, [v.render() for v in result.violations]
        assert result.complete

    def test_verify_protocol_reports_all_families(self):
        reports = verify_protocol()
        assert [r.name for r in reports] == [
            "spsc-ring", "supervisor-replay", "segment-ownership"
        ]
        assert all(r.ok for r in reports)
        covered = set()
        for r in reports:
            assert all(r.families.values()), (r.name, r.families)
            covered |= set(r.families)
        # The acceptance contract: every advertised family is actually
        # checked by some model, plus liveness.
        assert set(INVARIANT_FAMILIES) <= covered
        assert "bounded-wait" in covered

    def test_report_to_dict_is_json_shaped(self):
        report = verify_protocol()[0]
        d = report.to_dict()
        assert d["model"] == "spsc-ring"
        assert d["complete"] is True
        assert d["states"] > 0
        assert isinstance(d["families"], dict)
        assert d["violations"] == []

    def test_ring_model_covers_crashes_on_both_roles(self):
        """The default exploration includes at least one producer and one
        consumer crash (the acceptance floor for --protocol)."""
        model = RingProtocolModel()
        assert model.producer_crashes >= 1
        assert model.consumer_crashes >= 1
        assert model.capacity >= 2 * model.frame_len
        labels = set()
        frontier = list(model.initial_states())
        seen = set(frontier)
        while frontier:
            s = frontier.pop()
            for label, succ in model.actions(s):
                labels.add(label)
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        assert "crash.producer" in labels
        assert "crash.consumer" in labels


# ---------------------------------------------------------------------- #
# Seeded mutations: the checker must catch the exact bugs it models
# ---------------------------------------------------------------------- #


_MUTATIONS = [
    (RingProtocolModel(bug="publish-before-copy"), "torn-frame"),
    (RingProtocolModel(bug="overwrite-unread"), "torn-frame"),
    (RingProtocolModel(bug="consumer-early-publish"), "torn-frame"),
    (RingProtocolModel(bug="nonmonotonic-heartbeat"), "heartbeat-monotonicity"),
    (SupervisorProtocolModel(bug="send-before-journal"),
     "lost-frame-under-replay"),
    (SupervisorProtocolModel(bug="no-discard"), "lost-frame-under-replay"),
    (SegmentProtocolModel(bug="no-forget-inherited"), "double-unlink"),
    (SegmentProtocolModel(bug="unlink-without-forget"), "double-unlink"),
]


class TestSeededMutations:
    @pytest.mark.parametrize(
        "model,family", _MUTATIONS,
        ids=[f"{m.name}-{m.bug}" for m, _ in _MUTATIONS],
    )
    def test_mutant_is_caught_with_the_right_family(self, model, family):
        result = explore(model)
        assert not result.ok
        families = {v.invariant for v in result.violations}
        if not families:
            # Liveness-only failures surface as deadlocks.
            assert result.deadlocks
        else:
            assert family in families, families
        if result.violations:
            # Counterexamples are replayable: a non-empty action trace.
            assert result.violations[0].trace

    def test_swapping_journal_and_send_is_caught(self):
        """The acceptance criterion's canonical mutation: journal-write
        happens-before ring-send.  Swapped, a crash between send and
        journal loses the task forever."""
        result = explore(SupervisorProtocolModel(bug="send-before-journal"))
        assert not result.ok
        assert any(
            v.invariant == "lost-frame-under-replay" for v in result.violations
        )

    def test_default_models_are_the_correct_variants(self):
        for model in default_models():
            assert getattr(model, "bug", None) is None
