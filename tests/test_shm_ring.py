"""The SPSC shared-memory ring: framing, liveness, and leak hygiene.

The multiprocess backend's correctness argument leans on three ring
properties pinned here: frames roundtrip exactly (including frames
larger than the ring, which stream through in chunks), a timed-out
``get_frame`` loses no bytes (partial frames resume), and every created
segment is registered so sweeps and orphan scans can find it.
"""

from __future__ import annotations

import threading
from multiprocessing import shared_memory

import pytest

from repro.core.shm_ring import (
    SHM_PREFIX,
    RingSpec,
    RingTimeout,
    ShmRing,
    forget_inherited_segments,
    list_repro_segments,
    orphan_segments,
    sweep_created_segments,
)
from repro.core.shm_san import TRAILER_LEN, RingSanitizerError
from repro.obs.runtime import Telemetry, session


@pytest.fixture
def ring():
    r = ShmRing.create("test", capacity=256)
    yield r
    r.unlink()


class TestFraming:
    def test_small_frame_roundtrip(self, ring):
        ring.put_frame(b"hello")
        assert ring.get_frame() == b"hello"

    def test_empty_frame(self, ring):
        ring.put_frame(b"")
        assert ring.get_frame() == b""

    def test_fifo_order(self, ring):
        for i in range(10):
            ring.put_frame(f"msg-{i}".encode())
        for i in range(10):
            assert ring.get_frame() == f"msg-{i}".encode()

    def test_frame_larger_than_capacity_streams_through(self, ring):
        """A 64 KiB frame through a 256-byte ring: chunked, exact."""
        big = bytes(range(256)) * 256
        consumer_got = []

        def consume():
            consumer_got.append(ring.get_frame())

        t = threading.Thread(target=consume)
        t.start()
        ring.put_frame(big)  # blocks until the consumer drains chunks
        t.join(timeout=30)
        assert not t.is_alive()
        assert consumer_got == [big]

    def test_wraparound_many_frames(self, ring):
        """Total bytes ≫ capacity exercises the circular arithmetic."""
        attached = ShmRing.attach(ring.spec())
        try:
            payloads = [bytes([i % 251]) * (i % 97) for i in range(300)]

            def produce():
                for p in payloads:
                    ring.put_frame(p)

            t = threading.Thread(target=produce)
            t.start()
            for p in payloads:
                assert attached.get_frame(timeout=30) == p
            t.join(timeout=30)
        finally:
            attached.close()


class TestTimeouts:
    def test_get_times_out_to_none(self, ring):
        assert ring.get_frame(timeout=0.05) is None

    def test_partial_frame_survives_timeout(self, ring):
        """Bytes received before a timeout resume on the next call."""
        # Write only the first chunk of a frame bigger than the ring:
        # the consumer times out mid-frame, then the producer finishes.
        big = b"x" * 600
        t = threading.Thread(target=ring.put_frame, args=(big,))
        t.start()
        pieces = None
        deadline = 100
        while pieces is None and deadline:
            pieces = ring.get_frame(timeout=0.01)
            deadline -= 1
        t.join(timeout=30)
        assert pieces == big

    def test_put_times_out_when_full(self, ring):
        ring.put_frame(b"y" * 200)  # fills most of the 256-byte ring
        with pytest.raises(RingTimeout):
            ring.put_frame(b"z" * 200, timeout=0.05)

    def test_on_wait_callback_runs_while_polling(self, ring):
        calls = []
        ring.get_frame(timeout=0.05, on_wait=lambda: calls.append(1))
        assert calls


class TestHeartbeats:
    def test_beats_are_independent_counters(self, ring):
        assert ring.beats("producer") == 0
        assert ring.beats("consumer") == 0
        ring.beat("producer")
        ring.beat("producer")
        ring.beat("consumer")
        assert ring.beats("producer") == 2
        assert ring.beats("consumer") == 1

    def test_beats_visible_across_attach(self, ring):
        attached = ShmRing.attach(ring.spec())
        try:
            attached.beat("producer")
            assert ring.beats("producer") == 1
        finally:
            attached.close()


class TestSegmentHygiene:
    def test_created_segment_is_listed_then_unlinked(self):
        r = ShmRing.create("hygiene", capacity=64)
        assert r.name in list_repro_segments()
        r.unlink()
        assert r.name not in list_repro_segments()

    def test_sweep_reclaims_unclosed_segment(self):
        r = ShmRing.create("leak", capacity=64)
        name = r.name
        swept = sweep_created_segments()
        assert name in swept
        assert name not in list_repro_segments()
        assert sweep_created_segments() == []  # idempotent

    def test_forget_inherited_makes_sweep_a_noop(self):
        """What a forked worker does: disown, never unlink."""
        r = ShmRing.create("inherit", capacity=64)
        try:
            forget_inherited_segments()
            assert sweep_created_segments() == []
            assert r.name in list_repro_segments()  # segment untouched
        finally:
            # Re-acquire ownership path: unlink directly.
            r.unlink()

    def test_orphan_scan_flags_dead_pid(self):
        fake = f"{SHM_PREFIX}_999999999_0_ghost"
        seg = shared_memory.SharedMemory(name=fake, create=True, size=64)
        try:
            assert fake in orphan_segments()
        finally:
            seg.close()
            seg.unlink()

    def test_live_pid_segment_is_not_an_orphan(self):
        r = ShmRing.create("alive", capacity=64)
        try:
            assert r.name not in orphan_segments()
        finally:
            r.unlink()

    def test_malformed_repro_name_counts_as_orphan(self):
        """A ``repro_*`` segment with no parsable creator pid cannot be
        proven live, so the scan must flag it."""
        fake = "repro_malformed_no_pid_here"
        seg = shared_memory.SharedMemory(name=fake, create=True, size=64)
        try:
            assert fake in list_repro_segments()
            assert fake in orphan_segments()
        finally:
            seg.close()
            seg.unlink()

    def test_non_repro_segments_are_invisible(self):
        """Foreign shared memory is never listed, flagged, or swept."""
        foreign = "unrelated_app_segment"
        seg = shared_memory.SharedMemory(name=foreign, create=True, size=64)
        try:
            assert foreign not in list_repro_segments()
            assert foreign not in orphan_segments()
            assert foreign not in sweep_created_segments()
            # Still attachable afterwards: the sweep really left it alone.
            probe = shared_memory.SharedMemory(name=foreign)
            probe.close()
        finally:
            seg.close()
            seg.unlink()

    def test_sweep_after_forget_only_reclaims_new_segments(self):
        """A forked worker forgets inherited segments, then creates
        nothing of its own — but if it *did* create one, a later sweep
        must reclaim only that one."""
        inherited = ShmRing.create("inherited", capacity=64)
        try:
            forget_inherited_segments()
            own = ShmRing.create("own", capacity=64)
            swept = sweep_created_segments()
            assert swept == [own.name]
            assert inherited.name in list_repro_segments()
        finally:
            inherited.unlink()


class TestRingSanitizer:
    """Unit coverage for ``REPRO_SANITIZE=ring`` (see repro.core.shm_san).

    The chaos-level guarantees (byte-identity, crash survival, counters
    in run.metrics.json) live in test_chaos_mp.py; these tests pin the
    per-frame mechanics on a single ring.
    """

    @pytest.fixture
    def san_ring(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "ring")
        r = ShmRing.create("san", capacity=256)
        yield r
        r.unlink()

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        r = ShmRing.create("plain", capacity=64)
        try:
            assert r._san is None
        finally:
            r.unlink()

    def test_roundtrip_is_transparent(self, san_ring):
        consumer = ShmRing.attach(san_ring.spec())
        try:
            assert consumer._san is not None
            for payload in (b"hello", b"", b"x" * 100):
                san_ring.put_frame(payload, timeout=5)
                assert consumer.get_frame(timeout=5) == payload
        finally:
            consumer.close()

    def test_trailer_travels_inside_the_frame(self, san_ring):
        """The stamped frame is 8 bytes longer on the wire."""
        san_ring.put_frame(b"abcd", timeout=5)
        # tail advanced by len-prefix + payload + trailer
        assert san_ring._load(0) == 4 + 4 + TRAILER_LEN

    def test_corrupted_payload_is_caught(self, san_ring):
        consumer = ShmRing.attach(san_ring.spec())
        try:
            san_ring.put_frame(b"corruptme", timeout=5)
            san_ring._shm.buf[32 + 4 + 2] ^= 0xFF  # flip one data byte
            with pytest.raises(RingSanitizerError, match="CRC"):
                consumer.get_frame(timeout=5)
        finally:
            consumer.close()

    def test_duplicate_consumer_is_a_sequence_error(self, san_ring):
        """Two attached consumers violate SPSC: the second one sees a
        sequence number it never handed out."""
        first = ShmRing.attach(san_ring.spec())
        second = ShmRing.attach(san_ring.spec())
        try:
            san_ring.put_frame(b"one", timeout=5)
            assert first.get_frame(timeout=5) == b"one"
            san_ring.put_frame(b"two", timeout=5)
            with pytest.raises(RingSanitizerError, match="sequence"):
                second.get_frame(timeout=5)
        finally:
            first.close()
            second.close()

    def test_use_after_unlink_is_caught(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "ring")
        r = ShmRing.create("uaf", capacity=64)
        r.unlink()
        with pytest.raises(RingSanitizerError, match="unlinked"):
            r.put_frame(b"zombie")
        with pytest.raises(RingSanitizerError, match="unlinked"):
            r.get_frame(timeout=0.01)

    def test_put_after_timed_out_put_is_an_overlapping_write(self, san_ring):
        san_ring.put_frame(b"y" * 200, timeout=5)  # nearly fill the ring
        with pytest.raises(RingTimeout):
            san_ring.put_frame(b"z" * 200, timeout=0.05)
        # The endpoint is poisoned: a partial frame is pending, so the
        # backend must recreate the ring, never write to it again.
        with pytest.raises(RingSanitizerError, match="overlapping"):
            san_ring.put_frame(b"after", timeout=0.05)

    def test_counters_flow_through_telemetry(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "ring")
        with session(Telemetry.create()) as t:
            r = ShmRing.create("counted", capacity=256)
            try:
                r.put_frame(b"a", timeout=5)
                r.put_frame(b"b", timeout=5)
                assert r.get_frame(timeout=5) == b"a"
            finally:
                r.unlink()
            counters = t.metrics.snapshot()["counters"]
        assert counters["shm_san.frames_stamped"] == 2
        assert counters["shm_san.frames_verified"] == 1
        assert "shm_san.seq_errors" not in counters


class TestRingTelemetry:
    """The ``shm.ring.*`` metrics: present when armed, invisible when not.

    The hard property is *byte identity*: telemetry observes ring state
    but never touches ring bytes, so an identical operation sequence
    leaves an identical segment whether or not a session is installed.
    """

    @staticmethod
    def _drive(r: ShmRing) -> None:
        r.put_frame(b"alpha")
        r.put_frame(b"beta--beta")
        assert r.get_frame() == b"alpha"

    def test_ring_bytes_identical_with_and_without_telemetry(self):
        plain = ShmRing.create("plain", capacity=256)
        try:
            self._drive(plain)
            plain_bytes = bytes(plain._buf)
        finally:
            plain.unlink()
        with session(Telemetry.create()):
            observed = ShmRing.create("observed", capacity=256)
            try:
                self._drive(observed)
                observed_bytes = bytes(observed._buf)
            finally:
                observed.unlink()
        assert observed_bytes == plain_bytes

    def test_disabled_telemetry_resolves_to_no_registry(self):
        from repro.core.shm_ring import _ring_metrics

        assert _ring_metrics() is None

    def test_put_records_frame_size_and_occupancy(self):
        with session(Telemetry.create()) as t:
            r = ShmRing.create("sized", capacity=256)
            try:
                self._drive(r)
            finally:
                r.unlink()
            snap = t.metrics.snapshot()
        hists = snap["histograms"]
        assert "shm.ring.frame_bytes" in hists
        assert "shm.ring.occupancy_bytes" in hists
        # Two puts, no waits on an uncontended ring.
        assert "shm.ring.producer_wait_polls" not in snap["counters"]

    def test_timed_out_get_flushes_consumer_wait_counters(self):
        with session(Telemetry.create()) as t:
            r = ShmRing.create("waited", capacity=256)
            try:
                assert r.get_frame(timeout=0.05) is None
            finally:
                r.unlink()
            counters = t.metrics.snapshot()["counters"]
        assert counters["shm.ring.consumer_wait_polls"] >= 1
        assert counters["shm.ring.consumer_wait_s"] > 0

    def test_timed_out_put_flushes_producer_wait_counters(self):
        with session(Telemetry.create()) as t:
            r = ShmRing.create("full", capacity=256)
            try:
                r.put_frame(b"y" * 200)
                with pytest.raises(RingTimeout):
                    r.put_frame(b"z" * 200, timeout=0.05)
            finally:
                r.unlink()
            counters = t.metrics.snapshot()["counters"]
        assert counters["shm.ring.producer_wait_polls"] >= 1
        assert counters["shm.ring.producer_wait_s"] > 0

    def test_edge_labelled_ring_emits_per_edge_wait_counters(self):
        with session(Telemetry.create()) as t:
            r = ShmRing.create("edged", capacity=256, edge="cpu-0.result")
            try:
                assert r.get_frame(timeout=0.05) is None
            finally:
                r.unlink()
            counters = t.metrics.snapshot()["counters"]
        assert counters["shm.ring.edge.cpu-0.result.consumer_wait_s"] > 0
        # Spec roundtrip carries the edge to the attaching process.
        spec = RingSpec(name="x", capacity=256, edge="cpu-0.result")
        assert spec.edge == "cpu-0.result"

    # Frames chosen so the third put wraps the head/tail boundary on a
    # 32-byte ring: 12+4 then 8+4 bytes fill to offset 28; after both
    # are consumed, the 20+4-byte frame starts at pos 28 and wraps.
    @staticmethod
    def _drive_wrapping(r: ShmRing) -> None:
        r.put_frame(b"a" * 12)
        r.put_frame(b"b" * 8)
        assert r.get_frame() == b"a" * 12
        assert r.get_frame() == b"b" * 8
        r.put_frame(b"c" * 20)
        assert r.get_frame() == b"c" * 20

    def test_histograms_across_wraparound(self):
        with session(Telemetry.create()) as t:
            r = ShmRing.create("wrapped", capacity=32)
            try:
                self._drive_wrapping(r)
            finally:
                r.unlink()
            snap = t.metrics.snapshot()
        frame_hist = snap["histograms"]["shm.ring.frame_bytes"]
        occ_hist = snap["histograms"]["shm.ring.occupancy_bytes"]
        assert frame_hist["count"] == 3
        assert occ_hist["count"] == 3
        # Payload sizes survive the wrap: 12 + 8 + 20.
        assert frame_hist["sum"] == 40
        # Occupancy at each put: 0, 16 (first frame unread), 0.
        assert occ_hist["sum"] == 16

    def test_ring_bytes_identical_across_wraparound_with_telemetry(self):
        plain = ShmRing.create("plain-wrap", capacity=32)
        try:
            self._drive_wrapping(plain)
            plain_bytes = bytes(plain._buf)
        finally:
            plain.unlink()
        with session(Telemetry.create()):
            observed = ShmRing.create("obs-wrap", capacity=32, edge="w.result")
            try:
                self._drive_wrapping(observed)
                observed_bytes = bytes(observed._buf)
            finally:
                observed.unlink()
        assert observed_bytes == plain_bytes
