"""Calibration audit: the cost constants still fit the paper's numbers."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import (
    PAPER_TARGETS,
    audit_calibration,
    derive_cpu_costs,
)
from repro.core.costs import CostConstants


class TestAudit:
    @pytest.fixture(scope="class")
    def audit(self):
        return audit_calibration()

    def test_all_targets_within_tolerance(self, audit):
        failures = {
            key: f"paper {paper:.2f}, ours {ours:.2f} ({dev:+.1%})"
            for key, (paper, ours, dev, ok) in audit.items()
            if not ok
        }
        assert not failures, failures

    def test_every_target_measured(self, audit):
        assert set(audit) == {t.key for t in PAPER_TARGETS}

    def test_detects_a_broken_constant(self):
        """Halving the disk bandwidth must trip the read-time target."""
        broken = CostConstants(disk_read_bytes_per_s=50e6)
        audit = audit_calibration(broken)
        assert not audit["read_s"][3]


class TestDerivation:
    def test_contention_matches_shipped_constant(self):
        facts = derive_cpu_costs()
        # Table IV: 229.08/129.53 = 1.77× → γ = 2/s − 1 ≈ 0.131.
        assert facts["two_thread_speedup"] == pytest.approx(1.769, abs=0.01)
        assert facts["bandwidth_contention"] == pytest.approx(
            CostConstants().cpu_bandwidth_contention, abs=0.01
        )

    def test_single_thread_file_time(self):
        facts = derive_cpu_costs()
        # ~1GB file at 129.53 MB/s ≈ 7.5 s.
        assert facts["single_thread_seconds_per_file"] == pytest.approx(7.5, abs=0.5)
