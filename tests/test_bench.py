"""The ``repro bench`` harness: schema, protocol, gate, trajectory.

Pins the acceptance behavior of the perf-observability subsystem
(docs/OBSERVABILITY.md, "Benchmark protocol"):

- the hand-rolled ``repro.bench.result/1`` validator accepts what the
  harness writes and rejects structural damage;
- ``run_suite`` implements the pinned protocol (warmup discarded, N
  timed repetitions, inclusive-quartile stats, per-scenario stage
  timings) and refuses unmeasurable configurations;
- the noise-aware gate: re-comparing a file against itself exits 0, a
  synthetically slowed copy exits 1, and jitter under the IQR-derived
  noise floor never gates;
- both result formats normalize (``BENCH_BASELINE.json``'s
  pytest-benchmark shape and the native one), so the trajectory spans
  the repo's whole perf history;
- the empty-collection build degrades to throughput 0.0 with a clean
  metrics summary (the satellite bugfix regression test).
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.cli import main
from repro.obs import bench
from repro.obs.bench import (
    BenchContext,
    BenchOp,
    Scenario,
    _quartiles,
    compare_results,
    load_results,
    machine_fingerprint,
    regression_gate,
    render_trajectory,
    run_suite,
)
from repro.obs.bench_schema import (
    BENCH_SCHEMA_VERSION,
    load_bench,
    validate_bench,
    write_bench,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_scenario(name: str, op, **kwargs) -> Scenario:
    return Scenario(name=name, prepare=lambda ctx: BenchOp(op=op, **kwargs))


def synthetic_payload(medians: dict[str, float], iqr: float = 0.0) -> dict:
    """A valid native payload with pinned medians (no timing involved)."""
    scenarios = []
    for name, median in medians.items():
        half = iqr / 2
        seconds = [median - half, median, median + half]
        scenarios.append({
            "name": name,
            "warmup": 1,
            "repetitions": 3,
            "seconds": seconds,
            "stats": {
                "min": seconds[0], "max": seconds[2],
                "mean": median, "median": median,
                "q1": median - half / 2, "q3": median + half / 2,
                "iqr": iqr / 2,
            },
            "stage_timings": {"stage.parse": median / 2, "stage.index": median / 2},
        })
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "machine_info": machine_fingerprint(),
        "protocol": {"seed": 1234, "warmup": 1, "repetitions": 3, "scale": 0.25},
        "scenarios": scenarios,
    }


class TestSchema:
    def test_harness_shape_validates(self):
        assert validate_bench(synthetic_payload({"a": 0.5, "b": 1.0})) == []

    def test_missing_sections(self):
        problems = validate_bench({"schema": BENCH_SCHEMA_VERSION})
        text = "; ".join(problems)
        assert "machine_info" in text and "protocol" in text and "scenarios" in text

    def test_unknown_section_rejected(self):
        payload = synthetic_payload({"a": 0.5})
        payload["extra"] = {}
        assert any("unknown section" in p for p in validate_bench(payload))

    def test_wrong_schema_version(self):
        payload = synthetic_payload({"a": 0.5})
        payload["schema"] = "repro.bench.result/99"
        assert any("version" in p for p in validate_bench(payload))
        payload["schema"] = "something.else/1"
        assert any("not a" in p for p in validate_bench(payload))

    def test_unordered_stats_rejected(self):
        payload = synthetic_payload({"a": 0.5})
        payload["scenarios"][0]["stats"]["min"] = 2.0
        assert any("not ordered" in p for p in validate_bench(payload))

    def test_negative_iqr_rejected(self):
        payload = synthetic_payload({"a": 0.5})
        payload["scenarios"][0]["stats"]["iqr"] = -0.1
        assert any("iqr" in p for p in validate_bench(payload))

    def test_seconds_repetitions_mismatch(self):
        payload = synthetic_payload({"a": 0.5})
        payload["scenarios"][0]["seconds"].append(0.5)
        assert any("declared repetition" in p for p in validate_bench(payload))

    def test_negative_duration_rejected(self):
        payload = synthetic_payload({"a": 0.5})
        payload["scenarios"][0]["seconds"][0] = -1.0
        assert any("negative duration" in p for p in validate_bench(payload))

    def test_duplicate_scenario_names(self):
        payload = synthetic_payload({"a": 0.5})
        payload["scenarios"].append(copy.deepcopy(payload["scenarios"][0]))
        assert any("duplicate" in p for p in validate_bench(payload))

    def test_missing_stage_timings_rejected(self):
        payload = synthetic_payload({"a": 0.5})
        del payload["scenarios"][0]["stage_timings"]
        assert any("stage_timings" in p for p in validate_bench(payload))

    def test_critical_path_block_shape_is_gated(self):
        payload = synthetic_payload({"a": 0.5})
        entry = payload["scenarios"][0]
        entry["critical_path"] = {
            "backend": "multiprocess", "wall_s": 2.0, "path_s": 2.0,
            "blame_s": {"ring-wait": 1.5, "index": 0.5},
            "top_resource": "ring-wait",
        }
        assert validate_bench(payload) == []
        entry["critical_path"]["blame_s"]["index"] = -1
        assert any("blame_s" in p for p in validate_bench(payload))
        entry["critical_path"] = {"backend": ""}
        problems = validate_bench(payload)
        assert any("critical_path.backend" in p for p in problems)
        assert any("critical_path.wall_s" in p for p in problems)

    def test_write_refuses_invalid_and_roundtrips(self, tmp_path):
        path = str(tmp_path / "BENCH_T.json")
        with pytest.raises(ValueError, match="refusing to write"):
            write_bench(path, {"schema": BENCH_SCHEMA_VERSION})
        assert not os.path.exists(path)
        payload = synthetic_payload({"a": 0.5})
        write_bench(path, payload)
        assert load_bench(path)["scenarios"][0]["name"] == "a"


class TestProtocol:
    def test_quartiles_inclusive(self):
        q1, med, q3 = _quartiles([1.0, 2.0, 3.0, 4.0, 5.0])
        assert (q1, med, q3) == (2.0, 3.0, 4.0)
        q1, med, q3 = _quartiles([4.0, 1.0, 3.0, 2.0])
        assert (q1, med, q3) == (1.75, 2.5, 3.25)
        q1, med, q3 = _quartiles([7.0])
        assert (q1, med, q3) == (7.0, 7.0, 7.0)

    def test_run_suite_counts_and_stats(self, tmp_path):
        calls = {"n": 0}

        def op():
            calls["n"] += 1
            return calls["n"]

        payload = run_suite(
            {"counted": make_scenario("counted", op,
                                      stage_timings={"stage.x": 1.0},
                                      bytes_processed=10_000_000)},
            data_dir=str(tmp_path), repetitions=3, warmup=2,
        )
        # warmup calls happen but are not measured
        assert calls["n"] == 5
        entry = payload["scenarios"][0]
        assert entry["repetitions"] == 3 and len(entry["seconds"]) == 3
        assert entry["stats"]["min"] <= entry["stats"]["median"] <= entry["stats"]["max"]
        assert entry["stage_timings"] == {"stage.x": 1.0}
        assert entry["bytes_processed"] == 10_000_000
        assert entry["throughput_mbps"] > 0
        assert validate_bench(payload) == []

    def test_stage_timings_callable_gets_last_result(self, tmp_path):
        seen = []

        def timings(last):
            seen.append(last)
            return {"stage.y": float(last)}

        payload = run_suite(
            {"cb": Scenario(name="cb", prepare=lambda ctx: BenchOp(
                op=lambda: 7, stage_timings=timings))},
            data_dir=str(tmp_path), repetitions=3, warmup=0,
        )
        assert seen == [7]
        assert payload["scenarios"][0]["stage_timings"] == {"stage.y": 7.0}

    def test_repetition_floor_enforced(self, tmp_path):
        with pytest.raises(ValueError, match="floor is 3"):
            run_suite({"a": make_scenario("a", lambda: None)},
                      data_dir=str(tmp_path), repetitions=2)

    def test_unknown_only_name_raises(self, tmp_path):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_suite({"a": make_scenario("a", lambda: None)},
                      data_dir=str(tmp_path), only=["nope"])

    def test_empty_registry_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no scenarios"):
            run_suite({}, data_dir=str(tmp_path))

    def test_declared_suite_registers_five_scenarios(self):
        bench.load_scenario_modules(os.path.join(REPO, "benchmarks"))
        names = set(bench.registered_scenarios())
        assert {"fig10_parser_sweep", "fig11_per_file_series",
                "fig12_comparison", "merge_index_mini",
                "search_ranked_top10"} <= names


class TestGate:
    def test_regression_gate_truth_table(self):
        # 10% bar: a 5% slip holds, a 20% slip gates.
        assert not regression_gate(1.0, 1.05, rel_threshold=0.10)
        assert regression_gate(1.0, 1.20, rel_threshold=0.10)
        # the IQR noise floor absorbs what the relative bar would flag
        assert not regression_gate(1.0, 1.20, rel_threshold=0.10, noise_floor=0.5)
        # improvements never gate
        assert not regression_gate(1.0, 0.5)

    def test_self_compare_is_clean(self, tmp_path):
        path = str(tmp_path / "BENCH_A.json")
        write_bench(path, synthetic_payload({"a": 0.5, "b": 1.0}))
        cmp = compare_results(load_results(path), load_results(path))
        assert cmp.ok and cmp.regressions == []
        assert "no regressions" in cmp.text

    def test_slowdown_gates_and_localizes(self, tmp_path):
        old = str(tmp_path / "BENCH_A.json")
        new = str(tmp_path / "BENCH_B.json")
        write_bench(old, synthetic_payload({"a": 0.5, "b": 1.0}))
        slowed = synthetic_payload({"a": 0.5, "b": 1.0})
        entry = slowed["scenarios"][1]
        entry["seconds"] = [s * 2 for s in entry["seconds"]]
        entry["stats"] = {k: v * 2 for k, v in entry["stats"].items()}
        entry["stage_timings"]["stage.index"] *= 4  # the culprit stage
        write_bench(new, slowed)
        cmp = compare_results(load_results(old), load_results(new))
        assert cmp.regressions == ["b"]
        assert "REGRESSED" in cmp.text
        assert "stage.index" in cmp.text  # localization hint names the stage

    def test_slowdown_localizes_to_a_critical_path_resource(self, tmp_path):
        old_payload = synthetic_payload({"b": 1.0})
        slowed = synthetic_payload({"b": 1.0})
        entry = slowed["scenarios"][0]
        entry["seconds"] = [s * 2 for s in entry["seconds"]]
        entry["stats"] = {k: v * 2 for k, v in entry["stats"].items()}
        old_payload["scenarios"][0]["critical_path"] = {
            "backend": "multiprocess", "wall_s": 1.0, "path_s": 1.0,
            "blame_s": {"index": 0.6, "ring-wait": 0.4},
            "top_resource": "index",
        }
        entry["critical_path"] = {
            "backend": "multiprocess", "wall_s": 2.0, "path_s": 2.0,
            "blame_s": {"index": 0.6, "ring-wait": 1.4},
            "top_resource": "ring-wait",
        }
        old = str(tmp_path / "BENCH_A.json")
        new = str(tmp_path / "BENCH_B.json")
        write_bench(old, old_payload)
        write_bench(new, slowed)
        cmp = compare_results(load_results(old), load_results(new))
        assert cmp.regressions == ["b"]
        assert "slowest-growing resource ring-wait" in cmp.text

    def test_noise_floor_absorbs_jitter(self, tmp_path):
        old = str(tmp_path / "BENCH_A.json")
        new = str(tmp_path / "BENCH_B.json")
        # 30% slower — but the scenario's own IQR is huge, so no gate.
        write_bench(old, synthetic_payload({"a": 1.0}, iqr=0.8))
        write_bench(new, synthetic_payload({"a": 1.3}, iqr=0.8))
        assert compare_results(load_results(old), load_results(new)).ok

    def test_machine_mismatch_warns(self, tmp_path):
        old_payload = synthetic_payload({"a": 0.5})
        new_payload = synthetic_payload({"a": 0.5})
        old_payload["machine_info"] = {"cpu": {"brand_raw": "Elder CPU"}}
        new_payload["machine_info"] = {"cpu": {"brand_raw": "Newer CPU"}}
        old = str(tmp_path / "BENCH_A.json")
        new = str(tmp_path / "BENCH_B.json")
        write_bench(old, old_payload)
        write_bench(new, new_payload)
        cmp = compare_results(load_results(old), load_results(new))
        assert cmp.ok and any("machine mismatch" in w for w in cmp.warnings)

    def test_cli_exit_codes(self, tmp_path, capsys, monkeypatch):
        """The acceptance pin: self-compare exits 0, slowed copy exits 1."""
        monkeypatch.chdir(tmp_path)
        good = str(tmp_path / "BENCH_G.json")
        write_bench(good, synthetic_payload({"a": 0.5, "b": 1.0}))
        slowed = synthetic_payload({"a": 0.5, "b": 1.0})
        for entry in slowed["scenarios"]:
            entry["seconds"] = [s * 3 for s in entry["seconds"]]
            entry["stats"] = {k: v * 3 for k, v in entry["stats"].items()}
        bad = str(tmp_path / "BENCH_S.json")
        write_bench(bad, slowed)

        assert main(["bench", "--compare", good, good]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out and "perf trajectory" in out

        assert main(["bench", "--compare", good, bad]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "2 scenario(s) regressed" in out


class TestFormats:
    def test_pytest_benchmark_format_normalizes(self, tmp_path):
        payload = {
            "machine_info": {"node": "ci", "cpu": {"brand_raw": "X"}},
            "commit_info": {"id": "deadbeef"},
            "benchmarks": [{
                "name": "test_old_scenario",
                "stats": {"min": 0.1, "median": 0.2, "iqr": 0.01, "rounds": 5},
            }],
            "datetime": "2026-01-01T00:00:00",
            "version": "4.0.0",
        }
        path = str(tmp_path / "BENCH_BASELINE.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        results = load_results(path)
        assert results.format == "pytest-benchmark"
        sr = results.scenarios["test_old_scenario"]
        assert (sr.median, sr.min, sr.iqr, sr.repetitions) == (0.2, 0.1, 0.01, 5)

    def test_repo_baseline_loads(self):
        results = load_results(os.path.join(REPO, "BENCH_BASELINE.json"))
        assert results.format == "pytest-benchmark"
        assert results.scenarios  # at least one historical scenario

    def test_invalid_native_file_raises(self, tmp_path):
        path = str(tmp_path / "BENCH_BAD.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"schema": BENCH_SCHEMA_VERSION}, fh)
        with pytest.raises(ValueError):
            load_results(path)


class TestTrajectory:
    def test_renders_holes_and_order(self, tmp_path):
        # Baseline knows scenario a; PR file knows a and b.
        base = {"machine_info": {}, "benchmarks": [
            {"name": "a", "stats": {"min": 0.1, "median": 0.1, "iqr": 0, "rounds": 3}},
        ]}
        with open(tmp_path / "BENCH_BASELINE.json", "w", encoding="utf-8") as fh:
            json.dump(base, fh)
        write_bench(str(tmp_path / "BENCH_PR9.json"),
                    synthetic_payload({"a": 0.2, "b": 0.4}))
        out = render_trajectory(str(tmp_path))
        assert "perf trajectory over 2 result file(s)" in out
        assert "BASELINE" in out and "PR9" in out
        assert "·" in out  # scenario b absent from the baseline
        # baseline stays the leftmost column
        header = [ln for ln in out.splitlines() if "BASELINE" in ln][0]
        assert header.index("BASELINE") < header.index("PR9")

    def test_unreadable_file_skipped_not_fatal(self, tmp_path):
        (tmp_path / "BENCH_CORRUPT.json").write_text("{not json")
        write_bench(str(tmp_path / "BENCH_PR9.json"), synthetic_payload({"a": 0.2}))
        out = render_trajectory(str(tmp_path))
        assert "skipped unreadable BENCH_CORRUPT.json" in out
        assert "PR9" in out

    def test_empty_directory(self, tmp_path):
        assert "no BENCH_*.json" in render_trajectory(str(tmp_path))

    def test_pr_files_sort_numerically_not_lexicographically(self, tmp_path):
        # Lexicographic order would put PR10 before PR5; the trajectory
        # must read BASELINE, PR5, PR10, then non-PR names.
        (tmp_path / "BENCH_BASELINE.json").write_text("{}")
        for name in ("BENCH_PR10.json", "BENCH_PR5.json", "BENCH_PR6.json",
                     "BENCH_EXPERIMENT.json"):
            (tmp_path / name).write_text("{}")
        names = [os.path.basename(p)
                 for p in bench.find_result_files(str(tmp_path))]
        assert names == [
            "BENCH_BASELINE.json", "BENCH_PR5.json", "BENCH_PR6.json",
            "BENCH_PR10.json", "BENCH_EXPERIMENT.json",
        ]

    def test_trajectory_columns_follow_pr_number(self, tmp_path):
        write_bench(str(tmp_path / "BENCH_PR5.json"),
                    synthetic_payload({"a": 0.2}))
        write_bench(str(tmp_path / "BENCH_PR10.json"),
                    synthetic_payload({"a": 0.3}))
        out = render_trajectory(str(tmp_path))
        header = [ln for ln in out.splitlines() if "PR5" in ln][0]
        assert header.index("PR5") < header.index("PR10")


class TestMetricsGate:
    """``repro stats --diff --fail-on-regress`` shares the bench gate."""

    @staticmethod
    def _metrics(stage_parse: float, stall_events: float = 0.0) -> dict:
        return {
            "schema": "repro.run.metrics/1",
            "meta": {},
            "counters": {"parse.uncompressed_bytes": 1_000_000},
            "gauges": {"pipeline.depth": 4},
            "histograms": {},
            "timings": {
                "stage.parse": stage_parse,
                "wall_seconds": stage_parse * 2,
                "pipeline.stall.backpressure.events": stall_events,
            },
        }

    def test_metrics_regressions_fires_on_stage_slowdown(self):
        from repro.obs.stats import metrics_regressions

        lines = metrics_regressions(self._metrics(1.0), self._metrics(1.5))
        assert any("stage.parse" in ln for ln in lines)

    def test_metrics_regressions_noise_floor(self):
        from repro.obs.stats import metrics_regressions

        # +50% on a microsecond stage sits under the absolute floor.
        assert metrics_regressions(self._metrics(1e-4), self._metrics(1.5e-4)) == []

    def test_metrics_regressions_stall_counter(self):
        from repro.obs.stats import metrics_regressions

        lines = metrics_regressions(
            self._metrics(1.0, stall_events=0.0),
            self._metrics(1.0, stall_events=12.0),
        )
        assert any("pipeline.stall.backpressure" in ln for ln in lines)

    def test_cli_fail_on_regress_exit_codes(self, tmp_path, capsys):
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        before.write_text(json.dumps(self._metrics(1.0)))
        after.write_text(json.dumps(self._metrics(2.0)))
        assert main(["stats", "--diff", str(before), str(after),
                     "--fail-on-regress", "10"]) == 1
        assert "regression(s) past 10%" in capsys.readouterr().out
        assert main(["stats", "--diff", str(before), str(before),
                     "--fail-on-regress", "10"]) == 0
        assert "no regressions past 10%" in capsys.readouterr().out

    def test_cli_fail_on_regress_requires_diff(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path), "--fail-on-regress", "10"]) == 2
        assert "--diff" in capsys.readouterr().err


class TestEmptyCollectionBuild:
    """Satellite bugfix pin: a zero-document build must degrade cleanly."""

    def test_zero_wall_throughput_and_summary(self, tmp_path):
        from repro.core.config import PlatformConfig
        from repro.core.engine import IndexingEngine
        from repro.corpus.collection import Collection
        from repro.obs.schema import load_metrics
        from repro.obs.stats import render_metrics_summary

        coll_dir = tmp_path / "empty"
        coll_dir.mkdir()
        coll = Collection(name="empty", directory=str(coll_dir), files=[])
        coll.save_manifest()

        result = IndexingEngine(PlatformConfig(sample_fraction=0.5)).build(
            Collection.load("empty", str(coll_dir)), str(tmp_path / "out")
        )
        assert result.document_count == 0
        assert result.measured_throughput_mbps == 0.0  # never a division error

        assert result.metrics_path is not None
        summary = render_metrics_summary(load_metrics(result.metrics_path))
        assert "derived measured throughput: 0.00 MB/s" in summary
        assert "empty or zero-wall build" in summary

    def test_summary_tolerates_sparse_payload(self):
        from repro.obs.stats import render_metrics_summary

        # Histogram entries missing keys, no timings, no counters.
        out = render_metrics_summary({
            "schema": "repro.run.metrics/1",
            "histograms": {"h": {}},
        })
        assert "n=0" in out


class TestBenchContext:
    def test_data_dirs_are_scale_and_seed_specific(self, tmp_path):
        a = BenchContext(str(tmp_path), scale=0.25, seed=1)
        b = BenchContext(str(tmp_path), scale=0.5, seed=1)
        c = BenchContext(str(tmp_path), scale=0.25, seed=2)
        roots = {a._root(), b._root(), c._root()}
        assert len(roots) == 3

    def test_fresh_dir_is_empty(self, tmp_path):
        ctx = BenchContext(str(tmp_path))
        path = ctx.fresh_dir("scratch")
        assert not os.path.exists(path)
        os.makedirs(path)
        (lambda p: open(p, "w").close())(os.path.join(path, "f"))
        assert not os.path.exists(ctx.fresh_dir("scratch"))


class TestProfileLocalization:
    """``repro bench --profile``: self-time tables sharpen the gate's
    localization from stages to functions."""

    @staticmethod
    def _with_profile(payload: dict, self_s: dict) -> dict:
        for entry in payload["scenarios"]:
            entry["profile"] = {
                "interval_s": 0.01,
                "samples": 100,
                "self_s": dict(self_s),
            }
        return payload

    def test_run_suite_profile_records_self_time_table(self, tmp_path):
        def op():
            total = 0
            for i in range(200_000):
                total += i & 7
            return total

        payload = run_suite(
            {"hot": make_scenario("hot", op)},
            data_dir=str(tmp_path), repetitions=3, warmup=0, profile=True,
        )
        assert validate_bench(payload) == []
        prof = payload["scenarios"][0]["profile"]
        assert prof["interval_s"] > 0
        assert prof["samples"] >= 0
        assert all(v >= 0 for v in prof["self_s"].values())

    def test_unprofiled_run_has_no_profile_entry(self, tmp_path):
        payload = run_suite(
            {"cold": make_scenario("cold", lambda: None)},
            data_dir=str(tmp_path), repetitions=3, warmup=0,
        )
        assert "profile" not in payload["scenarios"][0]

    def test_compare_names_the_regressed_function(self, tmp_path):
        old_path, new_path = str(tmp_path / "A.json"), str(tmp_path / "B.json")
        old = self._with_profile(
            synthetic_payload({"b": 1.0}),
            {"repro/core/merge.py:merge_runs:40": 0.4,
             "repro/parsing/parser.py:parse:10": 0.3},
        )
        write_bench(old_path, old)
        slowed = copy.deepcopy(old)
        entry = slowed["scenarios"][0]
        entry["seconds"] = [s * 2 for s in entry["seconds"]]
        entry["stats"] = {k: v * 2 for k, v in entry["stats"].items()}
        entry["profile"]["self_s"]["repro/core/merge.py:merge_runs:40"] = 1.4
        write_bench(new_path, slowed)
        cmp = compare_results(load_results(old_path), load_results(new_path))
        assert cmp.regressions == ["b"]
        assert "top regressed function" in cmp.text
        assert "repro/core/merge.py:merge_runs:40" in cmp.text
        # The untouched frame is not blamed.
        localization = cmp.text[cmp.text.index("localization"):]
        assert "parser.py:parse" not in localization

    def test_profile_against_unprofiled_baseline_stays_stage_level(
            self, tmp_path):
        old_path, new_path = str(tmp_path / "A.json"), str(tmp_path / "B.json")
        write_bench(old_path, synthetic_payload({"b": 1.0}))
        slowed = self._with_profile(
            synthetic_payload({"b": 1.0}), {"x:y:1": 9.9})
        entry = slowed["scenarios"][0]
        entry["seconds"] = [s * 2 for s in entry["seconds"]]
        entry["stats"] = {k: v * 2 for k, v in entry["stats"].items()}
        entry["stage_timings"]["stage.index"] *= 4
        write_bench(new_path, slowed)
        cmp = compare_results(load_results(old_path), load_results(new_path))
        assert cmp.regressions == ["b"]
        assert "stage.index" in cmp.text
        assert "top regressed function" not in cmp.text

    def test_profile_shape_is_validated(self):
        payload = self._with_profile(synthetic_payload({"a": 1.0}), {"f:g:1": 0.5})
        payload["scenarios"][0]["profile"]["samples"] = -1
        assert any("profile.samples" in p for p in validate_bench(payload))
        payload["scenarios"][0]["profile"] = {"interval_s": 0}
        assert any("interval_s" in p for p in validate_bench(payload))
