"""Property test: phrase search agrees with a naive token-stream scan."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.corpus.collection import Collection
from repro.corpus.warc import write_packed_file
from repro.search.query import SearchEngine, normalize_query

# A tiny closed vocabulary of content words (no stop words, stable stems).
VOCAB = ["zebra", "quartz", "fjord", "glyph", "crypt", "nymph"]

documents = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=12),
    min_size=1,
    max_size=6,
)
phrases = st.lists(st.sampled_from(VOCAB), min_size=1, max_size=3)


def _naive_phrase_docs(docs: list[list[str]], phrase: list[str]) -> list[int]:
    """Ground truth: scan each normalized token stream for the n-gram."""
    normalized_phrase = normalize_query(" ".join(phrase))
    hits = []
    for doc_id, words in enumerate(docs):
        stream = normalize_query(" ".join(words))
        n = len(normalized_phrase)
        if any(
            stream[i : i + n] == normalized_phrase
            for i in range(len(stream) - n + 1)
        ):
            hits.append(doc_id)
    return hits


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(docs=documents, phrase=phrases)
def test_phrase_equals_naive_scan(tmp_path_factory, docs, phrase):
    root = tmp_path_factory.mktemp("phrase")
    texts = [(f"u://{i}", " ".join(words)) for i, words in enumerate(docs)]
    path = str(root / "f.warc")
    comp, uncomp = write_packed_file(path, texts, compress=False)
    coll = Collection(
        name="p", directory=str(root), files=[path], file_segments=["m"],
        compressed_bytes=comp, uncompressed_bytes=uncomp, num_docs=len(docs),
    )
    coll.save_manifest()
    out = str(root / "idx")
    IndexingEngine(
        PlatformConfig(num_parsers=1, num_cpu_indexers=1, num_gpus=0,
                       sample_fraction=1.0, strip_html=False, positional=True)
    ).build(coll, out)
    engine = SearchEngine(out, num_docs=len(docs))
    assert engine.phrase(" ".join(phrase)) == _naive_phrase_docs(docs, phrase)
