"""The compact parsed-stream codec must be lossless and order-preserving.

The multiprocess backend ships every parsed file through
:mod:`repro.parsing.stream_codec` — any field it drops or reorders breaks
the byte-identity guarantee between backends, so these tests pin exact
roundtrips (including dict insertion order, which *is* term-id
allocation order downstream).
"""

from __future__ import annotations

import pytest

from repro.parsing.docio import DocTableEntry
from repro.parsing.parser import ParseMetrics, ParsedFile
from repro.parsing.regroup import ParsedBatch
from repro.parsing.stream_codec import (
    decode_batch,
    decode_parsed_file,
    encode_batch,
    encode_parsed_file,
)


def _batch(**overrides) -> ParsedBatch:
    fields = dict(
        parser_id=2,
        sequence=7,
        source_file="/corpus/file_00007.warc.gz",
        num_docs=3,
        collections={
            4: [(0, [b"pple", b"xe"]), (2, [b"pple"])],
            0: [(1, [b"", b"zz"])],
        },
        tokens_per_collection={4: 3, 0: 2},
        chars_per_collection={4: 6, 0: 2},
        uncompressed_bytes=4096,
        compressed_bytes=512,
    )
    fields.update(overrides)
    return ParsedBatch(**fields)


def _parsed_file() -> ParsedFile:
    return ParsedFile(
        batch=_batch(),
        doc_table=[
            DocTableEntry(0, "/corpus/file_00007.warc.gz", "http://a/0", 0),
            DocTableEntry(1, "/corpus/file_00007.warc.gz", "http://a/1", 900),
        ],
        metrics=ParseMetrics(
            compressed_bytes=512, uncompressed_bytes=4096, num_docs=3,
            chars_scanned=4000, tokens_raw=20, tokens_stopped=5,
            tokens_emitted=15, suffix_chars=80, stem_cache_misses=2,
            collections_touched=2,
        ),
    )


class TestBatchRoundtrip:
    def test_grouped_batch_roundtrips_exactly(self):
        batch = _batch()
        assert decode_batch(encode_batch(batch)) == batch

    def test_collection_insertion_order_is_preserved(self):
        """dict order is term-id allocation order — it must survive."""
        batch = _batch(collections={9: [(0, [b"a"])], 1: [(0, [b"b"])]},
                       tokens_per_collection={9: 1, 1: 1},
                       chars_per_collection={9: 1, 1: 1})
        out = decode_batch(encode_batch(batch))
        assert list(out.collections) == [9, 1]
        assert list(out.tokens_per_collection) == [9, 1]

    def test_positional_batch_roundtrips(self):
        batch = _batch(positions={4: [[0, 5], [11]], 0: [[2, 3]]})
        out = decode_batch(encode_batch(batch))
        assert out.positions == batch.positions
        assert out == batch

    def test_ungrouped_batch_roundtrips(self):
        batch = _batch(collections={}, tokens_per_collection={},
                       chars_per_collection={},
                       ungrouped=[(0, [(4, b"pple"), (0, b"zz")]),
                                  (1, [(2, b"")])])
        out = decode_batch(encode_batch(batch))
        assert out.ungrouped == batch.ungrouped
        assert out == batch

    def test_empty_batch(self):
        batch = ParsedBatch(parser_id=0, sequence=0, source_file="f")
        assert decode_batch(encode_batch(batch)) == batch

    def test_large_values_use_multibyte_varints(self):
        batch = _batch(uncompressed_bytes=1 << 40, compressed_bytes=1 << 33,
                       num_docs=300)
        assert decode_batch(encode_batch(batch)) == batch


class TestParsedFileRoundtrip:
    def test_full_parsed_file_roundtrips(self):
        parsed = _parsed_file()
        out = decode_parsed_file(encode_parsed_file(parsed))
        assert out == parsed

    def test_metrics_fields_all_survive(self):
        """Every ParseMetrics field rides along (cost model inputs)."""
        parsed = _parsed_file()
        out = decode_parsed_file(encode_parsed_file(parsed))
        for name in ParseMetrics.__dataclass_fields__:
            assert getattr(out.metrics, name) == getattr(parsed.metrics, name)

    def test_doc_table_order_and_fields(self):
        out = decode_parsed_file(encode_parsed_file(_parsed_file()))
        assert [e.local_doc_id for e in out.doc_table] == [0, 1]
        assert out.doc_table[1].offset == 900

    def test_truncated_payload_raises(self):
        data = encode_parsed_file(_parsed_file())
        with pytest.raises(Exception):
            decode_parsed_file(data[: len(data) // 2])
