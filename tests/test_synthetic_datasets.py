"""Synthetic collection generation and the dataset presets."""

from __future__ import annotations

import os

from repro.corpus.collection import Collection, collection_statistics
from repro.corpus.datasets import PAPER_COLLECTION_STATS, clueweb09_mini
from repro.corpus.synthetic import CollectionSpec, SegmentSpec, generate_collection
from repro.corpus.warc import read_packed_file


def _spec(name: str, html: bool = True) -> CollectionSpec:
    return CollectionSpec(
        name=name,
        seed=3,
        segments=(
            SegmentSpec(
                name="s0", num_files=2, docs_per_file=5,
                tokens_per_doc_mean=40, vocab_size=500, html=html,
            ),
        ),
    )


class TestGeneration:
    def test_files_and_manifest(self, tmp_path):
        coll = generate_collection(_spec("g1"), str(tmp_path))
        assert coll.num_files == 2
        assert coll.num_docs == 10
        assert all(os.path.exists(f) for f in coll.files)
        assert os.path.exists(os.path.join(coll.directory, "manifest.tsv"))

    def test_idempotent_reload(self, tmp_path):
        c1 = generate_collection(_spec("g2"), str(tmp_path))
        mtime = os.path.getmtime(c1.files[0])
        c2 = generate_collection(_spec("g2"), str(tmp_path))  # loads manifest
        assert os.path.getmtime(c2.files[0]) == mtime
        assert c2.compressed_bytes == c1.compressed_bytes
        assert c2.files == c1.files

    def test_force_regenerates(self, tmp_path):
        c1 = generate_collection(_spec("g3"), str(tmp_path))
        c2 = generate_collection(_spec("g3"), str(tmp_path), force=True)
        assert c2.num_docs == c1.num_docs

    def test_deterministic_content(self, tmp_path):
        c1 = generate_collection(_spec("g4"), str(tmp_path / "a"))
        c2 = generate_collection(_spec("g4"), str(tmp_path / "b"))
        d1 = read_packed_file(c1.files[0])
        d2 = read_packed_file(c2.files[0])
        assert [d.text for d in d1] == [d.text for d in d2]

    def test_html_profile_contains_markup(self, tmp_path):
        coll = generate_collection(_spec("g5", html=True), str(tmp_path))
        text = read_packed_file(coll.files[0])[0].text
        assert "<html>" in text and "</body>" in text

    def test_text_profile_is_plain(self, tmp_path):
        coll = generate_collection(_spec("g6", html=False), str(tmp_path))
        text = read_packed_file(coll.files[0])[0].text
        assert "<" not in text

    def test_manifest_round_trip(self, tmp_path):
        c1 = generate_collection(_spec("g7"), str(tmp_path))
        c2 = Collection.load("g7", c1.directory)
        assert c2.files == c1.files
        assert c2.file_segments == c1.file_segments
        assert c2.seed == c1.seed


class TestPresets:
    def test_clueweb_mini_segments(self, tmp_path):
        coll = clueweb09_mini(str(tmp_path), scale=0.15)
        segs = set(coll.file_segments)
        assert segs == {"web", "wikipedia.org"}
        # Wikipedia files are the trailing ones (the Fig 11 layout).
        boundary = coll.file_segments.index("wikipedia.org")
        assert all(s == "web" for s in coll.file_segments[:boundary])
        assert all(s == "wikipedia.org" for s in coll.file_segments[boundary:])

    def test_paper_stats_table(self):
        cw = PAPER_COLLECTION_STATS["clueweb09"]
        assert cw.num_docs == 50_220_423
        assert cw.num_terms == 84_799_475
        assert cw.num_tokens == 32_644_508_255
        assert len(PAPER_COLLECTION_STATS) == 3


class TestStatistics:
    def test_collection_statistics(self, tiny_collection):
        stats = collection_statistics(tiny_collection)
        assert stats.num_docs == tiny_collection.num_docs
        assert stats.num_tokens > 0
        assert 0 < stats.num_terms <= stats.num_tokens
        assert stats.tokens_per_doc > 0
        assert stats.compression_ratio > 1.0
