"""Unit tests for the telemetry layer: tracer, metrics, schema, runtime.

The integration-level guarantees (a real build's artifacts, coverage,
determinism) live in tests/test_obs_integration.py; this file pins the
component contracts those guarantees are built on.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import runtime
from repro.obs.metrics import (
    DEFAULT_BYTE_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.schema import (
    METRICS_SCHEMA_VERSION,
    build_payload,
    load_metrics,
    validate_metrics,
    write_metrics,
)
from repro.obs.stats import interval_union_s, span_coverage, spans_from_chrome
from repro.obs.trace import NullTracer, Tracer, load_chrome_trace


class TestTracer:
    def test_nesting_depth_and_parent(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                with t.span("leaf"):
                    pass
        by_name = {s.name: s for s in t.spans}
        assert by_name["outer"].depth == 0 and by_name["outer"].parent is None
        assert by_name["inner"].depth == 1 and by_name["inner"].parent == "outer"
        assert by_name["leaf"].depth == 2 and by_name["leaf"].parent == "inner"

    def test_nesting_is_per_lane(self):
        t = Tracer()
        with t.span("a", lane="one"):
            with t.span("b", lane="two"):
                pass
        b = t.find("b")[0]
        assert b.depth == 0 and b.parent is None  # lanes nest independently

    def test_span_yields_mutable_args(self):
        t = Tracer()
        with t.span("work", file=3) as tags:
            tags["bytes"] = 1024
        (span,) = t.find("work")
        assert span.args == {"file": 3, "bytes": 1024}

    def test_span_recorded_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("doomed"):
                raise RuntimeError("boom")
        assert len(t.find("doomed")) == 1

    def test_spans_are_thread_local_stacks(self):
        t = Tracer()

        def worker(i: int) -> None:
            with t.span("w", lane=f"lane-{i}"):
                pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        spans = t.find("w")
        assert len(spans) == 8
        assert all(s.depth == 0 for s in spans)

    def test_chrome_export_roundtrip(self, tmp_path):
        t = Tracer()
        with t.span("build"):
            with t.span("parse", cat="parse", lane="parser-0", file=1):
                pass
        t.instant("marker", lane="engine")
        path = str(tmp_path / "trace.json")
        t.write(path)

        events = load_chrome_trace(path)
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"build", "parse", "marker"}
        assert all(isinstance(e["ts"], int) and isinstance(e["dur"], int)
                   for e in complete)
        assert {e["args"]["name"] for e in meta} == {"engine", "parser-0"}

        spans = spans_from_chrome(events)
        lanes = {s.lane for s in spans}
        assert lanes == {"engine", "parser-0"}

    def test_load_rejects_damaged_trace(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"events": []}, fh)
        with pytest.raises(ValueError, match="traceEvents"):
            load_chrome_trace(path)

    def test_null_tracer_records_nothing(self):
        t = NullTracer()
        with t.span("invisible", file=1) as tags:
            tags["x"] = 1
        t.instant("also-invisible")
        assert t.spans == []
        assert not t.enabled

    def test_null_tracer_shares_one_context_manager_args(self):
        t = NullTracer()
        with t.span("a") as tags_a:
            pass
        with t.span("b") as tags_b:
            pass
        assert tags_a is tags_b  # the single shared no-op dict


class TestHistogram:
    def test_bucketing_upper_bound_inclusive(self):
        h = Histogram("h", buckets=[10, 100, 1000])
        for value in (1, 10, 11, 100, 1000, 1001):
            h.observe(value)
        # <=10 → slot 0: {1, 10}; <=100 → slot 1: {11, 100};
        # <=1000 → slot 2: {1000}; overflow: {1001}
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.total == 1 + 10 + 11 + 100 + 1000 + 1001

    def test_bucket_for_matches_observe(self):
        h = Histogram("h", buckets=list(DEFAULT_BYTE_BUCKETS))
        for value in (0, 1, 4, 5, 4**15, 4**15 + 1):
            idx = h.bucket_for(value)
            before = list(h.counts)
            h.observe(value)
            assert h.counts[idx] == before[idx] + 1

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])
        with pytest.raises(ValueError):
            Histogram("h", buckets=[10, 5])
        with pytest.raises(ValueError):
            Histogram("h", buckets=[5, 5])


class TestMetricsRegistry:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        reg.count("c", 3)
        reg.count("c")
        assert reg.counter("c").value == 4
        with pytest.raises(ValueError):
            reg.count("c", -1)

    def test_name_bound_to_one_kind(self):
        reg = MetricsRegistry()
        reg.count("x")
        with pytest.raises(ValueError, match="already a counter"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already a counter"):
            reg.histogram("x")

    def test_snapshot_is_detached(self):
        reg = MetricsRegistry()
        reg.count("c", 1)
        snap = reg.snapshot()
        reg.count("c", 10)
        assert snap["counters"]["c"] == 1

    def test_delta_reports_only_changes(self):
        reg = MetricsRegistry()
        reg.count("stable", 5)
        reg.set_gauge("g", 1)
        before = reg.snapshot()
        reg.count("c", 2)
        reg.set_gauge("g", 7)
        reg.observe("h", 3, buckets=[10])
        d = MetricsRegistry.delta(before, reg.snapshot())
        assert d["counters"] == {"c": 2}
        assert d["gauges"] == {"g": 7}
        assert d["histograms"]["h"]["counts"] == [1, 0]
        assert d["histograms"]["h"]["sum"] == 3

    def test_null_registry_discards_everything(self):
        reg = NullRegistry()
        reg.count("c", 5)
        reg.set_gauge("g", 5)
        reg.observe("h", 5)
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert not reg.enabled


class TestSchema:
    def _payload(self):
        reg = MetricsRegistry()
        reg.count("build.docs", 7)
        reg.set_gauge("dictionary.terms", 3)
        reg.observe("run.bytes", 100)
        return build_payload(
            reg.snapshot(), {"wall_seconds": 1.5}, meta={"collection": "t"}
        )

    def test_valid_payload_roundtrip(self, tmp_path):
        payload = self._payload()
        assert validate_metrics(payload) == []
        path = write_metrics(str(tmp_path / "run.metrics.json"), payload)
        assert load_metrics(path) == payload

    def test_schema_version_pinned(self):
        payload = self._payload()
        assert payload["schema"] == METRICS_SCHEMA_VERSION

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda p: p.pop("counters"), "missing required section"),
            (lambda p: p.update(schema="other/1"), "not a"),
            (lambda p: p.update(extra={}), "unknown section"),
            (lambda p: p["counters"].update(bad="nan"), "not a number"),
            (lambda p: p["counters"].update(bad=-1), "negative counter"),
            (
                lambda p: p["histograms"]["run.bytes"].pop("sum"),
                "missing key",
            ),
            (
                lambda p: p["histograms"]["run.bytes"].update(count=99),
                "sum of bucket counts",
            ),
        ],
    )
    def test_invalid_payloads_rejected(self, mutate, fragment):
        payload = self._payload()
        mutate(payload)
        problems = validate_metrics(payload)
        assert problems and fragment in "; ".join(problems)

    def test_write_refuses_invalid(self, tmp_path):
        payload = self._payload()
        del payload["timings"]
        with pytest.raises(ValueError, match="refusing to write"):
            write_metrics(str(tmp_path / "x.json"), payload)


class TestRuntime:
    def test_session_installs_and_restores(self):
        assert runtime.current() is None
        tel = runtime.Telemetry.create()
        with runtime.session(tel):
            assert runtime.current() is tel
            assert runtime.tracer() is tel.tracer
            assert runtime.metrics() is tel.metrics
            runtime.count("c", 2)
            runtime.observe("h", 5)
        assert runtime.current() is None
        assert tel.metrics.counter("c").value == 2
        assert tel.metrics.histogram("h").count == 1

    def test_sessions_nest(self):
        outer, inner = runtime.Telemetry.create(), runtime.Telemetry.create()
        with runtime.session(outer):
            with runtime.session(inner):
                assert runtime.current() is inner
            assert runtime.current() is outer
        assert runtime.current() is None

    def test_uninstalled_helpers_are_null_noops(self):
        assert runtime.current() is None
        runtime.count("nobody-home")  # must not raise
        with runtime.tracer().span("nobody-home"):
            pass
        assert not runtime.tracer().enabled
        assert not runtime.metrics().enabled

    def test_disabled_bundle(self):
        tel = runtime.Telemetry.create(enabled=False)
        assert not tel.enabled
        with runtime.session(tel):
            runtime.count("c", 99)
            with runtime.tracer().span("s"):
                pass
        assert tel.metrics.snapshot()["counters"] == {}
        assert tel.tracer.spans == []


class TestStatsHelpers:
    def test_interval_union_merges_overlaps(self):
        assert interval_union_s([(0, 2), (1, 3), (5, 6)]) == pytest.approx(4.0)
        assert interval_union_s([(2, 2), (3, 1)]) == 0.0  # degenerate dropped

    def test_span_coverage_clips_to_root(self):
        t = Tracer(clock=lambda: 0.0)
        # Hand-build spans with controlled times via the dataclass.
        from repro.obs.trace import Span

        spans = [
            Span("build", "build", "engine", 0.0, 10.0, 0, None),
            Span("a", "x", "w", 1.0, 4.0, 0, None),
            Span("b", "x", "w", 3.0, 6.0, 0, None),  # overlaps a
            Span("c", "x", "w", 9.0, 12.0, 0, None),  # clipped at 10
        ]
        # union inside root: [1,6] + [9,10] = 6s of 10s
        assert span_coverage(spans, "build") == pytest.approx(0.6)
        assert span_coverage(spans, "missing-root") == 0.0
