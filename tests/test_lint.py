"""Tests for the static-analysis pack (``repro lint``).

Three layers of coverage, mirroring docs/STATIC_ANALYSIS.md:

- **Fixtures** (``tests/lint_fixtures/``): every rule has a file with
  known violations *and* a suppressed twin of the same violation, so
  these tests pin both detection and the suppression machinery.
- **Self-check**: the repo's own ``src/`` tree lints clean — the gate CI
  enforces.
- **Isolation**: linting must never import the engine; the lint CLI
  stays usable (and fast) even when the index machinery would not load.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.lint import lint_paths, registered_rules
from repro.lint import races
from repro.lint.framework import LintCache

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")


def fixture(*parts: str) -> str:
    return os.path.join(FIXTURES, *parts)


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    """Run ``python -m repro.lint.cli`` in a clean subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint.cli", *argv],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
    )


# Per-rule expectations: fixture path, number of unsuppressed findings.
RULE_FIXTURES = [
    ("RPR001", fixture("rpr001_layout.py"), 4),
    ("RPR002", fixture("rpr002_random.py"), 3),
    ("RPR003", fixture("postings", "rpr003_encode.py"), 2),
    ("RPR004", fixture("rpr004_rename.py"), 1),
    ("RPR005", fixture("rpr005_except.py"), 2),
    ("RPR006", fixture("rpr006_defaults.py"), 2),
    ("RPR007", fixture("core", "rpr007_annotations.py"), 2),
    ("RPR008", fixture("rpr008_clocks.py"), 3),
    ("RPR008", fixture("rpr008_bench_timeit.py"), 3),
    ("RPR008", fixture("rpr008_profile.py"), 3),
    ("RPR101", fixture("rpr101_races.py"), 2),
    ("RPR102", fixture("rpr102_deadlock.py"), 1),
    ("RPR110", fixture("rpr110_mp_entry.py"), 4),
    ("RPR111", fixture("interproc", "rpr111_forkbad.py"), 3),
    ("RPR112", fixture("interproc", "rpr112_shmbad.py"), 3),
    ("RPR120", fixture("protocol_bad", "shm_ring.py"), 2),
    ("RPR121", fixture("protocol_bad", "mp_backend.py"), 3),
    ("RPR122", fixture("protocol_bad", "shm_ring.py"), 2),
    ("RPR123", fixture("protocol_bad", "shm_ring.py"), 3),
]

# Vetted negatives: fixture sets that must produce zero findings for the
# given codes (the interproc rows exercise cross-module resolution).
OK_FIXTURES = [
    (["RPR120", "RPR121", "RPR122", "RPR123"],
     [fixture("protocol_ok", "shm_ring.py"),
      fixture("protocol_ok", "mp_backend.py")]),
    (["RPR111", "RPR112"],
     [fixture("interproc", "rpr111_forkok.py"),
      fixture("interproc", "worker_like.py"),
      fixture("interproc", "rpr112_shmok.py")]),
    # The RPR008 carve-out: the same clock reads that fire in
    # rpr008_profile.py are exempt under an obs/ path.
    (["RPR008"],
     [fixture("obs", "profile.py")]),
]


class TestRuleFixtures:
    @pytest.mark.parametrize("code,path,expected", RULE_FIXTURES,
                             ids=[f"{c}-{os.path.splitext(os.path.basename(p))[0]}"
                                  for c, p, _ in RULE_FIXTURES])
    def test_rule_fires_and_suppression_holds(self, code, path, expected):
        run = lint_paths([path], select=[code])
        assert run.files_checked == 1
        assert [f.code for f in run.findings] == [code] * expected
        # The suppressed twin must not appear.  RPR102's twin is the
        # separate file-level fixture (test_file_level_suppression);
        # every other fixture carries an inline `disable=<code>` line.
        if code == "RPR102":
            return
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        disabled = {
            i for i, line in enumerate(lines, start=1)
            if f"disable={code}" in line
        }
        assert disabled, f"fixture {path} lost its suppressed twin"
        assert not disabled & {f.line for f in run.findings}

    @pytest.mark.parametrize("code,path,expected", RULE_FIXTURES,
                             ids=[c for c, _, _ in RULE_FIXTURES])
    def test_cli_exits_nonzero_on_fixture(self, code, path, expected):
        proc = run_cli(path, "--select", code, "--format", "json")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert f'"{code}"' in proc.stdout

    def test_file_level_suppression(self):
        run = lint_paths([fixture("rpr102_suppressed.py")], select=["RPR102"])
        assert run.findings == []

    @pytest.mark.parametrize("codes,paths", OK_FIXTURES,
                             ids=["protocol-ok", "interproc-ok",
                                  "rpr008-obs-carveout"])
    def test_vetted_negatives_stay_clean(self, codes, paths):
        run = lint_paths(paths, select=codes)
        assert run.files_checked == len(paths)
        assert run.findings == []

    def test_unknown_rule_code(self):
        with pytest.raises(KeyError):
            lint_paths([FIXTURES], select=["RPR999"])
        proc = run_cli(FIXTURES, "--select", "RPR999")
        assert proc.returncode == 2


class TestRaceAllowlist:
    def test_allowlist_suppresses_vetted_writes(self):
        races.set_allowlist_path(fixture("allowlist.txt"))
        try:
            run = lint_paths([fixture("rpr101_races.py")], select=["RPR101"])
        finally:
            races.set_allowlist_path(None)
        assert run.findings == []

    def test_empty_allowlist_restores_findings(self):
        races.set_allowlist_path(os.devnull)
        try:
            run = lint_paths([fixture("rpr101_races.py")], select=["RPR101"])
        finally:
            races.set_allowlist_path(None)
        assert len(run.findings) == 2

    def test_malformed_allowlist_rejected(self, tmp_path):
        bad = tmp_path / "allow.txt"
        bad.write_text("no-separator-here\n")
        with pytest.raises(ValueError):
            races.load_allowlist(str(bad))

    def test_shipped_allowlist_parses(self):
        entries = races.load_allowlist(races.DEFAULT_ALLOWLIST_PATH)
        assert entries, "shipped race_allowlist.txt is empty or missing"
        for suffix, key in entries:
            assert suffix and key


class TestSelfCheck:
    def test_src_tree_lints_clean(self):
        """The acceptance gate: ``repro lint src/`` exits 0."""
        proc = run_cli("src", "--mypy", "off")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_benchmarks_clock_fence_clean(self):
        """``benchmarks/`` honors the RPR008 clock fence (the bench
        scripts time through util/timing or the ``repro bench`` harness,
        never ad-hoc time/timeit clocks)."""
        run = lint_paths([os.path.join(REPO, "benchmarks")], select=["RPR008"])
        assert run.findings == []

    def test_race_analyzer_clean_on_engine_paths(self):
        """Zero unallowlisted unguarded shared writes in core/ + indexers/."""
        run = lint_paths(
            [os.path.join(SRC, "repro", "core"),
             os.path.join(SRC, "repro", "indexers")],
            select=["RPR101", "RPR102"],
        )
        assert run.findings == []

    def test_every_documented_rule_registered(self):
        codes = set(registered_rules())
        assert codes == {
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
            "RPR007", "RPR008", "RPR101", "RPR102", "RPR110", "RPR111",
            "RPR112", "RPR120", "RPR121", "RPR122", "RPR123",
        }
        for reg in registered_rules().values():
            assert reg.description, f"{reg.code} has no description"

    def test_interprocedural_rules_are_project_scoped(self):
        regs = registered_rules()
        assert regs["RPR111"].scope == "project"
        assert regs["RPR112"].scope == "project"
        assert regs["RPR120"].scope == "file"


class TestIsolation:
    def test_lint_never_imports_the_engine(self):
        """`import repro.lint.cli` must not pull in any engine module."""
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "import sys\n"
            "import repro.lint.cli\n"
            "loaded = [m for m in sys.modules\n"
            "          if m.startswith('repro.') and not m.startswith('repro.lint')]\n"
            "assert not loaded, loaded\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr

    def test_repro_cli_lint_subcommand(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--list-rules"],
            capture_output=True, text=True, cwd=REPO, env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "RPR101" in proc.stdout

    def test_parse_error_becomes_rpr000(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        run = lint_paths([str(broken)])
        assert run.parse_errors == 1
        assert run.findings[0].code == "RPR000"
        proc = run_cli(str(broken))
        assert proc.returncode == 1


_RACY_MODULE = (
    "import threading\n"
    "\n"
    "\n"
    "class C:\n"
    "    def __init__(self):\n"
    "        self.n = 0\n"
    "        self._t = threading.Thread(target=self._w)\n"
    "\n"
    "    def _w(self):\n"
    "        self.n += 1\n"
    "\n"
    "    def reset(self):\n"
    "        self.n = 0\n"
)


class TestAllowlistStaleness:
    """The race allowlist self-validates: entries nothing consumes fail.

    RPR101 records a ``race-allowlist-used`` fact for every entry that
    actually vets a write; the CLI then flags, as RPR103, any entry whose
    file was analyzed but whose key was never consumed.
    """

    def _run(self, allow_text, tmp_path, paths):
        allow = tmp_path / "allow.txt"
        allow.write_text(allow_text)
        races.set_allowlist_path(str(allow))
        try:
            run = lint_paths(paths, select=["RPR101"])
            used = set(run.facts.get(races.USED_ALLOWLIST_FACT, []))
            stale = races.stale_allowlist_findings(
                run.files, used, str(allow))
        finally:
            races.set_allowlist_path(None)
        return run, stale

    def test_consumed_entry_is_not_stale(self, tmp_path):
        run, stale = self._run(
            "lint_fixtures/rpr101_races.py::Counter.count\n",
            tmp_path, [fixture("rpr101_races.py")],
        )
        assert run.findings == []  # the entry vetted both writes...
        assert stale == []         # ...so it is live, not stale

    def test_dead_entry_is_flagged_at_its_line(self, tmp_path):
        run, stale = self._run(
            "# vetted writes\n"
            "lint_fixtures/rpr101_races.py::Counter.count\n"
            "lint_fixtures/rpr101_races.py::Counter.ghost\n",
            tmp_path, [fixture("rpr101_races.py")],
        )
        assert [f.code for f in stale] == ["RPR103"]
        assert stale[0].line == 3
        assert "Counter.ghost" in stale[0].message
        assert stale[0].path.endswith("allow.txt")

    def test_entry_for_unanalyzed_file_is_left_alone(self, tmp_path):
        """Staleness is only decidable for files in the analyzed set."""
        _, stale = self._run(
            "some/other_module.py::Thing.attr\n",
            tmp_path, [fixture("rpr101_races.py")],
        )
        assert stale == []

    def test_cli_fails_on_stale_entry(self, tmp_path):
        mod = tmp_path / "plain_mod.py"
        mod.write_text("X = 1\n")
        allow = tmp_path / "allow.txt"
        allow.write_text("plain_mod.py::Ghost.attr\n")
        proc = run_cli(str(mod), "--allowlist", str(allow),
                       "--mypy", "off", "--no-cache")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "RPR103" in proc.stdout

    def test_shipped_allowlist_has_no_stale_entries(self):
        """Every entry in the package allowlist is still consumed when
        linting ``src`` (the CI gate — see test_src_tree_lints_clean)."""
        run = lint_paths([SRC], select=["RPR101"])
        used = set(run.facts.get(races.USED_ALLOWLIST_FACT, []))
        assert races.stale_allowlist_findings(run.files, used) == []


class TestLintCache:
    def test_second_run_hits_and_replays_findings(self, tmp_path):
        mod = tmp_path / "timed.py"
        mod.write_text("import time\n\n\ndef t():\n    return time.time()\n")
        cache = LintCache(str(tmp_path / "cache"))
        r1 = lint_paths([str(mod)], cache=cache)
        assert (r1.cache_hits, r1.cache_misses) == (0, 1)
        assert r1.findings, "expected the RPR008 clock finding"
        r2 = lint_paths([str(mod)], cache=cache)
        assert (r2.cache_hits, r2.cache_misses) == (1, 0)
        assert ([(f.code, f.line) for f in r1.findings]
                == [(f.code, f.line) for f in r2.findings])

    def test_edit_invalidates_the_entry(self, tmp_path):
        mod = tmp_path / "timed.py"
        mod.write_text("import time\n\n\ndef t():\n    return time.time()\n")
        cache = LintCache(str(tmp_path / "cache"))
        lint_paths([str(mod)], cache=cache)
        mod.write_text("def t():\n    return 0\n")
        r2 = lint_paths([str(mod)], cache=cache)
        assert (r2.cache_hits, r2.cache_misses) == (0, 1)
        assert r2.findings == []

    def test_cross_file_edit_reruns_project_rules(self, tmp_path):
        """A project-scope verdict on an *unchanged* file is recomputed
        when any other file changes (the tree hash gates reuse)."""
        leak = tmp_path / "leaky.py"
        leak.write_text(
            "def f(c):\n    ring = ShmRing.create('repro_mp_x', c)\n"
            "    return ring.name()\n"
        )
        other = tmp_path / "other.py"
        other.write_text("A = 1\n")
        cache = LintCache(str(tmp_path / "cache"))
        r1 = lint_paths([str(leak), str(other)], select=["RPR112"],
                        cache=cache)
        assert [f.code for f in r1.findings] == ["RPR112"]
        r2 = lint_paths([str(leak), str(other)], select=["RPR112"],
                        cache=cache)
        assert (r2.cache_hits, r2.cache_misses) == (2, 0)
        assert [f.code for f in r2.findings] == ["RPR112"]
        other.write_text("A = 2\n")
        r3 = lint_paths([str(leak), str(other)], select=["RPR112"],
                        cache=cache)
        assert r3.cache_hits == 0  # tree changed: nothing fully reusable
        assert [f.code for f in r3.findings] == ["RPR112"]

    def test_allowlist_facts_survive_cache_replay(self, tmp_path):
        """Incremental runs must not mistake a cached-but-live entry for
        a stale one: facts are cached with the findings."""
        mod = tmp_path / "racy_mod.py"
        mod.write_text(_RACY_MODULE)
        allow = tmp_path / "allow.txt"
        allow.write_text("racy_mod.py::C.n\n")
        races.set_allowlist_path(str(allow))
        cache = LintCache(str(tmp_path / "cache"))
        try:
            r1 = lint_paths([str(mod)], select=["RPR101"], cache=cache)
            r2 = lint_paths([str(mod)], select=["RPR101"], cache=cache)
        finally:
            races.set_allowlist_path(None)
        assert r2.cache_hits == 1
        for run in (r1, r2):
            assert run.findings == []
            used = set(run.facts.get(races.USED_ALLOWLIST_FACT, []))
            assert used == {"racy_mod.py::C.n"}
            assert races.stale_allowlist_findings(
                run.files, used, str(allow)) == []

    def test_cli_reports_cache_stats_and_no_cache_disables(self, tmp_path):
        mod = tmp_path / "plain.py"
        mod.write_text("A = 1\n")
        proc = run_cli(str(mod), "--select", "RPR008", "--format", "json")
        payload = json.loads(proc.stdout)
        assert {"cache_hits", "cache_misses"} <= set(payload)
        proc2 = run_cli(str(mod), "--select", "RPR008", "--format", "json",
                        "--no-cache")
        payload2 = json.loads(proc2.stdout)
        assert payload2["cache_hits"] == 0


class TestProtocolCLI:
    """``repro lint --protocol`` — the model-checker CLI surface."""

    _OK_PATH = fixture("protocol_ok", "shm_ring.py")

    def test_protocol_reports_every_model_and_family(self):
        proc = run_cli(self._OK_PATH, "--select", "RPR120", "--protocol")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        out = proc.stdout
        for name in ("spsc-ring", "supervisor-replay", "segment-ownership"):
            assert name in out
        for family in ("torn-frame", "lost-frame-under-replay",
                       "double-unlink", "heartbeat-monotonicity",
                       "bounded-wait"):
            assert family in out
        assert "states" in out
        assert "VIOLATED" not in out
        assert "FAILED" not in out

    def test_protocol_json_artifact(self):
        proc = run_cli(self._OK_PATH, "--select", "RPR120",
                       "--format", "json", "--protocol")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        reports = payload["protocol"]
        assert {r["model"] for r in reports} == {
            "spsc-ring", "supervisor-replay", "segment-ownership"
        }
        for r in reports:
            assert r["complete"] is True
            assert r["states"] > 0
            assert all(r["families"].values()), r
            assert r["violations"] == []

    def test_exhausted_state_budget_fails_the_run(self):
        proc = run_cli(self._OK_PATH, "--select", "RPR120",
                       "--protocol", "--max-states", "10")
        assert proc.returncode == 1
        assert "state budget exhausted" in proc.stdout
