"""Tests for the static-analysis pack (``repro lint``).

Three layers of coverage, mirroring docs/STATIC_ANALYSIS.md:

- **Fixtures** (``tests/lint_fixtures/``): every rule has a file with
  known violations *and* a suppressed twin of the same violation, so
  these tests pin both detection and the suppression machinery.
- **Self-check**: the repo's own ``src/`` tree lints clean — the gate CI
  enforces.
- **Isolation**: linting must never import the engine; the lint CLI
  stays usable (and fast) even when the index machinery would not load.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.lint import lint_paths, registered_rules
from repro.lint import races

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")


def fixture(*parts: str) -> str:
    return os.path.join(FIXTURES, *parts)


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    """Run ``python -m repro.lint.cli`` in a clean subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint.cli", *argv],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
    )


# Per-rule expectations: fixture path, number of unsuppressed findings.
RULE_FIXTURES = [
    ("RPR001", fixture("rpr001_layout.py"), 4),
    ("RPR002", fixture("rpr002_random.py"), 3),
    ("RPR003", fixture("postings", "rpr003_encode.py"), 2),
    ("RPR004", fixture("rpr004_rename.py"), 1),
    ("RPR005", fixture("rpr005_except.py"), 2),
    ("RPR006", fixture("rpr006_defaults.py"), 2),
    ("RPR007", fixture("core", "rpr007_annotations.py"), 2),
    ("RPR008", fixture("rpr008_clocks.py"), 3),
    ("RPR008", fixture("rpr008_bench_timeit.py"), 3),
    ("RPR101", fixture("rpr101_races.py"), 2),
    ("RPR102", fixture("rpr102_deadlock.py"), 1),
    ("RPR110", fixture("rpr110_mp_entry.py"), 4),
]


class TestRuleFixtures:
    @pytest.mark.parametrize("code,path,expected", RULE_FIXTURES,
                             ids=[f"{c}-{os.path.splitext(os.path.basename(p))[0]}"
                                  for c, p, _ in RULE_FIXTURES])
    def test_rule_fires_and_suppression_holds(self, code, path, expected):
        run = lint_paths([path], select=[code])
        assert run.files_checked == 1
        assert [f.code for f in run.findings] == [code] * expected
        # The suppressed twin must not appear.  RPR102's twin is the
        # separate file-level fixture (test_file_level_suppression);
        # every other fixture carries an inline `disable=<code>` line.
        if code == "RPR102":
            return
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        disabled = {
            i for i, line in enumerate(lines, start=1)
            if f"disable={code}" in line
        }
        assert disabled, f"fixture {path} lost its suppressed twin"
        assert not disabled & {f.line for f in run.findings}

    @pytest.mark.parametrize("code,path,expected", RULE_FIXTURES,
                             ids=[c for c, _, _ in RULE_FIXTURES])
    def test_cli_exits_nonzero_on_fixture(self, code, path, expected):
        proc = run_cli(path, "--select", code, "--format", "json")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert f'"{code}"' in proc.stdout

    def test_file_level_suppression(self):
        run = lint_paths([fixture("rpr102_suppressed.py")], select=["RPR102"])
        assert run.findings == []

    def test_unknown_rule_code(self):
        with pytest.raises(KeyError):
            lint_paths([FIXTURES], select=["RPR999"])
        proc = run_cli(FIXTURES, "--select", "RPR999")
        assert proc.returncode == 2


class TestRaceAllowlist:
    def test_allowlist_suppresses_vetted_writes(self):
        races.set_allowlist_path(fixture("allowlist.txt"))
        try:
            run = lint_paths([fixture("rpr101_races.py")], select=["RPR101"])
        finally:
            races.set_allowlist_path(None)
        assert run.findings == []

    def test_empty_allowlist_restores_findings(self):
        races.set_allowlist_path(os.devnull)
        try:
            run = lint_paths([fixture("rpr101_races.py")], select=["RPR101"])
        finally:
            races.set_allowlist_path(None)
        assert len(run.findings) == 2

    def test_malformed_allowlist_rejected(self, tmp_path):
        bad = tmp_path / "allow.txt"
        bad.write_text("no-separator-here\n")
        with pytest.raises(ValueError):
            races.load_allowlist(str(bad))

    def test_shipped_allowlist_parses(self):
        entries = races.load_allowlist(races.DEFAULT_ALLOWLIST_PATH)
        assert entries, "shipped race_allowlist.txt is empty or missing"
        for suffix, key in entries:
            assert suffix and key


class TestSelfCheck:
    def test_src_tree_lints_clean(self):
        """The acceptance gate: ``repro lint src/`` exits 0."""
        proc = run_cli("src", "--mypy", "off")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_benchmarks_clock_fence_clean(self):
        """``benchmarks/`` honors the RPR008 clock fence (the bench
        scripts time through util/timing or the ``repro bench`` harness,
        never ad-hoc time/timeit clocks)."""
        run = lint_paths([os.path.join(REPO, "benchmarks")], select=["RPR008"])
        assert run.findings == []

    def test_race_analyzer_clean_on_engine_paths(self):
        """Zero unallowlisted unguarded shared writes in core/ + indexers/."""
        run = lint_paths(
            [os.path.join(SRC, "repro", "core"),
             os.path.join(SRC, "repro", "indexers")],
            select=["RPR101", "RPR102"],
        )
        assert run.findings == []

    def test_every_documented_rule_registered(self):
        codes = set(registered_rules())
        assert codes == {
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
            "RPR007", "RPR008", "RPR101", "RPR102", "RPR110",
        }
        for reg in registered_rules().values():
            assert reg.description, f"{reg.code} has no description"


class TestIsolation:
    def test_lint_never_imports_the_engine(self):
        """`import repro.lint.cli` must not pull in any engine module."""
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "import sys\n"
            "import repro.lint.cli\n"
            "loaded = [m for m in sys.modules\n"
            "          if m.startswith('repro.') and not m.startswith('repro.lint')]\n"
            "assert not loaded, loaded\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr

    def test_repro_cli_lint_subcommand(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--list-rules"],
            capture_output=True, text=True, cwd=REPO, env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "RPR101" in proc.stdout

    def test_parse_error_becomes_rpr000(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        run = lint_paths([str(broken)])
        assert run.parse_errors == 1
        assert run.findings[0].code == "RPR000"
        proc = run_cli(str(broken))
        assert proc.returncode == 1
