"""Bit-level I/O: the substrate under the γ and Golomb codecs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_empty(self):
        assert BitWriter().getvalue() == b""
        assert BitWriter().bit_length == 0

    def test_single_bits(self):
        w = BitWriter()
        for bit in [1, 0, 1, 1, 0, 0, 0, 1]:
            w.write_bit(bit)
        assert w.getvalue() == bytes([0b10110001])

    def test_partial_byte_zero_padded(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        assert w.getvalue() == bytes([0b10100000])
        assert w.bit_length == 3

    def test_multibyte_field(self):
        w = BitWriter()
        w.write_bits(0xABCD, 16)
        assert w.getvalue() == b"\xab\xcd"

    def test_field_spanning_bytes(self):
        w = BitWriter()
        w.write_bits(0b1, 1)
        w.write_bits(0xFF, 8)
        assert w.getvalue() == bytes([0b11111111, 0b10000000])

    def test_unary(self):
        w = BitWriter()
        w.write_unary(3)
        assert w.getvalue() == bytes([0b11100000])

    def test_unary_zero(self):
        w = BitWriter()
        w.write_unary(0)
        assert w.getvalue() == bytes([0b00000000])
        assert w.bit_length == 1

    def test_unary_large_crosses_chunks(self):
        w = BitWriter()
        w.write_unary(100)
        r = BitReader(w.getvalue())
        assert r.read_unary() == 100

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(4, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(-1, 4)
        with pytest.raises(ValueError):
            BitWriter().write_unary(-1)
        with pytest.raises(ValueError):
            BitWriter().write_bits(1, -1)


class TestBitReader:
    def test_read_bits(self):
        r = BitReader(b"\xab\xcd")
        assert r.read_bits(4) == 0xA
        assert r.read_bits(8) == 0xBC
        assert r.read_bits(4) == 0xD

    def test_eof(self):
        r = BitReader(b"\xff")
        r.read_bits(8)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_positions(self):
        r = BitReader(b"\x00\x00")
        assert r.bits_remaining == 16
        r.read_bits(5)
        assert r.bit_position == 5
        assert r.bits_remaining == 11

    def test_zero_width_read(self):
        r = BitReader(b"\xff")
        assert r.read_bits(0) == 0
        assert r.bit_position == 0


class TestRoundTrip:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**40),
                              st.integers(min_value=1, max_value=41)),
                    max_size=50))
    def test_fields_round_trip(self, fields):
        fields = [(v & ((1 << n) - 1), n) for v, n in fields]
        w = BitWriter()
        for value, nbits in fields:
            w.write_bits(value, nbits)
        r = BitReader(w.getvalue())
        for value, nbits in fields:
            assert r.read_bits(nbits) == value

    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=30))
    def test_unary_round_trip(self, values):
        w = BitWriter()
        for v in values:
            w.write_unary(v)
        r = BitReader(w.getvalue())
        for v in values:
            assert r.read_unary() == v

    @given(st.lists(st.booleans(), max_size=100))
    def test_bit_length_tracks_bits(self, bits):
        w = BitWriter()
        for b in bits:
            w.write_bit(int(b))
        assert w.bit_length == len(bits)
        assert len(w.getvalue()) == (len(bits) + 7) // 8
