"""Plain-text chart rendering for the benchmark reports."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.util.ascii_chart import bar_chart, line_chart, sparkline


class TestBarChart:
    def test_scales_to_peak(self):
        out = bar_chart({"a": 100.0, "b": 50.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_and_values_present(self):
        out = bar_chart({"ours": 262.76, "ivory": 180.4}, unit=" MB/s")
        assert "ours" in out and "262.76 MB/s" in out

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_zero_values(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in out  # no division crash


class TestSparkline:
    def test_monotone_shape(self):
        out = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert out == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_dimensions(self):
        out = line_chart([1, 2, 3], {"s": [10, 20, 30]}, height=5, width=20)
        lines = out.splitlines()
        assert len(lines) == 5 + 3  # grid + axis + x labels + legend
        assert "s" in lines[-1]

    def test_multiple_series_distinct_glyphs(self):
        out = line_chart([1, 2], {"a": [1, 2], "b": [2, 1]}, height=4, width=10)
        assert "o = a" in out and "x = b" in out

    def test_empty(self):
        assert line_chart([], {}) == "(no data)"

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=30),
    )
    def test_never_crashes(self, ys):
        xs = list(range(len(ys)))
        out = line_chart(xs, {"s": ys})
        assert isinstance(out, str) and out
        assert sparkline(ys)


class TestTraceRendererDegenerate:
    """The ``repro trace`` renderer on pathological-but-legal traces.

    These are real shapes: an aborted build writes an empty trace, a
    serial single-worker build has one lane, and a build of an empty
    collection can produce spans whose durations all round to zero.
    """

    @staticmethod
    def _events(spans):
        """(name, lane_tid, ts_us, dur_us) tuples → Chrome events."""
        tids = {}
        events = []
        for name, lane, ts, dur in spans:
            tid = tids.setdefault(lane, len(tids) + 1)
            events.append({"ph": "X", "name": name, "ts": ts, "dur": dur,
                           "tid": tid, "pid": 1})
        for lane, tid in tids.items():
            events.append({"ph": "M", "name": "thread_name", "tid": tid,
                           "pid": 1, "args": {"name": lane}})
        return events

    def test_empty_trace(self):
        from repro.obs.stats import render_trace_summary, spans_from_chrome

        spans = spans_from_chrome([])
        assert spans == []
        assert render_trace_summary(spans) == "(empty trace)"

    def test_single_lane_trace(self):
        from repro.obs.stats import (
            lane_utilization,
            render_trace_summary,
            spans_from_chrome,
        )

        spans = spans_from_chrome(self._events([
            ("build", "main", 0, 1_000_000),
            ("parse", "main", 0, 400_000),
            ("index", "main", 400_000, 600_000),
        ]))
        util = lane_utilization(spans)
        assert set(util) == {"main"} and util["main"] == 1.0
        out = render_trace_summary(spans)
        assert "coverage 100.0%" in out
        assert "main" in out and "parse" in out

    def test_all_zero_duration_spans(self):
        from repro.obs.stats import (
            lane_utilization,
            render_trace_summary,
            span_coverage,
            spans_from_chrome,
        )

        spans = spans_from_chrome(self._events([
            ("build", "main", 0, 0),
            ("parse", "parser-w0", 0, 0),
            ("index", "cpu0", 0, 0),
        ]))
        assert len(spans) == 3
        # A zero-duration root defines no wall time to divide by.
        assert span_coverage(spans) == 0.0
        assert lane_utilization(spans) == {}
        out = render_trace_summary(spans)  # must not divide or crash
        assert "0.000s wall" in out
        assert "stage totals:" in out

    def test_missing_root_span(self):
        from repro.obs.stats import render_trace_summary, spans_from_chrome

        spans = spans_from_chrome(self._events([
            ("parse", "parser-w0", 0, 100),
        ]))
        out = render_trace_summary(spans)
        assert "no 'build' root span" in out
