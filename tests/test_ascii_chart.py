"""Plain-text chart rendering for the benchmark reports."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.util.ascii_chart import bar_chart, line_chart, sparkline


class TestBarChart:
    def test_scales_to_peak(self):
        out = bar_chart({"a": 100.0, "b": 50.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_and_values_present(self):
        out = bar_chart({"ours": 262.76, "ivory": 180.4}, unit=" MB/s")
        assert "ours" in out and "262.76 MB/s" in out

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_zero_values(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in out  # no division crash


class TestSparkline:
    def test_monotone_shape(self):
        out = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert out == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_dimensions(self):
        out = line_chart([1, 2, 3], {"s": [10, 20, 30]}, height=5, width=20)
        lines = out.splitlines()
        assert len(lines) == 5 + 3  # grid + axis + x labels + legend
        assert "s" in lines[-1]

    def test_multiple_series_distinct_glyphs(self):
        out = line_chart([1, 2], {"a": [1, 2], "b": [2, 1]}, height=4, width=10)
        assert "o = a" in out and "x = b" in out

    def test_empty(self):
        assert line_chart([], {}) == "(no data)"

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=30),
    )
    def test_never_crashes(self, ys):
        xs = list(range(len(ys)))
        out = line_chart(xs, {"s": ys})
        assert isinstance(out, str) and out
        assert sparkline(ys)
