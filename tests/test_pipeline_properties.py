"""Property tests over the pipeline simulator: invariants under random
workloads and configurations."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PlatformConfig
from repro.core.pipeline import simulate_full_build, simulate_pipeline
from repro.core.workload import FileWork, GroupWork

MB = 1024 * 1024


@st.composite
def file_works(draw, max_files=12):
    n = draw(st.integers(min_value=1, max_value=max_files))
    works = []
    for k in range(n):
        tokens_pop = draw(st.integers(min_value=0, max_value=2_000_000))
        tokens_unpop = draw(st.integers(min_value=1, max_value=3_000_000))
        unc = draw(st.integers(min_value=1 * MB, max_value=200 * MB))
        works.append(
            FileWork(
                file_index=k,
                compressed_bytes=max(1, unc // 6),
                uncompressed_bytes=unc,
                num_docs=draw(st.integers(min_value=1, max_value=10_000)),
                raw_tokens=int((tokens_pop + tokens_unpop) * 1.5),
                popular=GroupWork(
                    tokens=tokens_pop,
                    node_visits=tokens_pop * draw(st.integers(1, 6)),
                    new_terms=draw(st.integers(0, 10_000)),
                    hot_visit_fraction=0.95,
                    largest_collection_tokens=tokens_pop // 10,
                    visits_per_token=3.0,
                ),
                unpopular=GroupWork(
                    tokens=tokens_unpop,
                    node_visits=tokens_unpop * draw(st.integers(1, 6)),
                    new_terms=draw(st.integers(0, 50_000)),
                    hot_visit_fraction=0.35,
                    largest_collection_tokens=tokens_unpop // 100,
                    visits_per_token=3.0,
                ),
            )
        )
    return works


configs = (
    st.tuples(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=1, max_value=4),
    )
    .filter(lambda t: t[1] + t[2] > 0)  # at least one indexer
    .map(
        lambda t: PlatformConfig(
            num_parsers=t[0],
            num_cpu_indexers=t[1],
            num_gpus=t[2],
            buffer_capacity=t[3],
        )
    )
)


class TestPipelineInvariants:
    @settings(max_examples=25, deadline=None)
    @given(file_works(), configs)
    def test_accounting_identities(self, works, config):
        r = simulate_pipeline(works, config)
        # Per-file indexing times sum to the stage's indexing total.
        assert sum(r.per_file_indexing_s) == r.indexing_total_s
        assert len(r.per_file_indexing_s) == len(works)
        # Stage wall ≥ busy time; waits are the difference.
        assert r.indexer_finish_s >= r.sum_of_three_s - 1e-9
        assert abs(r.indexer_wait_s - (r.indexer_finish_s - r.sum_of_three_s)) < 1e-6
        # The pipeline cannot finish before its slowest stage.
        assert r.pipeline_s >= r.parser_finish_s - 1e-9
        assert r.pipeline_s >= r.indexer_finish_s - 1e-9
        # Disk is exclusive: busy time ≤ wall and ≥ any single read.
        assert r.disk_busy_s <= r.pipeline_s + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(file_works())
    def test_parse_only_never_slower_than_full(self, works):
        cfg = PlatformConfig(num_parsers=4, num_cpu_indexers=2, num_gpus=0)
        full = simulate_pipeline(works, cfg)
        parse_only = simulate_pipeline(works, cfg, parse_only=True)
        # Without back-pressure from indexers, parsers finish no later.
        assert parse_only.parser_finish_s <= full.parser_finish_s + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(file_works(), configs)
    def test_full_build_totals(self, works, config):
        b = simulate_full_build(works, config)
        assert b.total_s >= b.pipeline.pipeline_s
        assert b.total_terms == sum(
            w.popular.new_terms + w.unpopular.new_terms for w in works
        )
        assert b.throughput_mbps >= 0

    @settings(max_examples=10, deadline=None)
    @given(file_works())
    def test_more_indexers_never_slower(self, works):
        one = simulate_pipeline(works, PlatformConfig(num_cpu_indexers=1, num_gpus=0))
        two = simulate_pipeline(works, PlatformConfig(num_cpu_indexers=2, num_gpus=0))
        assert two.indexing_total_s <= one.indexing_total_s + 1e-9
