"""Cost model structure and Table IV calibration invariants."""

from __future__ import annotations

import pytest

from repro.core.costs import CostConstants, StageCosts
from repro.core.workload import FileWork, GroupWork, WorkloadModel


@pytest.fixture(scope="module")
def costs():
    return StageCosts()


@pytest.fixture(scope="module")
def work():
    return WorkloadModel.paper_scale("clueweb09").files()[700]


class TestParserCosts:
    def test_paper_io_measurements(self, costs, work):
        # §IV.A: ~160MB compressed reads in ~1.6s; ~1GB decompresses in ~3.2s.
        assert costs.read_seconds(work) == pytest.approx(1.6, rel=0.15)
        assert costs.decompress_seconds(work) == pytest.approx(3.2, rel=0.25)

    def test_parse_around_17s_per_file(self, costs, work):
        assert 12 < costs.parse_seconds(work) < 22

    def test_regroup_overhead_is_5_percent(self, costs, work):
        with_r = costs.parse_seconds(work, regroup=True)
        without = costs.parse_seconds(work, regroup=False)
        assert with_r / without == pytest.approx(1.05)


class TestCPUCosts:
    def test_two_indexers_speedup_1_77(self, costs, work):
        groups = [work.popular, work.unpopular]
        one = costs.cpu_stage_seconds(groups, 1)
        two = costs.cpu_stage_seconds(groups, 2)
        assert one / two == pytest.approx(1.77, rel=0.02)

    def test_hot_groups_cheaper(self, costs):
        hot = GroupWork(tokens=1000, node_visits=3000, hot_visit_fraction=0.95)
        cold = GroupWork(tokens=1000, node_visits=3000, hot_visit_fraction=0.1)
        assert costs.cpu_group_seconds(hot) < costs.cpu_group_seconds(cold)

    def test_extra_parsers_pressure_the_cache(self, costs, work):
        at6 = costs.cpu_stage_seconds([work.popular], 1, num_parsers=6)
        at7 = costs.cpu_stage_seconds([work.popular], 1, num_parsers=7)
        assert at7 > at6  # the Fig 10 M=7 effect

    def test_zero_indexers(self, costs, work):
        assert costs.cpu_stage_seconds([work.popular], 0) == 0.0


class TestGPUCosts:
    def test_more_gpus_faster(self, costs, work):
        one = costs.gpu_kernel_seconds(work.unpopular, 1)
        two = costs.gpu_kernel_seconds(work.unpopular, 2)
        assert two < one

    def test_480_blocks_near_optimal(self, costs, work):
        times = {
            nb: costs.gpu_kernel_seconds(work.unpopular, 2, num_blocks=nb)
            for nb in [30, 120, 240, 480, 960, 3840]
        }
        assert times[480] < times[30]
        assert times[480] < times[3840]
        assert times[480] <= min(times.values()) * 1.02

    def test_static_schedule_slower_when_floor_bound(self, costs):
        group = GroupWork(
            tokens=10**7, node_visits=4 * 10**7,
            largest_collection_tokens=10**6, visits_per_token=4.0,
        )
        dyn = costs.gpu_kernel_seconds(group, 2, dynamic=True)
        stat = costs.gpu_kernel_seconds(group, 2, dynamic=False)
        assert stat > dyn

    def test_popular_floor_dominates_gpu(self, costs, work):
        """The structural reason popular collections belong on the CPU: a
        single giant collection serializes on one warp."""
        merged = GroupWork()
        merged.merge(work.popular)
        merged.merge(work.unpopular)
        t_all = costs.gpu_kernel_seconds(merged, 2)
        t_unpop = costs.gpu_kernel_seconds(work.unpopular, 2)
        assert t_all > 2 * t_unpop

    def test_empty_group_free(self, costs):
        assert costs.gpu_kernel_seconds(GroupWork(), 2) == 0.0
        assert costs.gpu_kernel_seconds(GroupWork(tokens=10), 0) == 0.0


class TestRunLifecycle:
    def test_pre_post_positive(self, costs, work):
        assert costs.pre_seconds(work, 2) > costs.pre_seconds(work, 0) > 0
        assert costs.post_seconds(work, 2) > 0

    def test_post_scales_with_postings(self, costs, work):
        small = FileWork(
            file_index=0, compressed_bytes=1, uncompressed_bytes=1,
            num_docs=1, raw_tokens=1,
        )
        assert costs.post_seconds(work, 0) > costs.post_seconds(small, 0)

    def test_epilogue_rows(self, costs):
        # Table VI: 84.8M terms → combine ≈ 2.46s, write ≈ 59.2s.
        terms = 84_799_475
        assert costs.dict_combine_seconds(terms) == pytest.approx(2.46, rel=0.02)
        assert costs.dict_write_seconds(terms) == pytest.approx(59.21, rel=0.02)

    def test_sampling_seconds(self, costs):
        works = WorkloadModel.paper_scale("clueweb09").files()
        s = costs.sampling_seconds(works, sample_fraction=0.001)
        assert s == pytest.approx(59.53, rel=0.25)


class TestConstants:
    def test_frozen(self):
        c = CostConstants()
        with pytest.raises(Exception):
            c.disk_read_bytes_per_s = 1.0  # type: ignore[misc]

    def test_custom_constants_flow_through(self, work):
        fast_disk = StageCosts(CostConstants(disk_read_bytes_per_s=1e9))
        assert fast_disk.read_seconds(work) < StageCosts().read_seconds(work)
