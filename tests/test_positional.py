"""The positional-index extension: codec, lists, engine, end-to-end."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.parsing.parser import Parser
from repro.postings.compression import VarBytePositionalCodec, get_codec
from repro.postings.lists import PostingsList
from repro.postings.merge import merge_index
from repro.postings.reader import PostingsReader

positional_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=5),  # doc gap
        st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=6),
    ),
    max_size=25,
).map(
    lambda entries: [
        (
            sum(g for g, _ in entries[: i + 1]) - 1,
            len(pgaps),
            tuple(sum(pgaps[: j + 1]) - 1 for j in range(len(pgaps))),
        )
        for i, (_, pgaps) in enumerate(entries)
    ]
)


class TestPositionalCodec:
    def test_round_trip(self):
        codec = VarBytePositionalCodec()
        pl = [(0, 2, (3, 17)), (5, 1, (0,)), (100, 3, (1, 2, 99))]
        assert codec.decode(codec.encode(pl)) == pl

    def test_empty(self):
        codec = VarBytePositionalCodec()
        assert codec.decode(codec.encode([])) == []

    def test_tf_position_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VarBytePositionalCodec().encode([(0, 2, (3,))])

    def test_unsorted_positions_rejected(self):
        with pytest.raises(ValueError):
            VarBytePositionalCodec().encode([(0, 2, (5, 3))])

    def test_registry_flags(self):
        assert get_codec("varbyte-pos").positional
        assert not get_codec("varbyte").positional

    @settings(max_examples=50, deadline=None)
    @given(positional_lists)
    def test_round_trip_random(self, postings):
        codec = VarBytePositionalCodec()
        assert codec.decode(codec.encode(postings)) == postings


class TestPositionalLists:
    def test_occurrences_with_positions(self):
        pl = PostingsList()
        pl.add_occurrence(3, position=0)
        pl.add_occurrence(3, position=7)
        pl.add_occurrence(9, position=2)
        assert pl.positional_postings() == [(3, 2, (0, 7)), (9, 1, (2,))]
        assert pl.postings() == [(3, 2), (9, 1)]
        assert pl.is_positional

    def test_mixing_modes_rejected(self):
        pl = PostingsList()
        pl.add_occurrence(1, position=0)
        with pytest.raises(ValueError):
            pl.add_occurrence(2)  # missing position
        pl2 = PostingsList()
        pl2.add_occurrence(1)
        with pytest.raises(ValueError):
            pl2.add_occurrence(2, position=0)

    def test_positions_must_increase_within_doc(self):
        pl = PostingsList()
        pl.add_occurrence(1, position=5)
        with pytest.raises(ValueError):
            pl.add_occurrence(1, position=5)

    def test_add_posting_with_positions(self):
        pl = PostingsList()
        pl.add_posting(4, 2, positions=[1, 8])
        assert pl.positional_postings() == [(4, 2, (1, 8))]
        with pytest.raises(ValueError):
            pl.add_posting(9, 2, positions=[3])  # tf mismatch

    def test_plain_list_has_no_positions(self):
        pl = PostingsList()
        pl.add_occurrence(1)
        assert not pl.is_positional
        with pytest.raises(ValueError):
            pl.positional_postings()


class TestPositionalParser:
    def test_positions_are_emitted_ordinals(self):
        parser = Parser(strip_html=False, positional=True)
        batch, _ = parser.parse_texts(["zebra apple zebra binder"])
        assert batch.positions is not None
        trie = parser.trie
        z = trie.trie_index("zebra")
        suffix = trie.split("zebra").suffix.encode()
        # zebra at emitted positions 0 and 2.
        zi = batch.collections[z].index((0, [suffix, suffix]))
        assert batch.positions[z][zi] == [0, 2]

    def test_positional_requires_regroup(self):
        with pytest.raises(ValueError):
            Parser(regroup=False, positional=True)


class TestPositionalEngine:
    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory, tiny_collection):
        out = str(tmp_path_factory.mktemp("posidx"))
        cfg = PlatformConfig(
            num_parsers=3, num_cpu_indexers=2, num_gpus=1,
            sample_fraction=0.2, positional=True,
        )
        result = IndexingEngine(cfg).build(tiny_collection, out)
        return result, out

    def test_codec_autoselected(self):
        assert PlatformConfig(positional=True).codec == "varbyte-pos"
        with pytest.raises(ValueError):
            PlatformConfig(positional=True, codec="gamma")

    def test_plain_postings_match_nonpositional_build(
        self, built, reference_index
    ):
        _, out = built
        reader = PostingsReader(out)
        assert reader.is_positional
        for term, expected in reference_index.items():
            assert reader.postings(term) == expected, term

    def test_positions_consistent_with_tf(self, built):
        _, out = built
        reader = PostingsReader(out)
        for term in list(reader.vocabulary())[:200]:
            for doc, tf, positions in reader.positional_postings(term):
                assert len(positions) == tf
                assert list(positions) == sorted(set(positions))

    def test_each_position_used_once_per_doc(self, built):
        """Across all terms, a document's emitted positions are distinct."""
        _, out = built
        reader = PostingsReader(out)
        seen: dict[int, set[int]] = {}
        for term in reader.vocabulary():
            for doc, _, positions in reader.positional_postings(term):
                bucket = seen.setdefault(doc, set())
                for p in positions:
                    assert p not in bucket, (term, doc, p)
                    bucket.add(p)
        # Positions are dense ordinals 0..n-1 per document.
        for doc, bucket in seen.items():
            assert bucket == set(range(len(bucket)))

    def test_merge_keeps_positions(self, built, tmp_path):
        _, out = built
        merged_dir = str(tmp_path / "merged")
        merge_index(out, merged_dir)
        merged = PostingsReader(merged_dir)
        assert merged.is_positional
        original = PostingsReader(out)
        term = next(iter(original.vocabulary()))
        assert merged.positional_postings(term) == original.positional_postings(term)

    def test_nonpositional_reader_rejects_position_query(self, tmp_path, tiny_collection):
        out = str(tmp_path / "plain")
        IndexingEngine(
            PlatformConfig(num_parsers=2, num_cpu_indexers=1, num_gpus=0,
                           sample_fraction=0.2)
        ).build(tiny_collection, out)
        reader = PostingsReader(out)
        assert not reader.is_positional
        with pytest.raises(ValueError):
            reader.positional_postings("anything")
