"""Multi-disk run striping (§III.F parallel-reading layout)."""

from __future__ import annotations

import os

import pytest

from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.postings.lists import PostingsList
from repro.postings.output import DocRangeMap, RunWriter
from repro.postings.reader import PostingsReader


def _plist(pairs):
    pl = PostingsList()
    for d, tf in pairs:
        pl.add_posting(d, tf)
    return pl


class TestStripedWriter:
    def test_round_robin_placement(self, tmp_path):
        writer = RunWriter(str(tmp_path), num_stripes=3)
        for run_id in range(6):
            writer.write_run(run_id, {1: _plist([(run_id * 10, 1)])})
        for run_id in range(6):
            expected_dir = os.path.join(str(tmp_path), f"disk{run_id % 3}")
            assert os.path.exists(
                os.path.join(expected_dir, f"run_{run_id:05d}.post")
            )

    def test_single_stripe_stays_flat(self, tmp_path):
        writer = RunWriter(str(tmp_path), num_stripes=1)
        writer.write_run(0, {1: _plist([(0, 1)])})
        assert os.path.exists(tmp_path / "run_00000.post")
        assert not os.path.exists(tmp_path / "disk0")

    def test_map_round_trips_relative_paths(self, tmp_path):
        writer = RunWriter(str(tmp_path), num_stripes=2)
        mapping = DocRangeMap()
        for run_id in range(4):
            mapping.add(writer.write_run(run_id, {7: _plist([(run_id, 2)])}))
        mapping.save(str(tmp_path))
        reader = PostingsReader(str(tmp_path))
        assert reader.postings(7) == [(0, 2), (1, 2), (2, 2), (3, 2)]

    def test_invalid_stripes(self, tmp_path):
        with pytest.raises(ValueError):
            RunWriter(str(tmp_path), num_stripes=0)
        with pytest.raises(ValueError):
            PlatformConfig(output_stripes=0)


class TestEngineStriped:
    def test_striped_build_queryable(self, tiny_collection, reference_index, tmp_path):
        out = str(tmp_path / "striped")
        IndexingEngine(
            PlatformConfig(num_parsers=2, num_cpu_indexers=1, num_gpus=1,
                           sample_fraction=0.2, output_stripes=3)
        ).build(tiny_collection, out)
        # Runs really are spread over stripe directories.
        stripes = [d for d in os.listdir(out) if d.startswith("disk")]
        assert len(stripes) == 3
        per_stripe = [
            len([f for f in os.listdir(os.path.join(out, d)) if f.endswith(".post")])
            for d in sorted(stripes)
        ]
        assert sum(per_stripe) == tiny_collection.num_files
        assert max(per_stripe) - min(per_stripe) <= 1  # balanced
        # And the index is byte-identical in content.
        reader = PostingsReader(out)
        for term, expected in reference_index.items():
            assert reader.postings(term) == expected
