"""The packed container format and Step-1 loading."""

from __future__ import annotations

import gzip

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.warc import read_packed_file, uncompressed_size, write_packed_file
from repro.parsing.docio import load_collection_file


class TestContainer:
    def test_round_trip_plain(self, tmp_path):
        path = str(tmp_path / "f.warc")
        docs = [("u://1", "hello world"), ("u://2", "text with\nnewlines")]
        comp, uncomp = write_packed_file(path, docs, compress=False)
        assert comp == uncomp
        loaded = read_packed_file(path)
        assert [(d.uri, d.text) for d in loaded] == docs

    def test_round_trip_gzip(self, tmp_path):
        path = str(tmp_path / "f.warc.gz")
        docs = [("u://1", "compressible " * 100)]
        comp, uncomp = write_packed_file(path, docs, compress=True)
        assert comp < uncomp
        assert read_packed_file(path)[0].text == docs[0][1]
        assert uncompressed_size(path) == uncomp

    def test_unicode_payload(self, tmp_path):
        path = str(tmp_path / "u.warc")
        write_packed_file(path, [("u://x", "café zoé — ünïcode")], compress=False)
        assert read_packed_file(path)[0].text == "café zoé — ünïcode"

    def test_offsets_monotonic(self, tmp_path):
        path = str(tmp_path / "o.warc")
        write_packed_file(path, [("u://a", "x" * 10), ("u://b", "y")], compress=False)
        docs = read_packed_file(path)
        assert docs[0].offset < docs[1].offset

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "bad.warc")
        with open(path, "wb") as fh:
            fh.write(b"NOT A CONTAINER")
        with pytest.raises(ValueError):
            read_packed_file(path)

    def test_uri_with_spaces_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_packed_file(str(tmp_path / "x.warc"), [("bad uri", "t")], compress=False)

    def test_gzip_detected_by_magic_not_suffix(self, tmp_path):
        path = str(tmp_path / "noext")
        with gzip.open(path, "wb") as fh:
            fh.write(b"REPROWARC/1\nDOC u://1 2\nhi\n")
        assert read_packed_file(path)[0].text == "hi"

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.text(
                alphabet=st.characters(codec="utf-8", exclude_characters="\x00"),
                max_size=200,
            ),
            max_size=10,
        )
    )
    def test_round_trip_random_payloads(self, tmp_path_factory, texts):
        path = str(tmp_path_factory.mktemp("warc") / "r.warc.gz")
        docs = [(f"u://{i}", t) for i, t in enumerate(texts)]
        write_packed_file(path, docs)
        assert [(d.uri, d.text) for d in read_packed_file(path)] == docs


class TestDocIO:
    def test_load_assigns_local_ids(self, tmp_path):
        path = str(tmp_path / "c.warc.gz")
        write_packed_file(path, [(f"u://{i}", f"doc {i}") for i in range(5)])
        loaded = load_collection_file(path)
        assert loaded.num_docs == 5
        assert [e.local_doc_id for e in loaded.doc_table] == list(range(5))
        assert loaded.texts[3] == "doc 3"
        assert loaded.compressed_bytes > 0
        assert loaded.uncompressed_bytes >= sum(len(t) for t in loaded.texts)
