"""The Table I trie-collection index table."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dictionary.trie import NUM_TRIE_COLLECTIONS, TrieCategory, TrieTable


@pytest.fixture(scope="module")
def trie():
    return TrieTable()


class TestPaperExamples:
    """Every worked example in Table I."""

    @pytest.mark.parametrize(
        "term,index",
        [
            ("-80", 0),
            ("3d", 0),
            ("01", 1),
            ("0195", 1),
            ("9", 10),
            ("954", 10),
            ("a", 11),
            ("at", 11),
            ("act", 11),
            ("z", 36),
            ("zoo", 36),
            ("zoé", 36),
            ("aaat", 37),
            ("aabomycin", 38),
            ("zzzy", 17612),
        ],
    )
    def test_examples(self, trie, term, index):
        assert trie.trie_index(term) == index

    def test_collection_count(self, trie):
        assert trie.num_collections == NUM_TRIE_COLLECTIONS == 17613

    def test_application_example(self, trie):
        # Section III.B.2: "application" keeps "lication" after the strip;
        # "lica" would sit in the node cache.
        split = trie.split("application")
        assert split.suffix == "lication"
        assert trie.prefix_for(split.index) == "app"


class TestCategories:
    def test_special_unicode_first_char(self, trie):
        assert trie.split("česky").category is TrieCategory.SPECIAL

    def test_digit_prefix_mixed_is_special(self, trie):
        assert trie.split("3d").category is TrieCategory.SPECIAL

    def test_pure_numbers_by_first_digit(self, trie):
        for d in range(10):
            assert trie.trie_index(f"{d}42") == 1 + d

    def test_short_terms_bucket_by_first_letter(self, trie):
        for i, c in enumerate("abcdefghijklmnopqrstuvwxyz"):
            assert trie.trie_index(c + "ab") == 11 + i

    def test_special_char_inside_prefix_window(self, trie):
        # 4+ letters but a non-[a-z] char within the first 3.
        assert trie.split("zoéx").category is TrieCategory.SHORT_OR_SPECIAL
        assert trie.trie_index("zoéx") == 36

    def test_special_char_after_prefix_window_is_full(self, trie):
        split = trie.split("abcé")
        assert split.category is TrieCategory.FULL_PREFIX
        assert split.suffix == "é"

    def test_full_prefix_rank_arithmetic(self, trie):
        assert trie.trie_index("aaaa") == 37
        assert trie.trie_index("aaba") == 37 + 1
        assert trie.trie_index("abaa") == 37 + 26
        assert trie.trie_index("baaa") == 37 + 676

    def test_empty_term_rejected(self, trie):
        with pytest.raises(ValueError):
            trie.split("")

    def test_category_of_matches_ranges(self, trie):
        for category, (lo, hi) in trie.category_ranges().items():
            assert trie.category_of(lo) is category
            assert trie.category_of(hi) is category

    def test_index_bounds_checked(self, trie):
        with pytest.raises(IndexError):
            trie.prefix_for(-1)
        with pytest.raises(IndexError):
            trie.prefix_for(trie.num_collections)


class TestInverse:
    def test_prefix_lengths_by_category(self, trie):
        assert trie.prefix_for(0) == ""
        assert trie.prefix_for(1) == "0"
        assert trie.prefix_for(11) == "a"
        assert trie.prefix_for(37) == "aaa"
        assert trie.prefix_for(17612) == "zzz"

    @given(
        st.text(
            alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-é"),
            min_size=1,
            max_size=12,
        )
    )
    def test_split_reconstruct_bijective(self, term):
        trie = TrieTable()
        split = trie.split(term)
        assert trie.reconstruct(split.index, split.suffix) == term

    @given(st.integers(min_value=0, max_value=NUM_TRIE_COLLECTIONS - 1))
    def test_prefix_for_maps_back(self, index):
        trie = TrieTable()
        prefix = trie.prefix_for(index)
        if index >= 37:
            # The tail category's prefix alone re-derives the index when a
            # 4th letter is appended.
            assert trie.trie_index(prefix + "x") == index


class TestHeights:
    """The §III.B.1 ablation dimension."""

    @pytest.mark.parametrize("height,expected", [(1, 63), (2, 713), (3, 17613), (4, 457_013)])
    def test_collection_counts(self, height, expected):
        assert TrieTable(height=height).num_collections == expected

    def test_height_changes_strip_depth(self):
        t2, t4 = TrieTable(height=2), TrieTable(height=4)
        assert t2.split("application").suffix == "plication"
        assert t4.split("application").suffix == "ication"

    def test_short_threshold_follows_height(self):
        t2 = TrieTable(height=2)
        assert t2.split("ab").category is TrieCategory.SHORT_OR_SPECIAL
        assert t2.split("abc").category is TrieCategory.FULL_PREFIX

    def test_invalid_height(self):
        with pytest.raises(ValueError):
            TrieTable(height=0)

    @given(
        st.integers(min_value=1, max_value=4),
        st.text(
            alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz013é"),
            min_size=1,
            max_size=10,
        ),
    )
    def test_bijective_at_all_heights(self, height, term):
        trie = TrieTable(height=height)
        split = trie.split(term)
        assert trie.reconstruct(split.index, split.suffix) == term
        assert 0 <= split.index < trie.num_collections
