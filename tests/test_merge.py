"""The optional post-processing merge of partial postings lists."""

from __future__ import annotations

from repro.postings.compression import GolombCodec
from repro.postings.lists import PostingsList
from repro.postings.merge import merge_index
from repro.postings.output import DocRangeMap, RunWriter
from repro.postings.reader import PostingsReader


def _build_multi_run(out_dir: str, runs: int = 4) -> None:
    writer = RunWriter(out_dir)
    mapping = DocRangeMap()
    for run_id in range(runs):
        lists = {}
        for term in range(1, 6):
            pl = PostingsList()
            pl.add_posting(run_id * 100 + term, term)
            pl.add_posting(run_id * 100 + term + 10, 1)
            lists[term] = pl
        mapping.add(writer.write_run(run_id, lists))
    mapping.save(out_dir)


class TestMerge:
    def test_single_monolithic_run(self, tmp_path):
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        _build_multi_run(src)
        stats = merge_index(src, dst)
        assert stats["input_runs"] == 4
        assert stats["terms"] == 5
        merged = PostingsReader(dst)
        assert merged.run_count() == 1

    def test_postings_identical_after_merge(self, tmp_path):
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        _build_multi_run(src)
        merge_index(src, dst)
        before, after = PostingsReader(src), PostingsReader(dst)
        for term in range(1, 6):
            assert before.postings(term) == after.postings(term)

    def test_merge_with_different_codec(self, tmp_path):
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        _build_multi_run(src)
        merge_index(src, dst, codec=GolombCodec())
        assert PostingsReader(dst).postings(3) == PostingsReader(src).postings(3)

    def test_dictionary_copied(self, tmp_path):
        from repro.dictionary.dictionary import Dictionary
        from repro.dictionary.serialize import save_dictionary

        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        _build_multi_run(src)
        d = Dictionary()
        d.add_term("alpha")
        save_dictionary(d, f"{src}/dictionary.bin")
        merge_index(src, dst)
        assert (tmp_path / "dst" / "dictionary.bin").exists()
