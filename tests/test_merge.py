"""The optional post-processing merge of partial postings lists."""

from __future__ import annotations

import os

import pytest

from repro.postings.compression import (
    GolombCodec,
    PostingsCodec,
    VarByteCodec,
    VarBytePositionalCodec,
)
from repro.postings.lists import PostingsList
from repro.postings.merge import merge_index
from repro.postings.output import DocRangeMap, RunWriter, read_run_header_from_file
from repro.postings.reader import PostingsReader


def _build_multi_run(
    out_dir: str, runs: int = 4, codec: PostingsCodec | None = None
) -> None:
    writer = RunWriter(out_dir, codec=codec)
    mapping = DocRangeMap()
    for run_id in range(runs):
        lists = {}
        for term in range(1, 6):
            pl = PostingsList()
            pl.add_posting(run_id * 100 + term, term)
            pl.add_posting(run_id * 100 + term + 10, 1)
            lists[term] = pl
        mapping.add(writer.write_run(run_id, lists))
    mapping.save(out_dir)


def _merged_run_codec_name(index_dir: str) -> str:
    with open(os.path.join(index_dir, "run_00000.post"), "rb") as fh:
        return read_run_header_from_file(fh)[1]


class TestMerge:
    def test_single_monolithic_run(self, tmp_path):
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        _build_multi_run(src)
        stats = merge_index(src, dst)
        assert stats["input_runs"] == 4
        assert stats["terms"] == 5
        merged = PostingsReader(dst)
        assert merged.run_count() == 1

    def test_postings_identical_after_merge(self, tmp_path):
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        _build_multi_run(src)
        merge_index(src, dst)
        before, after = PostingsReader(src), PostingsReader(dst)
        for term in range(1, 6):
            assert before.postings(term) == after.postings(term)

    def test_merge_with_different_codec(self, tmp_path):
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        _build_multi_run(src)
        merge_index(src, dst, codec=GolombCodec())
        assert PostingsReader(dst).postings(3) == PostingsReader(src).postings(3)

    def test_dictionary_copied(self, tmp_path):
        from repro.dictionary.dictionary import Dictionary
        from repro.dictionary.serialize import save_dictionary

        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        _build_multi_run(src)
        d = Dictionary()
        d.add_term("alpha")
        save_dictionary(d, f"{src}/dictionary.bin")
        merge_index(src, dst)
        assert (tmp_path / "dst" / "dictionary.bin").exists()


class TestCodecPreservation:
    """Regression: ``codec=None`` must keep the run codec unconditionally.

    The old code only preserved the input codec when it was positional, so
    a golomb-encoded index silently came out varbyte-encoded.
    """

    def test_non_positional_codec_preserved(self, tmp_path):
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        _build_multi_run(src, codec=GolombCodec())
        merge_index(src, dst)
        assert _merged_run_codec_name(dst) == "golomb"
        assert PostingsReader(dst).postings(3) == PostingsReader(src).postings(3)

    def test_positional_codec_still_preserved(self, tmp_path):
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        writer = RunWriter(src, codec=VarBytePositionalCodec())
        mapping = DocRangeMap()
        for run_id in range(3):
            pl = PostingsList()
            pl.add_posting(run_id * 10 + 1, 2, [0, 4])
            pl.add_posting(run_id * 10 + 5, 1, [7])
            mapping.add(writer.write_run(run_id, {1: pl}))
        mapping.save(src)
        merge_index(src, dst)
        assert _merged_run_codec_name(dst) == "varbyte-pos"
        assert PostingsReader(dst).postings(1) == PostingsReader(src).postings(1)

    def test_explicit_codec_still_wins(self, tmp_path):
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        _build_multi_run(src, codec=GolombCodec())
        merge_index(src, dst, codec=VarByteCodec())
        assert _merged_run_codec_name(dst) == "varbyte"

    def test_mixed_codec_run_set_rejected(self, tmp_path):
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        mapping = DocRangeMap()
        for run_id, codec in enumerate([VarByteCodec(), GolombCodec()]):
            writer = RunWriter(src, codec=codec)
            pl = PostingsList()
            pl.add_posting(run_id * 10 + 1, 1)
            mapping.add(writer.write_run(run_id, {1: pl}))
        mapping.save(src)
        with pytest.raises(ValueError, match="mixed codecs"):
            merge_index(src, dst)


class TestStreamingMerge:
    """Regression: the merge must not hold all postings resident at once."""

    def test_peak_resident_bounded_by_largest_term(self, tmp_path):
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        writer = RunWriter(src)
        mapping = DocRangeMap()
        runs, heavy_docs_per_run = 4, 25
        for run_id in range(runs):
            base = run_id * 1000
            heavy = PostingsList()
            for d in range(heavy_docs_per_run):
                heavy.add_posting(base + d, 1)
            lists = {1: heavy}
            for term in range(2, 8):
                pl = PostingsList()
                pl.add_posting(base + term, 1)
                lists[term] = pl
            mapping.add(writer.write_run(run_id, lists))
        mapping.save(src)
        stats = merge_index(src, dst)
        # Peak equals the heaviest single term's merged list — never the
        # whole index, which is what the dict-of-everything merge held.
        assert stats["peak_resident_postings"] == runs * heavy_docs_per_run
        assert stats["peak_resident_postings"] < stats["postings"]
        merged = PostingsReader(dst)
        assert len(merged.postings(1)) == runs * heavy_docs_per_run

    def test_header_parse_survives_chunk_boundaries(self, tmp_path, monkeypatch):
        """Regression: a header cut mid-uvarint at the chunk boundary.

        ``read_run_header_from_file`` buffers the file in fixed chunks and
        retries the parse; a chunk ending inside a uvarint raises EOFError
        (not IndexError), which used to escape and crash the merge on any
        run whose header exceeded one chunk.  Shrinking the chunk size
        forces every boundary case through the retry loop.
        """
        from repro.postings import output

        src = str(tmp_path / "src")
        _build_multi_run(src, runs=1)
        path = os.path.join(src, "run_00000.post")
        with open(path, "rb") as fh:
            expected = output.read_run_header(fh.read())
        for chunk in (1, 3, 16):
            monkeypatch.setattr(output, "_STREAM_CHUNK", chunk)
            with open(path, "rb") as fh:
                assert output.read_run_header_from_file(fh) == expected

    def test_streaming_output_identical_to_write_run(self, tmp_path):
        """write_run_streaming produces byte-identical run files."""
        lists = {}
        for term in range(1, 9):
            pl = PostingsList()
            for d in range(term * 3):
                pl.add_posting(d * 2 + term, 1 + d % 3)
            lists[term] = pl
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        batch_file = RunWriter(a).write_run(0, lists)
        stream_file = RunWriter(b).write_run_streaming(
            0, ((t, lists[t]) for t in sorted(lists))
        )
        with open(batch_file.path, "rb") as fa, open(stream_file.path, "rb") as fb:
            assert fa.read() == fb.read()
        assert not os.path.exists(stream_file.path + ".payload.tmp")
