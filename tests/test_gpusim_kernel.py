"""Warp cost accounting, kernel scheduling, and the device model."""

from __future__ import annotations

import random

import pytest

from repro.gpusim.costmodel import TESLA_C1060, GPUSpec
from repro.gpusim.device import Device
from repro.gpusim.kernel import KernelLaunch, WorkItem
from repro.gpusim.warp import CYCLES_PER_WARP_STEP, WarpExecutor


class TestSpec:
    def test_c1060_parameters(self):
        spec = TESLA_C1060
        assert spec.num_sms == 30
        assert spec.cores_per_sm == 8
        assert spec.warp_size == 32
        assert spec.shared_mem_bytes == 16 * 1024
        assert spec.device_memory_bytes == 4 * 1024**3
        assert 400 <= spec.mem_latency_cycles <= 600
        assert spec.coalesced_line_bytes == 64  # 16 words

    def test_node_load_is_8_transactions(self):
        assert TESLA_C1060.node_load_transactions == 8

    def test_seconds_conversion(self):
        assert TESLA_C1060.seconds(TESLA_C1060.clock_hz) == pytest.approx(1.0)

    def test_transfer_includes_latency(self):
        t = TESLA_C1060.transfer_seconds(1)
        assert t >= TESLA_C1060.pcie_latency_s
        assert TESLA_C1060.transfer_seconds(0) == 0.0


class TestWarpExecutor:
    def test_node_load_charges_stall_and_bus(self):
        w = WarpExecutor()
        w.load_node()
        assert w.counters.node_loads == 1
        assert w.counters.memory_stall_cycles == TESLA_C1060.mem_latency_cycles
        assert w.counters.bus_cycles > 0

    def test_bulk_counts_equal_repeated_calls(self):
        a, b = WarpExecutor(), WarpExecutor()
        for _ in range(10):
            a.load_node()
            a.parallel_compare()
            a.reduce()
            a.shift(0)
            a.split()
        b.load_node(count=10)
        b.parallel_compare(count=10)
        b.reduce(count=10)
        b.shift(0, count=10)
        b.split(count=10)
        assert a.counters == b.counters

    def test_compute_step_costs(self):
        w = WarpExecutor()
        w.parallel_compare(cache_bytes=4)
        assert w.counters.compute_cycles == 4 * CYCLES_PER_WARP_STEP
        w.reduce()
        assert w.counters.compute_cycles == (4 + 5) * CYCLES_PER_WARP_STEP

    def test_uncoalesced_fetch_costlier_than_node_load(self):
        coalesced, scattered = WarpExecutor(), WarpExecutor()
        coalesced.load_node(512)
        scattered.fetch_full_string(512)
        assert (
            scattered.counters.memory_stall_cycles
            > coalesced.counters.memory_stall_cycles
        )

    def test_merge(self):
        a, b = WarpExecutor(), WarpExecutor()
        a.load_node()
        b.split()
        a.counters.merge(b.counters)
        assert a.counters.splits == 1 and a.counters.node_loads == 1


class TestKernelLaunch:
    def _items(self, n=500, seed=0):
        rng = random.Random(seed)
        return [
            WorkItem(
                key=i,
                compute_cycles=rng.expovariate(1 / 3e4),
                memory_stall_cycles=rng.expovariate(1 / 3e5),
            )
            for i in range(n)
        ]

    def test_more_blocks_hide_latency(self):
        items = self._items()
        t30 = KernelLaunch(num_blocks=30).run(items).elapsed_seconds
        t240 = KernelLaunch(num_blocks=240).run(items).elapsed_seconds
        assert t240 < t30 / 2  # resident blocks overlap stalls

    def test_block_sweep_is_u_shaped(self):
        items = self._items(2000)
        times = {
            nb: KernelLaunch(num_blocks=nb).run(items).elapsed_seconds
            for nb in [30, 240, 480, 7680]
        }
        assert times[480] < times[30]
        assert times[480] < times[7680]  # per-block overhead wins eventually

    def test_dynamic_beats_static_on_skewed_items(self):
        # Adversarial for static pre-assignment: big collections recur at
        # the block-count period, so `i mod B` piles them on one block
        # while the dynamic queue spreads them.
        items = [
            WorkItem(
                key=i,
                compute_cycles=1e3,
                memory_stall_cycles=5e6 if i % 64 == 0 else 1e3,
            )
            for i in range(1000)
        ]
        dyn = KernelLaunch(num_blocks=64, schedule="dynamic").run(items)
        stat = KernelLaunch(num_blocks=64, schedule="static").run(items)
        assert dyn.elapsed_seconds < stat.elapsed_seconds
        assert dyn.load_imbalance <= stat.load_imbalance

    def test_all_items_assigned(self):
        items = self._items(123)
        result = KernelLaunch(num_blocks=16).run(items)
        assert sum(result.items_per_block) == 123

    def test_resident_blocks_capped(self):
        result = KernelLaunch(num_blocks=480).run(self._items(10))
        assert result.resident_blocks_per_sm == TESLA_C1060.max_blocks_per_sm

    def test_empty_launch(self):
        result = KernelLaunch(num_blocks=480).run([])
        assert result.elapsed_seconds > 0  # launch + block overhead only
        assert result.load_imbalance >= 1.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            KernelLaunch(num_blocks=0)
        with pytest.raises(ValueError):
            KernelLaunch(schedule="magic")


class TestDevice:
    def test_memory_bounds(self):
        dev = Device(spec=GPUSpec(device_memory_bytes=1000))
        dev.alloc(800)
        with pytest.raises(MemoryError):
            dev.alloc(300)
        dev.free_all()
        dev.alloc(1000)

    def test_transfer_accounting(self):
        dev = Device()
        t1 = dev.transfer_to_device(1 << 20)
        t2 = dev.transfer_from_device(1 << 10)
        assert dev.transfer_seconds_total == pytest.approx(t1 + t2)
        assert [t.direction for t in dev.transfers] == ["h2d", "d2h"]

    def test_launch_accumulates_time(self):
        dev = Device()
        dev.launch([WorkItem(key=0, compute_cycles=1e6, memory_stall_cycles=0)])
        dev.launch([WorkItem(key=1, compute_cycles=1e6, memory_stall_cycles=0)])
        assert dev.launches == 2
        assert dev.kernel_seconds > 0
