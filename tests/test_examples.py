"""Smoke tests: the shipped examples run end to end.

Examples are documentation that executes; a refactor that breaks them
must fail the suite, not a reader.  Each example's ``main`` runs against
a throwaway work directory (the slower ones on the smallest scale their
preset supports).
"""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _load(name: str):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, tmp_path, capsys, monkeypatch):
        # Shrink the preset so the smoke test stays fast.
        import repro.corpus.datasets as datasets

        real = datasets.clueweb09_mini
        monkeypatch.setattr(
            "repro.corpus.datasets.clueweb09_mini",
            lambda root, scale=0.4, seed=9: real(root, scale=0.1, seed=seed),
        )
        module = _load("quickstart")
        module.main(str(tmp_path))
        out = capsys.readouterr().out
        assert "indexed" in out and "partial-list fetches" in out

    def test_gpu_simulation(self, capsys):
        module = _load("gpu_simulation")
        module.demo_warp_search()
        module.demo_memory_rules()
        module.demo_warp_costs()
        module.demo_device()
        out = capsys.readouterr().out
        assert "8 transactions" in out
        assert "slot" in out

    def test_paper_scale_simulation_runs(self, capsys):
        module = _load("paper_scale_simulation")
        module.main()
        out = capsys.readouterr().out
        assert "Table IV" in out and "Fig 12" in out
        assert "315.46" in out  # the paper column is printed

    def test_custom_corpus(self, tmp_path, capsys):
        module = _load("custom_corpus")
        module.main(str(tmp_path))
        out = capsys.readouterr().out
        assert "hardware.txt" in out and "BM25" in out

    @pytest.mark.slow
    def test_search_engine(self, tmp_path, capsys):
        module = _load("search_engine")
        module.main(str(tmp_path))
        out = capsys.readouterr().out
        assert "phrase query" in out

    @pytest.mark.slow
    def test_baseline_comparison(self, tmp_path, capsys):
        module = _load("baseline_comparison")
        module.main(str(tmp_path))
        out = capsys.readouterr().out
        assert "identical to engine: True" in out
