"""Threaded parse prefetching: real pipeline overlap, identical output."""

from __future__ import annotations

import filecmp
import os

import pytest

from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine


def _cfg(**overrides) -> PlatformConfig:
    defaults = dict(num_parsers=3, num_cpu_indexers=2, num_gpus=1, sample_fraction=0.3)
    defaults.update(overrides)
    return PlatformConfig(**defaults)


class TestPrefetch:
    @pytest.mark.parametrize("prefetch", [1, 2, 4])
    def test_prefetched_build_byte_identical(self, prefetch, tiny_collection, tmp_path):
        serial_dir = str(tmp_path / "serial")
        threaded_dir = str(tmp_path / "threaded")
        IndexingEngine(_cfg(parse_prefetch=0)).build(tiny_collection, serial_dir)
        result = IndexingEngine(_cfg(parse_prefetch=prefetch)).build(
            tiny_collection, threaded_dir
        )
        assert result.document_count == tiny_collection.num_docs
        # build.manifest embeds a config fingerprint (resume safety), and
        # parse_prefetch is part of the config — compare index artifacts.
        # The telemetry artifacts carry wall-clock data and the same
        # config fingerprint; their deterministic metric sections are
        # compared structurally below instead (docs/OBSERVABILITY.md).
        from repro.obs.schema import METRICS_FILENAME, TRACE_FILENAME, load_metrics

        excluded = {"build.manifest", METRICS_FILENAME, TRACE_FILENAME}
        names = sorted(n for n in os.listdir(serial_dir) if n not in excluded)
        assert names == sorted(
            n for n in os.listdir(threaded_dir) if n not in excluded
        )
        for name in names:
            assert filecmp.cmp(
                os.path.join(serial_dir, name),
                os.path.join(threaded_dir, name),
                shallow=False,
            ), name
        # Prefetching must not change what work was done, only when.
        # checkpoint.bytes is excluded: the checkpoint pickle embeds the
        # range map's absolute run paths, so its size tracks the output
        # directory's name length ("serial" vs "threaded" here) — it is
        # only comparable between builds into identically-named dirs.
        serial_m = load_metrics(os.path.join(serial_dir, METRICS_FILENAME))
        threaded_m = load_metrics(os.path.join(threaded_dir, METRICS_FILENAME))
        for payload in (serial_m, threaded_m):
            payload["histograms"].pop("checkpoint.bytes", None)
        for section in ("counters", "gauges", "histograms"):
            assert serial_m[section] == threaded_m[section], section

    def test_prefetch_with_positions_and_grouped_runs(self, tiny_collection, tmp_path):
        out = str(tmp_path / "combo")
        result = IndexingEngine(
            _cfg(parse_prefetch=3, positional=True, files_per_run=2)
        ).build(tiny_collection, out)
        assert result.run_count == -(-tiny_collection.num_files // 2)
        from repro.postings.reader import PostingsReader

        reader = PostingsReader(out)
        assert reader.is_positional
        assert reader.vocabulary()

    def test_invalid_prefetch(self):
        with pytest.raises(ValueError):
            PlatformConfig(parse_prefetch=-1)


class TestTraceLanes:
    """Regression: each prefetch worker thread owns one trace lane.

    The old code reassigned the shared ``parser_id`` (``k % num_parsers``)
    per file, so spans from different worker threads landed interleaved on
    the same ``parser-N`` lane and overlapped.  Lanes now key on the worker
    thread (``parser-wN``); the logical parser slot survives as the span's
    ``parser`` attribute.
    """

    def test_parse_spans_never_overlap_within_a_lane(self, tiny_collection, tmp_path):
        from repro.obs.schema import TRACE_FILENAME
        from repro.obs.stats import spans_from_chrome
        from repro.obs.trace import load_chrome_trace

        out = str(tmp_path / "lanes")
        # Pin the in-process engine loop: the parser-w* thread-lane
        # discipline under test is the prefetch pool's.  (The
        # multiprocess backend gives each parser *process* its own
        # residue-class lane, so overlap is impossible there by
        # construction.)
        IndexingEngine(
            _cfg(parse_prefetch=3, num_parsers=2, exec_backend="serial")
        ).build(tiny_collection, out)
        spans = spans_from_chrome(
            load_chrome_trace(os.path.join(out, TRACE_FILENAME))
        )
        parses = [s for s in spans if s.name == "parse_file"]
        assert parses
        by_lane: dict[str, list] = {}
        for s in parses:
            by_lane.setdefault(s.lane, []).append(s)
        for lane, lane_spans in by_lane.items():
            assert lane.startswith("parser-w"), lane
            lane_spans.sort(key=lambda s: s.start_s)
            for a, b in zip(lane_spans, lane_spans[1:]):
                assert a.end_s <= b.start_s, (
                    f"overlapping parse_file spans on lane {lane}"
                )
        # The logical parser slot is still recorded, just as an attribute.
        assert {s.args.get("parser") for s in parses} == {0, 1}
