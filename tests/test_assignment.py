"""Section III.E: sampling, popularity, and the CPU/GPU binding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexers.assignment import (
    PopularityPolicy,
    WorkAssignment,
    build_assignment,
    sample_collection,
)

token_counts = st.dictionaries(
    st.integers(min_value=0, max_value=17612),
    st.integers(min_value=1, max_value=10_000),
    min_size=1,
    max_size=300,
)


class TestSampling:
    def test_sample_counts_by_collection(self, tiny_collection):
        counts = sample_collection(tiny_collection, sample_fraction=0.3)
        assert counts
        assert all(tok > 0 for tok in counts.values())
        full = sample_collection(tiny_collection, sample_fraction=1.0)
        assert sum(full.values()) > sum(counts.values())

    def test_invalid_fraction(self, tiny_collection):
        with pytest.raises(ValueError):
            sample_collection(tiny_collection, sample_fraction=0.0)

    def test_max_files_limits_io(self, tiny_collection):
        limited = sample_collection(tiny_collection, sample_fraction=1.0, max_files=1)
        full = sample_collection(tiny_collection, sample_fraction=1.0)
        assert sum(limited.values()) < sum(full.values())


class TestPopularityPolicy:
    def test_head_collections_selected(self):
        counts = {i: 1000 // (i + 1) for i in range(100)}
        popular, unpopular = PopularityPolicy(max_popular=5, token_coverage=1.0).classify(counts)
        assert popular == [0, 1, 2, 3, 4]
        assert len(unpopular) == 95

    def test_coverage_stops_early(self):
        counts = {0: 900, 1: 50, 2: 25, 3: 25}
        popular, _ = PopularityPolicy(max_popular=10, token_coverage=0.5).classify(counts)
        assert popular == [0]

    def test_deterministic_tie_break(self):
        counts = {5: 10, 3: 10, 8: 10}
        p1, _ = PopularityPolicy(max_popular=2, token_coverage=1.0).classify(counts)
        p2, _ = PopularityPolicy(max_popular=2, token_coverage=1.0).classify(counts)
        assert p1 == p2 == [3, 5]


class TestBuildAssignment:
    def test_paper_example_mod_n2(self):
        """The paper's worked example: unpopular (0, 13, 27, 175, 384,
        5810, 10041, 17316) over two GPUs."""
        unpopular = [0, 13, 27, 175, 384, 5810, 10041, 17316]
        counts = {c: 1 for c in unpopular}
        counts[1] = 10**9  # one clearly popular collection
        assign = build_assignment(
            counts, num_cpu_indexers=1, num_gpus=2,
            policy=PopularityPolicy(max_popular=1, token_coverage=0.99),
        )
        assert assign.gpu_sets[0] == {0, 384, 5810, 17316}
        assert assign.gpu_sets[1] == {13, 27, 175, 10041}

    def test_cpu_sets_token_balanced(self):
        counts = {i: 100 - i for i in range(100)}
        assign = build_assignment(
            counts, num_cpu_indexers=4, num_gpus=1,
            policy=PopularityPolicy(max_popular=100, token_coverage=0.9),
        )
        loads = [sum(counts[c] for c in s) for s in assign.cpu_sets]
        assert max(loads) - min(loads) <= max(counts.values())

    def test_no_gpus_everything_on_cpus(self):
        counts = {i: i + 1 for i in range(50)}
        assign = build_assignment(counts, num_cpu_indexers=3, num_gpus=0)
        assert not assign.gpu_sets
        covered = set().union(*assign.cpu_sets)
        assert covered == set(counts)

    def test_no_cpus_everything_on_gpus(self):
        counts = {i: i + 1 for i in range(50)}
        assign = build_assignment(counts, num_cpu_indexers=0, num_gpus=2)
        assert not assign.cpu_sets
        for cidx in counts:
            assert cidx in assign.gpu_sets[cidx % 2]

    def test_no_indexers_rejected(self):
        with pytest.raises(ValueError):
            build_assignment({1: 1}, num_cpu_indexers=0, num_gpus=0)

    def test_owner_lookup_and_bind_unseen(self):
        counts = {10: 100, 11: 1}
        assign = build_assignment(
            counts, num_cpu_indexers=1, num_gpus=2,
            policy=PopularityPolicy(max_popular=1, token_coverage=0.5),
        )
        assert assign.owner_of(10) == ("cpu", 0)
        # 999 was never sampled: routed by the unpopular rule and recorded.
        kind, idx = assign.bind_unseen(999)
        assert (kind, idx) == ("gpu", 999 % 2)
        assert 999 in assign.gpu_sets[idx]

    @settings(max_examples=40, deadline=None)
    @given(token_counts, st.integers(1, 4), st.integers(0, 3))
    def test_binding_is_a_partition(self, counts, n_cpu, n_gpu):
        """Every sampled collection is owned by exactly one indexer."""
        assign = build_assignment(counts, n_cpu, n_gpu)
        all_sets = assign.cpu_sets + assign.gpu_sets
        union: set[int] = set()
        total = 0
        for s in all_sets:
            union |= s
            total += len(s)
        assert union == set(counts)
        assert total == len(counts)  # pairwise disjoint

    @settings(max_examples=20, deadline=None)
    @given(token_counts)
    def test_lifetime_binding_stable(self, counts):
        assign = build_assignment(counts, 2, 2)
        owners = {c: assign.owner_of(c) for c in counts}
        # Asking again never changes an owner (program-lifetime binding).
        assert {c: assign.owner_of(c) for c in counts} == owners
