"""Stop-word removal (Step 4 of Fig 3)."""

from __future__ import annotations

from repro.parsing.porter import stem
from repro.parsing.stopwords import STOP_WORDS, StopWordFilter


class TestStopWordFilter:
    def setup_method(self):
        self.filter = StopWordFilter()

    def test_plain_stop_words(self):
        for word in ["the", "to", "and", "of", "in"]:
            assert self.filter.is_stop(word), word

    def test_stemmed_forms_caught(self):
        # The paper stems before removal, so the filter must match the
        # stemmed shape: Porter turns "this" into "thi".
        assert self.filter.is_stop(stem("this"))
        assert self.filter.is_stop(stem("having"))
        assert self.filter.is_stop(stem("ourselves"))

    def test_contraction_fragments(self):
        # Tokenizer splits "aren't" into "aren" + "t".
        assert self.filter.is_stop("aren")
        assert self.filter.is_stop("t")

    def test_content_words_pass(self):
        for word in ["parallel", "index", "gpu", "comput"]:
            assert not self.filter.is_stop(word), word

    def test_contains_protocol(self):
        assert "the" in self.filter
        assert "parallel" not in self.filter

    def test_list_is_reasonably_sized(self):
        assert len(STOP_WORDS) > 100
        # Contraction fragments merge, stemmed variants add: same ballpark.
        assert len(self.filter) > 100

    def test_custom_word_set(self):
        f = StopWordFilter(frozenset({"foo"}))
        assert f.is_stop("foo")
        assert not f.is_stop("the")
