"""Run files, the docID-range map, and the retrieval path (§III.F)."""

from __future__ import annotations

import pytest

from repro.postings.compression import EliasGammaCodec
from repro.postings.lists import PostingsList
from repro.postings.output import DocRangeMap, RunWriter, read_run_header, run_filename
from repro.postings.reader import PostingsReader


def _plist(pairs):
    pl = PostingsList()
    for d, tf in pairs:
        pl.add_posting(d, tf)
    return pl


def _write_three_runs(out_dir: str) -> DocRangeMap:
    """Three runs covering doc ranges [0,9], [10,19], [20,29]."""
    writer = RunWriter(out_dir)
    mapping = DocRangeMap()
    for run_id in range(3):
        base = run_id * 10
        lists = {
            1: _plist([(base + 1, 2), (base + 5, 1)]),
            2: _plist([(base + 3, 4)]),
        }
        if run_id == 1:
            lists[3] = _plist([(base + 7, 1)])  # term only in run 1
        mapping.add(writer.write_run(run_id, lists))
    mapping.save(out_dir)
    return mapping


class TestRunWriter:
    def test_header_round_trip(self, tmp_path):
        writer = RunWriter(str(tmp_path))
        run = writer.write_run(7, {42: _plist([(3, 1), (9, 2)])})
        assert run.filename == run_filename(7) == "run_00007.post"
        with open(run.path, "rb") as fh:
            data = fh.read()
        run_id, codec, min_doc, max_doc, table, _ = read_run_header(data)
        assert (run_id, codec, min_doc, max_doc) == (7, "varbyte", 3, 9)
        offset, length = table[42]
        from repro.postings.compression import VarByteCodec

        assert VarByteCodec().decode(data[offset : offset + length]) == [(3, 1), (9, 2)]

    def test_empty_run(self, tmp_path):
        run = RunWriter(str(tmp_path)).write_run(0, {})
        assert run.min_doc is None and run.max_doc is None
        assert run.entry_count == 0

    def test_alternate_codec_recorded(self, tmp_path):
        writer = RunWriter(str(tmp_path), codec=EliasGammaCodec())
        run = writer.write_run(0, {1: _plist([(2, 1)])})
        with open(run.path, "rb") as fh:
            _, codec_name, *_ = read_run_header(fh.read())
        assert codec_name == "gamma"

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            read_run_header(b"GARBAGE!")


class TestDocRangeMap:
    def test_overlap_queries(self, tmp_path):
        mapping = _write_three_runs(str(tmp_path))
        assert [r.run_id for r in mapping.runs_overlapping(0, 9)] == [0]
        assert [r.run_id for r in mapping.runs_overlapping(5, 15)] == [0, 1]
        assert [r.run_id for r in mapping.runs_overlapping(25, 99)] == [2]
        assert mapping.runs_overlapping(100, 200) == []

    def test_save_load_round_trip(self, tmp_path):
        saved = _write_three_runs(str(tmp_path))
        loaded = DocRangeMap.load(str(tmp_path))
        assert [(r.run_id, r.min_doc, r.max_doc) for r in loaded.runs] == [
            (r.run_id, r.min_doc, r.max_doc) for r in saved.runs
        ]


class TestPostingsReader:
    def test_splices_runs_in_order(self, tmp_path):
        _write_three_runs(str(tmp_path))
        reader = PostingsReader(str(tmp_path))
        assert reader.postings(1) == [
            (1, 2), (5, 1), (11, 2), (15, 1), (21, 2), (25, 1),
        ]
        assert reader.postings(3) == [(17, 1)]
        assert reader.postings(99) == []
        assert reader.run_count() == 3

    def test_range_narrowing_touches_fewer_runs(self, tmp_path):
        _write_three_runs(str(tmp_path))
        reader = PostingsReader(str(tmp_path))
        out = reader.postings_in_range(1, 10, 19)
        assert out == [(11, 2), (15, 1)]
        assert reader.partial_fetches == 1  # only run 1 touched

    def test_document_frequency(self, tmp_path):
        _write_three_runs(str(tmp_path))
        reader = PostingsReader(str(tmp_path))
        assert reader.document_frequency(1) == 6
        assert reader.document_frequency(3) == 1

    def test_term_strings_require_dictionary(self, tmp_path):
        _write_three_runs(str(tmp_path))
        reader = PostingsReader(str(tmp_path))
        with pytest.raises(RuntimeError):
            reader.term_id("anything")

    def test_term_strings_with_dictionary(self, tmp_path):
        from repro.dictionary.dictionary import Dictionary
        from repro.dictionary.serialize import save_dictionary

        d = Dictionary()
        tid, _ = d.add_term("parallel")
        writer = RunWriter(str(tmp_path))
        mapping = DocRangeMap()
        mapping.add(writer.write_run(0, {tid: _plist([(4, 2)])}))
        mapping.save(str(tmp_path))
        save_dictionary(d, str(tmp_path / "dictionary.bin"))
        reader = PostingsReader(str(tmp_path))
        assert reader.postings("parallel") == [(4, 2)]
        assert reader.postings("absent") == []
        assert reader.vocabulary() == {"parallel": tid}


class TestMmapReader:
    def test_mmap_mode_identical_results(self, tmp_path):
        _write_three_runs(str(tmp_path))
        plain = PostingsReader(str(tmp_path))
        with PostingsReader(str(tmp_path), use_mmap=True) as mapped:
            for term in (1, 2, 3, 99):
                assert mapped.postings(term) == plain.postings(term)
            assert mapped.postings_in_range(1, 5, 15) == plain.postings_in_range(1, 5, 15)

    def test_close_releases_handles(self, tmp_path):
        _write_three_runs(str(tmp_path))
        reader = PostingsReader(str(tmp_path), use_mmap=True)
        reader.postings(1)
        assert reader._open_runs
        reader.close()
        assert not reader._open_runs
        # Reader remains usable: files reopen on demand.
        assert reader.postings(2)

    def test_mmap_with_engine_output(self, tiny_collection, tmp_path):
        from repro.core.config import PlatformConfig
        from repro.core.engine import IndexingEngine

        out = str(tmp_path / "idx")
        IndexingEngine(
            PlatformConfig(num_parsers=2, num_cpu_indexers=1, num_gpus=0,
                           sample_fraction=0.3)
        ).build(tiny_collection, out)
        with PostingsReader(out, use_mmap=True) as reader:
            vocab = reader.vocabulary()
            term = next(iter(vocab))
            assert reader.postings(term)
