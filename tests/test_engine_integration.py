"""End-to-end engine builds: correctness against ground truth, reader
round trips, config variants, and Table V accounting."""

from __future__ import annotations

import os

import pytest

from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.postings.merge import merge_index
from repro.postings.reader import PostingsReader


def _small_config(**overrides) -> PlatformConfig:
    defaults = dict(num_parsers=3, num_cpu_indexers=2, num_gpus=2, sample_fraction=0.2)
    defaults.update(overrides)
    return PlatformConfig(**defaults)


@pytest.fixture(scope="module")
def built(tmp_path_factory, tiny_collection):
    out = str(tmp_path_factory.mktemp("index"))
    engine = IndexingEngine(_small_config())
    result = engine.build(tiny_collection, out)
    return result, out


class TestBuildCorrectness:
    def test_index_matches_reference(self, built, reference_index):
        result, out = built
        reader = PostingsReader(out)
        vocab = reader.vocabulary()
        assert set(vocab) == set(reference_index)
        for term, expected in reference_index.items():
            assert reader.postings(term) == expected, term

    def test_counts_consistent(self, built, reference_index, tiny_collection):
        result, _ = built
        assert result.term_count == len(reference_index)
        assert result.document_count == tiny_collection.num_docs
        assert result.token_count == sum(
            tf for pl in reference_index.values() for _, tf in pl
        )
        assert result.posting_count == sum(len(pl) for pl in reference_index.values())
        assert result.run_count == tiny_collection.num_files

    def test_output_files_present(self, built, tiny_collection):
        _, out = built
        names = set(os.listdir(out))
        assert "dictionary.bin" in names
        assert "runs.map" in names
        runs = [n for n in names if n.startswith("run_")]
        assert len(runs) == tiny_collection.num_files

    def test_range_narrowed_query(self, built, reference_index):
        _, out = built
        reader = PostingsReader(out)
        term = max(reference_index, key=lambda t: len(reference_index[t]))
        full = reader.postings(term)
        mid = full[len(full) // 2][0]
        narrowed = reader.postings_in_range(term, 0, mid)
        assert narrowed == [p for p in full if p[0] <= mid]

    def test_merge_preserves_postings(self, built, reference_index, tmp_path):
        _, out = built
        merged_dir = str(tmp_path / "merged")
        stats = merge_index(out, merged_dir)
        assert stats["terms"] == len(reference_index)
        merged = PostingsReader(merged_dir)
        term = next(iter(reference_index))
        assert merged.postings(term) == reference_index[term]

    def test_table5_split_accounts_all_tokens(self, built):
        result, _ = built
        split = result.split
        assert split.cpu_tokens + split.gpu_tokens == result.token_count
        assert split.cpu_terms + split.gpu_terms == result.term_count
        assert split.cpu_tokens > 0 and split.gpu_tokens > 0

    def test_simulated_report_rows(self, built):
        result, _ = built
        rep = result.report
        assert rep.total_s > 0
        assert rep.pipeline.num_files == result.run_count
        assert len(result.file_works) == result.run_count
        assert result.wall_seconds > 0
        assert result.stopwatch.get("parse") > 0


class TestDeterminism:
    def test_two_builds_are_byte_identical(self, tiny_collection, tmp_path):
        """Same collection + config → identical on-disk artifacts.

        The telemetry artifacts are the deliberate exception: they carry
        wall-clock measurements (``timings`` section, span timestamps),
        so they are compared structurally instead — everything except
        timings must match exactly (see docs/OBSERVABILITY.md).
        """
        import filecmp
        import os

        from repro.obs.schema import METRICS_FILENAME, TRACE_FILENAME, load_metrics

        outs = []
        for tag in ("a", "b"):
            out = str(tmp_path / tag)
            IndexingEngine(_small_config()).build(tiny_collection, out)
            outs.append(out)
        names = sorted(os.listdir(outs[0]))
        assert names == sorted(os.listdir(outs[1]))
        wall_clock_artifacts = {METRICS_FILENAME, TRACE_FILENAME}
        for name in names:
            if name in wall_clock_artifacts:
                continue
            assert filecmp.cmp(
                os.path.join(outs[0], name), os.path.join(outs[1], name), shallow=False
            ), name

        a, b = (load_metrics(os.path.join(out, METRICS_FILENAME)) for out in outs)
        for section in ("schema", "meta", "counters", "gauges", "histograms"):
            assert a[section] == b[section], section


class TestConfigVariants:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(num_cpu_indexers=1, num_gpus=0),
            dict(num_cpu_indexers=0, num_gpus=2),
            dict(num_cpu_indexers=2, num_gpus=0),
            dict(num_cpu_indexers=1, num_gpus=1, gpu_fidelity="warp"),
            dict(codec="gamma"),
            dict(trie_height=2),
            dict(btree_degree=8),
            dict(use_string_cache=False),
            dict(gpu_schedule="static"),
        ],
        ids=[
            "1cpu", "gpu-only", "2cpu", "warp-fidelity", "gamma-codec",
            "trie-h2", "degree-8", "no-cache", "static-sched",
        ],
    )
    def test_all_variants_build_identical_indexes(
        self, overrides, tiny_collection, reference_index, tmp_path
    ):
        out = str(tmp_path / "idx")
        result = IndexingEngine(_small_config(**overrides)).build(tiny_collection, out)
        reader = PostingsReader(out)
        assert set(reader.vocabulary()) == set(reference_index)
        # Spot-check the heaviest terms end to end.
        top = sorted(reference_index, key=lambda t: -len(reference_index[t]))[:20]
        for term in top:
            assert reader.postings(term) == reference_index[term], term

    def test_regroup_disabled_cpu_only(self, tiny_collection, reference_index, tmp_path):
        out = str(tmp_path / "idx")
        cfg = _small_config(num_gpus=0, num_cpu_indexers=2, regroup=False)
        IndexingEngine(cfg).build(tiny_collection, out)
        reader = PostingsReader(out)
        assert set(reader.vocabulary()) == set(reference_index)

    def test_regroup_disabled_with_gpus_rejected(self):
        with pytest.raises(ValueError):
            IndexingEngine(_small_config(regroup=False))

    def test_gpu_only_split_is_all_gpu(self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx")
        result = IndexingEngine(
            _small_config(num_cpu_indexers=0, num_gpus=2)
        ).build(tiny_collection, out)
        assert result.split.cpu_tokens == 0
        assert result.split.gpu_tokens == result.token_count


class TestTextCollection:
    def test_strip_html_off(self, tiny_text_collection, tmp_path):
        out = str(tmp_path / "idx")
        cfg = _small_config(strip_html=False)
        result = IndexingEngine(cfg).build(tiny_text_collection, out)
        assert result.term_count > 0
        reader = PostingsReader(out)
        assert len(reader.vocabulary()) == result.term_count
