"""Release-quality gates on the public API surface.

Deliverable (e) requires doc comments on every public item; these tests
make that a property of the build, not a review checklist: every module,
public class and public function under ``repro`` must carry a docstring,
and the top-level ``__all__`` names must resolve.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro

SKIP_MODULES = {"repro.__main__"}  # executes on import by design


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_documented(self):
        missing = [
            m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()
        ]
        assert not missing, missing

    def test_every_public_class_documented(self):
        missing = []
        for module in _walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, missing

    def test_every_public_function_documented(self):
        missing = []
        for module in _walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, missing

    def test_public_methods_documented(self):
        """Methods of exported top-level classes carry docstrings."""
        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if not inspect.isclass(obj):
                continue
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(member):
                    continue
                if not (member.__doc__ or "").strip():
                    missing.append(f"{name}.{mname}")
        assert not missing, missing


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_all_resolves(self):
        for module in _walk_modules():
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"
