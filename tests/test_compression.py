"""Postings codecs: varbyte, Elias-γ, Golomb over d-gaps."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.postings.compression import (
    CODECS,
    EliasGammaCodec,
    GolombCodec,
    VarByteCodec,
    decode_uvarint,
    encode_uvarint,
    from_gaps,
    get_codec,
    to_gaps,
)
from repro.util.bitio import BitReader, BitWriter

postings_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10), st.integers(min_value=1, max_value=50)),
    max_size=60,
).map(
    # Strictly increasing doc ids from cumulative positive gaps.
    lambda pairs: [
        (sum(g for g, _ in pairs[: i + 1]) + i, tf) for i, (_, tf) in enumerate(pairs)
    ]
)

ALL_CODECS = [VarByteCodec(), EliasGammaCodec(), GolombCodec()]


class TestVarint:
    @given(st.integers(min_value=0, max_value=2**62))
    def test_round_trip(self, n):
        buf = bytearray()
        encode_uvarint(n, buf)
        value, pos = decode_uvarint(bytes(buf), 0)
        assert value == n and pos == len(buf)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1, bytearray())

    def test_truncated(self):
        with pytest.raises(EOFError):
            decode_uvarint(b"\x80", 0)

    def test_compact_small_values(self):
        buf = bytearray()
        encode_uvarint(127, buf)
        assert len(buf) == 1


class TestGaps:
    def test_round_trip(self):
        ids = [0, 1, 5, 100]
        assert from_gaps(to_gaps(ids)) == ids

    def test_first_gap_is_doc_plus_one(self):
        assert to_gaps([7]) == [8]

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            to_gaps([5, 5])
        with pytest.raises(ValueError):
            to_gaps([5, 3])

    def test_bad_gap_rejected(self):
        with pytest.raises(ValueError):
            from_gaps([0])


class TestCodecs:
    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
    def test_known_list(self, codec):
        pl = [(0, 3), (5, 1), (6, 2), (100, 9), (100000, 1)]
        assert codec.decode(codec.encode(pl)) == pl

    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
    def test_empty_list(self, codec):
        assert codec.decode(codec.encode([])) == []

    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
    def test_single_posting(self, codec):
        assert codec.decode(codec.encode([(42, 7)])) == [(42, 7)]

    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
    def test_unsorted_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.encode([(5, 1), (5, 1)])

    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
    def test_zero_tf_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.encode([(1, 0)])

    @settings(max_examples=60, deadline=None)
    @given(postings_lists, st.sampled_from(["varbyte", "gamma", "golomb"]))
    def test_round_trip_random(self, postings, name):
        codec = get_codec(name)
        assert codec.decode(codec.encode(postings)) == postings

    def test_registry(self):
        assert set(CODECS) == {"varbyte", "gamma", "golomb", "varbyte-pos"}
        with pytest.raises(KeyError):
            get_codec("zstd")

    def test_gap_encoding_beats_absolute_for_dense_lists(self):
        dense = [(i, 1) for i in range(0, 2000, 2)]
        encoded = VarByteCodec().encode(dense)
        # Absolute 2-byte+ ids would need >2 bytes per posting; gaps of 2
        # need 1 byte for the gap + 1 for tf.
        assert len(encoded) < len(dense) * 2.5


class TestGamma:
    def test_gamma_code_of_one_is_single_bit(self):
        w = BitWriter()
        EliasGammaCodec._write_gamma(w, 1)
        assert w.bit_length == 1

    def test_gamma_lengths(self):
        # γ(n) uses 2⌊log2 n⌋ + 1 bits.
        for n, bits in [(1, 1), (2, 3), (3, 3), (4, 5), (100, 13)]:
            w = BitWriter()
            EliasGammaCodec._write_gamma(w, n)
            assert w.bit_length == bits, n

    def test_gamma_rejects_zero(self):
        with pytest.raises(ValueError):
            EliasGammaCodec._write_gamma(BitWriter(), 0)

    @given(st.integers(min_value=1, max_value=2**30))
    def test_gamma_round_trip(self, n):
        w = BitWriter()
        EliasGammaCodec._write_gamma(w, n)
        assert EliasGammaCodec._read_gamma(BitReader(w.getvalue())) == n


class TestGolomb:
    @given(st.integers(min_value=1, max_value=10000), st.integers(min_value=1, max_value=64))
    def test_golomb_round_trip_any_b(self, value, b):
        w = BitWriter()
        GolombCodec._write_golomb(w, value, b)
        assert GolombCodec._read_golomb(BitReader(w.getvalue()), b) == value

    def test_optimal_b_rule(self):
        assert GolombCodec.optimal_b(10.0) == 7  # ceil(0.69 * 10)
        assert GolombCodec.optimal_b(0.1) == 1

    def test_fixed_b_encodes_header(self):
        codec = GolombCodec(b=4)
        pl = [(3, 1), (10, 2)]
        assert codec.decode(codec.encode(pl)) == pl

    def test_invalid_b(self):
        with pytest.raises(ValueError):
            GolombCodec(b=0)

    def test_golomb_beats_varbyte_on_small_uniform_gaps(self):
        pl = [(i * 3, 1) for i in range(500)]
        assert len(GolombCodec().encode(pl)) < len(VarByteCodec().encode(pl))
