"""The Porter stemmer: published vectors and structural properties."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.parsing.porter import PorterStemmer, stem


class TestPaperExample:
    def test_parallel_family(self):
        """Section II: parallelize, parallelization, parallelism are all
        based on parallel."""
        for word in ["parallelize", "parallelization", "parallelism", "parallel"]:
            assert stem(word) == "parallel", word


class TestClassicVectors:
    """Canonical examples from Porter's 1980 paper and test suites."""

    VECTORS = {
        # step 1a
        "caresses": "caress",
        "ponies": "poni",
        "ties": "ti",
        "caress": "caress",
        "cats": "cat",
        # step 1b
        "feed": "feed",
        "agreed": "agre",
        "plastered": "plaster",
        "bled": "bled",
        "motoring": "motor",
        "sing": "sing",
        "conflated": "conflat",
        "troubled": "troubl",
        "sized": "size",
        "hopping": "hop",
        "tanned": "tan",
        "falling": "fall",
        "hissing": "hiss",
        "fizzed": "fizz",
        "failing": "fail",
        "filing": "file",
        # step 1c
        "happy": "happi",
        "sky": "sky",
        # step 2
        "relational": "relat",
        "conditional": "condit",
        "rational": "ration",
        "valenci": "valenc",
        "hesitanci": "hesit",
        "digitizer": "digit",
        "conformabli": "conform",
        "radicalli": "radic",
        "differentli": "differ",
        "vileli": "vile",
        "analogousli": "analog",
        "vietnamization": "vietnam",
        "predication": "predic",
        "operator": "oper",
        "feudalism": "feudal",
        "decisiveness": "decis",
        "hopefulness": "hope",
        "callousness": "callous",
        "formaliti": "formal",
        "sensitiviti": "sensit",
        "sensibiliti": "sensibl",
        # step 3
        "triplicate": "triplic",
        "formative": "form",
        "formalize": "formal",
        "electriciti": "electr",
        "electrical": "electr",
        "hopeful": "hope",
        "goodness": "good",
        # step 4
        "revival": "reviv",
        "allowance": "allow",
        "inference": "infer",
        "airliner": "airlin",
        "gyroscopic": "gyroscop",
        "adjustable": "adjust",
        "defensible": "defens",
        "irritant": "irrit",
        "replacement": "replac",
        "adjustment": "adjust",
        "dependent": "depend",
        "adoption": "adopt",
        "homologou": "homolog",
        "communism": "commun",
        "activate": "activ",
        "angulariti": "angular",
        "homologous": "homolog",
        "effective": "effect",
        "bowdlerize": "bowdler",
        # step 5
        "probate": "probat",
        "rate": "rate",
        "cease": "ceas",
        "controll": "control",
        "roll": "roll",
    }

    def test_all_vectors(self):
        failures = {
            w: (stem(w), want)
            for w, want in self.VECTORS.items()
            if stem(w) != want
        }
        assert not failures, failures


class TestStructure:
    def test_short_words_untouched(self):
        assert stem("a") == "a"
        assert stem("at") == "at"

    def test_cache_counts_misses_once(self):
        s = PorterStemmer()
        s.stem("running")
        before = s.misses
        s.stem("running")
        assert s.misses == before

    def test_instances_independent(self):
        a, b = PorterStemmer(), PorterStemmer()
        a.stem("running")
        assert b.misses == 0

    @given(st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz"), max_size=20))
    def test_never_crashes_never_grows(self, word):
        out = stem(word)
        assert len(out) <= len(word) + 1  # only at/bl/iz add an 'e'
        assert out == out.lower()

    @given(st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz"), min_size=1, max_size=20))
    def test_cached_equals_uncached(self, word):
        s = PorterStemmer()
        assert s.stem(word) == s.stem(word) == stem(word)
