"""The adaptive burst trie (reference [10])."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bursttrie import BurstTrie

words = st.binary(min_size=0, max_size=10).filter(lambda b: 0 not in b)


class TestBasics:
    def test_insert_lookup(self):
        bt = BurstTrie()
        tid, created = bt.insert(b"parallel")
        assert created
        assert bt.lookup(b"parallel") == tid
        assert bt.lookup(b"par") is None
        assert bt.lookup(b"parallels") is None

    def test_duplicate(self):
        bt = BurstTrie()
        t1, _ = bt.insert(b"abc")
        t2, created = bt.insert(b"abc")
        assert t1 == t2 and not created
        assert len(bt) == 1
        assert bt.stats.duplicate_hits == 1

    def test_empty_string(self):
        bt = BurstTrie()
        tid, _ = bt.insert(b"")
        assert bt.lookup(b"") == tid

    def test_prefix_terms_coexist(self):
        bt = BurstTrie(burst_threshold=2)
        ids = {w: bt.insert(w)[0] for w in [b"a", b"ab", b"abc", b"abcd", b"b"]}
        for w, tid in ids.items():
            assert bt.lookup(w) == tid

    def test_items_sorted(self):
        bt = BurstTrie(burst_threshold=3)
        ws = [f"w{i:03d}".encode() for i in range(50)]
        import random

        random.Random(2).shuffle(ws)
        for w in ws:
            bt.insert(w)
        assert [k for k, _ in bt.items()] == sorted(ws)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            BurstTrie(burst_threshold=0)


class TestBursting:
    def test_burst_fires_at_threshold(self):
        bt = BurstTrie(burst_threshold=4)
        for i in range(5):
            bt.insert(bytes([97, 97 + i]))  # "aa".."ae": shared first byte
        assert bt.stats.bursts >= 1
        sizes = bt.structure_sizes()
        assert sizes["trie_nodes"] >= 2  # root + burst node

    def test_burst_preserves_content(self):
        bt = BurstTrie(burst_threshold=3)
        ws = [f"shared{i}".encode() for i in range(20)]
        ids = {w: bt.insert(w)[0] for w in ws}
        for w, tid in ids.items():
            assert bt.lookup(w) == tid

    def test_move_to_front_counts(self):
        bt = BurstTrie(burst_threshold=100)
        bt.insert(b"xa")
        bt.insert(b"xb")  # goes to front
        bt.insert(b"xa")  # hit at index 1 → MTF
        assert bt.stats.move_to_fronts == 1

    def test_deeper_structure_after_many_bursts(self):
        small = BurstTrie(burst_threshold=2)
        large = BurstTrie(burst_threshold=1000)
        ws = [f"common{i:04d}".encode() for i in range(300)]
        for w in ws:
            small.insert(w)
            large.insert(w)
        assert small.stats.bursts > 0
        assert large.stats.bursts == 0
        assert (
            small.structure_sizes()["trie_nodes"]
            > large.structure_sizes()["trie_nodes"]
        )
        # Containers stay small after bursting → shorter scans per insert.
        assert small.stats.container_scans < large.stats.container_scans


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(words, max_size=200), st.integers(min_value=1, max_value=40))
    def test_model_equivalence(self, ws, threshold):
        bt = BurstTrie(burst_threshold=threshold)
        model: dict[bytes, int] = {}
        for w in ws:
            tid, created = bt.insert(w)
            if w in model:
                assert not created and tid == model[w]
            else:
                assert created
                model[w] = tid
        assert len(bt) == len(model)
        assert dict(bt.items()) == model
        for w, tid in model.items():
            assert bt.lookup(w) == tid

    @settings(max_examples=20, deadline=None)
    @given(st.lists(words, max_size=150))
    def test_agrees_with_hybrid_btree_dictionary(self, ws):
        """Burst trie and the paper's B-tree store the same term sets."""
        from repro.dictionary.btree import BTree

        bt = BurstTrie(burst_threshold=5)
        tree = BTree()
        for w in ws:
            bt.insert(w)
            tree.insert(w)
        assert [k for k, _ in bt.items()] == [k for k, _ in tree.items()]
