"""Ingesting user documents into indexable collections."""

from __future__ import annotations

import json

import pytest

from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.corpus.collection import Collection
from repro.corpus.ingest import ingest_directory, ingest_documents, ingest_jsonl
from repro.corpus.warc import read_packed_file
from repro.search.query import SearchEngine


class TestIngestDocuments:
    def test_packing_and_manifest(self, tmp_path):
        docs = [(f"u://{i}", f"document number {i} about parallel indexing")
                for i in range(10)]
        coll = ingest_documents(docs, str(tmp_path), docs_per_file=4)
        assert coll.num_docs == 10
        assert coll.num_files == 3  # 4 + 4 + 2
        reloaded = Collection.load("ingested", coll.directory)
        assert reloaded.files == coll.files

    def test_uri_whitespace_escaped(self, tmp_path):
        coll = ingest_documents(
            [("has space\tand tab", "text")], str(tmp_path), compress=False
        )
        doc = read_packed_file(coll.files[0])[0]
        assert " " not in doc.uri and "\t" not in doc.uri
        assert doc.text == "text"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ingest_documents([], str(tmp_path))

    def test_invalid_docs_per_file(self, tmp_path):
        with pytest.raises(ValueError):
            ingest_documents([("u", "t")], str(tmp_path), docs_per_file=0)


class TestIngestDirectory:
    def test_recursive_walk(self, tmp_path):
        src = tmp_path / "src"
        (src / "sub").mkdir(parents=True)
        (src / "a.txt").write_text("alpha document about indexing")
        (src / "sub" / "b.html").write_text("<p>beta document</p>")
        (src / "ignored.bin").write_bytes(b"\x00\x01")
        coll = ingest_directory(str(src), str(tmp_path / "out"))
        assert coll.num_docs == 2
        uris = {d.uri for d in read_packed_file(coll.files[0])}
        assert any("a.txt" in u for u in uris)
        assert any("b.html" in u for u in uris)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(NotADirectoryError):
            ingest_directory(str(tmp_path / "nope"), str(tmp_path / "out"))


class TestIngestJsonl:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "docs.jsonl"
        rows = [
            {"id": "doc-a", "text": "parallel inverted files"},
            {"id": "doc-b", "text": "heterogeneous platforms"},
            {"text": "anonymous document"},
        ]
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n\n")
        coll = ingest_jsonl(str(path), str(tmp_path / "out"))
        assert coll.num_docs == 3
        docs = read_packed_file(coll.files[0])
        assert docs[0].uri == "doc-a"
        assert docs[2].uri == "jsonl://2"

    def test_missing_text_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"body": "x"}\n')
        with pytest.raises(KeyError):
            ingest_jsonl(str(path), str(tmp_path / "out"))


class TestEndToEnd:
    def test_ingested_corpus_is_searchable(self, tmp_path):
        docs = [
            ("mem://0", "the quick brown fox jumps over the lazy dog"),
            ("mem://1", "a fast algorithm for constructing inverted files"),
            ("mem://2", "inverted files on heterogeneous platforms with a fox"),
        ]
        coll = ingest_documents(docs, str(tmp_path), docs_per_file=2, compress=False)
        out = str(tmp_path / "index")
        result = IndexingEngine(
            PlatformConfig(num_parsers=1, num_cpu_indexers=1, num_gpus=0,
                           sample_fraction=1.0, strip_html=False)
        ).build(coll, out)
        assert result.document_count == 3
        engine = SearchEngine(out, num_docs=3)
        assert engine.boolean_and("inverted files") == [1, 2]
        assert engine.boolean_and("fox") == [0, 2]
        assert engine.boolean_and("quick fox") == [0]
