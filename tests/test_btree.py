"""The degree-16 B-tree with 4-byte string caches (Table II)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dictionary.btree import BTree, NODE_SIZE_BYTES, node_layout

suffixes = st.binary(min_size=0, max_size=12).filter(lambda b: 0 not in b)


class TestNodeLayout:
    def test_table2_exact(self):
        layout = node_layout(16)
        assert layout["valid_term_number"] == 4
        assert layout["term_string_pointers"] == 124
        assert layout["leaf_indicator"] == 4
        assert layout["postings_pointers"] == 124
        assert layout["child_pointers"] == 128
        assert layout["string_caches"] == 124
        assert layout["padding"] == 4
        assert layout["total"] == NODE_SIZE_BYTES == 512

    @pytest.mark.parametrize("degree", [2, 4, 8, 16, 32])
    def test_alignment_any_degree(self, degree):
        layout = node_layout(degree)
        assert layout["total"] % 64 == 0  # whole coalesced lines
        assert layout["total"] == sum(v for k, v in layout.items() if k != "total")

    def test_31_keys_match_warp(self):
        tree = BTree(degree=16)
        assert tree.max_keys == 31  # one warp = 32 threads handles a node


class TestBasicOps:
    def test_insert_and_search(self):
        tree = BTree()
        tid, created = tree.insert(b"lication")
        assert created
        assert tree.search(b"lication") == tid
        assert tree.search(b"missing") is None

    def test_duplicate_insert_returns_same_id(self):
        tree = BTree()
        tid1, created1 = tree.insert(b"abc")
        tid2, created2 = tree.insert(b"abc")
        assert (created1, created2) == (True, False)
        assert tid1 == tid2
        assert len(tree) == 1
        assert tree.stats.duplicate_hits == 1

    def test_empty_suffix_is_a_valid_key(self):
        # Short terms strip to nothing: 'a' in collection 11 stores b"".
        tree = BTree()
        tid, _ = tree.insert(b"")
        assert tree.search(b"") == tid
        tree.insert(b"x")
        assert tree.search(b"") == tid

    def test_items_sorted(self):
        tree = BTree()
        words = [f"w{i:03d}".encode() for i in range(100)]
        random.Random(5).shuffle(words)
        for w in words:
            tree.insert(w)
        assert [k for k, _ in tree.items()] == sorted(words)

    def test_custom_allocator(self):
        ids = iter([100, 200, 300])
        tree = BTree(term_id_allocator=lambda: next(ids))
        assert tree.insert(b"a")[0] == 100
        assert tree.insert(b"b")[0] == 200

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            BTree(degree=1)


class TestSplitsAndGrowth:
    def test_root_splits_after_31_keys(self):
        tree = BTree(degree=16)
        for i in range(31):
            tree.insert(f"k{i:02d}".encode())
        assert tree.height() == 0
        tree.insert(b"k99")
        assert tree.height() == 1
        assert tree.stats.splits == 1

    def test_heights_stay_logarithmic(self):
        tree = BTree(degree=16)
        for i in range(5000):
            tree.insert(f"{i:08d}".encode())
        # Paper: height of an n-key B-tree is at most log_t((n+1)/2).
        import math

        assert tree.height() <= math.ceil(math.log((5000 + 1) / 2, 16))
        tree.check_invariants()

    @pytest.mark.parametrize("degree", [2, 3, 8])
    def test_invariants_across_degrees(self, degree):
        tree = BTree(degree=degree)
        rng = random.Random(degree)
        for _ in range(500):
            tree.insert(bytes([rng.randint(97, 110) for _ in range(rng.randint(1, 6))]))
        tree.check_invariants()

    def test_sequential_vs_random_same_content(self):
        words = [f"t{i:04d}".encode() for i in range(300)]
        seq = BTree()
        rnd = BTree()
        for w in words:
            seq.insert(w)
        shuffled = words[:]
        random.Random(3).shuffle(shuffled)
        for w in shuffled:
            rnd.insert(w)
        assert [k for k, _ in seq.items()] == [k for k, _ in rnd.items()]


class TestStringCache:
    def test_cache_resolves_most_comparisons(self):
        tree = BTree()
        rng = random.Random(11)
        for _ in range(2000):
            tree.insert(bytes(rng.choices(range(97, 123), k=rng.randint(1, 10))))
        assert tree.stats.cache_hit_rate > 0.9

    def test_shared_4byte_prefix_forces_full_fetch(self):
        tree = BTree()
        tree.insert(b"abcdefgh")
        before = tree.stats.full_string_fetches
        tree.insert(b"abcdxyz")  # same first 4 bytes, differs later
        assert tree.stats.full_string_fetches > before

    def test_short_keys_fully_cached(self):
        tree = BTree()
        tree.insert(b"ab")
        before = tree.stats.full_string_fetches
        tree.insert(b"ab")  # equality decidable inside the cache
        assert tree.stats.full_string_fetches == before

    def test_exactly_4_bytes_needs_fetch_on_tie(self):
        # A 4-byte key has no zero pad, so the cache cannot prove equality.
        tree = BTree()
        tree.insert(b"abcd")
        before = tree.stats.full_string_fetches
        tree.insert(b"abcd")
        assert tree.stats.full_string_fetches > before

    def test_cache_disabled_always_fetches(self):
        on = BTree(use_string_cache=True)
        off = BTree(use_string_cache=False)
        words = [f"{i}word{i}".encode() for i in range(200)]
        for w in words:
            on.insert(w)
            off.insert(w)
        assert [k for k, _ in on.items()] == [k for k, _ in off.items()]
        assert off.stats.full_string_fetches == off.stats.key_comparisons
        assert on.stats.full_string_fetches < on.stats.key_comparisons

    def test_prefix_order_correct_with_cache(self):
        # "ab" < "abc" < "abd": padded-cache comparisons must preserve it.
        tree = BTree()
        for w in [b"abd", b"ab", b"abc"]:
            tree.insert(w)
        assert [k for k, _ in tree.items()] == [b"ab", b"abc", b"abd"]


class TestStats:
    def test_depth_accounting(self):
        tree = BTree(degree=2)
        for i in range(50):
            tree.insert(f"{i:03d}".encode())
        assert tree.stats.depth_sum > 0
        assert tree.stats.mean_depth <= tree.height()

    def test_operations_count(self):
        tree = BTree()
        tree.insert(b"a")
        tree.insert(b"a")
        tree.search(b"a")
        assert tree.stats.operations == 3

    def test_merge(self):
        a, b = BTree(), BTree()
        a.insert(b"x")
        b.insert(b"y")
        b.insert(b"y")
        a.stats.merge(b.stats)
        assert a.stats.inserts == 2
        assert a.stats.duplicate_hits == 1


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(suffixes, max_size=300))
    def test_model_equivalence(self, words):
        """The tree behaves like a dict keyed by suffix."""
        tree = BTree()
        model: dict[bytes, int] = {}
        for w in words:
            tid, created = tree.insert(w)
            if w in model:
                assert not created
                assert tid == model[w]
            else:
                assert created
                model[w] = tid
        assert len(tree) == len(model)
        assert [k for k, _ in tree.items()] == sorted(model)
        for w, tid in model.items():
            assert tree.search(w) == tid
        tree.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(suffixes, max_size=200), st.integers(min_value=2, max_value=20))
    def test_invariants_hold_any_degree(self, words, degree):
        tree = BTree(degree=degree)
        for w in words:
            tree.insert(w)
        tree.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(suffixes, min_size=1, max_size=200))
    def test_cache_flag_is_transparent(self, words):
        """Disabling the cache never changes results, only costs."""
        on = BTree(use_string_cache=True)
        off = BTree(use_string_cache=False)
        for w in words:
            r_on = on.insert(w)
            r_off = off.insert(w)
            assert r_on[1] == r_off[1]
        assert [k for k, _ in on.items()] == [k for k, _ in off.items()]
