"""The full parser pipeline (Steps 1–5, Fig 3)."""

from __future__ import annotations

from repro.parsing.parser import Parser


class TestParseTexts:
    def test_basic_metrics(self):
        parser = Parser(strip_html=False)
        batch, metrics = parser.parse_texts(["the parallel indexers run quickly"])
        assert metrics.num_docs == 1
        assert metrics.tokens_raw == 5
        # "the" is a stop word; the rest survive.
        assert metrics.tokens_stopped >= 1
        assert metrics.tokens_emitted + metrics.tokens_stopped == metrics.tokens_raw
        assert batch.total_tokens == metrics.tokens_emitted

    def test_stemming_applied_before_split(self):
        parser = Parser(strip_html=False)
        batch, _ = parser.parse_texts(["parallelization parallelism"])
        # Both stem to "parallel" → same trie collection, same suffix.
        trie = parser.trie
        split = trie.split("parallel")
        assert batch.collections[split.index][0][1] == [split.suffix.encode()] * 2

    def test_trie_split_uses_stemmed_head(self):
        # "ties" stems to "ti" (2 letters): collection changes from the
        # raw token's full-prefix bucket to the short bucket.
        parser = Parser(strip_html=False)
        batch, _ = parser.parse_texts(["ties"])
        trie = parser.trie
        assert list(batch.collections) == [trie.trie_index("ti")]

    def test_regroup_disabled_keeps_document_order(self):
        parser = Parser(strip_html=False, regroup=False)
        batch, _ = parser.parse_texts(["zebra apple zebra"])
        assert batch.ungrouped is not None
        suffixes = [s for _, toks in batch.ungrouped for _, s in toks]
        trie = parser.trie
        z = trie.split("zebra").suffix.encode()
        a = trie.split("appl").suffix.encode()  # apple stems to appl
        assert suffixes == [z, a, z]

    def test_regroup_toggle_same_multiset(self):
        text = ["the quick brown foxes jumped over lazy dogs repeatedly"] * 3
        on, _ = Parser(strip_html=False, regroup=True).parse_texts(text)
        off, _ = Parser(strip_html=False, regroup=False).parse_texts(text)
        grouped = sorted(
            (c, d, s)
            for c, streams in on.collections.items()
            for d, sufs in streams
            for s in sufs
        )
        ungrouped = sorted(
            (c, d, s) for d, toks in off.ungrouped for c, s in toks
        )
        assert grouped == ungrouped
        assert on.tokens_per_collection == off.tokens_per_collection

    def test_stem_cache_misses_decline(self):
        parser = Parser(strip_html=False)
        _, m1 = parser.parse_texts(["reusing vocabulary words repeatedly"])
        _, m2 = parser.parse_texts(["reusing vocabulary words repeatedly"])
        assert m2.stem_cache_misses == 0
        assert m1.stem_cache_misses > 0


class TestParseFile:
    def test_file_metrics(self, tiny_collection):
        parser = Parser()
        parsed = parser.parse_file(tiny_collection.files[0], sequence=0)
        m = parsed.metrics
        assert m.compressed_bytes > 0
        assert m.uncompressed_bytes > m.compressed_bytes / 20
        assert m.num_docs == 10
        assert len(parsed.doc_table) == 10
        assert parsed.batch.source_file == tiny_collection.files[0]

    def test_doc_table_has_locations(self, tiny_collection):
        parsed = Parser().parse_file(tiny_collection.files[0])
        offsets = [e.offset for e in parsed.doc_table]
        assert offsets == sorted(offsets)
        assert all(e.source_file for e in parsed.doc_table)
        assert [e.local_doc_id for e in parsed.doc_table] == list(range(10))

    def test_deterministic(self, tiny_collection):
        b1, _ = Parser().parse_texts(["alpha beta"]), None
        a = Parser().parse_file(tiny_collection.files[0]).batch
        b = Parser().parse_file(tiny_collection.files[0]).batch
        assert a.tokens_per_collection == b.tokens_per_collection
