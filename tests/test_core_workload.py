"""The paper-scale workload model (Heaps/Zipf extrapolation)."""

from __future__ import annotations

import pytest

from repro.core.workload import FileWork, GroupWork, SegmentStats, WorkloadModel, _btree_depth


class TestBTreeDepth:
    def test_small_collection_fits_in_root(self):
        assert _btree_depth(31, 16) == 0.0

    def test_grows_logarithmically(self):
        d1 = _btree_depth(1_000, 16)
        d2 = _btree_depth(1_000_000, 16)
        assert 0 < d1 < d2
        assert d2 - d1 == pytest.approx(
            __import__("math").log(1000, 16), rel=0.05
        )


class TestPaperScaleClueWeb:
    @pytest.fixture(scope="class")
    def works(self):
        return WorkloadModel.paper_scale("clueweb09").files()

    def test_file_count(self, works):
        assert len(works) == 1492

    def test_token_total_matches_table3(self, works):
        total = sum(w.tokens for w in works)
        assert total == pytest.approx(32_644_508_255, rel=0.01)

    def test_term_total_matches_table3(self, works):
        terms = sum(w.popular.new_terms + w.unpopular.new_terms for w in works)
        assert terms == pytest.approx(84_799_475, rel=0.05)

    def test_byte_total_matches_table3(self, works):
        unc = sum(w.uncompressed_bytes for w in works)
        assert unc == pytest.approx(1422 * 1024**3, rel=0.01)

    def test_wikipedia_segment_at_1200(self, works):
        assert works[1199].segment == "web"
        assert works[1200].segment == "wikipedia.org"

    def test_visits_per_token_grow_with_depth(self, works):
        early = works[10].unpopular.visits_per_token
        late = works[1100].unpopular.visits_per_token
        assert late > early  # Fig 11's declining-throughput mechanism

    def test_popular_share_matches_table5(self, works):
        w = works[600]
        share = w.popular.tokens / w.tokens
        assert share == pytest.approx(0.443, abs=0.02)

    def test_new_terms_decline_then_burst_at_wikipedia(self, works):
        assert works[5].unpopular.new_terms > works[1100].unpopular.new_terms
        # Fresh vocabulary at the segment boundary.
        assert works[1200].unpopular.new_terms > works[1199].unpopular.new_terms * 3

    def test_popular_trees_deeper_but_hotter(self, works):
        w = works[800]
        assert w.popular.visits_per_token > w.unpopular.visits_per_token
        assert w.popular.hot_visit_fraction > w.unpopular.hot_visit_fraction


class TestOtherDatasets:
    @pytest.mark.parametrize(
        "name,files,tokens,terms",
        [
            ("wikipedia", 84, 9_375_229_726, 9_404_723),
            ("congress", 530, 16_865_180_093, 7_457_742),
        ],
    )
    def test_table3_totals(self, name, files, tokens, terms):
        works = WorkloadModel.paper_scale(name).files()
        assert len(works) == files
        assert sum(w.tokens for w in works) == pytest.approx(tokens, rel=0.01)
        got_terms = sum(w.popular.new_terms + w.unpopular.new_terms for w in works)
        assert got_terms == pytest.approx(terms, rel=0.10)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            WorkloadModel.paper_scale("gov3")


class TestGroupWork:
    def test_merge_accumulates(self):
        a = GroupWork(tokens=10, new_terms=2, node_visits=30, largest_collection_tokens=5)
        b = GroupWork(tokens=20, new_terms=3, node_visits=40, largest_collection_tokens=9)
        a.merge(b)
        assert a.tokens == 30
        assert a.new_terms == 5
        assert a.largest_collection_tokens == 9
        assert a.visits_per_token == pytest.approx(70 / 30)

    def test_filework_helpers(self):
        w = FileWork(
            file_index=0, compressed_bytes=10, uncompressed_bytes=100,
            num_docs=2, raw_tokens=50,
            popular=GroupWork(tokens=30), unpopular=GroupWork(tokens=70),
        )
        assert w.tokens == 100
        assert w.postings_estimate == 62


class TestCustomSegments:
    def test_sampling_mismatch_shifts_work_to_gpu_side(self):
        base = SegmentStats(
            name="s", num_files=10, uncompressed_bytes_per_file=10**9,
            compressed_bytes_per_file=10**8, docs_per_file=100,
            tokens_per_file=10**7,
        )
        matched = WorkloadModel([base]).files()[-1]
        mismatched = WorkloadModel(
            [SegmentStats(**{**base.__dict__, "sampling_mismatch": 0.5})]
        ).files()[-1]
        assert mismatched.popular.tokens < matched.popular.tokens
        assert (
            mismatched.unpopular.largest_collection_tokens
            > matched.unpopular.largest_collection_tokens
        )
