"""The persisted global document-location table."""

from __future__ import annotations

import os

import pytest

from repro.core.config import PlatformConfig
from repro.core.engine import IndexingEngine
from repro.corpus.warc import read_packed_file
from repro.postings.doctable import DOCTABLE_FILENAME, DocTable


class TestDocTable:
    def test_add_and_lookup(self):
        table = DocTable()
        assert table.add("f0", "u://a", 12) == 0
        assert table.add("f0", "u://b", 99) == 1
        row = table.lookup(1)
        assert (row.source_file, row.uri, row.offset) == ("f0", "u://b", 99)
        assert len(table) == 2

    def test_lookup_bounds(self):
        table = DocTable()
        table.add("f", "u", 0)
        with pytest.raises(KeyError):
            table.lookup(1)
        with pytest.raises(KeyError):
            table.lookup(-1)

    def test_documents_in_file(self):
        table = DocTable()
        table.add("a", "u0", 0)
        table.add("b", "u1", 0)
        table.add("a", "u2", 5)
        assert [r.uri for r in table.documents_in_file("a")] == ["u0", "u2"]

    def test_save_load_round_trip(self, tmp_path):
        table = DocTable()
        table.add("file_00000.warc.gz", "repro://x/doc0", 12)
        table.add("file_00001.warc.gz", "repro://x/doc1", 345)
        table.save(str(tmp_path))
        loaded = DocTable.load(str(tmp_path))
        assert loaded.rows == table.rows
        assert DocTable.exists(str(tmp_path))

    def test_corrupt_ids_detected(self, tmp_path):
        with open(tmp_path / DOCTABLE_FILENAME, "w") as fh:
            fh.write("5\tf\tu\t0\n")
        with pytest.raises(ValueError):
            DocTable.load(str(tmp_path))


class TestEngineIntegration:
    def test_engine_writes_doctable(self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx")
        result = IndexingEngine(
            PlatformConfig(num_parsers=2, num_cpu_indexers=1, num_gpus=0,
                           sample_fraction=0.3)
        ).build(tiny_collection, out)
        table = DocTable.load(out)
        assert len(table) == result.document_count
        # Global IDs follow file order; rows point at real documents.
        row = table.lookup(0)
        assert row.source_file == os.path.basename(tiny_collection.files[0])
        first_file_docs = read_packed_file(tiny_collection.files[0])
        assert row.uri == first_file_docs[0].uri
        # The recorded offset locates the DOC header in the container.
        assert first_file_docs[0].offset == row.offset

    def test_doc_ids_partition_by_file(self, tiny_collection, tmp_path):
        out = str(tmp_path / "idx2")
        IndexingEngine(
            PlatformConfig(num_parsers=2, num_cpu_indexers=1, num_gpus=0,
                           sample_fraction=0.3)
        ).build(tiny_collection, out)
        table = DocTable.load(out)
        boundaries = [r.source_file for r in table.rows]
        # Documents from one file are contiguous in global-ID order.
        seen = []
        for name in boundaries:
            if not seen or seen[-1] != name:
                seen.append(name)
        assert len(seen) == tiny_collection.num_files
