"""Baseline indexers: mutual equivalence and work profiles."""

from __future__ import annotations

import pytest

from repro.baselines.cluster import (
    CLUEWEB09_MR_STATS,
    GOV2_MR_STATS,
    IVORY_PLATFORM,
    SP_MR_PLATFORM,
    THIS_PAPER_PLATFORM,
    ClusterModel,
)
from repro.baselines.dictionaries import GlobalBTreeDictionary, HashDictionary
from repro.baselines.ivory import IvoryIndexer
from repro.baselines.linkedlist import LinkedListIndexer
from repro.baselines.mapreduce import MapReduceJob
from repro.baselines.singlepass_mr import SinglePassMRIndexer
from repro.baselines.sortbased import SortBasedIndexer
from repro.baselines.spimi import SPIMIIndexer


class TestMapReduceRuntime:
    def test_word_count(self):
        def mapper(line):
            for word in line.split():
                yield word, 1

        def reducer(word, counts):
            yield sum(counts)

        job = MapReduceJob(mapper, reducer, num_reducers=3)
        out = job.run([["a b a"], ["b c"]])
        assert out == {"a": [2], "b": [2], "c": [1]}
        assert job.stats.map_tasks == 2
        assert job.stats.map_output_pairs == 5
        assert job.stats.reduce_input_groups == 3

    def test_keys_sorted_within_reducer(self):
        seen = []

        def mapper(x):
            yield x, 1

        def reducer(key, values):
            seen.append(key)
            yield len(values)

        job = MapReduceJob(mapper, reducer, num_reducers=1)
        job.run([[3, 1, 2], [2, 0]])
        assert seen == sorted(seen)

    def test_partition_routes_same_key_together(self):
        def mapper(x):
            yield x % 5, x

        def reducer(key, values):
            yield sorted(values)

        job = MapReduceJob(mapper, reducer, num_reducers=4)
        out = job.run([list(range(20))])
        for key, [values] in out.items():
            assert values == sorted(range(key, 20, 5))

    def test_combiner_reduces_shuffle(self):
        def mapper(line):
            for w in line.split():
                yield w, 1

        def reducer(w, counts):
            yield sum(counts)

        def combiner(w, counts):
            yield sum(counts)

        plain = MapReduceJob(mapper, reducer, num_reducers=2)
        combined = MapReduceJob(mapper, reducer, num_reducers=2, combiner_fn=combiner)
        data = [["x x x x y"], ["x y y"]]
        assert plain.run(data) == combined.run(data)
        assert combined.stats.shuffle_bytes < plain.stats.shuffle_bytes

    def test_invalid_reducers(self):
        with pytest.raises(ValueError):
            MapReduceJob(lambda x: [], lambda k, v: [], num_reducers=0)


class TestBaselineEquivalence:
    """All five Section II strategies build the same index as the naive
    reference (and hence as each other)."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: IvoryIndexer(num_reducers=3, docs_per_split=7),
            lambda: SinglePassMRIndexer(num_reducers=3, docs_per_split=7),
            lambda: SortBasedIndexer(memory_limit_bytes=1 << 14),
            lambda: SPIMIIndexer(memory_limit_bytes=1 << 14),
            lambda: LinkedListIndexer(),
        ],
        ids=["ivory", "sp-mr", "sort-based", "spimi", "linked-list"],
    )
    def test_matches_reference(self, factory, tiny_collection, reference_index):
        assert factory().build(tiny_collection) == reference_index


class TestWorkProfiles:
    def test_sort_based_runs_scale_with_memory(self, tiny_collection):
        small = SortBasedIndexer(memory_limit_bytes=1 << 12)
        big = SortBasedIndexer(memory_limit_bytes=1 << 22)
        small.build(tiny_collection)
        big.build(tiny_collection)
        assert small.stats.runs > big.stats.runs
        assert big.stats.runs == 1
        assert small.stats.triples == big.stats.triples

    def test_spimi_front_coding_compresses(self, tiny_collection):
        ix = SPIMIIndexer(memory_limit_bytes=1 << 14)
        ix.build(tiny_collection)
        assert ix.stats.blocks >= 2
        assert ix.stats.dict_bytes_front_coded < ix.stats.dict_bytes_raw

    def test_linked_list_traversal_cost(self, tiny_collection):
        ix = LinkedListIndexer()
        index = ix.build(tiny_collection)
        # Every cell is chased exactly once in the post-processing run.
        assert ix.stats.traversal_steps == ix.stats.cells
        assert ix.stats.terms == len(index)

    def test_ivory_single_value_per_key(self, tiny_collection):
        ix = IvoryIndexer(num_reducers=2)
        ix.build(tiny_collection)
        assert ix.stats is not None
        assert ix.stats.reduce_input_groups == ix.stats.map_output_pairs

    def test_spmr_fewer_emits_than_ivory(self, tiny_collection):
        ivory = IvoryIndexer(num_reducers=2, docs_per_split=16)
        spmr = SinglePassMRIndexer(num_reducers=2, docs_per_split=16)
        ivory.build(tiny_collection)
        spmr.build(tiny_collection)
        # McCreadie's whole point: far fewer (but fatter) emits.
        assert spmr.stats.map_output_pairs < ivory.stats.map_output_pairs


class TestDictionaryBaselines:
    WORDS = [f"suffix{i % 97}x{i % 13}".encode() for i in range(2000)]

    def test_hash_dictionary_semantics(self):
        h = HashDictionary(initial_capacity=8)  # force many growths
        ids = {}
        for w in self.WORDS:
            tid, created = h.insert(w)
            if w in ids:
                assert not created and ids[w] == tid
            else:
                assert created
                ids[w] = tid
        assert len(h) == len(ids)
        for w, tid in ids.items():
            assert h.lookup(w) == tid
        assert h.lookup(b"absent") is None

    def test_hash_pays_full_string_comparisons(self):
        h = HashDictionary()
        for w in self.WORDS:
            h.insert(w)
        # §III.B: "a hash function will still require comparisons and
        # searches on full strings".
        assert h.stats.full_string_comparisons > len(set(self.WORDS))
        assert h.stats.compared_bytes > 0

    def test_global_btree_is_taller_than_forest_trees(self):
        g = GlobalBTreeDictionary()
        for w in self.WORDS:
            g.insert(w)
        assert g.height() >= 1
        assert g.lookup(self.WORDS[0]) is not None
        assert len(g) == len(set(self.WORDS))

    def test_lock_contention_grows_with_writers(self):
        solo = GlobalBTreeDictionary(writer_threads=1)
        four = GlobalBTreeDictionary(writer_threads=4)
        for w in self.WORDS[:400]:
            solo.insert(w)
            four.insert(w)
        assert solo.lock_stats.contended_acquisitions == 0
        assert four.lock_stats.contended_acquisitions == 300  # 3 of every 4


class TestClusterModel:
    def test_table7_shapes(self):
        assert THIS_PAPER_PLATFORM.total_cores == 8
        assert IVORY_PLATFORM.total_cores == 198
        assert SP_MR_PLATFORM.usable_cores == 24

    def test_fig12_ordering(self):
        ivory = ClusterModel(IVORY_PLATFORM).throughput_mbps(CLUEWEB09_MR_STATS, "ivory")
        spmr = ClusterModel(SP_MR_PLATFORM).throughput_mbps(GOV2_MR_STATS, "single-pass")
        # The comparison the paper draws: both MapReduce systems below the
        # single-node result (204–263 MB/s); SP-MR far below Ivory.
        assert 100 < ivory < 204
        assert 5 < spmr < 80
        assert spmr < ivory

    def test_breakdown_sums(self):
        model = ClusterModel(IVORY_PLATFORM)
        b = model.index_time_breakdown(CLUEWEB09_MR_STATS)
        components = [v for k, v in b.items() if k not in ("raw_total_s", "total_s")]
        assert sum(components) == pytest.approx(b["raw_total_s"])
        assert b["total_s"] > b["raw_total_s"]

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            ClusterModel(IVORY_PLATFORM).index_time_breakdown(CLUEWEB09_MR_STATS, "flink")


class TestRemoteLists:
    """The distributed Remote-Buffer/Remote-Lists algorithm [6]."""

    def test_matches_reference(self, tiny_collection, reference_index):
        from repro.baselines.remote_lists import RemoteListsIndexer

        ix = RemoteListsIndexer(num_processors=3, batch_size=8)
        assert ix.build(tiny_collection) == reference_index

    def test_single_processor_degenerates_to_local(self, tiny_collection, reference_index):
        from repro.baselines.remote_lists import RemoteListsIndexer

        ix = RemoteListsIndexer(num_processors=1)
        assert ix.build(tiny_collection) == reference_index
        assert ix.stats.tuples_sent == 0  # everything is owner-local
        assert ix.stats.local_tuples > 0

    def test_communication_accounting(self, tiny_collection):
        from repro.baselines.remote_lists import RemoteListsIndexer

        ix = RemoteListsIndexer(num_processors=4, batch_size=16)
        ix.build(tiny_collection)
        s = ix.stats
        # Run 1: two vocabulary messages per processor.
        assert s.vocabulary_messages == 8
        assert s.vocabulary_bytes > 0
        # Run 2: ~3/4 of tuples cross the network with 4 hash-partitioned owners.
        total = s.tuples_sent + s.local_tuples
        assert 0.6 < s.tuples_sent / total < 0.9
        # Buffering amortizes messages: far fewer flushes than tuples.
        assert s.tuple_messages < s.tuples_sent / 2
        # Sorted inserts are the algorithm's CPU tax (our engine appends).
        assert s.sorted_insert_comparisons >= total

    def test_bigger_batches_fewer_messages(self, tiny_collection):
        from repro.baselines.remote_lists import RemoteListsIndexer

        small = RemoteListsIndexer(num_processors=4, batch_size=4)
        big = RemoteListsIndexer(num_processors=4, batch_size=256)
        small.build(tiny_collection)
        big.build(tiny_collection)
        assert big.stats.tuple_messages < small.stats.tuple_messages
        assert big.stats.tuples_sent == small.stats.tuples_sent

    def test_invalid_args(self):
        from repro.baselines.remote_lists import RemoteListsIndexer
        import pytest as _pytest

        with _pytest.raises(ValueError):
            RemoteListsIndexer(num_processors=0)
        with _pytest.raises(ValueError):
            RemoteListsIndexer(batch_size=0)


class TestMelnikStages:
    """Melnik et al.'s pipelined loading/processing/flushing [5]."""

    def test_matches_reference(self, tiny_collection, reference_index):
        from repro.baselines.melnik import StagedIndexer

        ix = StagedIndexer(docs_per_batch=9)
        assert ix.build(tiny_collection) == reference_index
        assert ix.times.batches == -(-tiny_collection.num_docs // 9)

    def test_pipelining_hides_load_and_flush(self, tiny_collection):
        from repro.baselines.melnik import StagedIndexer

        ix = StagedIndexer(docs_per_batch=8)
        ix.build(tiny_collection)
        cmp = ix.simulate_schedule()
        # The paper's claim: loading and flushing hide behind processing.
        assert cmp.pipelined_s < cmp.serial_s
        assert cmp.hiding_efficiency > 0.6
        # Wall can never beat the dominant stage.
        assert cmp.pipelined_s >= cmp.processing_s - 1e-9

    def test_schedule_requires_build(self):
        from repro.baselines.melnik import StagedIndexer
        import pytest as _pytest

        with _pytest.raises(RuntimeError):
            StagedIndexer().simulate_schedule()

    def test_invalid_batch(self):
        from repro.baselines.melnik import StagedIndexer
        import pytest as _pytest

        with _pytest.raises(ValueError):
            StagedIndexer(docs_per_batch=0)
