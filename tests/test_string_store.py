"""The Fig 6 length-prefixed string heap."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dictionary.string_store import MAX_TERM_BYTES, StringStore


class TestStore:
    def test_add_get(self):
        store = StringStore()
        p = store.add(b"lication")
        assert store.get(p) == b"lication"
        assert store.length(p) == 8

    def test_pointers_are_byte_offsets(self):
        store = StringStore()
        p1 = store.add(b"ab")
        p2 = store.add(b"xyz")
        assert p1 == 0
        assert p2 == 3  # 1 length byte + 2 payload bytes
        assert store.get(p2) == b"xyz"

    def test_empty_string(self):
        store = StringStore()
        p = store.add(b"")
        assert store.get(p) == b""
        assert store.length(p) == 0

    def test_str_roundtrip_unicode(self):
        store = StringStore()
        p = store.add_str("zoé")
        assert store.get_str(p) == "zoé"

    def test_255_byte_limit(self):
        store = StringStore()
        store.add(b"x" * MAX_TERM_BYTES)  # exactly at the limit
        with pytest.raises(ValueError):
            store.add(b"x" * (MAX_TERM_BYTES + 1))

    def test_counters(self):
        store = StringStore()
        store.add(b"ab")
        store.add(b"c")
        assert len(store) == 2
        assert store.byte_size == 5

    def test_chunks_cover_heap(self):
        store = StringStore()
        for i in range(100):
            store.add(f"term{i:04d}".encode())
        chunks = list(store.chunks(512))
        assert b"".join(chunks) == bytes(store._heap)
        assert all(len(c) == 512 for c in chunks[:-1])

    def test_chunks_bad_size(self):
        with pytest.raises(ValueError):
            list(StringStore().chunks(0))

    @given(st.lists(st.binary(max_size=40), max_size=100))
    def test_round_trip_many(self, payloads):
        store = StringStore()
        ptrs = [store.add(p) for p in payloads]
        for ptr, payload in zip(ptrs, payloads):
            assert store.get(ptr) == payload
        assert len(store) == len(payloads)
