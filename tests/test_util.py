"""RNG derivation, timers, and report formatting."""

from __future__ import annotations

import pytest

from repro.util.fmt import fmt_bytes, fmt_count, fmt_mbps, fmt_seconds, render_table
from repro.util.rng import derive_seed, make_rng
from repro.util.timing import Stopwatch, Timer


class TestRng:
    def test_default_seed_deterministic(self):
        assert make_rng().random() == make_rng().random()

    def test_explicit_seed(self):
        assert make_rng(42).random() == make_rng(42).random()
        assert make_rng(42).random() != make_rng(43).random()

    def test_derive_seed_stable(self):
        assert derive_seed(1, "vocab", 3) == derive_seed(1, "vocab", 3)

    def test_derive_seed_distinct_labels(self):
        seeds = {
            derive_seed(1, "vocab", 0),
            derive_seed(1, "vocab", 1),
            derive_seed(1, "sampler", 0),
            derive_seed(2, "vocab", 0),
        }
        assert len(seeds) == 4

    def test_derive_seed_in_range(self):
        s = derive_seed(10**18, "x" * 100)
        assert 0 <= s < 2**63


class TestTiming:
    def test_timer_measures(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0

    def test_stopwatch_charge_and_total(self):
        w = Stopwatch()
        w.charge("a", 1.5)
        w.charge("a", 0.5)
        w.charge("b", 1.0)
        assert w.get("a") == pytest.approx(2.0)
        assert w.total() == pytest.approx(3.0)
        assert w.get("missing") == 0.0

    def test_stopwatch_negative_rejected(self):
        with pytest.raises(ValueError):
            Stopwatch().charge("x", -1.0)

    def test_stopwatch_measure_context(self):
        w = Stopwatch()
        with w.measure("block"):
            sum(range(100))
        assert w.get("block") > 0.0

    def test_stopwatch_merge(self):
        a, b = Stopwatch(), Stopwatch()
        a.charge("x", 1.0)
        b.charge("x", 2.0)
        b.charge("y", 3.0)
        a.merge(b)
        assert a.get("x") == pytest.approx(3.0)
        assert a.get("y") == pytest.approx(3.0)


class TestFmt:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(1536) == "1.50KB"
        assert fmt_bytes(230 * 1024**3) == "230.00GB"

    def test_fmt_count(self):
        assert fmt_count(50_220_423) == "50,220,423"

    def test_fmt_mbps(self):
        assert fmt_mbps(1024 * 1024 * 100, 2.0) == "50.00 MB/s"
        assert fmt_mbps(1, 0) == "inf MB/s"

    def test_fmt_seconds(self):
        assert fmt_seconds(5541.6245) == "5541.62"

    def test_render_table_aligns(self):
        text = render_table(["a", "long header"], [[1, 2], ["xyz", "w"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "---" in lines[1]
