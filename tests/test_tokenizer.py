"""Tokenization and markup stripping (Step 2 of Fig 3)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.dictionary.trie import TrieTable
from repro.parsing.tokenizer import Tokenizer, strip_markup


class TestStripMarkup:
    def test_tags_removed(self):
        assert strip_markup("<p>hello</p>").strip() == "hello"

    def test_attributes_removed(self):
        out = strip_markup('<a href="http://x.com" class="y">link</a>')
        assert "href" not in out and "link" in out

    def test_script_and_style_blocks_dropped_entirely(self):
        text = "<script>var x = 1;</script>body<style>.c{color:red}</style>"
        out = strip_markup(text)
        assert "var" not in out and "color" not in out and "body" in out

    def test_entities_removed(self):
        out = strip_markup("fish &amp; chips &nbsp;done")
        assert "&" not in out and "amp" not in out
        assert "fish" in out and "chips" in out

    def test_plain_text_untouched(self):
        assert strip_markup("no tags here") == "no tags here"


class TestTokenizer:
    def test_lowercases(self):
        t = Tokenizer(strip_html=False)
        assert list(t.tokens("Hello WORLD")) == ["hello", "world"]

    def test_splits_on_punctuation(self):
        t = Tokenizer(strip_html=False)
        assert list(t.tokens("a,b;c.d-e_f")) == ["a", "b", "c", "d", "e", "f"]

    def test_numbers_kept(self):
        t = Tokenizer(strip_html=False)
        assert list(t.tokens("in 1999 the 3d")) == ["in", "1999", "the", "3d"]

    def test_unicode_letters_kept(self):
        t = Tokenizer(strip_html=False)
        assert list(t.tokens("café zoé")) == ["café", "zoé"]

    def test_html_stripped_when_enabled(self):
        on = Tokenizer(strip_html=True)
        off = Tokenizer(strip_html=False)
        text = "<div class='x'>word</div>"
        assert list(on.tokens(text)) == ["word"]
        assert "div" in list(off.tokens(text))

    def test_overlong_tokens_dropped(self):
        t = Tokenizer(strip_html=False, max_token_bytes=8)
        assert list(t.tokens("short verylongtokenhere ok")) == ["short", "ok"]

    def test_max_token_capped_at_255(self):
        t = Tokenizer(strip_html=False, max_token_bytes=10_000)
        assert t.max_token_bytes == 255

    def test_counters(self):
        t = Tokenizer(strip_html=False)
        list(t.tokens("one two three"))
        assert t.tokens_emitted == 3
        assert t.chars_scanned == len("one two three")

    def test_trie_index_byproduct(self):
        t = Tokenizer(strip_html=False)
        trie = TrieTable()
        pairs = list(t.tokens_with_index("Application 954 the"))
        assert pairs == [
            ("application", trie.trie_index("application")),
            ("954", trie.trie_index("954")),
            ("the", trie.trie_index("the")),
        ]

    @given(st.text(max_size=300))
    def test_never_crashes(self, text):
        t = Tokenizer(strip_html=True)
        for token, idx in t.tokens_with_index(text):
            assert token == token.lower()
            assert 0 <= idx < t.trie.num_collections

    @given(st.lists(st.text(alphabet="abcdefg", min_size=1, max_size=8), max_size=30))
    def test_whitespace_joining_preserves_tokens(self, words):
        t = Tokenizer(strip_html=False)
        assert list(t.tokens(" ".join(words))) == words
