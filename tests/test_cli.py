"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_arg_parser, main


@pytest.fixture(scope="module")
def generated(tmp_path_factory, capsys_module=None):
    root = str(tmp_path_factory.mktemp("cli"))
    code = main(["generate", "wikipedia", root, "--scale", "0.2"])
    assert code == 0
    return f"{root}/wikipedia_mini"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_arg_parser().parse_args(["simulate"])
        assert (args.parsers, args.cpu_indexers, args.gpus) == (6, 2, 2)
        assert args.dataset == "clueweb09"


class TestCommands:
    def test_generate_and_stats(self, generated, capsys):
        code = main(["stats", generated, "--no-html"])
        assert code == 0
        out = capsys.readouterr().out
        assert "documents:" in out and "tokens:" in out

    def test_build_query_merge(self, generated, tmp_path, capsys):
        index = str(tmp_path / "idx")
        code = main([
            "build", generated, index,
            "--parsers", "2", "--cpu-indexers", "1", "--gpus", "1",
            "--positional", "--sample-fraction", "0.2", "--no-html",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "indexed" in out and "MB/s" in out

        # Ranked query over some indexed term.
        from repro.postings.reader import PostingsReader

        term = next(iter(PostingsReader(index).vocabulary()))
        assert main(["query", index, term, "--mode", "ranked", "-k", "3"]) == 0
        ranked_out = capsys.readouterr().out
        assert "doc" in ranked_out

        assert main(["query", index, term, "--mode", "and"]) == 0
        assert main(["query", index, term, "--mode", "phrase"]) == 0
        capsys.readouterr()

        merged = str(tmp_path / "merged")
        assert main(["merge", index, merged]) == 0
        assert "merged" in capsys.readouterr().out

    def test_simulate(self, capsys):
        code = main(["simulate", "--dataset", "wikipedia"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total" in out and "MB/s" in out

    def test_simulate_custom_config(self, capsys):
        assert main(["simulate", "--dataset", "congress", "--parsers", "4",
                     "--cpu-indexers", "4", "--gpus", "0"]) == 0
        assert "4 parsers" in capsys.readouterr().out


class TestTraceDegenerate:
    """``repro trace`` on degenerate-but-legal trace.json artifacts."""

    @staticmethod
    def _write(tmp_path, events):
        import json

        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": events}))
        return str(path)

    def test_empty_trace_file(self, tmp_path, capsys):
        path = self._write(tmp_path, [])
        assert main(["trace", path]) == 0
        assert "(empty trace)" in capsys.readouterr().out

    def test_single_lane_trace_file(self, tmp_path, capsys):
        path = self._write(tmp_path, [
            {"ph": "M", "name": "thread_name", "tid": 1, "pid": 1,
             "args": {"name": "main"}},
            {"ph": "X", "name": "build", "ts": 0, "dur": 1_000_000,
             "tid": 1, "pid": 1},
            {"ph": "X", "name": "parse", "ts": 0, "dur": 1_000_000,
             "tid": 1, "pid": 1},
        ])
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "lane utilization" in out and "main" in out

    def test_all_zero_duration_spans_file(self, tmp_path, capsys):
        path = self._write(tmp_path, [
            {"ph": "X", "name": "build", "ts": 0, "dur": 0, "tid": 1, "pid": 1},
            {"ph": "X", "name": "parse", "ts": 0, "dur": 0, "tid": 2, "pid": 1},
        ])
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "0.000s wall" in out and "stage totals:" in out

    def test_damaged_trace_file_rejected(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"not_trace_events": []}))
        assert main(["trace", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestErrorHandling:
    def test_missing_collection_dir(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_index_dir(self, tmp_path, capsys):
        code = main(["query", str(tmp_path / "noidx"), "term"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_ingest_source(self, tmp_path, capsys):
        code = main(["ingest", str(tmp_path / "missing"), str(tmp_path / "out")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestProfileCommand:
    @pytest.fixture(scope="class")
    def profiled_index(self, generated, tmp_path_factory):
        index = str(tmp_path_factory.mktemp("prof") / "idx")
        code = main([
            "build", generated, index,
            "--parsers", "2", "--cpu-indexers", "1", "--gpus", "1",
            "--sample-fraction", "0.2", "--no-html",
            "--profile", "--profile-interval", "0.002",
        ])
        assert code == 0
        return index

    def test_build_profile_writes_and_announces_artifact(
            self, profiled_index, capsys):
        import os

        from repro.obs.profile_schema import PROFILE_FILENAME, load_profile

        path = os.path.join(profiled_index, PROFILE_FILENAME)
        payload = load_profile(path)  # schema-valid on disk
        assert "engine" in payload["lanes"]

    def test_profile_report_and_exports(self, profiled_index, tmp_path, capsys):
        import json
        import os

        folded = str(tmp_path / "stacks.folded")
        scope = str(tmp_path / "profile.speedscope.json")
        assert main(["profile", profiled_index,
                     "--folded", folded, "--speedscope", scope]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out and "sample(s)" in out
        assert "shm codec hot path:" in out
        # Metrics sit next to the profile, so ring waits are reported.
        assert "ring waits" in out
        with open(folded, encoding="utf-8") as fh:
            first = fh.readline()
        assert first.rstrip().rsplit(" ", 1)[1].isdigit()
        with open(scope, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["$schema"].endswith("file-format-schema.json")
        assert os.path.basename(profiled_index) == doc["name"]

    def test_profile_cumulative_mode(self, profiled_index, capsys):
        assert main(["profile", profiled_index, "--mode", "cum",
                     "--top", "3"]) == 0
        assert "by cumulative time" in capsys.readouterr().out

    def test_profile_diff(self, profiled_index, capsys):
        assert main(["profile", "--diff", profiled_index,
                     profiled_index]) == 0
        out = capsys.readouterr().out
        assert "profile diff" in out
        assert "regressed function(s):" in out

    def test_profile_without_target_or_diff_is_usage_error(self, capsys):
        assert main(["profile"]) == 2
        assert "error" in capsys.readouterr().err

    def test_profile_missing_artifact_fails(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path)]) == 2
        assert "run.profile.json" in capsys.readouterr().err
