"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_arg_parser, main


@pytest.fixture(scope="module")
def generated(tmp_path_factory, capsys_module=None):
    root = str(tmp_path_factory.mktemp("cli"))
    code = main(["generate", "wikipedia", root, "--scale", "0.2"])
    assert code == 0
    return f"{root}/wikipedia_mini"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_arg_parser().parse_args(["simulate"])
        assert (args.parsers, args.cpu_indexers, args.gpus) == (6, 2, 2)
        assert args.dataset == "clueweb09"


class TestCommands:
    def test_generate_and_stats(self, generated, capsys):
        code = main(["stats", generated, "--no-html"])
        assert code == 0
        out = capsys.readouterr().out
        assert "documents:" in out and "tokens:" in out

    def test_build_query_merge(self, generated, tmp_path, capsys):
        index = str(tmp_path / "idx")
        code = main([
            "build", generated, index,
            "--parsers", "2", "--cpu-indexers", "1", "--gpus", "1",
            "--positional", "--sample-fraction", "0.2", "--no-html",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "indexed" in out and "MB/s" in out

        # Ranked query over some indexed term.
        from repro.postings.reader import PostingsReader

        term = next(iter(PostingsReader(index).vocabulary()))
        assert main(["query", index, term, "--mode", "ranked", "-k", "3"]) == 0
        ranked_out = capsys.readouterr().out
        assert "doc" in ranked_out

        assert main(["query", index, term, "--mode", "and"]) == 0
        assert main(["query", index, term, "--mode", "phrase"]) == 0
        capsys.readouterr()

        merged = str(tmp_path / "merged")
        assert main(["merge", index, merged]) == 0
        assert "merged" in capsys.readouterr().out

    def test_simulate(self, capsys):
        code = main(["simulate", "--dataset", "wikipedia"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total" in out and "MB/s" in out

    def test_simulate_custom_config(self, capsys):
        assert main(["simulate", "--dataset", "congress", "--parsers", "4",
                     "--cpu-indexers", "4", "--gpus", "0"]) == 0
        assert "4 parsers" in capsys.readouterr().out


class TestTraceDegenerate:
    """``repro trace`` on degenerate-but-legal trace.json artifacts."""

    @staticmethod
    def _write(tmp_path, events):
        import json

        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": events}))
        return str(path)

    def test_empty_trace_file(self, tmp_path, capsys):
        path = self._write(tmp_path, [])
        assert main(["trace", path]) == 0
        assert "(empty trace)" in capsys.readouterr().out

    def test_single_lane_trace_file(self, tmp_path, capsys):
        path = self._write(tmp_path, [
            {"ph": "M", "name": "thread_name", "tid": 1, "pid": 1,
             "args": {"name": "main"}},
            {"ph": "X", "name": "build", "ts": 0, "dur": 1_000_000,
             "tid": 1, "pid": 1},
            {"ph": "X", "name": "parse", "ts": 0, "dur": 1_000_000,
             "tid": 1, "pid": 1},
        ])
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "lane utilization" in out and "main" in out

    def test_all_zero_duration_spans_file(self, tmp_path, capsys):
        path = self._write(tmp_path, [
            {"ph": "X", "name": "build", "ts": 0, "dur": 0, "tid": 1, "pid": 1},
            {"ph": "X", "name": "parse", "ts": 0, "dur": 0, "tid": 2, "pid": 1},
        ])
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "0.000s wall" in out and "stage totals:" in out

    def test_damaged_trace_file_rejected(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"not_trace_events": []}))
        assert main(["trace", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestErrorHandling:
    def test_missing_collection_dir(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_index_dir(self, tmp_path, capsys):
        code = main(["query", str(tmp_path / "noidx"), "term"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_ingest_source(self, tmp_path, capsys):
        code = main(["ingest", str(tmp_path / "missing"), str(tmp_path / "out")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
