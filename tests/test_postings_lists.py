"""In-memory postings accumulation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.postings.lists import PostingsAccumulator, PostingsList


class TestPostingsList:
    def test_occurrences_fold_into_tf(self):
        pl = PostingsList()
        for doc in [1, 1, 1, 5, 9, 9]:
            pl.add_occurrence(doc)
        assert pl.postings() == [(1, 3), (5, 1), (9, 2)]
        assert pl.document_frequency == 3
        assert pl.collection_frequency == 6

    def test_out_of_order_rejected(self):
        pl = PostingsList()
        pl.add_occurrence(5)
        with pytest.raises(ValueError):
            pl.add_occurrence(3)

    def test_add_posting_strictly_increasing(self):
        pl = PostingsList()
        pl.add_posting(1, 2)
        with pytest.raises(ValueError):
            pl.add_posting(1, 1)
        with pytest.raises(ValueError):
            pl.add_posting(2, 0)

    def test_iteration(self):
        pl = PostingsList()
        pl.add_posting(1, 2)
        pl.add_posting(4, 1)
        assert list(pl) == [(1, 2), (4, 1)]
        assert len(pl) == 2

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=100))
    def test_tf_equals_occurrence_count(self, docs):
        docs = sorted(docs)
        pl = PostingsList()
        for d in docs:
            pl.add_occurrence(d)
        assert pl.collection_frequency == len(docs)
        assert pl.doc_ids == sorted(set(docs))
        for doc, tf in pl:
            assert tf == docs.count(doc)


class TestAccumulator:
    def test_routes_by_term(self):
        acc = PostingsAccumulator()
        acc.add_occurrence(10, 0)
        acc.add_occurrence(20, 0)
        acc.add_occurrence(10, 1)
        assert acc.term_count == 2
        assert acc.posting_count == 3
        assert acc.token_count == 3
        assert acc.lists[10].postings() == [(0, 1), (1, 1)]

    def test_drain_resets(self):
        acc = PostingsAccumulator()
        acc.add_occurrence(1, 0)
        drained = acc.drain()
        assert 1 in drained
        assert len(acc) == 0
        assert acc.token_count == 0
        acc.add_occurrence(1, 5)  # reusable after drain
        assert acc.lists[1].postings() == [(5, 1)]
