"""Coalescing and shared-memory bank-conflict rules (Section I)."""

from __future__ import annotations

import pytest

from repro.gpusim.memory import SharedMemory, coalesced_transactions, half_warp_transactions


class TestCoalescing:
    def test_aligned_node_load_is_8_lines(self):
        # A 512-byte node at an aligned address = 8 × 64B transactions.
        assert coalesced_transactions(0, 512) == 8

    def test_misaligned_costs_extra_line(self):
        assert coalesced_transactions(4, 512) == 9

    def test_single_word(self):
        assert coalesced_transactions(0, 4) == 1
        assert coalesced_transactions(60, 8) == 2  # straddles a boundary

    def test_zero_bytes(self):
        assert coalesced_transactions(0, 0) == 0

    def test_half_warp_fully_coalesced(self):
        # 16 consecutive words in one line = one transaction.
        addrs = [i * 4 for i in range(16)]
        assert half_warp_transactions(addrs) == 1

    def test_half_warp_strided_touches_many_lines(self):
        # Stride-16-words: every lane in its own line.
        addrs = [i * 64 for i in range(16)]
        assert half_warp_transactions(addrs) == 16

    def test_half_warp_same_word(self):
        assert half_warp_transactions([128] * 16) == 1

    def test_empty(self):
        assert half_warp_transactions([]) == 0


class TestSharedMemory:
    def test_capacity_is_16kb(self):
        sm = SharedMemory()
        assert sm.size_bytes == 16 * 1024
        assert sm.banks == 16

    def test_alloc_and_overflow(self):
        sm = SharedMemory()
        base = sm.alloc(512)
        assert base == 0
        sm.alloc(15 * 1024 + 512)  # exactly fills
        with pytest.raises(MemoryError):
            sm.alloc(1)
        sm.reset()
        sm.alloc(16 * 1024)

    def test_store_load(self):
        sm = SharedMemory()
        sm.store(64, b"node-bytes")
        assert sm.load(64, 10) == b"node-bytes"

    def test_store_past_end(self):
        with pytest.raises(MemoryError):
            SharedMemory().store(16 * 1024 - 2, b"xxxx")

    def test_conflict_free_access_one_pass(self):
        sm = SharedMemory()
        # 16 lanes reading 16 consecutive words: one word per bank.
        passes = sm.access([i * 4 for i in range(16)])
        assert passes == 1

    def test_broadcast_is_one_pass(self):
        sm = SharedMemory()
        assert sm.access([256] * 16) == 1

    def test_two_way_conflict_two_passes(self):
        sm = SharedMemory()
        # Stride of 2 words: lanes pair up on 8 banks.
        passes = sm.access([i * 8 for i in range(16)])
        assert passes == 2

    def test_worst_case_16_way(self):
        sm = SharedMemory()
        # All lanes in bank 0, all different words.
        passes = sm.access([i * 64 for i in range(16)])
        assert passes == 16

    def test_conflict_degree_matches_access(self):
        sm = SharedMemory()
        addrs = [i * 8 for i in range(16)]
        assert sm.conflict_degree(addrs) == 2

    def test_accounting_accumulates(self):
        sm = SharedMemory()
        sm.access([0] * 16)
        sm.access([i * 64 for i in range(16)])
        assert sm.access_count == 2
        assert sm.access_passes == 17
