"""Dictionary shards, ownership, and the combine step."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dictionary.dictionary import SHARD_ID_SPACE_BITS, Dictionary, DictionaryShard
from repro.dictionary.trie import TrieTable

terms = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789é"),
    min_size=1,
    max_size=10,
)


class TestShard:
    def test_add_and_lookup(self):
        d = Dictionary()
        tid, created = d.add_term("application")
        assert created
        assert d.lookup("application") == tid
        assert d.lookup("nothere") is None

    def test_duplicate_same_id(self):
        d = Dictionary()
        t1, _ = d.add_term("parallel")
        t2, created = d.add_term("parallel")
        assert t1 == t2 and not created

    def test_terms_reconstructed_with_prefix(self):
        d = Dictionary()
        for term in ["application", "apple", "zoo", "01", "-80"]:
            d.add_term(term)
        assert sorted(t for t, _ in d.terms()) == sorted(
            ["application", "apple", "zoo", "01", "-80"]
        )

    def test_ownership_enforced(self):
        trie = TrieTable()
        cidx = trie.trie_index("application")
        shard = DictionaryShard(trie, shard_id=1, owned_collections={cidx})
        shard.add_term("application")
        with pytest.raises(PermissionError):
            shard.add_term("zebra")  # different collection

    def test_shard_id_spaces_disjoint(self):
        trie = TrieTable()
        s0 = DictionaryShard(trie, shard_id=0)
        s1 = DictionaryShard(trie, shard_id=1)
        id0, _ = s0.add_term("aaaa")
        id1, _ = s1.add_term("bbbb")
        assert id0 >> SHARD_ID_SPACE_BITS == 0
        assert id1 >> SHARD_ID_SPACE_BITS == 1

    def test_term_count_and_len(self):
        d = Dictionary()
        for t in ["one", "two", "three", "two"]:
            d.add_term(t)
        assert len(d) == d.term_count() == 3

    def test_string_bytes_counts_heaps(self):
        d = Dictionary()
        d.add_term("application")  # suffix "lication" + length byte
        assert d.string_bytes() == 9

    def test_stats_aggregation(self):
        d = Dictionary()
        d.add_term("aaaa")
        d.add_term("aaab")
        stats = d.stats()
        assert stats.inserts == 2


class TestCombine:
    def _two_shards(self):
        trie = TrieTable()
        s0 = DictionaryShard(trie, shard_id=0)
        s1 = DictionaryShard(trie, shard_id=1)
        s0.add_term("application")
        s0.add_term("apple")
        s1.add_term("zebra")
        return trie, s0, s1

    def test_combine_unions_terms(self):
        _, s0, s1 = self._two_shards()
        combined = Dictionary.combine([s0, s1])
        assert combined.term_count() == 3
        assert combined.lookup("zebra") is not None
        assert combined.lookup("apple") is not None

    def test_combine_preserves_term_ids(self):
        _, s0, s1 = self._two_shards()
        tid = s1.lookup("zebra")
        combined = Dictionary.combine([s0, s1])
        assert combined.lookup("zebra") == tid

    def test_combine_rejects_overlap(self):
        trie = TrieTable()
        s0 = DictionaryShard(trie, shard_id=0)
        s1 = DictionaryShard(trie, shard_id=1)
        s0.add_term("zebra")
        s1.add_term("zebu")  # same 'zeb' collection
        with pytest.raises(ValueError):
            Dictionary.combine([s0, s1])

    def test_combine_rejects_mixed_heights(self):
        s0 = DictionaryShard(TrieTable(height=3), shard_id=0)
        s1 = DictionaryShard(TrieTable(height=2), shard_id=1)
        with pytest.raises(ValueError):
            Dictionary.combine([s0, s1])

    def test_combine_empty(self):
        assert Dictionary.combine([]).term_count() == 0


class TestProperty:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(terms, max_size=200))
    def test_dictionary_is_a_set_with_ids(self, words):
        d = Dictionary()
        model: dict[str, int] = {}
        for w in words:
            tid, created = d.add_term(w)
            if w in model:
                assert not created and tid == model[w]
            else:
                assert created
                model[w] = tid
        assert dict(d.terms()) == model
        d.check_invariants()
