#!/usr/bin/env python
"""Quickstart: build inverted files and query them.

Generates a small synthetic web-crawl collection, runs the full
heterogeneous indexing engine (6 parsers, 2 CPU indexers, 2 simulated
GPUs — the paper's best configuration), and queries the result.

Run:  python examples/quickstart.py [workdir]
"""

from __future__ import annotations

import os
import sys

from repro import IndexingEngine, PlatformConfig, PostingsReader, clueweb09_mini


def main(workdir: str = "./quickstart_data") -> None:
    # 1. A miniature ClueWeb09-profile collection: gzip-packed HTML files
    #    ending with a Wikipedia.org-like segment, exactly like the paper's
    #    evaluation corpus (scaled down ~6 orders of magnitude).
    collection = clueweb09_mini(workdir, scale=0.4)
    print(
        f"collection: {collection.num_files} files, {collection.num_docs} docs, "
        f"{collection.compressed_bytes / 1024:.0f} KB compressed"
    )

    # 2. Build. The engine samples the collection, binds popular trie
    #    collections to CPU indexers and the long tail to the GPU
    #    simulator, parses/regroups/indexes file by file, and writes one
    #    postings run per file plus the front-coded dictionary.
    engine = IndexingEngine(
        PlatformConfig(
            num_parsers=6,
            num_cpu_indexers=2,
            num_gpus=2,
            sample_fraction=0.05,
        )
    )
    out_dir = os.path.join(workdir, "index")
    result = engine.build(collection, out_dir)
    print(
        f"indexed {result.token_count:,} tokens / {result.term_count:,} terms "
        f"in {result.wall_seconds:.1f}s wall"
    )
    print(
        f"simulated on the paper's hardware: {result.report.total_s:.2f}s "
        f"→ {result.report.throughput_mbps:.1f} MB/s"
    )

    # 3. Query. The reader resolves term strings through the dictionary
    #    and splices partial postings lists across runs.
    reader = PostingsReader(out_dir)
    vocab = reader.vocabulary()
    term = max(vocab, key=lambda t: len(reader.postings(t)))
    postings = reader.postings(term)
    print(f"most frequent term {term!r}: df={len(postings)}, first 5 postings:")
    for doc_id, tf in postings[:5]:
        print(f"  doc {doc_id}: tf={tf}")

    # Range-narrowed retrieval only touches overlapping run files.
    lo, hi = 0, result.document_count // 3
    fetches_before = reader.partial_fetches
    narrowed = reader.postings_in_range(term, lo, hi)
    print(
        f"docs {lo}..{hi}: {len(narrowed)} postings via "
        f"{reader.partial_fetches - fetches_before} partial-list fetches "
        f"(of {reader.run_count()} runs)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "./quickstart_data")
