#!/usr/bin/env python
"""A tour of the SIMT GPU simulator (the paper's Tesla C1060 substitute).

Demonstrates the warp-level B-tree machinery of Section III.D.2 directly:
the Fig 7 parallel comparison + reduction, coalesced-access accounting,
shared-memory bank conflicts, and the dynamic round-robin kernel
scheduler with its 480-block optimum.

Run:  python examples/gpu_simulation.py
"""

from __future__ import annotations

from repro.gpusim import (
    Device,
    KernelLaunch,
    SharedMemory,
    TESLA_C1060,
    WarpExecutor,
    WorkItem,
    coalesced_transactions,
    warp_find_slot,
)
from repro.util.rng import make_rng


def demo_warp_search() -> None:
    print("== Fig 7: warp-parallel B-tree node search ==")
    keys = sorted(
        b"lication coding dexing rsing allel buted rallel zzle".split()
    )[:7]
    print(f"node keys ({len(keys)}): {[k.decode() for k in keys]}")
    for query in [b"allel", b"dexing", b"aaa", b"zzzz"]:
        slot, found = warp_find_slot(query, keys)
        # 31 comparisons in one SIMD step, then a log2(32)=5-step reduction.
        print(f"  query {query.decode():8s} -> slot {slot}, found={found}")


def demo_memory_rules() -> None:
    print("\n== coalescing and bank conflicts ==")
    print(f"aligned 512B node load: {coalesced_transactions(0, 512)} transactions "
          f"(16-word lines)")
    print(f"misaligned by 4 bytes:  {coalesced_transactions(4, 512)} transactions")
    sm = SharedMemory()
    seq = sm.access([i * 4 for i in range(16)])
    strided = sm.access([i * 64 for i in range(16)])
    broadcast = sm.access([128] * 16)
    print(f"shared memory passes — sequential: {seq}, 16-way conflict: {strided}, "
          f"broadcast: {broadcast}")


def demo_warp_costs() -> None:
    print("\n== warp cycle accounting for one B-tree insert ==")
    warp = WarpExecutor()
    for _ in range(3):  # three-node root-to-leaf descent
        warp.load_node()
        warp.parallel_compare()
        warp.reduce()
    warp.shift(0)
    warp.writeback_node()
    c = warp.counters
    print(f"compute cycles: {c.compute_cycles:.0f}, stall: {c.memory_stall_cycles:.0f}, "
          f"bus: {c.bus_cycles:.0f}")
    print(f"un-hidden total: {c.total_cycles:.0f} cycles "
          f"({TESLA_C1060.seconds(c.total_cycles) * 1e6:.2f} µs serial)")


def demo_kernel_scheduling() -> None:
    print("\n== dynamic scheduling + the 480-block optimum ==")
    rng = make_rng(3)
    # Zipf-skewed trie-collection work, like a real 1GB run.
    weights = 1.0 / (1.0 + rng.permutation(17_000).astype(float)) ** 0.9
    weights /= weights.sum()
    items = [
        WorkItem(key=i, compute_cycles=0.1 * w * 4.5e9,
                 memory_stall_cycles=0.9 * w * 4.5e9)
        for i, w in enumerate(weights)
    ]
    for nb in [30, 120, 240, 480, 960, 3840]:
        r = KernelLaunch(num_blocks=nb).run(items)
        marker = "  <- paper's choice" if nb == 480 else ""
        print(f"  {nb:5d} blocks: {r.elapsed_seconds * 1e3:7.1f} ms "
              f"(resident/SM={r.resident_blocks_per_sm}, "
              f"imbalance={r.load_imbalance:.2f}){marker}")
    # Static assignment is a gamble: fine when heavy collections happen
    # to scatter, terrible when they recur at the block-count period.
    # Dynamic scheduling is distribution-proof — compare both on a
    # workload where every 480th collection is heavy.
    adversarial = [
        WorkItem(key=i, compute_cycles=1e4,
                 memory_stall_cycles=6e6 if i % 480 == 0 else 2e4)
        for i in range(17_000)
    ]
    dyn = KernelLaunch(num_blocks=480, schedule="dynamic").run(adversarial)
    stat = KernelLaunch(num_blocks=480, schedule="static").run(adversarial)
    print(f"  periodic-skew workload: dynamic {dyn.elapsed_seconds * 1e3:.1f} ms vs "
          f"static {stat.elapsed_seconds * 1e3:.1f} ms "
          f"(imbalance {dyn.load_imbalance:.2f} vs {stat.load_imbalance:.2f})")


def demo_device() -> None:
    print("\n== device transfers (pre/post-processing) ==")
    dev = Device()
    h2d = dev.transfer_to_device(100 * 1024 * 1024)
    d2h = dev.transfer_from_device(40 * 1024 * 1024)
    print(f"100MB parsed stream to device: {h2d * 1e3:.1f} ms")
    print(f"40MB postings back to host:    {d2h * 1e3:.1f} ms")
    print(f"device memory in use: {dev.allocated_bytes / 1024**2:.0f} MB "
          f"of {dev.spec.device_memory_bytes / 1024**3:.0f} GB")


if __name__ == "__main__":
    demo_warp_search()
    demo_memory_rules()
    demo_warp_costs()
    demo_kernel_scheduling()
    demo_device()
