#!/usr/bin/env python
"""A search engine on top of the inverted files.

Builds a *positional* index (the Ivory-style extension of §IV.D) over a
synthetic news-crawl collection and serves Boolean, TF-IDF-ranked, and
phrase queries from the run files — including the paper's range-narrowed
retrieval ("faster search when narrowed down to a range of document
IDs") and document display through the persisted doc table.

Run:  python examples/search_engine.py [workdir]
"""

from __future__ import annotations

import os
import sys

from repro import DocTable, IndexingEngine, PlatformConfig, SearchEngine, congress_mini
from repro.corpus.warc import read_packed_file


def main(workdir: str = "./search_data") -> None:
    collection = congress_mini(workdir, scale=0.4)
    out_dir = os.path.join(workdir, "index")
    result = IndexingEngine(
        PlatformConfig(sample_fraction=0.05, positional=True)
    ).build(collection, out_dir)
    print(f"indexed {result.document_count} documents, {result.term_count:,} terms "
          f"(positional)\n")

    engine = SearchEngine(out_dir, num_docs=result.document_count)
    doc_table = DocTable.load(out_dir)

    # Pick real mid-frequency content terms (boilerplate is in every
    # document and has no idf; numbers are noise).
    vocab = engine.reader.vocabulary()
    n = result.document_count
    samples = [
        t
        for t in sorted(vocab, key=lambda t: -engine.reader.document_frequency(t))
        if t.isalpha()
        and len(t) >= 5
        and n // 20 < engine.reader.document_frequency(t) < n // 2
    ][:3]
    query = " ".join(samples)
    print(f"query: {query!r}")

    hits = engine.boolean_and(query)
    print(f"boolean AND: {len(hits)} documents {hits[:10]}")
    print(f"boolean OR:  {len(engine.boolean_or(query))} documents")

    print("TF-IDF top 5:")
    for hit in engine.ranked(query, k=5):
        row = doc_table.lookup(hit.doc_id)
        print(f"  doc {hit.doc_id:5d}  score {hit.score:.3f}  {row.uri}")

    # Phrase search over a real surface 2-gram from a document.  Query
    # words must be *surface* forms — the engine normalizes them exactly
    # like the indexing pipeline, and stemming is not idempotent, so
    # feeding already-stemmed terms back in would double-stem.
    import re

    from repro.parsing.tokenizer import strip_markup
    from repro.search.query import normalize_query

    first_doc = read_packed_file(collection.files[0])[0]
    surface = re.findall(r"[^\W_]+", strip_markup(first_doc.text).lower())
    phrase = next(
        f"{a} {b}"
        for a, b in zip(surface, surface[1:])
        if len(normalize_query(f"{a} {b}")) == 2  # both survive stop filtering
    )
    print(f"\nphrase query {phrase!r}:")
    docs = engine.phrase(phrase)
    freq = engine.phrase_frequency(phrase)
    print(f"  {len(docs)} documents; occurrence counts: "
          f"{dict(list(freq.items())[:5])}")

    # Range narrowing fetches only overlapping run files.
    lo, hi = 0, result.document_count // 2
    fetches_before = engine.reader.partial_fetches
    top = engine.ranked_in_range(query, lo, hi, k=3)
    print(f"\nrestricted to docs {lo}..{hi}: top={[(h.doc_id, round(h.score, 2)) for h in top]} "
          f"({engine.reader.partial_fetches - fetches_before} partial fetches, "
          f"{engine.reader.run_count()} runs total)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "./search_data")
