#!/usr/bin/env python
"""Index *your own* documents — the downstream-adopter path.

Creates a handful of text files (stand-ins for your data), ingests them
into the engine's container format, builds a positional index, and runs
Boolean/BM25/phrase queries — the complete ingest → build → search loop
a user of the library actually needs.

Equivalent CLI:

    python -m repro ingest ./my_docs ./corpora
    python -m repro build ./corpora/ingested ./index --positional
    python -m repro query ./index heterogeneous platforms --mode phrase

Run:  python examples/custom_corpus.py [workdir]
"""

from __future__ import annotations

import os
import sys

from repro import DocTable, IndexingEngine, PlatformConfig, SearchEngine
from repro.corpus.ingest import ingest_directory

DOCUMENTS = {
    "intro.txt": (
        "Inverted files map every term to the documents containing it. "
        "Search engines build them from web-scale crawls."
    ),
    "pipeline.txt": (
        "A pipelined indexer runs parsers and indexers concurrently so "
        "parsed streams are consumed as fast as they are produced."
    ),
    "hardware.txt": (
        "Heterogeneous platforms pair multicore processors with GPUs. "
        "On heterogeneous platforms the dictionary must support many "
        "concurrent writers."
    ),
    "notes/review.txt": (
        "The reviewers asked how the trie and btree dictionary scales on "
        "heterogeneous platforms with thousands of threads."
    ),
}


def main(workdir: str = "./custom_corpus_data") -> None:
    # 1. Write some "user documents" to disk.
    src = os.path.join(workdir, "my_docs")
    for relpath, text in DOCUMENTS.items():
        path = os.path.join(src, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)

    # 2. Ingest: pack them into gzip containers + manifest.
    collection = ingest_directory(src, os.path.join(workdir, "corpora"))
    print(f"ingested {collection.num_docs} documents "
          f"({collection.uncompressed_bytes} bytes)")

    # 3. Build a positional index.
    index_dir = os.path.join(workdir, "index")
    result = IndexingEngine(
        PlatformConfig(num_parsers=2, num_cpu_indexers=1, num_gpus=1,
                       sample_fraction=1.0, strip_html=False, positional=True)
    ).build(collection, index_dir)
    print(f"indexed {result.term_count} terms from {result.token_count} tokens\n")

    # 4. Search.
    engine = SearchEngine(index_dir, num_docs=result.document_count)
    table = DocTable.load(index_dir)

    def show(label: str, doc_ids: list[int]) -> None:
        names = [table.lookup(d).uri for d in doc_ids]
        print(f"{label}: {names}")

    show('AND "heterogeneous platforms"', engine.boolean_and("heterogeneous platforms"))
    show('phrase "heterogeneous platforms"', engine.phrase("heterogeneous platforms"))
    show('phrase "platforms heterogeneous"', engine.phrase("platforms heterogeneous"))

    print("BM25 for 'dictionary threads':")
    for hit in engine.ranked_bm25("dictionary threads", k=3):
        print(f"  {table.lookup(hit.doc_id).uri}  score={hit.score:.3f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "./custom_corpus_data")
