#!/usr/bin/env python
"""Reproduce the paper's headline numbers at full ClueWeb09 scale.

Runs the calibrated discrete-event pipeline over the 1,492-file,
1.4TB-equivalent workload model and prints the Table IV configurations,
the Fig 10 parser sweep, the Table VI dataset summary, and the Fig 12
cluster comparison — in seconds of your time rather than hours of a
2009 testbed's.

Run:  python examples/paper_scale_simulation.py
"""

from __future__ import annotations

from repro import PlatformConfig, WorkloadModel, simulate_full_build, simulate_pipeline
from repro.analysis.figures import fig12_comparison
from repro.util.fmt import render_table


def main() -> None:
    works = WorkloadModel.paper_scale("clueweb09").files()
    print(f"workload: {len(works)} files, "
          f"{sum(w.tokens for w in works) / 1e9:.2f}G tokens, "
          f"{sum(w.uncompressed_bytes for w in works) / 1024**4:.2f} TiB\n")

    print("Table IV — indexer configurations (ours vs paper):")
    configs = [
        ("6P + 2 GPU", PlatformConfig(num_cpu_indexers=0, num_gpus=2), 75.41),
        ("6P + 1 CPU", PlatformConfig(num_cpu_indexers=1, num_gpus=0), 129.53),
        ("6P + 2 CPU", PlatformConfig(num_cpu_indexers=2, num_gpus=0), 229.08),
        ("6P + 2 CPU + 2 GPU", PlatformConfig(), 315.46),
    ]
    rows = []
    for name, cfg, paper in configs:
        r = simulate_pipeline(works, cfg)
        rows.append([name, f"{r.indexing_total_s:.0f}",
                     f"{r.indexing_throughput_mbps:.2f}", f"{paper:.2f}"])
    print(render_table(
        ["Configuration", "Indexing s", "MB/s (ours)", "MB/s (paper)"], rows))

    print("\nFig 10 — throughput vs number of parsers:")
    rows = []
    for m in range(1, 8):
        r1 = simulate_pipeline(
            works, PlatformConfig(num_parsers=m, num_cpu_indexers=8 - m, num_gpus=0))
        r2 = simulate_pipeline(
            works, PlatformConfig(num_parsers=m, num_cpu_indexers=min(8 - m, 2),
                                  num_gpus=2))
        rows.append([m, f"{r1.overall_throughput_mbps:.1f}",
                     f"{r2.overall_throughput_mbps:.1f}"])
    print(render_table(["Parsers", "no GPU (MB/s)", "with 2 GPUs (MB/s)"], rows))

    print("\nTable VI — the three collections end to end:")
    rows = []
    for label, ds, cfg, paper in [
        ("ClueWeb09", "clueweb09", PlatformConfig(), 262.76),
        ("ClueWeb09 w/o GPUs", "clueweb09", PlatformConfig(num_gpus=0), 204.32),
        ("Wikipedia 01-07", "wikipedia", PlatformConfig(), 78.29),
        ("Library of Congress", "congress", PlatformConfig(), 208.06),
    ]:
        b = simulate_full_build(WorkloadModel.paper_scale(ds).files(), cfg)
        rows.append([label, f"{b.total_s:.0f}", f"{b.throughput_mbps:.2f}",
                     f"{paper:.2f}"])
    print(render_table(["Dataset", "Total s", "MB/s (ours)", "MB/s (paper)"], rows))

    print("\nFig 12 — against the fastest published MapReduce indexers:")
    rows = [
        [b.system, b.dataset, f"{b.nodes}x{b.cores // max(1, b.nodes)}",
         f"{b.throughput_mbps:.1f}", f"{b.mbps_per_core:.2f}"]
        for b in fig12_comparison()
    ]
    print(render_table(["System", "Dataset", "Nodes x cores", "MB/s", "MB/s/core"],
                       rows))


if __name__ == "__main__":
    main()
