#!/usr/bin/env python
"""Our engine against the Section II baselines on identical input.

Builds the same collection with the heterogeneous engine and with five
classical strategies — Ivory MapReduce, single-pass MapReduce, Moffat-Bell
sort-based, Heinz-Zobel SPIMI, Ribeiro-Neto Remote-Lists — checks all six
indexes are *identical*,
and compares their work profiles (the structural reason the paper's
single-pass pipelined design wins).

Run:  python examples/baseline_comparison.py [workdir]
"""

from __future__ import annotations

import os
import sys
import time

from repro import IndexingEngine, PlatformConfig, PostingsReader, wikipedia_mini
from repro.baselines import (
    IvoryIndexer,
    RemoteListsIndexer,
    SinglePassMRIndexer,
    SortBasedIndexer,
    SPIMIIndexer,
)


def main(workdir: str = "./baseline_data") -> None:
    collection = wikipedia_mini(workdir, scale=0.4)
    print(f"collection: {collection.num_files} files, {collection.num_docs} docs")

    # --- the heterogeneous engine ------------------------------------- #
    out_dir = os.path.join(workdir, "index")
    t0 = time.perf_counter()
    result = IndexingEngine(
        PlatformConfig(sample_fraction=0.05, strip_html=False)
    ).build(collection, out_dir)
    engine_wall = time.perf_counter() - t0
    reader = PostingsReader(out_dir)
    ours = {t: reader.postings(t) for t in reader.vocabulary()}
    print(f"engine: {len(ours):,} terms in {engine_wall:.2f}s wall")

    # --- the baselines -------------------------------------------------- #
    baselines = {
        "Ivory MapReduce": IvoryIndexer(num_reducers=4),
        "Single-pass MapReduce": SinglePassMRIndexer(num_reducers=4),
        "Sort-based (Moffat-Bell)": SortBasedIndexer(memory_limit_bytes=1 << 18),
        "SPIMI (Heinz-Zobel)": SPIMIIndexer(memory_limit_bytes=1 << 18),
        "Remote-Lists (Ribeiro-Neto)": RemoteListsIndexer(num_processors=4),
    }
    for name, indexer in baselines.items():
        t0 = time.perf_counter()
        index = indexer.build(collection, strip_html=False)
        wall = time.perf_counter() - t0
        identical = index == ours
        print(f"{name}: {len(index):,} terms in {wall:.2f}s wall "
              f"— identical to engine: {identical}")
        assert identical, f"{name} produced a different index!"

    # --- work profiles --------------------------------------------------- #
    print("\nwork profiles (why architectures differ):")
    ivory = baselines["Ivory MapReduce"].stats
    spmr = baselines["Single-pass MapReduce"].stats
    sort = baselines["Sort-based (Moffat-Bell)"].stats
    spimi = baselines["SPIMI (Heinz-Zobel)"].stats
    remote = baselines["Remote-Lists (Ribeiro-Neto)"].stats
    print(f"  Ivory shuffle:        {ivory.map_output_pairs:,} pairs, "
          f"{ivory.shuffle_bytes / 1024:.0f} KB over the wire")
    print(f"  SP-MR shuffle:        {spmr.map_output_pairs:,} pairs, "
          f"{spmr.shuffle_bytes / 1024:.0f} KB "
          f"({ivory.map_output_pairs / spmr.map_output_pairs:.1f}x fewer emits)")
    print(f"  sort-based:           {sort.runs} runs, "
          f"{sort.sort_comparisons:,} sort comparisons")
    print(f"  SPIMI:                {spimi.blocks} blocks, front-coded dict "
          f"{spimi.dict_bytes_front_coded / max(1, spimi.dict_bytes_raw):.0%} of raw")
    print(f"  Remote-Lists:         {remote.tuples_sent:,} tuples over the wire "
          f"({remote.tuple_bytes / 1024:.0f} KB), "
          f"{remote.sorted_insert_comparisons:,} sorted-insert comparisons")
    split = result.split
    print(f"  our engine:           zero sorts/shuffles; postings append-only; "
          f"CPU/GPU token split {split.cpu_tokens:,}/{split.gpu_tokens:,}")
    print(f"  simulated on the paper's node: {result.report.throughput_mbps:.1f} MB/s")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "./baseline_data")
