# Canonical workflows for the reproduction.

.PHONY: install test test-fast test-pipelined test-mp chaos chaos-mp chaos-mp-san lint bench bench-pytest bench-gate report examples trace-demo pipeline-demo profile-demo critpath-demo clean

install:
	python setup.py develop

test:
	pytest tests/ 2>&1 | tee test_output.txt

test-fast:
	pytest tests/ -m "not slow"

# The full suite again, with pipelined execution forced on for every
# build the tests run (docs/ARCHITECTURE.md, "Pipeline execution").
test-pipelined:
	REPRO_PIPELINE_DEPTH=3 pytest tests/

# The full suite once more with every engine build routed through the
# supervised worker-process backend (docs/ROBUSTNESS.md, "Process
# supervision") — the whole tier-1 suite doubles as a byte-identity
# check for the shared-memory execution path.
test-mp:
	REPRO_EXEC_BACKEND=multiprocess pytest tests/

chaos:
	pytest tests/ -m chaos -v

# Process-level chaos: SIGKILLed workers, heartbeat stalls, poison
# sub-batches, shm-leak checks against the multiprocess backend.
chaos-mp:
	pytest tests/test_chaos_mp.py tests/test_supervise.py tests/test_shm_ring.py -v

# The same process-level chaos suite with the ring sanitizer armed:
# every shm frame stamped with (sequence, crc32) and verified on
# receipt (docs/STATIC_ANALYSIS.md, "The ring sanitizer").  Builds must
# stay byte-identical; shm_san.* counters land in run.metrics.json.
chaos-mp-san:
	REPRO_SANITIZE=ring pytest tests/test_chaos_mp.py tests/test_supervise.py tests/test_shm_ring.py -v

# Paper-invariant lint pack + race analyzer + interprocedural layer +
# typing gate + protocol model checker (docs/STATIC_ANALYSIS.md).
# mypy runs when installed (dev extra).  The second pass holds
# benchmarks/ to the RPR008 clock fence: bench timing flows through
# the `repro bench` harness / util/timing.py.
lint:
	python -m repro lint src --protocol
	python -m repro lint benchmarks --select RPR008

# The declared benchmark suite under the pinned protocol
# (docs/OBSERVABILITY.md, "Benchmark protocol") → BENCH_PR6.json at the
# repo root, one point in the perf trajectory.
bench:
	python -m repro bench

# Noise-aware regression gate + trajectory table; exits 1 on regression.
bench-gate: bench
	python -m repro bench --compare BENCH_BASELINE.json BENCH_PR6.json

# The original pytest-benchmark path (free-text reports per script).
bench-pytest:
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

report:
	python -m repro report --output REPORT.md
	python tools/gen_api_docs.py

# Seeded demo build with telemetry, then the ASCII reports; open
# /tmp/repro_trace_demo/index/trace.json in Perfetto for the timeline
# (docs/OBSERVABILITY.md).
trace-demo:
	rm -rf /tmp/repro_trace_demo
	python -m repro generate congress /tmp/repro_trace_demo --seed 7
	python -m repro build /tmp/repro_trace_demo/congress_mini \
		/tmp/repro_trace_demo/index --parsers 2 --cpu-indexers 1 --gpus 1
	python -m repro trace /tmp/repro_trace_demo/index
	python -m repro stats /tmp/repro_trace_demo/index
	python -m repro verify /tmp/repro_trace_demo/index

# Same demo corpus built pipelined: the exported trace shows parser-w*
# and indexer lanes overlapping instead of serialized on one thread.
# Open /tmp/repro_pipeline_demo/index/trace.json in Perfetto.
pipeline-demo:
	rm -rf /tmp/repro_pipeline_demo
	python -m repro generate congress /tmp/repro_pipeline_demo --seed 7
	python -m repro build /tmp/repro_pipeline_demo/congress_mini \
		/tmp/repro_pipeline_demo/index --parsers 2 --cpu-indexers 2 --gpus 1 \
		--pipeline-depth 4 --files-per-run 6
	python -m repro trace /tmp/repro_pipeline_demo/index
	python -m repro stats /tmp/repro_pipeline_demo/index
	python -m repro verify /tmp/repro_pipeline_demo/index

# Cross-process profiling end to end: a multiprocess build with the
# sampling profiler on, the merged run.profile.json rendered (top
# functions + shm codec hot path), and flamegraph/speedscope exports.
# Open /tmp/repro_profile_demo/profile.speedscope.json at
# https://www.speedscope.app (docs/OBSERVABILITY.md, "Profiling").
profile-demo:
	rm -rf /tmp/repro_profile_demo
	python -m repro generate congress /tmp/repro_profile_demo --seed 7
	python -m repro build /tmp/repro_profile_demo/congress_mini \
		/tmp/repro_profile_demo/index --parsers 2 --cpu-indexers 2 --gpus 1 \
		--exec multiprocess --profile --profile-interval 0.005
	python -m repro profile /tmp/repro_profile_demo/index \
		--folded /tmp/repro_profile_demo/stacks.folded \
		--speedscope /tmp/repro_profile_demo/profile.speedscope.json
	python -m repro verify /tmp/repro_profile_demo/index

# Critical-path analysis end to end: a multiprocess demo build, the
# blame table + what-if projections rendered, run.critpath.json
# schema-gated, and the Perfetto overlay with the highlighted
# critical-path lane (docs/OBSERVABILITY.md, "Critical-path analysis").
critpath-demo:
	rm -rf /tmp/repro_critpath_demo
	python -m repro generate congress /tmp/repro_critpath_demo --seed 7
	python -m repro build /tmp/repro_critpath_demo/congress_mini \
		/tmp/repro_critpath_demo/index --parsers 2 --cpu-indexers 2 --gpus 1 \
		--exec multiprocess
	python -m repro critpath /tmp/repro_critpath_demo/index \
		--what-if ring-wait=0 \
		--chrome /tmp/repro_critpath_demo/critpath.trace.json
	python -c "from repro.obs.critpath_schema import load_critpath; \
		load_critpath('/tmp/repro_critpath_demo/index/run.critpath.json')"

examples:
	python examples/quickstart.py /tmp/repro_example_qs
	python examples/gpu_simulation.py
	python examples/paper_scale_simulation.py
	python examples/search_engine.py /tmp/repro_example_se
	python examples/baseline_comparison.py /tmp/repro_example_bc

clean:
	rm -rf .bench_data benchmarks/reports .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
