"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's workflow:

- ``generate`` — materialize a synthetic mini collection (ClueWeb /
  Wikipedia / Congress profile);
- ``stats`` — a collection directory prints its Table III row; an index
  directory (or ``run.metrics.json``) prints the build's telemetry
  summary; ``--diff A B`` prints per-stage timing and counter deltas
  between two builds (``--fail-on-regress PCT`` turns the diff into a
  gate);
- ``build`` — run the heterogeneous engine over a collection directory
  (``--resume`` continues an interrupted build, ``--on-error`` picks the
  skip / quarantine policy for corrupt containers, ``--no-telemetry``
  skips the ``run.metrics.json`` / ``trace.json`` artifacts);
- ``trace`` — stage-utilization report for a build's Chrome trace
  (open the same file in Perfetto / chrome://tracing for the timeline);
- ``verify`` — check an index directory's checksums and cross-file
  invariants (including telemetry artifact schemas); exits non-zero on
  the first inconsistency;
- ``query`` — Boolean / ranked / phrase retrieval over an index;
- ``merge`` — consolidate a multi-run index into one monolithic run;
- ``report`` — regenerate the full reproduction report (scorecard +
  every simulated table/figure) as Markdown;
- ``simulate`` — the paper-scale pipeline simulation (Tables IV/VI
  numbers without touching a terabyte);
- ``lint`` — the paper-invariant static-analysis pack
  (docs/STATIC_ANALYSIS.md): AST rules, race analyzer, typing gate;
- ``bench`` — run the declared benchmark suite under the pinned
  protocol (docs/OBSERVABILITY.md, "Benchmark protocol") and write
  ``BENCH_PR6.json``; ``--compare OLD NEW`` is the noise-aware
  regression gate plus the perf-trajectory table; ``--profile``
  additionally samples each scenario so the gate can localize a
  regression to a function;
- ``profile`` — report on a ``run.profile.json`` written by ``build
  --profile`` (top-N self/cumulative table + the shm codec hot-path
  section); ``--diff A B`` ranks regressed/improved functions between
  two profiles, ``--folded`` / ``--speedscope`` export flamegraph
  formats.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_arg_parser"]


def build_arg_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Inverted-file construction on heterogeneous platforms "
            "(Wei & JaJa, IPDPS 2011) — reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic mini collection")
    gen.add_argument("preset", choices=["clueweb09", "wikipedia", "congress"])
    gen.add_argument("root", help="directory to create the collection under")
    gen.add_argument("--scale", type=float, default=1.0, help="size multiplier")
    gen.add_argument("--seed", type=int, default=None)

    ingest = sub.add_parser("ingest", help="pack your own documents into a collection")
    ingest.add_argument("source", help="directory of text/HTML files, or a .jsonl file")
    ingest.add_argument("output", help="directory to create the collection under")
    ingest.add_argument("--name", default="ingested")
    ingest.add_argument("--docs-per-file", type=int, default=256)
    ingest.add_argument("--text-field", default="text", help="JSONL body field")
    ingest.add_argument("--on-error", choices=["strict", "skip"], default="strict",
                        help="skip: drop undecodable documents instead of aborting")

    stats = sub.add_parser(
        "stats",
        help="Table III stats of a collection, or a build's telemetry summary",
    )
    stats.add_argument(
        "target", nargs="?", default=None,
        help="collection directory (manifest.tsv) for Table III, or an "
             "index directory / run.metrics.json for the build's metrics",
    )
    stats.add_argument("--no-html", action="store_true", help="collection is pure text")
    stats.add_argument(
        "--diff", nargs=2, metavar=("BEFORE", "AFTER"), default=None,
        help="diff two run.metrics.json files (or index directories): "
             "per-stage timings and changed counters",
    )
    stats.add_argument(
        "--fail-on-regress", type=float, default=None, metavar="PCT",
        help="with --diff: exit 1 when a stage timing or pipeline.* "
             "stall counter worsens by more than PCT percent (same "
             "noise-aware gate as `repro bench --compare`)",
    )

    build = sub.add_parser("build", help="build inverted files")
    build.add_argument("collection", help="collection directory")
    build.add_argument("output", help="index output directory")
    build.add_argument("--parsers", type=int, default=6)
    build.add_argument("--cpu-indexers", type=int, default=2)
    build.add_argument("--gpus", type=int, default=2)
    build.add_argument("--codec", default="varbyte")
    build.add_argument("--positional", action="store_true",
                       help="store token positions (enables phrase queries)")
    build.add_argument("--sample-fraction", type=float, default=0.01)
    build.add_argument("--no-html", action="store_true")
    build.add_argument("--resume", action="store_true",
                       help="continue an interrupted build from its last "
                            "durable run (checkpoint.bin + build.manifest)")
    build.add_argument("--on-error", choices=["strict", "skip", "quarantine"],
                       default="strict",
                       help="policy for permanently unreadable container files")
    build.add_argument("--quarantine-dir", default=None,
                       help="where quarantined containers go (default: "
                            "quarantine/ inside the collection)")
    build.add_argument("--no-telemetry", action="store_true",
                       help="disable span tracing + metrics (no "
                            "run.metrics.json / trace.json artifacts)")
    build.add_argument("--profile", action="store_true",
                       help="sample the engine and every worker process "
                            "with the deterministic-interval stack "
                            "profiler and write the merged "
                            "run.profile.json (repro profile)")
    build.add_argument("--profile-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="sampler tick for --profile (default 0.01)")
    build.add_argument("--pipeline-depth", type=int, default=None,
                       help="run parse and indexing concurrently with up to "
                            "N parsed files in flight to per-indexer worker "
                            "threads; output stays byte-identical to serial "
                            "(default: REPRO_PIPELINE_DEPTH env or 0)")
    build.add_argument("--serial", action="store_true",
                       help="force the classic inline engine loop, "
                            "overriding --pipeline-depth and "
                            "REPRO_PIPELINE_DEPTH")
    build.add_argument("--exec", dest="exec_backend",
                       choices=["auto", "serial", "threaded", "multiprocess"],
                       default=None,
                       help="execution backend: serial (inline loop), "
                            "threaded (worker threads), multiprocess "
                            "(parser/indexer worker processes over "
                            "shared-memory rings, supervised with "
                            "restart/degrade recovery); output is "
                            "byte-identical across all three (default: "
                            "REPRO_EXEC_BACKEND env or auto)")
    build.add_argument("--files-per-run", type=int, default=None,
                       help="container files per output run (run boundaries "
                            "quiesce the pipeline, so larger runs overlap "
                            "more; default: 1)")

    trace = sub.add_parser(
        "trace", help="ASCII stage-utilization report from a build's trace"
    )
    trace.add_argument(
        "trace", help="index directory (containing trace.json) or a trace file"
    )
    trace.add_argument("--root", default="build",
                       help="root span name coverage is computed against")

    verify = sub.add_parser(
        "verify", help="check an index's checksums and cross-file invariants"
    )
    verify.add_argument("index", help="index directory")
    verify.add_argument("--keep-going", action="store_true",
                        help="report every inconsistency instead of "
                             "stopping at the first")
    verify.add_argument("--check-shm", action="store_true",
                        help="also fail on orphaned repro_* shared-memory "
                             "segments left behind by a dead multiprocess "
                             "build")

    query = sub.add_parser("query", help="search an index directory")
    query.add_argument("index", help="index directory")
    query.add_argument("terms", nargs="+", help="query terms")
    query.add_argument("--mode", choices=["and", "or", "ranked", "phrase"],
                       default="ranked")
    query.add_argument("-k", type=int, default=10, help="ranked: top k")

    merge = sub.add_parser("merge", help="merge runs into a monolithic index")
    merge.add_argument("index", help="multi-run index directory")
    merge.add_argument("output", help="merged output directory")

    rep = sub.add_parser(
        "report", help="regenerate the full reproduction report (Markdown)"
    )
    rep.add_argument("--output", default="REPORT.md", help="file to write")

    simulate = sub.add_parser(
        "simulate", help="paper-scale pipeline simulation (no data needed)"
    )
    simulate.add_argument("--dataset", choices=["clueweb09", "wikipedia", "congress"],
                          default="clueweb09")
    simulate.add_argument("--parsers", type=int, default=6)
    simulate.add_argument("--cpu-indexers", type=int, default=2)
    simulate.add_argument("--gpus", type=int, default=2)

    bench = sub.add_parser(
        "bench",
        help="run the declared benchmark suite under the pinned protocol, "
             "or gate one BENCH_*.json against another",
    )
    bench.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="noise-aware regression gate between two BENCH_*.json files "
             "(native or pytest-benchmark format); exits 1 on regression "
             "and prints the perf trajectory over the repo's BENCH_*.json",
    )
    bench.add_argument("--suite-dir", default="benchmarks",
                       help="directory holding the bench_*.py suite")
    bench.add_argument("--out", default=None,
                       help="result file to write (default: BENCH_PR6.json "
                            "in the current directory)")
    bench.add_argument("--data-dir", default=".bench_data",
                       help="cache for generated corpora and builds")
    bench.add_argument("--only", action="append", default=None, metavar="NAME",
                       help="run only this scenario (repeatable)")
    bench.add_argument("--list", action="store_true",
                       help="list registered scenarios and exit")
    bench.add_argument("--repetitions", type=int, default=None,
                       help="timed repetitions per scenario (default 5, min 3)")
    bench.add_argument("--warmup", type=int, default=None,
                       help="discarded warmup calls per scenario (default 1)")
    bench.add_argument("--seed", type=int, default=None,
                       help="protocol seed for corpus generation (default 1234)")
    bench.add_argument("--scale", type=float, default=None,
                       help="mini-corpus scale factor (default 0.25)")
    bench.add_argument("--rel-threshold", type=float, default=None,
                       help="--compare: relative slowdown bar "
                            "(fraction, default 0.10)")
    bench.add_argument("--noise-mult", type=float, default=None,
                       help="--compare: IQR multiplier for the noise floor "
                            "(default 1.5)")
    bench.add_argument("--trajectory-root", default=".",
                       help="--compare: where BENCH_*.json history lives")
    bench.add_argument("--profile", action="store_true",
                       help="sample each scenario's timed repetitions; "
                            "per-scenario self-time tables land in the "
                            "result file and --compare localizes "
                            "regressions to functions")

    profile = sub.add_parser(
        "profile",
        help="report on a run.profile.json written by build --profile",
    )
    profile.add_argument(
        "target", nargs="?", default=None,
        help="index directory (containing run.profile.json) or a profile "
             "file; omit only with --diff",
    )
    profile.add_argument("--top", type=int, default=10,
                         help="rows in the function table (default 10)")
    profile.add_argument("--mode", choices=["self", "cum"], default="self",
                         help="rank by self time (leaf samples) or "
                              "cumulative time (anywhere on the stack)")
    profile.add_argument(
        "--diff", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="rank regressed/improved functions between two profiles "
             "instead of reporting on one",
    )
    profile.add_argument("--folded", default=None, metavar="PATH",
                         help="also write collapsed-stack text "
                              "(flamegraph.pl / speedscope import)")
    profile.add_argument("--speedscope", default=None, metavar="PATH",
                         help="also write speedscope JSON "
                              "(https://speedscope.app)")

    critpath = sub.add_parser(
        "critpath",
        help="critical-path analysis over a build's trace.json: "
             "per-resource blame + what-if speedup projections",
    )
    critpath.add_argument(
        "target", nargs="?", default=None,
        help="index directory (containing trace.json); omit only with --diff",
    )
    critpath.add_argument(
        "--what-if", action="append", default=[], metavar="RESOURCE=SCALE",
        help="add a projection scaling a resource's critical-path edges "
             "(e.g. 'ring-wait=0' or 'parse=0.5'); repeatable",
    )
    critpath.add_argument(
        "--diff", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="compare two run.critpath.json files (or index dirs): "
             "per-resource blame movement instead of one report",
    )
    critpath.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="also write the build's Chrome trace with the critical path "
             "as a highlighted extra lane",
    )
    critpath.add_argument(
        "--no-write", action="store_true",
        help="report only; do not write run.critpath.json into the "
             "index directory",
    )

    lint = sub.add_parser(
        "lint", help="paper-invariant lint pack + race analyzer + typing gate"
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    return parser


# ---------------------------------------------------------------------- #
# Command implementations (imports deferred: keep --help instant)
# ---------------------------------------------------------------------- #


def _cmd_generate(args) -> int:
    from repro.corpus.datasets import clueweb09_mini, congress_mini, wikipedia_mini

    maker = {
        "clueweb09": clueweb09_mini,
        "wikipedia": wikipedia_mini,
        "congress": congress_mini,
    }[args.preset]
    kwargs = {"scale": args.scale}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    coll = maker(args.root, **kwargs)
    print(f"{coll.name}: {coll.num_files} files, {coll.num_docs} docs, "
          f"{coll.compressed_bytes} compressed bytes at {coll.directory}")
    return 0


def _load_collection(path: str):
    import os

    from repro.corpus.collection import Collection

    name = os.path.basename(os.path.normpath(path))
    return Collection.load(name, path)


def _cmd_ingest(args) -> int:
    from repro.corpus.ingest import ingest_directory, ingest_jsonl

    if args.source.endswith(".jsonl"):
        coll = ingest_jsonl(
            args.source, args.output, name=args.name,
            text_field=args.text_field, docs_per_file=args.docs_per_file,
            on_error=args.on_error,
        )
    else:
        coll = ingest_directory(
            args.source, args.output, name=args.name,
            docs_per_file=args.docs_per_file, on_error=args.on_error,
        )
    print(f"{coll.name}: {coll.num_docs} documents in {coll.num_files} container "
          f"files at {coll.directory}")
    if coll.ingest_skipped:
        print(f"skipped {len(coll.ingest_skipped)} undecodable document(s):")
        for reason in coll.ingest_skipped[:20]:
            print(f"  {reason}")
    return 0


def _metrics_path_of(target: str):
    """Resolve a stats/diff target to a ``run.metrics.json`` path, or None.

    A directory holding ``manifest.tsv`` is a *collection* (Table III
    path); a directory holding ``run.metrics.json`` is an *index*; a
    ``.json`` file is taken as a metrics payload directly.
    """
    import os

    from repro.obs.schema import METRICS_FILENAME

    if os.path.isfile(target):
        return target if target.endswith(".json") else None
    if os.path.isdir(target):
        if os.path.exists(os.path.join(target, "manifest.tsv")):
            return None  # a collection: Table III semantics win
        candidate = os.path.join(target, METRICS_FILENAME)
        if os.path.exists(candidate):
            return candidate
    return None


def _cmd_stats(args) -> int:
    from repro.corpus.collection import collection_statistics
    from repro.util.fmt import fmt_bytes, fmt_count

    if args.diff is not None:
        from repro.obs.schema import load_metrics
        from repro.obs.stats import metrics_regressions, render_metrics_diff

        paths = [_metrics_path_of(t) or t for t in args.diff]
        before, after = load_metrics(paths[0]), load_metrics(paths[1])
        print(render_metrics_diff(
            before, after,
            before_label=args.diff[0], after_label=args.diff[1],
        ))
        if args.fail_on_regress is not None:
            regressions = metrics_regressions(
                before, after, rel_threshold=args.fail_on_regress / 100.0
            )
            if regressions:
                print(f"\n{len(regressions)} regression(s) past "
                      f"{args.fail_on_regress:g}%:")
                for line in regressions:
                    print(f"  {line}")
                return 1
            print(f"\nno regressions past {args.fail_on_regress:g}%")
        return 0
    if args.fail_on_regress is not None:
        print("error: --fail-on-regress requires --diff A B", file=sys.stderr)
        return 2

    if args.target is None:
        print("error: stats needs a collection/index directory (or --diff A B)",
              file=sys.stderr)
        return 2

    metrics_path = _metrics_path_of(args.target)
    if metrics_path is not None:
        from repro.obs.schema import load_metrics
        from repro.obs.stats import render_metrics_summary

        print(render_metrics_summary(load_metrics(metrics_path)))
        return 0

    stats = collection_statistics(_load_collection(args.target),
                                  strip_html=not args.no_html)
    print(f"collection:   {stats.name}")
    print(f"compressed:   {fmt_bytes(stats.compressed_bytes)}")
    print(f"uncompressed: {fmt_bytes(stats.uncompressed_bytes)}")
    print(f"documents:    {fmt_count(stats.num_docs)}")
    print(f"terms:        {fmt_count(stats.num_terms)}")
    print(f"tokens:       {fmt_count(stats.num_tokens)}")
    print(f"tokens/doc:   {stats.tokens_per_doc:.1f}")
    return 0


def _cmd_build(args) -> int:
    from repro.core.config import PlatformConfig
    from repro.core.engine import IndexingEngine

    overrides = {}
    if args.serial:
        overrides["pipeline_depth"] = 0
        overrides["exec_backend"] = "serial"
    elif args.pipeline_depth is not None:
        overrides["pipeline_depth"] = args.pipeline_depth
    if args.exec_backend is not None:
        overrides["exec_backend"] = args.exec_backend
    if args.files_per_run is not None:
        overrides["files_per_run"] = args.files_per_run
    if args.profile:
        overrides["profile"] = True
    if args.profile_interval is not None:
        overrides["profile"] = True
        overrides["profile_interval_s"] = args.profile_interval
    config = PlatformConfig(
        num_parsers=args.parsers,
        num_cpu_indexers=args.cpu_indexers,
        num_gpus=args.gpus,
        codec=args.codec,
        positional=args.positional,
        sample_fraction=args.sample_fraction,
        strip_html=not args.no_html,
        on_error=args.on_error,
        quarantine_dir=args.quarantine_dir,
        telemetry=not args.no_telemetry,
        **overrides,
    )
    result = IndexingEngine(config).build(
        _load_collection(args.collection), args.output, resume=args.resume
    )
    print(f"indexed {result.token_count:,} tokens, {result.term_count:,} terms, "
          f"{result.document_count:,} docs into {result.run_count} runs")
    print(f"wall time: {result.wall_seconds:.1f}s (cpu {result.cpu_seconds:.1f}s); "
          f"simulated on the paper's node: "
          f"{result.report.total_s:.2f}s = {result.report.throughput_mbps:.1f} MB/s")
    print(f"CPU/GPU token split: {result.split.cpu_tokens:,} / {result.split.gpu_tokens:,}")
    if result.pipeline is not None:
        p = result.pipeline
        print(f"pipelined ({p.backend}): depth {p.depth}, "
              f"{p.workers} indexer workers, "
              f"{p.tasks} sub-batches over {p.files} files "
              f"(max {p.max_inflight} in flight)")
    sup = result.supervisor
    if sup is not None:
        line = (f"supervisor: {sup.workers} worker processes, "
                f"{sup.restarts} restart(s), {sup.requeued} requeued task(s)")
        if sup.degraded:
            line += f", {sup.degraded} slot(s) degraded to inline"
        if sup.poisoned:
            line += f", {sup.poisoned} poisoned task(s)"
        print(line)
        for failure in sup.failures:
            print(f"  {failure.worker} incarnation {failure.incarnation} "
                  f"{failure.kind}: {failure.detail} → {failure.action}")
    if result.metrics_path is not None:
        print(f"telemetry: {result.metrics_path} (repro stats) + "
              f"{result.trace_path} (repro trace / Perfetto)")
    if result.profile_path is not None:
        print(f"profile: {result.profile_path} (repro profile)")
    rb = result.robustness
    if rb.resumed_runs:
        print(f"resumed: {rb.resumed_runs} run(s) recovered from the manifest")
    if rb.retries:
        print(f"retries: {rb.retries} (backoff {rb.retry_backoff_s:.2f}s)")
    for skipped in rb.skipped:
        where = f" → {skipped.quarantined_to}" if skipped.quarantined_to else ""
        print(f"{skipped.action}: {skipped.path}{where} ({skipped.reason})")
    for failover in rb.gpu_failovers:
        print(failover.describe())
    return 0


def _cmd_trace(args) -> int:
    import os

    from repro.obs.schema import TRACE_FILENAME
    from repro.obs.stats import render_trace_summary, spans_from_chrome
    from repro.obs.trace import load_chrome_trace

    path = args.trace
    if os.path.isdir(path):
        path = os.path.join(path, TRACE_FILENAME)
    events = load_chrome_trace(path)
    print(render_trace_summary(spans_from_chrome(events), root_name=args.root))
    return 0


def _cmd_verify(args) -> int:
    import os

    from repro.obs.schema import METRICS_FILENAME, load_metrics
    from repro.robustness.verify import verify_index

    result = verify_index(args.index, keep_going=args.keep_going)
    for issue in result.issues:
        print(str(issue), file=sys.stderr)
    shm_ok = True
    if args.check_shm:
        from repro.core.shm_ring import orphan_segments

        orphans = orphan_segments()
        if orphans:
            shm_ok = False
            for name in orphans:
                print(f"orphaned shared-memory segment: /dev/shm/{name} "
                      f"(creator process is gone)", file=sys.stderr)
    if result.ok and shm_ok:
        print(f"ok: {result.runs_checked} run(s), {result.docs_checked} doc(s), "
              f"{result.terms_checked} term(s) verified")
        metrics_path = os.path.join(args.index, METRICS_FILENAME)
        if os.path.exists(metrics_path):
            counters = load_metrics(metrics_path).get("counters", {})
            for prefix, title in (("robustness.", "robustness"),
                                  ("supervisor.", "supervisor")):
                section = {k: v for k, v in sorted(counters.items())
                           if k.startswith(prefix)}
                if section:
                    print(f"{title} counters from the build:")
                    for name, value in section.items():
                        print(f"  {name:32s} {value}")
        return 0
    if not shm_ok:
        print("orphaned repro_* shared-memory segment(s) found "
              "(repro verify --check-shm)", file=sys.stderr)
        return 1
    print(f"{len(result.issues)} inconsistenc"
          f"{'y' if len(result.issues) == 1 else 'ies'} found", file=sys.stderr)
    return 1


def _cmd_query(args) -> int:
    from repro.search.query import SearchEngine

    engine = SearchEngine(args.index)
    text = " ".join(args.terms)
    if args.mode == "and":
        docs = engine.boolean_and(text)
        print(f"{len(docs)} documents: {docs[:50]}")
    elif args.mode == "or":
        docs = engine.boolean_or(text)
        print(f"{len(docs)} documents: {docs[:50]}")
    elif args.mode == "phrase":
        docs = engine.phrase(text)
        print(f"{len(docs)} documents contain the phrase: {docs[:50]}")
    else:
        for hit in engine.ranked(text, k=args.k):
            print(f"doc {hit.doc_id:8d}  score {hit.score:.4f}")
    return 0


def _cmd_merge(args) -> int:
    from repro.postings.merge import merge_index

    stats = merge_index(args.index, args.output)
    print(f"merged {stats['input_runs']} runs / {stats['terms']:,} terms / "
          f"{stats['postings']:,} postings → {stats['output_bytes']:,} bytes")
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import generate_full_report

    text = generate_full_report()
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {args.output} ({len(text)} chars)")
    return 0


def _cmd_simulate(args) -> int:
    from repro.core.config import PlatformConfig
    from repro.core.pipeline import simulate_full_build
    from repro.core.workload import WorkloadModel

    config = PlatformConfig(
        num_parsers=args.parsers,
        num_cpu_indexers=args.cpu_indexers,
        num_gpus=args.gpus,
    )
    works = WorkloadModel.paper_scale(args.dataset).files()
    report = simulate_full_build(works, config)
    p = report.pipeline
    print(f"dataset {args.dataset}: {len(works)} files, "
          f"{p.uncompressed_bytes / 1024**4:.2f} TiB, config: {config.describe()}")
    print(f"sampling       {report.sampling_s:10.2f} s")
    print(f"parsers        {p.parser_finish_s:10.2f} s")
    print(f"indexers       {p.indexer_finish_s:10.2f} s "
          f"(pre {p.pre_total_s:.1f} / indexing {p.indexing_total_s:.1f} / "
          f"post {p.post_total_s:.1f} / waits {p.indexer_wait_s:.1f})")
    print(f"dict combine   {report.dict_combine_s:10.2f} s")
    print(f"dict write     {report.dict_write_s:10.2f} s")
    print(f"total          {report.total_s:10.2f} s  →  "
          f"{report.throughput_mbps:.2f} MB/s")
    return 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import run

    return run(args)


def _cmd_bench(args) -> int:
    import os

    from repro.obs import bench
    from repro.obs.bench_schema import BENCH_FILENAME

    if args.compare is not None:
        old_path, new_path = args.compare
        comparison = bench.compare_results(
            bench.load_results(old_path),
            bench.load_results(new_path),
            rel_threshold=(args.rel_threshold
                           if args.rel_threshold is not None
                           else bench.DEFAULT_REL_THRESHOLD),
            noise_mult=(args.noise_mult
                        if args.noise_mult is not None
                        else bench.DEFAULT_NOISE_MULT),
        )
        print(comparison.text)
        print()
        print(bench.render_trajectory(args.trajectory_root))
        return 0 if comparison.ok else 1

    bench.load_scenario_modules(args.suite_dir)
    registry = bench.registered_scenarios()
    if args.list:
        for name, sc in registry.items():
            extra = f"  [{sc.group}]" if sc.group else ""
            print(f"{name}{extra}")
        return 0

    payload = bench.run_suite(
        registry,
        data_dir=args.data_dir,
        repetitions=(args.repetitions if args.repetitions is not None
                     else bench.DEFAULT_REPETITIONS),
        warmup=args.warmup if args.warmup is not None else bench.DEFAULT_WARMUP,
        seed=args.seed if args.seed is not None else bench.DEFAULT_SEED,
        scale=args.scale if args.scale is not None else bench.DEFAULT_SCALE,
        only=args.only,
        progress=print,
        profile=args.profile,
    )
    out = args.out or os.path.join(os.curdir, BENCH_FILENAME)
    bench.write_results(out, payload)
    for entry in payload["scenarios"]:
        stats = entry["stats"]
        thpt = (f"  {entry['throughput_mbps']:8.1f} MB/s"
                if "throughput_mbps" in entry else "")
        print(f"{entry['name']:<28} median {stats['median'] * 1e3:9.3f} ms  "
              f"min {stats['min'] * 1e3:9.3f} ms  "
              f"IQR {stats['iqr'] * 1e3:8.3f} ms{thpt}")
    print(f"\nwrote {len(payload['scenarios'])} scenario(s) to {out}")
    return 0


def _profile_path_of(target: str) -> str:
    """Resolve a profile target: an index directory or the file itself."""
    import os

    from repro.obs.profile_schema import PROFILE_FILENAME

    if os.path.isdir(target):
        return os.path.join(target, PROFILE_FILENAME)
    return target


def _cmd_profile(args) -> int:
    import json
    import os

    from repro.obs.profile import (
        render_profile_diff,
        render_profile_report,
        to_folded,
        to_speedscope,
    )
    from repro.obs.profile_schema import load_profile
    from repro.obs.schema import METRICS_FILENAME, load_metrics

    if args.diff is not None:
        old, new = (load_profile(_profile_path_of(t)) for t in args.diff)
        print(render_profile_diff(old, new, top=args.top, mode=args.mode))
        return 0
    if args.target is None:
        print("error: profile needs an index directory / run.profile.json "
              "(or --diff OLD NEW)", file=sys.stderr)
        return 2

    path = _profile_path_of(args.target)
    payload = load_profile(path)
    # The hot-path section cross-references ring-wait counters when the
    # build's metrics artifact sits next to the profile.
    metrics = None
    metrics_path = os.path.join(os.path.dirname(path) or ".", METRICS_FILENAME)
    if os.path.exists(metrics_path):
        metrics = load_metrics(metrics_path)
    print(render_profile_report(payload, metrics, top=args.top, mode=args.mode))
    if args.folded is not None:
        with open(args.folded, "w", encoding="utf-8") as fh:
            fh.write(to_folded(payload))
        print(f"wrote folded stacks to {args.folded}")
    if args.speedscope is not None:
        name = os.path.basename(os.path.normpath(args.target))
        with open(args.speedscope, "w", encoding="utf-8") as fh:
            json.dump(to_speedscope(payload, name=name), fh, indent=2)
            fh.write("\n")
        print(f"wrote speedscope JSON to {args.speedscope}")
    return 0


def _critpath_path_of(target: str) -> str:
    """Resolve a critpath target: an index directory or the file itself."""
    import os

    from repro.obs.critpath_schema import CRITPATH_FILENAME

    if os.path.isdir(target):
        return os.path.join(target, CRITPATH_FILENAME)
    return target


def _cmd_critpath(args) -> int:
    import os

    from repro.obs.critpath import (
        analyze_index_dir,
        build_critpath_payload,
        default_projections,
        parse_what_if,
        project,
        render_critpath_diff,
        render_critpath_report,
        write_chrome_overlay,
    )
    from repro.obs.critpath_schema import CRITPATH_FILENAME, load_critpath
    from repro.obs.schema import TRACE_FILENAME

    if args.diff is not None:
        old, new = (load_critpath(_critpath_path_of(t)) for t in args.diff)
        print(render_critpath_diff(old, new))
        return 0
    if args.target is None:
        print("error: critpath needs an index directory (or --diff OLD NEW)",
              file=sys.stderr)
        return 2

    cp, metrics = analyze_index_dir(args.target)
    projections = default_projections(cp)
    extra = []
    scales = parse_what_if(args.what_if)
    if scales:
        label = ", ".join(f"{r}={s:g}" for r, s in sorted(scales.items()))
        extra.append(project(cp, scales, f"what-if {label}"))
    payload = build_critpath_payload(
        cp, projections, meta={"index_dir": os.path.abspath(args.target)}
    )
    print(render_critpath_report(payload, metrics or None,
                                 extra_projections=extra))
    if not args.no_write:
        from repro.obs.critpath_schema import write_critpath

        out = os.path.join(args.target, CRITPATH_FILENAME)
        write_critpath(out, payload)
        print(f"\nwrote {out}")
    if args.chrome is not None:
        trace_path = os.path.join(args.target, TRACE_FILENAME)
        write_chrome_overlay(payload, trace_path, args.chrome)
        print(f"wrote highlighted Chrome trace to {args.chrome}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code (2 on usage errors)."""
    args = build_arg_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "ingest": _cmd_ingest,
        "stats": _cmd_stats,
        "build": _cmd_build,
        "trace": _cmd_trace,
        "verify": _cmd_verify,
        "query": _cmd_query,
        "merge": _cmd_merge,
        "report": _cmd_report,
        "simulate": _cmd_simulate,
        "lint": _cmd_lint,
        "bench": _cmd_bench,
        "profile": _cmd_profile,
        "critpath": _cmd_critpath,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:  # e.g. `repro stats … | head`
        sys.stderr.close()  # suppress the interpreter's flush-failure noise
        return 0
    except FileNotFoundError as exc:
        print(f"error: missing file or directory: {exc.filename or exc}", file=sys.stderr)
        return 2
    except (NotADirectoryError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
