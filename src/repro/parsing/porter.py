"""The Porter stemming algorithm (M.F. Porter, 1980), complete.

Step 3 of every parser (Fig 3) "performs Porter stemmer".  This is a full
implementation of the original five-step algorithm — the same linguistic
rules the paper describes with the *parallel / parallelize /
parallelization / parallelism → parallel* example, which the test suite
checks verbatim.

The measure ``m`` of a word counts vowel-consonant sequences ``[C](VC)^m[V]``
where a letter is a vowel if it is ``aeiou`` or a ``y`` preceded by a
consonant.  Conditions used by the rules:

- ``*v*`` — the stem contains a vowel;
- ``*d`` — the stem ends with a double consonant;
- ``*o`` — the stem ends consonant-vowel-consonant where the final
  consonant is not ``w``, ``x`` or ``y``.

Because token streams are Zipf-distributed, :class:`PorterStemmer` memoizes
aggressively; the cache is the reason the pure-Python parser keeps up with
the pipeline at mini-corpus scale (see the calibration notes in DESIGN.md).
"""

from __future__ import annotations

__all__ = ["PorterStemmer", "stem"]

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem_: str) -> int:
    """The Porter measure m: number of VC sequences."""
    m = 0
    i = 0
    n = len(stem_)
    # Skip initial consonants [C].
    while i < n and _is_consonant(stem_, i):
        i += 1
    while i < n:
        # Vowel run.
        while i < n and not _is_consonant(stem_, i):
            i += 1
        if i >= n:
            break
        m += 1
        # Consonant run.
        while i < n and _is_consonant(stem_, i):
            i += 1
    return m


def _contains_vowel(stem_: str) -> bool:
    return any(not _is_consonant(stem_, i) for i in range(len(stem_)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    if len(word) < 3:
        return False
    if not (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return False
    return word[-1] not in "wxy"


class PorterStemmer:
    """Memoized Porter stemmer."""

    def __init__(self) -> None:
        self._cache: dict[str, str] = {}
        #: Tokens stemmed through the slow path (cache misses); the work
        #: metrics report this so the cost model can distinguish cache-hot
        #: from cache-cold stemming.
        self.misses = 0

    def stem(self, word: str) -> str:
        """Stem a lower-case word."""
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        self.misses += 1
        result = self._stem_uncached(word)
        self._cache[word] = result
        return result

    __call__ = stem

    # ------------------------------------------------------------------ #
    # The algorithm proper
    # ------------------------------------------------------------------ #

    def _stem_uncached(self, word: str) -> str:
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    @staticmethod
    def _step1a(w: str) -> str:
        if w.endswith("sses"):
            return w[:-2]
        if w.endswith("ies"):
            return w[:-2]
        if w.endswith("ss"):
            return w
        if w.endswith("s"):
            return w[:-1]
        return w

    @staticmethod
    def _step1b(w: str) -> str:
        if w.endswith("eed"):
            if _measure(w[:-3]) > 0:
                return w[:-1]
            return w
        flag = False
        if w.endswith("ed") and _contains_vowel(w[:-2]):
            w = w[:-2]
            flag = True
        elif w.endswith("ing") and _contains_vowel(w[:-3]):
            w = w[:-3]
            flag = True
        if flag:
            if w.endswith(("at", "bl", "iz")):
                return w + "e"
            if _ends_double_consonant(w) and not w.endswith(("l", "s", "z")):
                return w[:-1]
            if _measure(w) == 1 and _ends_cvc(w):
                return w + "e"
        return w

    @staticmethod
    def _step1c(w: str) -> str:
        if w.endswith("y") and _contains_vowel(w[:-1]):
            return w[:-1] + "i"
        return w

    _STEP2_RULES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    @classmethod
    def _step2(cls, w: str) -> str:
        for suffix, replacement in cls._STEP2_RULES:
            if w.endswith(suffix):
                stem_ = w[: -len(suffix)]
                if _measure(stem_) > 0:
                    return stem_ + replacement
                return w
        return w

    _STEP3_RULES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    @classmethod
    def _step3(cls, w: str) -> str:
        for suffix, replacement in cls._STEP3_RULES:
            if w.endswith(suffix):
                stem_ = w[: -len(suffix)]
                if _measure(stem_) > 0:
                    return stem_ + replacement
                return w
        return w

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant",
        "ement", "ment", "ent", "ion", "ou", "ism", "ate", "iti",
        "ous", "ive", "ize",
    )

    @classmethod
    def _step4(cls, w: str) -> str:
        for suffix in cls._STEP4_SUFFIXES:
            if w.endswith(suffix):
                stem_ = w[: -len(suffix)]
                if _measure(stem_) > 1:
                    if suffix == "ion" and not stem_.endswith(("s", "t")):
                        return w
                    return stem_
                return w
        return w

    @staticmethod
    def _step5a(w: str) -> str:
        if w.endswith("e"):
            stem_ = w[:-1]
            m = _measure(stem_)
            if m > 1:
                return stem_
            if m == 1 and not _ends_cvc(stem_):
                return stem_
        return w

    @staticmethod
    def _step5b(w: str) -> str:
        if _measure(w) > 1 and _ends_double_consonant(w) and w.endswith("l"):
            return w[:-1]
        return w


_DEFAULT = PorterStemmer()


def stem(word: str) -> str:
    """Module-level convenience using a shared memoized stemmer."""
    return _DEFAULT.stem(word)
