"""Compact binary encoding of the parsed stream for cross-process handoff.

The multiprocess execution backend (:mod:`repro.core.mp_backend`) moves
parser output between OS processes over shared-memory ring buffers.  The
payload is the same :class:`~repro.parsing.regroup.ParsedBatch` the
thread pool passes by reference — but across an address-space boundary it
has to travel as bytes.  Pickle would work; this codec is smaller (term
suffixes dominate and are stored verbatim, everything else is varints),
has no code-execution surface, and — the property the engine actually
relies on — **round-trips exactly**: decoding preserves dict insertion
order, so an indexer consuming a decoded batch allocates term ids in the
same order as one consuming the original, which is what keeps the
multiprocess backend byte-identical to serial execution.

Wire format (all integers LEB128 varints, all strings UTF-8
length-prefixed):

- ``encode_batch`` / ``decode_batch``: one ``ParsedBatch`` — the
  sub-batch unit dispatched to indexer workers.
- ``encode_parsed_file`` / ``decode_parsed_file``: one
  :class:`~repro.parsing.parser.ParsedFile` (batch + doc-table rows +
  parse metrics) — the unit parse workers send back to the engine.

The format is internal to one build on one host (both ends run the same
code), so there is no versioning beyond the magic byte.
"""

from __future__ import annotations

from repro.parsing.docio import DocTableEntry
from repro.parsing.parser import ParsedFile, ParseMetrics
from repro.parsing.regroup import ParsedBatch

__all__ = [
    "encode_batch",
    "decode_batch",
    "encode_parsed_file",
    "decode_parsed_file",
]

_BATCH_MAGIC = 0xB1
_FILE_MAGIC = 0xF1

#: ``ParseMetrics`` travels as one varint per field, in declaration order.
_METRIC_FIELDS = tuple(ParseMetrics.__dataclass_fields__)


class _Writer:
    """Append-only varint/bytes buffer."""

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts = bytearray()

    def u(self, value: int) -> None:
        """LEB128 unsigned varint."""
        if value < 0:
            raise ValueError(f"stream codec only carries non-negative ints, got {value}")
        parts = self._parts
        while value > 0x7F:
            parts.append((value & 0x7F) | 0x80)
            value >>= 7
        parts.append(value)

    def raw(self, data: bytes) -> None:
        self.u(len(data))
        self._parts += data

    def s(self, text: str) -> None:
        self.raw(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        return bytes(self._parts)


class _Reader:
    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def u(self) -> int:
        data, pos = self._data, self._pos
        shift = 0
        value = 0
        while True:
            try:
                byte = data[pos]
            except IndexError:
                raise ValueError("truncated varint in parsed-stream payload") from None
            pos += 1
            value |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
        self._pos = pos
        return value

    def raw(self) -> bytes:
        n = self.u()
        data = self._data[self._pos : self._pos + n]
        if len(data) != n:
            raise ValueError("truncated bytes field in parsed-stream payload")
        self._pos += n
        return data

    def s(self) -> str:
        return self.raw().decode("utf-8")

    def done(self) -> bool:
        return self._pos == len(self._data)


# ---------------------------------------------------------------------- #
# ParsedBatch
# ---------------------------------------------------------------------- #


def _write_batch(w: _Writer, batch: ParsedBatch) -> None:
    w.u(_BATCH_MAGIC)
    w.u(batch.parser_id)
    w.u(batch.sequence)
    w.s(batch.source_file)
    w.u(batch.num_docs)
    w.u(batch.uncompressed_bytes)
    w.u(batch.compressed_bytes)
    flags = (1 if batch.positions is not None else 0) | (
        2 if batch.ungrouped is not None else 0
    )
    w.u(flags)

    # Collections in dict insertion order — the order indexers iterate,
    # hence the order term ids are allocated.  Never sort here.
    w.u(len(batch.collections))
    for cidx, stream in batch.collections.items():
        w.u(cidx)
        w.u(len(stream))
        for doc_id, suffixes in stream:
            w.u(doc_id)
            w.u(len(suffixes))
            for suffix in suffixes:
                w.raw(suffix)

    if batch.positions is not None:
        w.u(len(batch.positions))
        for cidx, per_doc in batch.positions.items():
            w.u(cidx)
            w.u(len(per_doc))
            for ordinals in per_doc:
                w.u(len(ordinals))
                for ordinal in ordinals:
                    w.u(ordinal)

    if batch.ungrouped is not None:
        w.u(len(batch.ungrouped))
        for doc_id, doc_tokens in batch.ungrouped:
            w.u(doc_id)
            w.u(len(doc_tokens))
            for cidx, suffix in doc_tokens:
                w.u(cidx)
                w.raw(suffix)

    for counts in (batch.tokens_per_collection, batch.chars_per_collection):
        w.u(len(counts))
        for cidx, count in counts.items():
            w.u(cidx)
            w.u(count)


def _read_batch(r: _Reader) -> ParsedBatch:
    if r.u() != _BATCH_MAGIC:
        raise ValueError("not a parsed-stream batch payload")
    parser_id = r.u()
    sequence = r.u()
    source_file = r.s()
    num_docs = r.u()
    uncompressed = r.u()
    compressed = r.u()
    flags = r.u()

    collections: dict[int, list[tuple[int, list[bytes]]]] = {}
    for _ in range(r.u()):
        cidx = r.u()
        stream: list[tuple[int, list[bytes]]] = []
        for _ in range(r.u()):
            doc_id = r.u()
            stream.append((doc_id, [r.raw() for _ in range(r.u())]))
        collections[cidx] = stream

    positions: dict[int, list[list[int]]] | None = None
    if flags & 1:
        positions = {}
        for _ in range(r.u()):
            cidx = r.u()
            positions[cidx] = [
                [r.u() for _ in range(r.u())] for _ in range(r.u())
            ]

    ungrouped: list[tuple[int, list[tuple[int, bytes]]]] | None = None
    if flags & 2:
        ungrouped = []
        for _ in range(r.u()):
            doc_id = r.u()
            ungrouped.append(
                (doc_id, [(r.u(), r.raw()) for _ in range(r.u())])
            )

    tokens_per_collection = {r.u(): r.u() for _ in range(r.u())}
    chars_per_collection = {r.u(): r.u() for _ in range(r.u())}
    return ParsedBatch(
        parser_id=parser_id,
        sequence=sequence,
        source_file=source_file,
        num_docs=num_docs,
        collections=collections,
        positions=positions,
        ungrouped=ungrouped,
        tokens_per_collection=tokens_per_collection,
        chars_per_collection=chars_per_collection,
        uncompressed_bytes=uncompressed,
        compressed_bytes=compressed,
    )


def encode_batch(batch: ParsedBatch) -> bytes:
    """Serialize one :class:`ParsedBatch` (order-preserving, exact)."""
    w = _Writer()
    _write_batch(w, batch)
    return w.getvalue()


def decode_batch(data: bytes) -> ParsedBatch:
    """Exact inverse of :func:`encode_batch`; rejects trailing bytes."""
    r = _Reader(data)
    batch = _read_batch(r)
    if not r.done():
        raise ValueError("trailing bytes after parsed-stream batch payload")
    return batch


# ---------------------------------------------------------------------- #
# ParsedFile
# ---------------------------------------------------------------------- #


def encode_parsed_file(parsed: ParsedFile) -> bytes:
    """Serialize one :class:`ParsedFile` — batch, doc table, metrics."""
    w = _Writer()
    w.u(_FILE_MAGIC)
    _write_batch(w, parsed.batch)
    w.u(len(parsed.doc_table))
    for entry in parsed.doc_table:
        w.u(entry.local_doc_id)
        w.s(entry.source_file)
        w.s(entry.uri)
        w.u(entry.offset)
    for name in _METRIC_FIELDS:
        w.u(getattr(parsed.metrics, name))
    return w.getvalue()


def decode_parsed_file(data: bytes) -> ParsedFile:
    """Exact inverse of :func:`encode_parsed_file`; checks the magic."""
    r = _Reader(data)
    if r.u() != _FILE_MAGIC:
        raise ValueError("not a parsed-stream file payload")
    batch = _read_batch(r)
    doc_table = [
        DocTableEntry(
            local_doc_id=r.u(), source_file=r.s(), uri=r.s(), offset=r.u()
        )
        for _ in range(r.u())
    ]
    metrics = ParseMetrics(**{name: r.u() for name in _METRIC_FIELDS})
    if not r.done():
        raise ValueError("trailing bytes after parsed-stream file payload")
    return ParsedFile(batch=batch, doc_table=doc_table, metrics=metrics)
