"""Step 1 of the parser: file read, decompression, document-ID assignment.

"Step 1 reads files from disk, decompresses them if necessary, assigns a
local document ID to each document, and builds a table containing
``<document ID, document location on disk>`` mapping."

Local IDs are dense integers starting at 0 within one parsed file; the
pipeline later adds the global offset.  The doc table rows keep the source
file and byte offset so the paper's docID→location lookups are possible.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.corpus.warc import read_packed_file

__all__ = ["DocTableEntry", "LoadedFile", "load_collection_file"]


@dataclass(frozen=True)
class DocTableEntry:
    """One row of the ``<document ID, location>`` table."""

    local_doc_id: int
    source_file: str
    uri: str
    offset: int


@dataclass
class LoadedFile:
    """A decompressed collection file ready for tokenization."""

    path: str
    texts: list[str]
    doc_table: list[DocTableEntry]
    compressed_bytes: int
    uncompressed_bytes: int

    @property
    def num_docs(self) -> int:
        return len(self.texts)


def load_collection_file(path: str) -> LoadedFile:
    """Read + decompress one container file and assign local doc IDs."""
    docs = read_packed_file(path)
    compressed = os.path.getsize(path)
    texts: list[str] = []
    table: list[DocTableEntry] = []
    uncompressed = 0
    for local_id, doc in enumerate(docs):
        texts.append(doc.text)
        uncompressed += len(doc.text.encode("utf-8"))
        table.append(
            DocTableEntry(
                local_doc_id=local_id,
                source_file=os.path.basename(path),
                uri=doc.uri,
                offset=doc.offset,
            )
        )
    return LoadedFile(
        path=path,
        texts=texts,
        doc_table=table,
        compressed_bytes=compressed,
        uncompressed_bytes=uncompressed,
    )
