"""The parser pipeline of Fig 3 (Section III.C).

Each parser executes five steps over one file block:

1. **Read & decompress** — :mod:`repro.parsing.docio` reads a packed
   collection file, inflates it, assigns local document IDs and records the
   ``<document ID, location>`` table.
2. **Tokenization** — :mod:`repro.parsing.tokenizer` splits documents into
   tokens; the trie-collection index is computed as a byproduct of the same
   scan, which is why the paper's Step-5 regrouping costs ~5%.
3. **Porter stemming** — :mod:`repro.parsing.porter`, the full 1980
   algorithm, memoized because Zipf-distributed tokens repeat heavily.
4. **Stop-word removal** — :mod:`repro.parsing.stopwords`.
5. **Regrouping** — :mod:`repro.parsing.regroup` rearranges terms so that
   terms with the same trie index are contiguous and strips the prefix the
   trie captures; this is the paper's cache-locality trick worth ~15× for
   a serial indexer.

:class:`repro.parsing.parser.Parser` chains the steps and emits
:class:`~repro.parsing.regroup.ParsedBatch` objects plus the work metrics
the discrete-event simulator charges time for.
"""

from repro.parsing.parser import ParseMetrics, ParsedFile, Parser
from repro.parsing.porter import PorterStemmer, stem
from repro.parsing.regroup import ParsedBatch, regroup
from repro.parsing.stopwords import STOP_WORDS, StopWordFilter
from repro.parsing.tokenizer import Tokenizer, strip_markup

__all__ = [
    "Tokenizer",
    "strip_markup",
    "PorterStemmer",
    "stem",
    "STOP_WORDS",
    "StopWordFilter",
    "ParsedBatch",
    "regroup",
    "Parser",
    "ParsedFile",
    "ParseMetrics",
]
