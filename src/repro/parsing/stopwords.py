"""Stop-word removal (Step 4 of Fig 3).

"Removal of stop words consists of eliminating common terms, such as 'the',
'to', 'and', etc."  The list below is the classic English function-word
list (a superset of the SMART short list).  Because the paper applies the
Porter stemmer *before* stop-word removal, the filter matches against the
stemmed forms of the list (e.g. ``this`` stems to ``thi``), which the
constructor precomputes.
"""

from __future__ import annotations

from repro.parsing.porter import PorterStemmer

__all__ = ["STOP_WORDS", "StopWordFilter"]

#: Unstemmed English stop words.
STOP_WORDS: frozenset[str] = frozenset(
    """
    a about above after again against all am an and any are aren't as at be
    because been before being below between both but by can cannot could
    couldn't did didn't do does doesn't doing don't down during each few for
    from further had hadn't has hasn't have haven't having he he'd he'll
    he's her here here's hers herself him himself his how how's i i'd i'll
    i'm i've if in into is isn't it it's its itself let's me more most
    mustn't my myself no nor not of off on once only or other ought our ours
    ourselves out over own same shan't she she'd she'll she's should
    shouldn't so some such than that that's the their theirs them themselves
    then there there's these they they'd they'll they're they've this those
    through to too under until up very was wasn't we we'd we'll we're we've
    were weren't what what's when when's where where's which while who who's
    whom why why's with won't would wouldn't you you'd you'll you're you've
    your yours yourself yourselves
    """.split()
)


class StopWordFilter:
    """Membership test against the stemmed stop-word set.

    The tokenizer never emits apostrophes (tokens are alphanumeric runs),
    so contractions in the source list are also folded to their
    apostrophe-free fragments (``aren't`` → ``aren``, ``t``).
    """

    def __init__(self, words: frozenset[str] = STOP_WORDS) -> None:
        stemmer = PorterStemmer()
        stemmed: set[str] = set()
        for word in words:
            for fragment in word.replace("'", " ").split():
                stemmed.add(fragment)
                stemmed.add(stemmer.stem(fragment))
        self._stemmed = frozenset(stemmed)

    def is_stop(self, stemmed_token: str) -> bool:
        """True if a stemmed token should be dropped."""
        return stemmed_token in self._stemmed

    def __contains__(self, stemmed_token: str) -> bool:
        return self.is_stop(stemmed_token)

    def __len__(self) -> int:
        return len(self._stemmed)
