"""Step 5 of the parser: regrouping terms by trie-collection index.

"This step regroups the terms into a number of groups, a group for each
trie collection index ... In addition, the prefix of each term captured by
the trie index is removed."  The output format follows the paper exactly —
for trie collection index *i*::

    (Doc_ID1, term1, term2, ...), (Doc_ID2, term1, term2, ...), ...

with **local** document IDs; the indexer later adds a global offset.

Regrouping is the paper's single biggest serial-indexing win (~15× from
temporal cache locality: a whole group hits one small B-tree that stays in
cache).  The ablation benchmark disables it via ``Parser(regroup=False)``,
which leaves tokens in document order as ``(collection, suffix)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["ParsedBatch", "regroup"]

#: Per-document token stream before regrouping: (collection index, suffix).
DocTokens = tuple[int, list[tuple[int, bytes]]]


@dataclass
class ParsedBatch:
    """One parser output buffer — the unit indexers consume.

    ``collections`` maps trie-collection index → the paper's per-collection
    stream ``[(local doc id, [suffix, ...]), ...]``.  When regrouping is
    disabled (ablation A) ``collections`` is empty and ``ungrouped`` holds
    the document-order stream instead.
    """

    parser_id: int
    sequence: int
    source_file: str
    num_docs: int = 0
    collections: dict[int, list[tuple[int, list[bytes]]]] = field(default_factory=dict)
    #: When the engine builds a positional index: parallel to
    #: ``collections`` — ``positions[cidx][i]`` holds the in-document token
    #: positions for the suffixes of ``collections[cidx][i]``.
    positions: dict[int, list[list[int]]] | None = None
    ungrouped: list[DocTokens] | None = None
    tokens_per_collection: dict[int, int] = field(default_factory=dict)
    chars_per_collection: dict[int, int] = field(default_factory=dict)
    uncompressed_bytes: int = 0
    compressed_bytes: int = 0

    @property
    def total_tokens(self) -> int:
        if self.ungrouped is not None:
            return sum(len(toks) for _, toks in self.ungrouped)
        return sum(self.tokens_per_collection.values())

    @property
    def total_chars(self) -> int:
        return sum(self.chars_per_collection.values())

    @property
    def regrouped(self) -> bool:
        return self.ungrouped is None


def regroup(
    docs: Iterable[DocTokens],
    with_positions: bool = False,
) -> tuple[
    dict[int, list[tuple[int, list[bytes]]]],
    dict[int, int],
    dict[int, int],
    dict[int, list[list[int]]] | None,
]:
    """Regroup per-document ``(collection, suffix)`` streams by collection.

    Returns ``(collections, tokens_per_collection, chars_per_collection,
    positions)``.  Within one collection, documents appear in their
    original order and a document's suffixes keep their original relative
    order — both needed so the indexer's append-only postings stay
    docID-sorted and term frequencies are exact.

    With ``with_positions`` each suffix's in-document token ordinal (its
    index in the emitted token stream) travels alongside it, enabling the
    positional-index extension.
    """
    collections: dict[int, list[tuple[int, list[bytes]]]] = {}
    tokens: dict[int, int] = {}
    chars: dict[int, int] = {}
    positions: dict[int, list[list[int]]] | None = {} if with_positions else None
    for doc_id, doc_tokens in docs:
        per_doc: dict[int, list[bytes]] = {}
        per_doc_pos: dict[int, list[int]] = {}
        for ordinal, (cidx, suffix) in enumerate(doc_tokens):
            per_doc.setdefault(cidx, []).append(suffix)
            if with_positions:
                per_doc_pos.setdefault(cidx, []).append(ordinal)
        for cidx, suffixes in per_doc.items():
            collections.setdefault(cidx, []).append((doc_id, suffixes))
            tokens[cidx] = tokens.get(cidx, 0) + len(suffixes)
            chars[cidx] = chars.get(cidx, 0) + sum(len(s) for s in suffixes)
            if positions is not None:
                positions.setdefault(cidx, []).append(per_doc_pos[cidx])
    return collections, tokens, chars, positions
