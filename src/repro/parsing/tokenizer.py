"""Tokenization (Step 2 of Fig 3) with trie indices as a byproduct.

The paper's tokenizer "scans input document character by character and
hence a trie index can be calculated as a byproduct using a minimal
additional effort".  In C that is a single fused scan; the idiomatic Python
equivalent (per the HPC-Python guides: vectorize the hot loop) is a single
compiled-regex pass that yields tokens, after which the trie split is an
O(1) arithmetic on each token's head characters — the same "byproduct"
structure, with the fused-scan cost captured by the parser's work metrics.

Markup handling mirrors the evaluation setup: ClueWeb-style web pages keep
their HTML and the tokenizer drops tags (``strip_markup``), whereas the
Wikipedia01-07 collection "had the HTML tags removed, and the remainder is
just pure text".
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.dictionary.trie import TrieTable

__all__ = ["Tokenizer", "strip_markup"]

# Tags, comments, script/style blocks; entities become separators.
_TAG_RE = re.compile(r"<script\b.*?</script\s*>|<style\b.*?</style\s*>|<[^>]*>", re.DOTALL | re.IGNORECASE)
_ENTITY_RE = re.compile(r"&[a-zA-Z#0-9]{1,10};")
# A token is a run of unicode letters/digits (underscore excluded).
_TOKEN_RE = re.compile(r"[^\W_]+", re.UNICODE)


def strip_markup(text: str) -> str:
    """Remove HTML/XML tags and entities, leaving whitespace separators."""
    text = _TAG_RE.sub(" ", text)
    return _ENTITY_RE.sub(" ", text)


class Tokenizer:
    """Splits documents into lower-case tokens and trie-splits each one.

    Parameters
    ----------
    trie:
        The shared :class:`TrieTable` used for the byproduct split.
    strip_html:
        Drop markup before tokenizing (on for web-crawl collections).
    max_token_bytes:
        Tokens longer than this are discarded as noise (binary junk in web
        crawls); the 255-byte Fig 6 limit is the hard ceiling.
    """

    def __init__(
        self,
        trie: TrieTable | None = None,
        strip_html: bool = True,
        max_token_bytes: int = 64,
    ) -> None:
        self.trie = trie if trie is not None else TrieTable()
        self.strip_html = strip_html
        self.max_token_bytes = min(max_token_bytes, 255)
        #: Characters scanned (post markup strip) — a parser work metric.
        self.chars_scanned = 0
        #: Tokens produced.
        self.tokens_emitted = 0

    def tokens(self, text: str) -> Iterator[str]:
        """Yield lower-cased raw tokens from one document."""
        if self.strip_html:
            text = strip_markup(text)
        self.chars_scanned += len(text)
        for match in _TOKEN_RE.finditer(text):
            token = match.group().lower()
            if len(token.encode("utf-8")) > self.max_token_bytes:
                continue
            self.tokens_emitted += 1
            yield token

    def tokens_with_index(self, text: str) -> Iterator[tuple[str, int]]:
        """Yield ``(token, trie collection index)`` pairs.

        This is the paper's fused scan: the index costs one extra arithmetic
        per token.  Note the index here is provisional — stemming (Step 3)
        can change a term's head, so the parser recomputes the split after
        stemming; the tokenizer-level index is still what drives the 5%
        regrouping overhead accounting.
        """
        trie_index = self.trie.trie_index
        for token in self.tokens(text):
            yield token, trie_index(token)
