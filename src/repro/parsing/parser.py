"""The complete parser of Fig 3: Steps 1–5 over one file block.

One :class:`Parser` object corresponds to one parser thread of the paper.
``parse_file`` executes the whole sequence — read & decompress, tokenize
(with trie indices as a byproduct), Porter-stem, drop stop words, regroup
by trie collection — and returns a :class:`ParsedFile` bundling the output
buffer (:class:`~repro.parsing.regroup.ParsedBatch`), the document table,
and the :class:`ParseMetrics` the discrete-event simulator charges time
against.

Note on the trie split: the tokenizer computes a provisional index during
its scan (the paper's "byproduct"), but stemming can rewrite a term's head
(e.g. ``ies`` → ``i``), so the definitive split is taken on the *stemmed*
term — the dictionary must see the final form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dictionary.trie import TrieTable
from repro.obs import runtime as obs
from repro.parsing.docio import DocTableEntry, load_collection_file
from repro.parsing.porter import PorterStemmer
from repro.parsing.regroup import DocTokens, ParsedBatch, regroup
from repro.parsing.stopwords import StopWordFilter
from repro.parsing.tokenizer import Tokenizer

__all__ = ["Parser", "ParsedFile", "ParseMetrics"]


@dataclass
class ParseMetrics:
    """Work counters for one parsed file (DES cost-model inputs)."""

    compressed_bytes: int = 0
    uncompressed_bytes: int = 0
    num_docs: int = 0
    chars_scanned: int = 0
    tokens_raw: int = 0
    tokens_stopped: int = 0  # removed as stop words
    tokens_emitted: int = 0  # survive into the parsed stream
    suffix_chars: int = 0
    stem_cache_misses: int = 0
    collections_touched: int = 0

    def merge(self, other: "ParseMetrics") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class ParsedFile:
    """Everything a parser hands downstream for one file."""

    batch: ParsedBatch
    doc_table: list[DocTableEntry] = field(default_factory=list)
    metrics: ParseMetrics = field(default_factory=ParseMetrics)


class Parser:
    """One parser thread (Fig 3).

    Parameters
    ----------
    parser_id:
        Position in the parser array; stamped on every output buffer so
        indexers can consume buffers in round-robin parser order.
    trie:
        Shared :class:`TrieTable`.
    strip_html:
        Forwarded to the tokenizer (on for web crawls, off for the
        pre-cleaned Wikipedia collection).
    regroup:
        Step 5 toggle; disabling reproduces the ~15× ablation.
    """

    def __init__(
        self,
        parser_id: int = 0,
        trie: TrieTable | None = None,
        strip_html: bool = True,
        regroup: bool = True,
        positional: bool = False,
        stemmer: PorterStemmer | None = None,
        stop_filter: StopWordFilter | None = None,
    ) -> None:
        self.parser_id = parser_id
        self.trie = trie if trie is not None else TrieTable()
        self.tokenizer = Tokenizer(trie=self.trie, strip_html=strip_html)
        self.stemmer = stemmer if stemmer is not None else PorterStemmer()
        self.stop_filter = stop_filter if stop_filter is not None else StopWordFilter()
        self.regroup_enabled = regroup
        self.positional = positional
        #: Stable trace-lane identity for this parser *object*.  Worker
        #: threads set it once at creation (e.g. ``parser-w0``) so their
        #: spans never interleave on a lane, even though ``parser_id`` is
        #: restamped per file for round-robin batch accounting.  ``None``
        #: falls back to the ``parser-<id>`` lane (serial builds).
        self.lane_override: str | None = None
        if positional and not regroup:
            raise ValueError("positional parsing requires regrouping")
        # Token-level memo over the whole stem→stop→split tail: Zipf
        # streams repeat tokens heavily, so the per-token pipeline runs
        # once per *distinct* surface form.  ``None`` marks a stop word.
        self._token_cache: dict[str, tuple[int, bytes] | None] = {}

    # ------------------------------------------------------------------ #

    def parse_texts(
        self, texts: list[str], source_file: str = "<memory>", sequence: int = 0
    ) -> tuple[ParsedBatch, ParseMetrics]:
        """Steps 2–5 over already-loaded document texts."""
        metrics = ParseMetrics(num_docs=len(texts))
        chars0 = self.tokenizer.chars_scanned
        misses0 = self.stemmer.misses

        split = self.trie.split
        stem = self.stemmer.stem
        is_stop = self.stop_filter.is_stop
        cache = self._token_cache

        doc_streams: list[DocTokens] = []
        for local_doc_id, text in enumerate(texts):
            doc_tokens: list[tuple[int, bytes]] = []
            for token in self.tokenizer.tokens(text):
                metrics.tokens_raw += 1
                try:
                    entry = cache[token]
                except KeyError:
                    term = stem(token)
                    if not term or is_stop(term):
                        entry = None
                    else:
                        s = split(term)
                        entry = (s.index, s.suffix.encode("utf-8"))
                    cache[token] = entry
                if entry is None:
                    metrics.tokens_stopped += 1
                    continue
                doc_tokens.append(entry)
                metrics.tokens_emitted += 1
                metrics.suffix_chars += len(entry[1])
            doc_streams.append((local_doc_id, doc_tokens))

        metrics.chars_scanned = self.tokenizer.chars_scanned - chars0
        metrics.stem_cache_misses = self.stemmer.misses - misses0

        batch = ParsedBatch(
            parser_id=self.parser_id, sequence=sequence, source_file=source_file
        )
        batch.num_docs = len(texts)
        if self.regroup_enabled:
            with obs.tracer().span(
                "regroup", cat="parse", lane=self._lane(), docs=len(texts)
            ):
                (
                    batch.collections,
                    batch.tokens_per_collection,
                    batch.chars_per_collection,
                    batch.positions,
                ) = regroup(doc_streams, with_positions=self.positional)
        else:
            batch.ungrouped = doc_streams
            # Token/char accounting still keyed by collection for sampling.
            for _, doc_tokens in doc_streams:
                for cidx, suffix in doc_tokens:
                    batch.tokens_per_collection[cidx] = (
                        batch.tokens_per_collection.get(cidx, 0) + 1
                    )
                    batch.chars_per_collection[cidx] = (
                        batch.chars_per_collection.get(cidx, 0) + len(suffix)
                    )
        metrics.collections_touched = len(batch.tokens_per_collection)
        return batch, metrics

    def _lane(self) -> str:
        """Trace lane for this parser thread (one timeline row each).

        Negative ids are the sampling pre-pass's throwaway parsers.
        """
        if self.lane_override is not None:
            return self.lane_override
        return f"parser-{self.parser_id}" if self.parser_id >= 0 else "sampler"

    def parse_file(self, path: str, sequence: int = 0) -> ParsedFile:
        """Steps 1–5 over a container file on disk."""
        tracer = obs.tracer()
        lane = self._lane()
        with tracer.span(
            "parse_file", cat="parse", lane=lane, file=sequence,
            parser=self.parser_id, cp=f"parse:{sequence}",
        ) as tags:
            with tracer.span("read", cat="parse", lane=lane):
                loaded = load_collection_file(path)
            batch, metrics = self.parse_texts(
                loaded.texts, source_file=loaded.path, sequence=sequence
            )
            metrics.compressed_bytes = loaded.compressed_bytes
            metrics.uncompressed_bytes = loaded.uncompressed_bytes
            batch.compressed_bytes = loaded.compressed_bytes
            batch.uncompressed_bytes = loaded.uncompressed_bytes
            tags["docs"] = metrics.num_docs
            tags["tokens"] = metrics.tokens_emitted
            tags["bytes"] = metrics.uncompressed_bytes
        reg = obs.metrics()
        reg.count("parse.files")
        reg.count("parse.docs", metrics.num_docs)
        reg.count("parse.tokens_raw", metrics.tokens_raw)
        reg.count("parse.tokens_stopped", metrics.tokens_stopped)
        reg.count("parse.tokens_emitted", metrics.tokens_emitted)
        reg.count("parse.compressed_bytes", metrics.compressed_bytes)
        reg.count("parse.uncompressed_bytes", metrics.uncompressed_bytes)
        return ParsedFile(batch=batch, doc_table=loaded.doc_table, metrics=metrics)
