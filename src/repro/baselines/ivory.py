"""The Ivory MapReduce indexing scheme (Lin et al. [9]).

"Lin et al. developed a scalable MapReduce indexing algorithm by switching
``⟨term, posting {document ID, term frequency}⟩`` to ``⟨tuple {term,
document ID}, term frequency⟩``.  By doing so, there is at most one value
for each unique key, and moreover it is guaranteed by the MapReduce
framework that postings arrive at the Reduce worker in order.  As a
result, a posting can be immediately appended to the postings list without
any post processing."

Map over documents: for each distinct term in a document emit
``((term, docID), tf)``.  Partitioning must be by *term only*, so all of
one term's postings land on the same reducer; the framework's key sort on
``(term, docID)`` then delivers them in docID order and the reducer is a
pure append.
"""

from __future__ import annotations

import zlib

from repro.baselines.common import Index, count_tf, parsed_documents
from repro.baselines.mapreduce import MapReduceJob, MapReduceStats
from repro.corpus.collection import Collection

__all__ = ["IvoryIndexer"]


class IvoryIndexer:
    """Document-at-a-time Ivory indexing on the functional runtime."""

    def __init__(self, num_reducers: int = 4, docs_per_split: int = 64) -> None:
        self.num_reducers = num_reducers
        self.docs_per_split = docs_per_split
        self.stats: MapReduceStats | None = None

    @staticmethod
    def _map(record: tuple[int, list[str]]):
        doc_id, terms = record
        for term, tf in count_tf(terms).items():
            yield (term, doc_id), tf

    @staticmethod
    def _reduce(key, values):
        # Exactly one value per (term, docID) key by construction.
        if len(values) != 1:
            raise AssertionError(f"Ivory invariant violated for {key}: {values}")
        yield values[0]

    def _partition(self, key) -> int:
        term, _doc = key
        return zlib.crc32(term.encode("utf-8")) % self.num_reducers

    # ------------------------------------------------------------------ #

    def build(self, collection: Collection, strip_html: bool = True) -> Index:
        """Index a collection; returns ``{term: [(doc, tf), …]}``."""
        docs = list(parsed_documents(collection, strip_html=strip_html))
        splits = [
            docs[i : i + self.docs_per_split] for i in range(0, len(docs), self.docs_per_split)
        ]
        job = MapReduceJob(
            self._map,
            self._reduce,
            num_reducers=self.num_reducers,
            partition_fn=self._partition,
        )
        raw = job.run(splits)
        self.stats = job.stats
        index: Index = {}
        # Keys arrive per reducer in sorted (term, docID) order; flattening
        # by sorted key preserves the append-only property globally.
        for (term, doc_id), tfs in sorted(raw.items()):
            index.setdefault(term, []).append((doc_id, tfs[0]))
        return index
