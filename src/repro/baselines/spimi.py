"""Single-pass in-memory indexing (Heinz & Zobel [4]).

"Heinz and Zobel further improved this strategy to a single-pass
in-memory indexing version by writing the temporary dictionary to disk as
well at the end of each run.  Dictionary is processed in lexicographical
term order so adjacent terms are likely to share the same prefix and
front-coding compression is employed to reduce the size."

Per memory-bounded block: a fresh dictionary maps term → postings list;
postings append directly (no sort of postings needed — documents arrive
in order).  At block flush, terms are emitted in lexicographic order with
front-coded dictionary entries; the final phase k-way-merges the block
vocabularies.  Counters track block count, front-coded dictionary bytes
(vs raw), and merge work.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.baselines.common import Index, count_tf, parsed_documents
from repro.corpus.collection import Collection

__all__ = ["SPIMIIndexer", "SPIMIStats"]


@dataclass
class SPIMIStats:
    """Work counters for the SPIMI strategy."""

    blocks: int = 0
    postings: int = 0
    dict_bytes_raw: int = 0
    dict_bytes_front_coded: int = 0
    merge_comparisons: int = 0


def _front_coded_size(sorted_terms: list[str]) -> int:
    """Bytes of the block dictionary under front-coding."""
    total = 0
    prev = ""
    for term in sorted_terms:
        lcp = 0
        for a, b in zip(prev, term):
            if a != b:
                break
            lcp += 1
        total += 2 + (len(term) - lcp)  # lcp byte + tail-length byte + tail
        prev = term
    return total


class SPIMIIndexer:
    """Block-based single-pass in-memory indexing."""

    #: Modeled bytes per buffered posting.
    POSTING_BYTES = 12

    def __init__(self, memory_limit_bytes: int = 1 << 20) -> None:
        self.memory_limit_bytes = memory_limit_bytes
        self.stats = SPIMIStats()

    def build(self, collection: Collection, strip_html: bool = True) -> Index:
        blocks: list[list[tuple[str, list[tuple[int, int]]]]] = []
        block: dict[str, list[tuple[int, int]]] = {}
        used = 0

        def flush() -> None:
            nonlocal block, used
            if not block:
                return
            terms = sorted(block)
            self.stats.blocks += 1
            self.stats.dict_bytes_raw += sum(len(t) + 1 for t in terms)
            self.stats.dict_bytes_front_coded += _front_coded_size(terms)
            blocks.append([(t, block[t]) for t in terms])
            block = {}
            used = 0

        for doc_id, terms in parsed_documents(collection, strip_html=strip_html):
            for term, tf in count_tf(terms).items():
                plist = block.get(term)
                if plist is None:
                    plist = []
                    block[term] = plist
                    used += len(term) + 16
                plist.append((doc_id, tf))
                used += self.POSTING_BYTES
                self.stats.postings += 1
            if used >= self.memory_limit_bytes:
                flush()
        flush()

        # Merge block vocabularies (terms are sorted within each block and
        # block postings are docID-ordered; blocks are in document order).
        index: Index = {}
        for term, postings in heapq.merge(*blocks, key=lambda tp: tp[0]):
            self.stats.merge_comparisons += max(0, len(blocks).bit_length() - 1)
            existing = index.setdefault(term, [])
            if existing and postings and postings[0][0] <= existing[-1][0]:
                raise AssertionError(f"blocks out of document order for {term!r}")
            existing.extend(postings)
        return index
