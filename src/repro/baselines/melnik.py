"""Melnik et al.'s software-pipelined indexer stages [5].

"In [5], the indexing process is divided into loading, processing and
flushing; these three stages are pipelined by software in such a way that
loading and flushing are hidden by the processing stage."

This module reproduces both halves of that claim:

- **functionally**, :class:`StagedIndexer` really runs the three stages
  batch by batch (load documents → process into a partial index → flush
  postings to a sink) and produces the same index as every other
  baseline;
- **temporally**, :meth:`StagedIndexer.simulate_schedule` replays the
  measured per-batch stage costs through the discrete-event simulator
  twice — serially and software-pipelined — and reports the overlap win,
  checking Melnik's hiding claim (pipelined wall ≈ total processing time
  when processing dominates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.common import Index, count_tf, parsed_documents
from repro.corpus.collection import Collection
from repro.sim.events import Get, Put, Simulator, Timeout
from repro.sim.resources import Store

__all__ = ["StagedIndexer", "StageTimes", "PipelineComparison"]


@dataclass
class StageTimes:
    """Modeled per-batch stage costs (seconds)."""

    load_s: list[float] = field(default_factory=list)
    process_s: list[float] = field(default_factory=list)
    flush_s: list[float] = field(default_factory=list)

    @property
    def batches(self) -> int:
        return len(self.load_s)

    @property
    def serial_total(self) -> float:
        return sum(self.load_s) + sum(self.process_s) + sum(self.flush_s)


@dataclass
class PipelineComparison:
    """Serial vs pipelined schedule of the same stage costs."""

    serial_s: float
    pipelined_s: float
    processing_s: float

    @property
    def speedup(self) -> float:
        return self.serial_s / self.pipelined_s if self.pipelined_s else 0.0

    @property
    def hiding_efficiency(self) -> float:
        """1.0 when load+flush are completely hidden by processing."""
        if self.pipelined_s <= 0:
            return 0.0
        return min(1.0, self.processing_s / self.pipelined_s)


class StagedIndexer:
    """Loading → processing → flushing, batch by batch."""

    #: Modeled stage rates (bytes/s and tokens/s): loading is remote I/O,
    #: processing is the CPU-bound inversion, flushing writes postings.
    LOAD_BYTES_PER_S = 100e6
    PROCESS_TOKENS_PER_S = 2.2e6
    FLUSH_POSTINGS_PER_S = 12e6

    def __init__(self, docs_per_batch: int = 32) -> None:
        if docs_per_batch < 1:
            raise ValueError("docs_per_batch must be >= 1")
        self.docs_per_batch = docs_per_batch
        self.times = StageTimes()

    # ------------------------------------------------------------------ #
    # Functional pass (with stage-cost measurement)
    # ------------------------------------------------------------------ #

    def build(self, collection: Collection, strip_html: bool = True) -> Index:
        docs = list(parsed_documents(collection, strip_html=strip_html))
        index: Index = {}
        bytes_per_file = collection.uncompressed_bytes / max(1, collection.num_docs)
        for start in range(0, len(docs), self.docs_per_batch):
            batch = docs[start : start + self.docs_per_batch]
            # Stage 1: loading (modeled: remote reads of the raw batch).
            self.times.load_s.append(len(batch) * bytes_per_file / self.LOAD_BYTES_PER_S)
            # Stage 2: processing (real work: invert the batch).
            partial: dict[str, list[tuple[int, int]]] = {}
            tokens = 0
            for doc_id, terms in batch:
                tokens += len(terms)
                for term, tf in count_tf(terms).items():
                    partial.setdefault(term, []).append((doc_id, tf))
            self.times.process_s.append(tokens / self.PROCESS_TOKENS_PER_S)
            # Stage 3: flushing (append the partial postings to the sink).
            postings = sum(len(p) for p in partial.values())
            self.times.flush_s.append(postings / self.FLUSH_POSTINGS_PER_S)
            for term, plist in partial.items():
                existing = index.setdefault(term, [])
                if existing and plist[0][0] <= existing[-1][0]:
                    raise AssertionError("batches out of document order")
                existing.extend(plist)
        return index

    # ------------------------------------------------------------------ #
    # Temporal claim: loading and flushing hide behind processing
    # ------------------------------------------------------------------ #

    def simulate_schedule(self) -> PipelineComparison:
        """Replay the measured stage costs serially and pipelined."""
        times = self.times
        if not times.batches:
            raise RuntimeError("build() must run before simulate_schedule()")

        sim = Simulator()
        loaded = Store("loaded", capacity=1)
        processed = Store("processed", capacity=1)

        def loader():
            for load in times.load_s:
                yield Timeout(load)
                yield Put(loaded, None)

        def processor():
            for proc in times.process_s:
                yield Get(loaded)
                yield Timeout(proc)
                yield Put(processed, None)

        def flusher():
            for flush in times.flush_s:
                yield Get(processed)
                yield Timeout(flush)

        sim.add_process(loader(), "load")
        sim.add_process(processor(), "process")
        sim.add_process(flusher(), "flush")
        pipelined = sim.run()

        return PipelineComparison(
            serial_s=times.serial_total,
            pipelined_s=pipelined,
            processing_s=sum(times.process_s),
        )
