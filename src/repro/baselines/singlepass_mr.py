"""Single-pass MapReduce indexing (McCreadie et al. [8]).

"McCreadie et al. let Map workers emit ``⟨term, partial postings list⟩``
instead to reduce the number of emits and the resultant total transfer
size between Map and Reduce since duplicate term fields are less
frequently sent."

Each map task builds an in-memory partial index for its whole split and
emits one pair per distinct term; reducers merge the partial lists by
document ID.  Compared to Ivory this trades fewer/bigger shuffle records
for a real merge in the reducer.
"""

from __future__ import annotations

import heapq

from repro.baselines.common import Index, count_tf, parsed_documents
from repro.baselines.mapreduce import MapReduceJob, MapReduceStats
from repro.corpus.collection import Collection

__all__ = ["SinglePassMRIndexer"]


class SinglePassMRIndexer:
    """Split-at-a-time single-pass indexing on the functional runtime."""

    def __init__(self, num_reducers: int = 4, docs_per_split: int = 64) -> None:
        self.num_reducers = num_reducers
        self.docs_per_split = docs_per_split
        self.stats: MapReduceStats | None = None

    @staticmethod
    def _map(record: list[tuple[int, list[str]]]):
        """One record = one whole split (list of documents)."""
        partial: dict[str, list[tuple[int, int]]] = {}
        for doc_id, terms in record:
            for term, tf in count_tf(terms).items():
                partial.setdefault(term, []).append((doc_id, tf))
        for term, postings in partial.items():
            yield term, postings

    @staticmethod
    def _reduce(term, partial_lists):
        """Merge docID-sorted partial lists (k-way)."""
        merged = list(heapq.merge(*partial_lists))
        for i in range(1, len(merged)):
            if merged[i][0] <= merged[i - 1][0]:
                raise AssertionError(f"duplicate docID for term {term!r}")
        yield merged

    # ------------------------------------------------------------------ #

    def build(self, collection: Collection, strip_html: bool = True) -> Index:
        docs = list(parsed_documents(collection, strip_html=strip_html))
        splits = [
            docs[i : i + self.docs_per_split] for i in range(0, len(docs), self.docs_per_split)
        ]
        # Each map task receives exactly one record: its whole split.
        job = MapReduceJob(self._map, self._reduce, num_reducers=self.num_reducers)
        raw = job.run([[split] for split in splits])
        self.stats = job.stats
        return {term: lists[0] for term, lists in raw.items()}
