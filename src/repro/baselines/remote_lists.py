"""The Remote-Lists distributed indexer (Ribeiro-Neto et al. [6]).

"The *Remote-Buffer and Remote-Lists* algorithm in [6] is tailored for
distributed systems.  In the first run, the global vocabulary is computed
and distributed to each processor and in the following runs, once a
<term, document ID> tuple is generated, it is sent to a pre-assigned
processor where it is inserted into the destination sorted postings
list."

The simulation runs P logical processors in one process with explicit
message accounting:

- **Run 1 (vocabulary)**: every processor scans its document partition
  and contributes its local vocabulary; term ownership is then assigned
  (hash-partitioned, as the paper's "pre-assigned processor").
- **Run 2 (tuples)**: processors re-scan their partitions and send each
  ``⟨term, docID, tf⟩`` tuple to the term's owner, buffering ``batch_size``
  tuples per destination before flushing (the "remote buffer").  Owners
  insert arriving tuples into *sorted* postings lists — insertion order is
  arbitrary across senders, so unlike our engine's append-only lists this
  pays a binary-search insert per tuple (counted).

Functionally the result is identical to every other baseline; the stats
expose the two costs the single-node pipelined design avoids: network
tuples/bytes and sorted-insert work.
"""

from __future__ import annotations

import bisect
import zlib
from dataclasses import dataclass, field

from repro.baselines.common import Index, count_tf, parsed_documents
from repro.corpus.collection import Collection

__all__ = ["RemoteListsIndexer", "RemoteListsStats"]


@dataclass
class RemoteListsStats:
    """Work and communication counters."""

    processors: int = 0
    vocabulary_messages: int = 0  # run-1 vocabulary exchange
    vocabulary_bytes: int = 0
    tuple_messages: int = 0  # run-2 buffered flushes
    tuples_sent: int = 0
    tuple_bytes: int = 0
    local_tuples: int = 0  # tuples whose owner is the producer
    sorted_insert_comparisons: int = 0
    max_owner_terms: int = 0  # vocabulary balance across owners


@dataclass
class _Processor:
    """One logical node: a document partition + owned postings lists."""

    rank: int
    doc_partition: list[tuple[int, list[str]]] = field(default_factory=list)
    postings: dict[str, list[tuple[int, int]]] = field(default_factory=dict)

    def receive(self, term: str, doc_id: int, tf: int, stats: RemoteListsStats) -> None:
        """Insert one tuple into the destination *sorted* postings list."""
        plist = self.postings.setdefault(term, [])
        # Tuples arrive in arbitrary sender order: binary-search insert.
        pos = bisect.bisect_left(plist, (doc_id, 0))
        stats.sorted_insert_comparisons += max(1, len(plist).bit_length())
        if pos < len(plist) and plist[pos][0] == doc_id:
            raise AssertionError(f"duplicate tuple for {term!r} doc {doc_id}")
        plist.insert(pos, (doc_id, tf))


class RemoteListsIndexer:
    """Two-run distributed indexing with remote buffers."""

    def __init__(self, num_processors: int = 4, batch_size: int = 64) -> None:
        if num_processors < 1:
            raise ValueError("need at least one processor")
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self.num_processors = num_processors
        self.batch_size = batch_size
        self.stats = RemoteListsStats(processors=num_processors)

    def _owner_of(self, term: str) -> int:
        return zlib.crc32(term.encode("utf-8")) % self.num_processors

    # ------------------------------------------------------------------ #

    def build(self, collection: Collection, strip_html: bool = True) -> Index:
        procs = [_Processor(rank=r) for r in range(self.num_processors)]

        # Document partitioning: round-robin by document, the simplest
        # even split over the logical nodes.
        for doc_id, terms in parsed_documents(collection, strip_html=strip_html):
            procs[doc_id % self.num_processors].doc_partition.append((doc_id, terms))

        # ---- Run 1: global vocabulary + ownership ---------------------- #
        global_vocab: set[str] = set()
        for proc in procs:
            local_vocab = {
                term for _, terms in proc.doc_partition for term in terms
            }
            # Each processor ships its local vocabulary to the master and
            # receives the ownership map back (2 messages per processor).
            self.stats.vocabulary_messages += 2
            self.stats.vocabulary_bytes += sum(len(t) + 4 for t in local_vocab)
            global_vocab |= local_vocab
        owner_terms = [0] * self.num_processors
        for term in global_vocab:
            owner_terms[self._owner_of(term)] += 1
        self.stats.max_owner_terms = max(owner_terms, default=0)

        # ---- Run 2: tuple routing into remote sorted lists ------------- #
        for proc in procs:
            # One remote buffer per destination ("Remote-Buffer").
            buffers: list[list[tuple[str, int, int]]] = [
                [] for _ in range(self.num_processors)
            ]

            def flush(dest: int) -> None:
                if not buffers[dest]:
                    return
                self.stats.tuple_messages += 1
                for term, doc_id, tf in buffers[dest]:
                    procs[dest].receive(term, doc_id, tf, self.stats)
                buffers[dest].clear()

            for doc_id, terms in proc.doc_partition:
                for term, tf in count_tf(terms).items():
                    dest = self._owner_of(term)
                    if dest == proc.rank:
                        self.stats.local_tuples += 1
                        procs[dest].receive(term, doc_id, tf, self.stats)
                        continue
                    buffers[dest].append((term, doc_id, tf))
                    self.stats.tuples_sent += 1
                    self.stats.tuple_bytes += len(term) + 12
                    if len(buffers[dest]) >= self.batch_size:
                        flush(dest)
            for dest in range(self.num_processors):
                flush(dest)

        # ---- Gather: union of the per-owner dictionaries ---------------- #
        index: Index = {}
        for proc in procs:
            for term, plist in proc.postings.items():
                if term in index:
                    raise AssertionError(f"term {term!r} owned by two processors")
                index[term] = plist
        return index
