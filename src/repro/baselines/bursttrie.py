"""Burst tries (Heinz, Zobel & Williams [10]).

"A similar data structure was used in [10] to achieve compact size and
fast search; however in our case we will exploit this hybrid data
structure to achieve a high degree of parallelism" — the paper's hybrid
trie + B-tree forest is a fixed-depth, statically-burst variant of the
burst trie.  This baseline implements the original *adaptive* structure
so the dictionary ablation can compare the two:

- access trie nodes hold one child pointer per byte value;
- leaves are unsorted *containers* (the classic "list" container with
  move-to-front on access);
- a container that exceeds ``burst_threshold`` records *bursts*: it is
  replaced by a trie node whose children are new containers keyed by the
  next byte.

Work counters expose what the ablation needs: trie-node hops, container
scans (string comparisons), bursts, and structure sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BurstTrie", "BurstTrieStats"]


@dataclass
class BurstTrieStats:
    """Work counters for the burst trie."""

    inserts: int = 0
    duplicate_hits: int = 0
    trie_hops: int = 0
    container_scans: int = 0  # string comparisons inside containers
    bursts: int = 0
    move_to_fronts: int = 0


class _Container:
    """An unsorted leaf container with move-to-front."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        # (remaining suffix bytes, term_id), newest/hottest first.
        self.entries: list[tuple[bytes, int]] = []


class _TrieNode:
    """An access-trie node: children keyed by the next byte.

    ``eow_id`` holds the term id of the string that ends exactly here
    (the burst-trie "empty string in container" case).
    """

    __slots__ = ("children", "eow_id")

    def __init__(self) -> None:
        self.children: dict[int, "_TrieNode | _Container"] = {}
        self.eow_id: int | None = None


@dataclass
class BurstTrie:
    """An adaptive burst trie over byte strings."""

    burst_threshold: int = 35
    stats: BurstTrieStats = field(default_factory=BurstTrieStats)

    def __post_init__(self) -> None:
        if self.burst_threshold < 1:
            raise ValueError("burst threshold must be >= 1")
        self._root = _TrieNode()
        self._next_id = 0
        self._count = 0

    # ------------------------------------------------------------------ #

    def _alloc(self) -> int:
        tid = self._next_id
        self._next_id += 1
        self._count += 1
        return tid

    def insert(self, term: bytes) -> tuple[int, bool]:
        """Insert; returns ``(term id, created)``."""
        node = self._root
        depth = 0
        while True:
            if depth == len(term):
                # The string is exhausted inside the access trie.
                if node.eow_id is None:
                    node.eow_id = self._alloc()
                    self.stats.inserts += 1
                    return node.eow_id, True
                self.stats.duplicate_hits += 1
                return node.eow_id, False
            byte = term[depth]
            child = node.children.get(byte)
            if child is None:
                child = _Container()
                node.children[byte] = child
            if isinstance(child, _TrieNode):
                node = child
                depth += 1
                self.stats.trie_hops += 1
                continue
            return self._insert_into_container(node, byte, child, term[depth + 1 :])

    def _insert_into_container(
        self, parent: _TrieNode, byte: int, container: _Container, rest: bytes
    ) -> tuple[int, bool]:
        for i, (suffix, tid) in enumerate(container.entries):
            self.stats.container_scans += 1
            if suffix == rest:
                # Move-to-front: hot terms float to the head, the classic
                # burst-trie access heuristic.
                if i:
                    container.entries.insert(0, container.entries.pop(i))
                    self.stats.move_to_fronts += 1
                self.stats.duplicate_hits += 1
                return tid, False
        tid = self._alloc()
        container.entries.insert(0, (rest, tid))
        self.stats.inserts += 1
        if len(container.entries) > self.burst_threshold:
            self._burst(parent, byte, container)
        return tid, True

    def _burst(self, parent: _TrieNode, byte: int, container: _Container) -> None:
        """Replace a full container by a trie node of sub-containers."""
        self.stats.bursts += 1
        node = _TrieNode()
        for suffix, tid in container.entries:
            if not suffix:
                node.eow_id = tid
                continue
            sub = node.children.get(suffix[0])
            if sub is None:
                sub = _Container()
                node.children[suffix[0]] = sub
            assert isinstance(sub, _Container)
            sub.entries.append((suffix[1:], tid))
        parent.children[byte] = node

    # ------------------------------------------------------------------ #

    def lookup(self, term: bytes) -> int | None:
        """Term id, or ``None`` (no move-to-front on misses)."""
        node = self._root
        depth = 0
        while True:
            if depth == len(term):
                return node.eow_id
            child = node.children.get(term[depth])
            if child is None:
                return None
            if isinstance(child, _TrieNode):
                node = child
                depth += 1
                continue
            rest = term[depth + 1 :]
            for suffix, tid in child.entries:
                self.stats.container_scans += 1
                if suffix == rest:
                    return tid
            return None

    def items(self) -> list[tuple[bytes, int]]:
        """All ``(term, id)`` pairs in lexicographic order."""
        out: list[tuple[bytes, int]] = []

        def recurse(node: _TrieNode, prefix: bytes) -> None:
            if node.eow_id is not None:
                out.append((prefix, node.eow_id))
            for byte in sorted(node.children):
                child = node.children[byte]
                head = prefix + bytes([byte])
                if isinstance(child, _TrieNode):
                    recurse(child, head)
                else:
                    for suffix, tid in sorted(child.entries):
                        out.append((head + suffix, tid))

        recurse(self._root, b"")
        return out

    def structure_sizes(self) -> dict[str, int]:
        """Trie-node / container / entry counts (ablation reporting)."""
        nodes = containers = entries = 0
        stack: list[_TrieNode] = [self._root]
        while stack:
            node = stack.pop()
            nodes += 1
            for child in node.children.values():
                if isinstance(child, _TrieNode):
                    stack.append(child)
                else:
                    containers += 1
                    entries += len(child.entries)
        return {"trie_nodes": nodes, "containers": containers, "entries": entries}

    def __len__(self) -> int:
        return self._count
