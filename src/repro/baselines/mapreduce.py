"""A functional MapReduce runtime (Dean & Ghemawat [7]), single process.

Faithful to the programming model the Section II baselines assume:

- inputs are partitioned into *splits*, one map task per split;
- map tasks emit ``(key, value)`` pairs; a partition function routes each
  key to one of R reduce tasks;
- the framework groups pairs by key **in sorted key order** per reducer
  (the property Lin et al. exploit so postings "arrive at Reduce worker
  in order");
- reduce receives ``(key, [values])`` and emits output records.

The runtime counts everything a cluster cost model needs (map input
records, emitted pairs, shuffle bytes, per-task maxima) in
:class:`MapReduceStats`; :mod:`repro.baselines.cluster` prices those
counters on the Table VII platforms for Fig 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

__all__ = ["MapReduceJob", "MapReduceStats"]

MapFn = Callable[[Any], Iterable[tuple[Any, Any]]]
ReduceFn = Callable[[Any, list[Any]], Iterable[Any]]


def _estimate_bytes(obj: Any) -> int:
    """Rough serialized size of a key/value (shuffle accounting)."""
    if isinstance(obj, str):
        return len(obj) + 4
    if isinstance(obj, bytes):
        return len(obj) + 4
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, (tuple, list)):
        return 4 + sum(_estimate_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return 4 + sum(_estimate_bytes(k) + _estimate_bytes(v) for k, v in obj.items())
    return 16


@dataclass
class MapReduceStats:
    """Work counters for one job execution."""

    map_tasks: int = 0
    reduce_tasks: int = 0
    map_input_records: int = 0
    map_output_pairs: int = 0
    shuffle_bytes: int = 0
    reduce_input_groups: int = 0
    reduce_output_records: int = 0
    max_map_pairs: int = 0  # busiest map task (stragglers)
    max_reduce_pairs: int = 0  # busiest reduce task
    sort_comparisons: int = 0  # framework's per-reducer key sort


class MapReduceJob:
    """One configured MapReduce job."""

    def __init__(
        self,
        map_fn: MapFn,
        reduce_fn: ReduceFn,
        num_reducers: int = 4,
        partition_fn: Callable[[Any], int] | None = None,
        combiner_fn: ReduceFn | None = None,
    ) -> None:
        if num_reducers < 1:
            raise ValueError("need at least one reducer")
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.num_reducers = num_reducers
        self.partition_fn = partition_fn if partition_fn is not None else self._default_partition
        self.combiner_fn = combiner_fn
        self.stats = MapReduceStats()

    def _default_partition(self, key: Any) -> int:
        # Stable across processes (unlike hash() on str with PYTHONHASHSEED).
        import zlib

        data = repr(key).encode("utf-8")
        return zlib.crc32(data) % self.num_reducers

    # ------------------------------------------------------------------ #

    def run(self, splits: Sequence[Iterable[Any]]) -> dict[Any, list[Any]]:
        """Execute the job; returns ``{key: [reduce outputs]}``.

        ``splits`` is the list of input splits; each element of a split is
        one map-input record.
        """
        stats = self.stats
        stats.map_tasks = len(splits)
        stats.reduce_tasks = self.num_reducers
        partitions: list[list[tuple[Any, Any]]] = [[] for _ in range(self.num_reducers)]

        # ---- map phase ------------------------------------------------ #
        for split in splits:
            task_pairs = 0
            buffered: list[tuple[Any, Any]] = []
            for record in split:
                stats.map_input_records += 1
                for key, value in self.map_fn(record):
                    buffered.append((key, value))
                    task_pairs += 1
            if self.combiner_fn is not None:
                buffered = self._combine(buffered)
            for key, value in buffered:
                r = self.partition_fn(key)
                partitions[r].append((key, value))
                stats.shuffle_bytes += _estimate_bytes(key) + _estimate_bytes(value)
            stats.map_output_pairs += len(buffered)
            stats.max_map_pairs = max(stats.max_map_pairs, task_pairs)

        # ---- shuffle + sort + reduce ---------------------------------- #
        output: dict[Any, list[Any]] = {}
        for r in range(self.num_reducers):
            pairs = partitions[r]
            n = len(pairs)
            # The framework sorts by key; count ~n log2 n comparisons.
            pairs.sort(key=lambda kv: kv[0])
            if n > 1:
                stats.sort_comparisons += int(n * max(1, n.bit_length() - 1))
            stats.max_reduce_pairs = max(stats.max_reduce_pairs, n)
            i = 0
            while i < n:
                key = pairs[i][0]
                j = i
                values = []
                while j < n and pairs[j][0] == key:
                    values.append(pairs[j][1])
                    j += 1
                stats.reduce_input_groups += 1
                for out in self.reduce_fn(key, values):
                    output.setdefault(key, []).append(out)
                    stats.reduce_output_records += 1
                i = j
        return output

    def _combine(self, buffered: list[tuple[Any, Any]]) -> list[tuple[Any, Any]]:
        """Run the combiner on one map task's output."""
        by_key: dict[Any, list[Any]] = {}
        order: list[Any] = []
        for key, value in buffered:
            if key not in by_key:
                order.append(key)
            by_key.setdefault(key, []).append(value)
        out: list[tuple[Any, Any]] = []
        for key in order:
            for value in self.combiner_fn(key, by_key[key]):  # type: ignore[misc]
                out.append((key, value))
        return out
