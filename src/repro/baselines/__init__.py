"""Baseline indexers from Section II and the Fig 12 comparison targets.

Every baseline builds a *functionally identical* index (the same
``term → [(doc, tf), …]`` map) from the same parsed token streams, so the
test suite can assert equivalence against the heterogeneous engine; what
differs is the algorithmic structure and therefore the work/cost profile:

- :mod:`repro.baselines.mapreduce` — a functional single-process
  MapReduce runtime with shuffle/sort semantics and work counters [7].
- :mod:`repro.baselines.ivory` — Lin et al.'s Ivory scheme [9]:
  ``⟨(term, docID), tf⟩`` pairs, postings appended in shuffle order.
- :mod:`repro.baselines.singlepass_mr` — McCreadie et al.'s single-pass
  scheme [8]: maps emit ``⟨term, partial postings list⟩``.
- :mod:`repro.baselines.sortbased` — Moffat & Bell's sort-based indexing
  with bounded memory and run merging [3].
- :mod:`repro.baselines.spimi` — Heinz & Zobel's single-pass in-memory
  indexing with per-block dictionaries [4].
- :mod:`repro.baselines.linkedlist` — Harman & Candela's in-memory
  linked postings with a final traversal pass [2].
- :mod:`repro.baselines.remote_lists` — Ribeiro-Neto et al.'s
  Remote-Buffer/Remote-Lists distributed indexer [6] on a simulated
  message-passing cluster.
- :mod:`repro.baselines.melnik` — Melnik et al.'s load/process/flush
  software pipeline [5], with the hiding claim checked on the DES.
- :mod:`repro.baselines.dictionaries` — dictionary ablation baselines: a
  hash-table dictionary and a single global B-tree (what the hybrid
  trie+forest replaces).
- :mod:`repro.baselines.bursttrie` — the adaptive burst trie of Heinz,
  Zobel & Williams [10], the ancestor of the paper's fixed-depth hybrid.
- :mod:`repro.baselines.cluster` — Table VII platform descriptions and
  the cluster cost model behind Fig 12.
"""

from repro.baselines.cluster import (
    IVORY_PLATFORM,
    SP_MR_PLATFORM,
    THIS_PAPER_PLATFORM,
    ClusterModel,
    ClusterPlatform,
)
from repro.baselines.bursttrie import BurstTrie
from repro.baselines.dictionaries import GlobalBTreeDictionary, HashDictionary
from repro.baselines.ivory import IvoryIndexer
from repro.baselines.linkedlist import LinkedListIndexer
from repro.baselines.mapreduce import MapReduceJob, MapReduceStats
from repro.baselines.melnik import StagedIndexer
from repro.baselines.remote_lists import RemoteListsIndexer
from repro.baselines.singlepass_mr import SinglePassMRIndexer
from repro.baselines.sortbased import SortBasedIndexer
from repro.baselines.spimi import SPIMIIndexer

__all__ = [
    "MapReduceJob",
    "MapReduceStats",
    "IvoryIndexer",
    "SinglePassMRIndexer",
    "RemoteListsIndexer",
    "StagedIndexer",
    "SortBasedIndexer",
    "SPIMIIndexer",
    "LinkedListIndexer",
    "HashDictionary",
    "GlobalBTreeDictionary",
    "BurstTrie",
    "ClusterPlatform",
    "ClusterModel",
    "THIS_PAPER_PLATFORM",
    "IVORY_PLATFORM",
    "SP_MR_PLATFORM",
]
