"""Sort-based indexing with bounded memory (Moffat & Bell [3]).

"Their strategy builds temporary postings lists in memory until the
memory space is exhausted, sorts them by term and document ID and then
writes the result to disk for each run.  When all runs are completed, it
merges all these intermediate results into the final postings lists
file."

We keep an in-memory buffer of ``(term, doc, tf)`` triples; when the
modeled memory budget is exceeded the buffer is sorted and flushed as a
run; a final k-way merge produces the index.  Runs live in memory as
sorted lists (the I/O layer is not the point of this baseline), but all
the *work* — triple buffering, per-run sorts, the merge — is real and
counted, so the cost comparison against the single-pass engine is fair.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.baselines.common import Index, count_tf, parsed_documents
from repro.corpus.collection import Collection

__all__ = ["SortBasedIndexer", "SortBasedStats"]


@dataclass
class SortBasedStats:
    """Work counters: the cost drivers of sort-based indexing."""

    triples: int = 0
    runs: int = 0
    sort_comparisons: int = 0
    merge_comparisons: int = 0
    flushed_bytes: int = 0


class SortBasedIndexer:
    """Bounded-memory sort-based indexing."""

    #: Modeled bytes per in-memory triple (term ptr + doc + tf + slack).
    TRIPLE_BYTES = 24

    def __init__(self, memory_limit_bytes: int = 1 << 20) -> None:
        if memory_limit_bytes < self.TRIPLE_BYTES * 16:
            raise ValueError("memory limit too small to hold a sort buffer")
        self.memory_limit_bytes = memory_limit_bytes
        self.stats = SortBasedStats()

    def build(self, collection: Collection, strip_html: bool = True) -> Index:
        runs: list[list[tuple[str, int, int]]] = []
        buffer: list[tuple[str, int, int]] = []
        capacity = self.memory_limit_bytes // self.TRIPLE_BYTES

        def flush() -> None:
            if not buffer:
                return
            n = len(buffer)
            buffer.sort()  # by (term, doc)
            self.stats.sort_comparisons += int(n * max(1, n.bit_length() - 1))
            self.stats.runs += 1
            self.stats.flushed_bytes += n * self.TRIPLE_BYTES
            runs.append(buffer.copy())
            buffer.clear()

        for doc_id, terms in parsed_documents(collection, strip_html=strip_html):
            for term, tf in count_tf(terms).items():
                buffer.append((term, doc_id, tf))
                self.stats.triples += 1
                if len(buffer) >= capacity:
                    flush()
        flush()

        index: Index = {}
        prev: tuple[str, int] | None = None
        for term, doc_id, tf in heapq.merge(*runs):
            self.stats.merge_comparisons += max(0, len(runs).bit_length() - 1)
            if prev == (term, doc_id):
                raise AssertionError(f"duplicate (term, doc) pair: {term!r}, {doc_id}")
            prev = (term, doc_id)
            index.setdefault(term, []).append((doc_id, tf))
        return index
