"""Shared plumbing for the baseline indexers.

All baselines consume the same parsed document stream — ``(global doc ID,
[stemmed terms in order])`` — produced by the very parser the engine uses,
so index differences can only come from the indexing algorithms
themselves.  The common output form is a plain ``{term: [(doc, tf), …]}``
map, which the tests compare across every implementation.
"""

from __future__ import annotations

from typing import Iterator

from repro.corpus.collection import Collection
from repro.parsing.parser import Parser

__all__ = ["parsed_documents", "count_tf", "Index"]

Index = dict[str, list[tuple[int, int]]]


def parsed_documents(
    collection: Collection, strip_html: bool = True
) -> Iterator[tuple[int, list[str]]]:
    """Yield ``(global doc id, [terms])`` in collection order.

    Uses the engine's parser with regrouping *disabled* so terms stay in
    document order — the natural input shape for the classical baselines.
    """
    parser = Parser(parser_id=0, strip_html=strip_html, regroup=False)
    trie = parser.trie
    doc_offset = 0
    for seq, path in enumerate(collection.files):
        parsed = parser.parse_file(path, sequence=seq)
        assert parsed.batch.ungrouped is not None
        for local_doc, tokens in parsed.batch.ungrouped:
            terms = [trie.reconstruct(cidx, suffix.decode("utf-8")) for cidx, suffix in tokens]
            yield doc_offset + local_doc, terms
        doc_offset += parsed.batch.num_docs


def count_tf(terms: list[str]) -> dict[str, int]:
    """Term frequencies within one document."""
    tf: dict[str, int] = {}
    for term in terms:
        tf[term] = tf.get(term, 0) + 1
    return tf
