"""Table VII platforms and the cluster cost model behind Fig 12.

The paper compares its single heterogeneous node against two published
MapReduce indexers on their own clusters:

====================  ==========================  =========================
                      Ivory MapReduce [9]          Single-Pass MapReduce [8]
====================  ==========================  =========================
Nodes                 99                           8
Cores per node        2 (single-core CPUs)         4 (1 reserved for HDFS)
Clock                 2.8 GHz                      2.4 GHz
RAM per node          4 GB                         4 GB
Dataset               ClueWeb09 seg. 1             .GOV2
Filesystem            HDFS                         HDFS
====================  ==========================  =========================

Neither paper publishes a full cost breakdown, so the model prices the
*functional* MapReduce work (HDFS reads, map CPU, per-record framework
handling, shuffle, sort, replicated writes, task scheduling) and applies a
single fitted ``hadoop_efficiency`` factor — the same honesty device as
the GPU chains constant — chosen so Ivory lands in the 150–200 MB/s band
the paper's Fig 12 implies (below this paper's 204 MB/s no-GPU result)
and SP-MR in the tens of MB/s.  EXPERIMENTS.md records the assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "ClusterPlatform",
    "MRDatasetStats",
    "ClusterModel",
    "THIS_PAPER_PLATFORM",
    "IVORY_PLATFORM",
    "SP_MR_PLATFORM",
    "CLUEWEB09_MR_STATS",
    "GOV2_MR_STATS",
]


@dataclass(frozen=True)
class ClusterPlatform:
    """One row of Table VII."""

    name: str
    nodes: int
    cores_per_node: int
    reserved_cores_per_node: int = 0
    clock_ghz: float = 2.8
    ram_gb_per_node: int = 4
    network_gbps: float = 1.0
    filesystem: str = "HDFS"
    accelerators: str = ""

    @property
    def usable_cores(self) -> int:
        return self.nodes * (self.cores_per_node - self.reserved_cores_per_node)

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node


THIS_PAPER_PLATFORM = ClusterPlatform(
    name="This paper",
    nodes=1,
    cores_per_node=8,
    clock_ghz=2.8,
    ram_gb_per_node=24,
    filesystem="Remote FS via 1Gb Ethernet",
    accelerators="2x NVIDIA Tesla C1060",
)

IVORY_PLATFORM = ClusterPlatform(
    name="Ivory MapReduce",
    nodes=99,
    cores_per_node=2,
    clock_ghz=2.8,
    ram_gb_per_node=4,
)

SP_MR_PLATFORM = ClusterPlatform(
    name="Single-Pass MapReduce",
    nodes=8,
    cores_per_node=4,
    reserved_cores_per_node=1,
    clock_ghz=2.4,
    ram_gb_per_node=4,
)


@dataclass(frozen=True)
class MRDatasetStats:
    """Aggregate statistics the cluster model prices a job from."""

    name: str
    uncompressed_bytes: float
    raw_tokens: float
    tokens: float  # post stop-word
    terms: float
    docs: float

    @property
    def postings(self) -> float:
        """Distinct (term, doc) pairs — Ivory's emit count."""
        return self.tokens * 0.62


#: ClueWeb09 first English segment (Table III + the 35% stop-word rate).
CLUEWEB09_MR_STATS = MRDatasetStats(
    name="ClueWeb09 seg.1",
    uncompressed_bytes=1422 * 1024**3,
    raw_tokens=32_644_508_255 / 0.65,
    tokens=32_644_508_255,
    terms=84_799_475,
    docs=50_220_423,
)

#: .GOV2 (TREC): 426GB, ~25M documents of cleaner governmental text.
GOV2_MR_STATS = MRDatasetStats(
    name=".GOV2",
    uncompressed_bytes=426 * 1024**3,
    raw_tokens=17.3e9,
    tokens=11.2e9,
    terms=35e6,
    docs=25_205_179,
)


@dataclass(frozen=True)
class ClusterCostConstants:
    """Per-operation costs for 2009-era Hadoop clusters (fitted)."""

    hdfs_read_bytes_per_s_per_node: float = 80e6
    hdfs_write_bytes_per_s_per_node: float = 60e6
    hdfs_replication: int = 3
    map_s_per_raw_token: float = 1.2e-6  # JVM-based parse + stem
    framework_s_per_record: float = 1.1e-6  # serialize, spill, merge
    sort_s_per_comparison: float = 80e-9
    split_bytes: int = 128 * 1024 * 1024
    task_overhead_s: float = 1.5
    concurrent_tasks_per_node: int = 2
    #: Fitted end-to-end efficiency of the era's Hadoop deployments
    #: (stragglers, barriers, disk contention, JVM overheads).
    hadoop_efficiency: float = 0.12


class ClusterModel:
    """Prices a MapReduce indexing job on a Table VII platform."""

    def __init__(
        self,
        platform: ClusterPlatform,
        constants: ClusterCostConstants | None = None,
    ) -> None:
        self.platform = platform
        self.constants = constants if constants is not None else ClusterCostConstants()

    # ------------------------------------------------------------------ #

    def index_time_breakdown(
        self, dataset: MRDatasetStats, scheme: str = "ivory"
    ) -> dict[str, float]:
        """Per-phase seconds for indexing ``dataset`` with ``scheme``.

        ``scheme``: ``"ivory"`` (⟨(term, doc), tf⟩ pairs [9]) or
        ``"single-pass"`` (⟨term, partial postings⟩ [8]).
        """
        if scheme not in ("ivory", "single-pass"):
            raise ValueError(f"unknown scheme {scheme!r}")
        p, c = self.platform, self.constants
        cores = p.usable_cores
        clock_scale = 2.8 / p.clock_ghz

        if scheme == "ivory":
            emits = dataset.postings
            record_bytes = 18.0  # (term, doc) key + tf value
        else:
            # One emit per distinct term per split; partial lists amortize
            # the term strings ("duplicate term fields are less frequently
            # sent") but carry the same postings payload.
            splits = dataset.uncompressed_bytes / c.split_bytes
            emits = min(dataset.postings, splits * dataset.terms ** 0.72)
            record_bytes = dataset.postings * 10.0 / max(1.0, emits) + 12.0

        read_s = dataset.uncompressed_bytes / (c.hdfs_read_bytes_per_s_per_node * p.nodes)
        map_cpu_s = dataset.raw_tokens * c.map_s_per_raw_token * clock_scale / cores
        record_s = emits * c.framework_s_per_record * clock_scale / cores
        shuffle_bytes = emits * record_bytes
        shuffle_s = shuffle_bytes / (p.nodes * p.network_gbps * 125e6)
        sort_s = (
            emits
            * max(1.0, math.log2(max(2.0, emits / max(1, cores))))
            * c.sort_s_per_comparison
            * clock_scale
            / cores
        )
        output_bytes = dataset.postings * 2.5  # varbyte-compressed postings
        write_s = output_bytes * c.hdfs_replication / (
            c.hdfs_write_bytes_per_s_per_node * p.nodes
        )
        tasks = dataset.uncompressed_bytes / c.split_bytes
        schedule_s = tasks * c.task_overhead_s / (p.nodes * c.concurrent_tasks_per_node)

        raw_total = read_s + map_cpu_s + record_s + shuffle_s + sort_s + write_s + schedule_s
        total = raw_total / c.hadoop_efficiency
        return {
            "hdfs_read_s": read_s,
            "map_cpu_s": map_cpu_s,
            "framework_records_s": record_s,
            "shuffle_s": shuffle_s,
            "sort_s": sort_s,
            "hdfs_write_s": write_s,
            "scheduling_s": schedule_s,
            "raw_total_s": raw_total,
            "total_s": total,
        }

    def throughput_mbps(self, dataset: MRDatasetStats, scheme: str = "ivory") -> float:
        """Fig 12's y-axis: uncompressed MB per second of total job time."""
        total = self.index_time_breakdown(dataset, scheme)["total_s"]
        return dataset.uncompressed_bytes / total / (1024 * 1024)
