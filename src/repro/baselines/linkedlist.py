"""Linked-list postings with a final traversal pass (Harman & Candela [2]).

"Postings lists are written as singly linked lists to disk and the
dictionary containing the locations of the linked lists remains in main
memory; however, another run is required as post-processing to traverse
all these linked lists to get the final contiguous postings lists for all
terms."

We materialize the linked structure literally: a flat ``nodes`` arena of
``(doc, tf, next_index)`` cells — each term's postings are chained
*backwards* (each new cell points at the previous head, as an append-only
disk log forces), and the post-processing pass walks every chain and
reverses it into the contiguous list.  Counters expose the extra
traversal work the paper's Section II cites as this scheme's weakness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import Index, count_tf, parsed_documents
from repro.corpus.collection import Collection

__all__ = ["LinkedListIndexer", "LinkedListStats"]


@dataclass
class LinkedListStats:
    """Work counters for the linked-list strategy."""

    cells: int = 0
    traversal_steps: int = 0  # post-processing pointer chases
    terms: int = 0


class LinkedListIndexer:
    """Append-only linked postings + post-processing traversal."""

    def __init__(self) -> None:
        self.stats = LinkedListStats()

    def build(self, collection: Collection, strip_html: bool = True) -> Index:
        nodes: list[tuple[int, int, int]] = []  # (doc, tf, prev_index)
        heads: dict[str, int] = {}  # term → index of newest cell

        for doc_id, terms in parsed_documents(collection, strip_html=strip_html):
            for term, tf in count_tf(terms).items():
                prev = heads.get(term, -1)
                heads[term] = len(nodes)
                nodes.append((doc_id, tf, prev))
                self.stats.cells += 1

        # Post-processing run: chase every chain, reverse into final lists.
        index: Index = {}
        for term, head in heads.items():
            chain: list[tuple[int, int]] = []
            cursor = head
            while cursor != -1:
                doc_id, tf, cursor = nodes[cursor]
                chain.append((doc_id, tf))
                self.stats.traversal_steps += 1
            chain.reverse()
            index[term] = chain
            self.stats.terms += 1
        return index
