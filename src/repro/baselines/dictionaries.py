"""Dictionary ablation baselines: hash table and single global B-tree.

Section III.B argues for the hybrid trie + B-tree forest against two
alternatives:

- a **hash function** "will still require comparisons and searches on
  full strings and hence won't be as effective as the trie" —
  :class:`HashDictionary` counts exactly those full-string comparisons;
- a **single big B-tree** loses the parallelism (every thread contends on
  one root; locks are "extremely high" overhead) and is *taller*: the
  height of an n-key B-tree is ``log_t((n+1)/2)``, so one tree over the
  whole vocabulary is deeper than any per-collection tree —
  :class:`GlobalBTreeDictionary` measures the extra depth and simulates
  lock contention for a given number of writer threads.

Both produce term ids compatible with the engine's postings machinery so
the ablation benchmark can hold everything else constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dictionary.btree import BTree
from repro.dictionary.layout import DEFAULT_DEGREE
from repro.dictionary.string_store import StringStore

__all__ = ["HashDictionary", "GlobalBTreeDictionary"]


@dataclass
class HashStats:
    """Comparison accounting for the hash dictionary."""

    probes: int = 0
    full_string_comparisons: int = 0
    compared_bytes: int = 0


class HashDictionary:
    """Open-addressing hash dictionary over full term strings.

    A real open-addressing table with linear probing (power-of-two
    capacity, 0.7 load factor) so probe sequences and full-string
    comparisons are measured, not modeled.
    """

    def __init__(self, initial_capacity: int = 1 << 10) -> None:
        cap = 1
        while cap < initial_capacity:
            cap <<= 1
        self._keys: list[bytes | None] = [None] * cap
        self._values: list[int] = [0] * cap
        self._count = 0
        self._next_id = 0
        self.stats = HashStats()

    @staticmethod
    def _hash(key: bytes) -> int:
        # FNV-1a, as a stand-in for the paper-era string hashes.
        h = 0xCBF29CE484222325
        for b in key:
            h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h

    def _find_slot(self, key: bytes) -> int:
        mask = len(self._keys) - 1
        i = self._hash(key) & mask
        while True:
            self.stats.probes += 1
            existing = self._keys[i]
            if existing is None:
                return i
            # The hash narrows candidates but equality still needs the
            # full string — the comparison cost the trie avoids.
            self.stats.full_string_comparisons += 1
            self.stats.compared_bytes += min(len(existing), len(key))
            if existing == key:
                return i
            i = (i + 1) & mask

    def insert(self, term: bytes) -> tuple[int, bool]:
        """Insert; returns ``(term id, created)``."""
        if (self._count + 1) * 10 > len(self._keys) * 7:
            self._grow()
        i = self._find_slot(term)
        if self._keys[i] is not None:
            return self._values[i], False
        self._keys[i] = term
        self._values[i] = self._next_id
        self._next_id += 1
        self._count += 1
        return self._values[i], True

    def lookup(self, term: bytes) -> int | None:
        i = self._find_slot(term)
        return self._values[i] if self._keys[i] is not None else None

    def _grow(self) -> None:
        old = [(k, v) for k, v in zip(self._keys, self._values) if k is not None]
        self._keys = [None] * (len(self._keys) * 2)
        self._values = [0] * len(self._keys)
        for k, v in old:
            i = self._find_slot(k)
            self._keys[i] = k
            self._values[i] = v

    def __len__(self) -> int:
        return self._count


@dataclass
class GlobalLockStats:
    """Simulated lock contention for concurrent writers."""

    acquisitions: int = 0
    contended_acquisitions: int = 0


class GlobalBTreeDictionary:
    """One big B-tree over full terms, guarded by a single lock.

    ``writer_threads`` models the paper's contention argument: with ``T``
    concurrent writers hitting one tree, an acquisition is contended with
    probability ``(T − 1)/T`` (hand-over-hand locking of a single hot
    root); the ablation bench converts contended acquisitions into stall
    time.
    """

    def __init__(self, degree: int = DEFAULT_DEGREE, writer_threads: int = 1) -> None:
        if writer_threads < 1:
            raise ValueError("need at least one writer thread")
        self.tree = BTree(store=StringStore(), degree=degree)
        self.writer_threads = writer_threads
        self.lock_stats = GlobalLockStats()
        self._turn = 0

    def insert(self, term: bytes) -> tuple[int, bool]:
        self.lock_stats.acquisitions += 1
        # Round-robin writer interleaving: all but one acquisition in each
        # round of T writers finds the lock held.
        self._turn = (self._turn + 1) % self.writer_threads
        if self.writer_threads > 1 and self._turn != 0:
            self.lock_stats.contended_acquisitions += 1
        return self.tree.insert(term)

    def lookup(self, term: bytes) -> int | None:
        return self.tree.search(term)

    def height(self) -> int:
        return self.tree.height()

    def __len__(self) -> int:
        return len(self.tree)
