"""MSB-first bit-level I/O.

The postings compressors (:mod:`repro.postings.compression`) need sub-byte
codes: Elias-γ stores a unary length prefix followed by the binary remainder,
and Golomb codes store a unary quotient followed by a truncated-binary
remainder.  Both are classical inverted-file codecs referenced in Section II
of the paper.

The writer packs bits most-significant-bit first into a :class:`bytearray`;
the reader consumes the same layout.  Both are pure Python but operate on a
cached integer accumulator so the per-bit overhead stays small; the
bulk helpers (:meth:`BitWriter.write_bits` / :meth:`BitReader.read_bits`)
move whole fields at a time and are what the codecs actually call.
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates bits MSB-first and renders them as :class:`bytes`.

    The final byte is zero-padded on the right.  Codecs that need an
    unambiguous end must encode their own length or count up front (all of
    ours store the number of entries in a header).
    """

    __slots__ = ("_buf", "_acc", "_nacc")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._acc = 0  # bit accumulator, MSB side is the oldest bit
        self._nacc = 0  # number of valid bits in the accumulator

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self.write_bits(bit & 1, 1)

    def write_bits(self, value: int, nbits: int) -> None:
        """Append ``nbits`` bits of ``value`` (MSB of the field first)."""
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        if value < 0:
            raise ValueError(f"value must be >= 0, got {value}")
        if nbits and value >> nbits:
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nacc += nbits
        # Flush whole bytes out of the accumulator.
        while self._nacc >= 8:
            self._nacc -= 8
            self._buf.append((self._acc >> self._nacc) & 0xFF)
        self._acc &= (1 << self._nacc) - 1

    def write_unary(self, n: int) -> None:
        """Append ``n`` in unary: ``n`` one-bits then a terminating zero."""
        if n < 0:
            raise ValueError(f"unary value must be >= 0, got {n}")
        # Write in chunks so enormous n cannot build a huge accumulator shift.
        remaining = n
        while remaining >= 32:
            self.write_bits(0xFFFFFFFF, 32)
            remaining -= 32
        self.write_bits(((1 << remaining) - 1) << 1, remaining + 1)

    def getvalue(self) -> bytes:
        """Return the packed bytes, zero-padding the trailing partial byte."""
        out = bytes(self._buf)
        if self._nacc:
            out += bytes([(self._acc << (8 - self._nacc)) & 0xFF])
        return out

    @property
    def bit_length(self) -> int:
        """Number of bits written so far (excludes padding)."""
        return len(self._buf) * 8 + self._nacc


class BitReader:
    """Reads bits MSB-first from a :class:`bytes` buffer."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # absolute bit position

    def read_bit(self) -> int:
        """Read one bit; raises :class:`EOFError` past the end."""
        return self.read_bits(1)

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` bits as an unsigned integer."""
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        end = self._pos + nbits
        if end > len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        value = 0
        pos = self._pos
        remaining = nbits
        while remaining:
            byte_index, bit_offset = divmod(pos, 8)
            take = min(8 - bit_offset, remaining)
            chunk = self._data[byte_index] >> (8 - bit_offset - take)
            value = (value << take) | (chunk & ((1 << take) - 1))
            pos += take
            remaining -= take
        self._pos = end
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value (count of one-bits before the zero)."""
        count = 0
        while self.read_bit():
            count += 1
        return count

    @property
    def bit_position(self) -> int:
        """Current absolute bit offset."""
        return self._pos

    @property
    def bits_remaining(self) -> int:
        """Bits left in the buffer (includes any writer padding)."""
        return len(self._data) * 8 - self._pos
