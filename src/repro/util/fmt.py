"""Human-readable formatting for the paper-style reports.

The benchmark harnesses print rows shaped exactly like the paper's tables
(Table III–VII) and figure series (Fig 10–12); these helpers keep the
formatting consistent: binary byte sizes, thousands-separated counts, MB/s
throughputs, and a plain-text table renderer with aligned columns.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["fmt_bytes", "fmt_count", "fmt_mbps", "fmt_seconds", "render_table"]

_UNITS = ["B", "KB", "MB", "GB", "TB", "PB"]


def fmt_bytes(n: float) -> str:
    """``1536`` → ``'1.50KB'`` (binary units, two decimals above bytes)."""
    n = float(n)
    for unit in _UNITS:
        if abs(n) < 1024.0 or unit == _UNITS[-1]:
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.2f}{unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_count(n: int) -> str:
    """Thousands-separated integer, matching the paper's Table III style."""
    return f"{int(n):,}"


def fmt_mbps(bytes_total: float, seconds: float) -> str:
    """Throughput as ``'262.76 MB/s'`` given bytes and seconds."""
    if seconds <= 0:
        return "inf MB/s"
    return f"{bytes_total / seconds / (1024 * 1024):.2f} MB/s"


def fmt_seconds(seconds: float) -> str:
    """Seconds with two decimals, the paper's Table IV/VI convention."""
    return f"{seconds:.2f}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table.

    Used by every benchmark harness to print reproduction rows next to the
    paper's published values.
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for ri, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
