"""Wall-clock and simulated-time instruments.

``Timer`` measures real elapsed time (used by the benchmark harnesses when
they time the functional implementation).  ``Stopwatch`` accumulates *named*
durations — either real or simulated seconds — and is how the engine builds
the per-phase rows of Table IV and Table VI (sampling time, parser time,
indexer time, dictionary combine, dictionary write).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Timer", "Stopwatch"]


class Timer:
    """Context-manager wall-clock timer.

    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class Stopwatch:
    """Accumulator of named durations in seconds.

    Durations can come from real timing (:meth:`measure`) or be charged
    directly from the discrete-event simulator (:meth:`charge`); the engine
    mixes both when producing its reports.
    """

    buckets: dict[str, float] = field(default_factory=dict)

    def charge(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the named bucket."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds} to {name!r}")
        self.buckets[name] = self.buckets.get(name, 0.0) + seconds

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Measure a real code block into the named bucket."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.charge(name, time.perf_counter() - start)

    def get(self, name: str) -> float:
        """Seconds accumulated under ``name`` (0.0 if absent)."""
        return self.buckets.get(name, 0.0)

    def total(self) -> float:
        """Sum across all buckets."""
        return sum(self.buckets.values())

    def merge(self, other: "Stopwatch") -> None:
        """Fold another stopwatch's buckets into this one."""
        for name, seconds in other.buckets.items():
            self.charge(name, seconds)
