"""Wall-clock and simulated-time instruments.

``Timer`` measures real elapsed time (used by the benchmark harnesses when
they time the functional implementation).  ``Stopwatch`` accumulates *named*
durations — either real or simulated seconds — and is how the engine builds
the per-phase rows of Table IV and Table VI (sampling time, parser time,
indexer time, dictionary combine, dictionary write).

This module and :mod:`repro.obs` are the **only** places allowed to read
the wall clock directly (lint rule RPR008): ad-hoc ``time.perf_counter()``
calls scattered through the engine produce timings no tracer sees and no
stopwatch can reconcile.  Everything else calls :func:`now`.

CPU seconds vs wall seconds
---------------------------
A stopwatch bucket sums *measured durations*.  When measurements overlap —
parser prefetch threads parsing while the engine indexes — the sum counts
the same wall instant more than once, so ``total()`` is a *CPU-seconds*
figure, not elapsed time.  :meth:`Stopwatch.wall` returns the union length
of every measured interval instead, which never exceeds real elapsed time.
``EngineResult`` surfaces both (``cpu_seconds`` / ``wall_seconds``);
dividing throughput by the wrong one overstates a pipelined build by up to
the worker count.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Timer", "Stopwatch", "now"]


def now() -> float:
    """The blessed monotonic clock (seconds, arbitrary epoch).

    Use this instead of ``time.perf_counter()`` outside this module and
    ``repro.obs`` — lint rule RPR008 enforces it.
    """
    return time.perf_counter()


class Timer:
    """Context-manager wall-clock timer.

    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class Stopwatch:
    """Accumulator of named durations in seconds.

    Durations can come from real timing (:meth:`measure`) or be charged
    directly from the discrete-event simulator (:meth:`charge`); the engine
    mixes both when producing its reports.

    :meth:`measure` additionally records the *interval* it measured, so
    :meth:`wall` can report the overlap-free union — the honest elapsed
    time when measurements ran concurrently (see the module docstring).
    Simulated :meth:`charge` calls carry no interval and count only
    toward :meth:`total`.
    """

    buckets: dict[str, float] = field(default_factory=dict)
    #: Absolute ``(start, end)`` of every :meth:`measure` call, on the
    #: :func:`now` clock.  Thread-safe via the GIL-atomic list append.
    intervals: list[tuple[float, float]] = field(default_factory=list)

    def charge(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the named bucket (no interval recorded)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds} to {name!r}")
        self.buckets[name] = self.buckets.get(name, 0.0) + seconds

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Measure a real code block into the named bucket."""
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            self.charge(name, end - start)
            self.intervals.append((start, end))

    def get(self, name: str) -> float:
        """Seconds accumulated under ``name`` (0.0 if absent)."""
        return self.buckets.get(name, 0.0)

    def total(self) -> float:
        """Sum across all buckets — **CPU seconds**, not elapsed time.

        Overlapping measurements (worker threads) each contribute their
        full duration; use :meth:`wall` for elapsed time.
        """
        return sum(self.buckets.values())

    def wall(self) -> float:
        """Union length of every measured interval — honest elapsed time.

        Overlapping intervals count each wall instant once, so two
        workers busy for the same second add one second, not two.
        """
        merged = 0.0
        cur_start: float | None = None
        cur_end = 0.0
        for start, end in sorted(self.intervals):
            if end <= start:
                continue
            if cur_start is None or start > cur_end:
                if cur_start is not None:
                    merged += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        if cur_start is not None:
            merged += cur_end - cur_start
        return merged

    def merge(self, other: "Stopwatch") -> None:
        """Fold another stopwatch's buckets *and* intervals into this one.

        Bucket sums add (CPU seconds are additive); intervals concatenate,
        so :meth:`wall` of the merged stopwatch still de-overlaps time the
        two stopwatches measured concurrently — merging no longer turns
        parallel work into a fictitious serial "total".
        """
        for name, seconds in other.buckets.items():
            self.charge(name, seconds)
        self.intervals.extend(other.intervals)
