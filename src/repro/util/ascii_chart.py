"""Plain-text charts for the figure benchmarks.

The benchmark harnesses print the paper's *figures* as data series; these
helpers render them visually in the terminal/report files — horizontal
bar charts for Fig 12's comparison and multi-series line plots for the
Fig 10/11 curves — without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar_chart", "line_chart", "sparkline"]

_BLOCKS = "▏▎▍▌▋▊▉█"
_SPARKS = "▁▂▃▄▅▆▇█"


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per labelled value."""
    if not values:
        return "(no data)"
    peak = max(values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines = []
    for label, value in values.items():
        frac = max(0.0, value / peak)
        whole = int(frac * width)
        rem = int((frac * width - whole) * len(_BLOCKS))
        bar = "█" * whole + (_BLOCKS[rem] if rem and whole < width else "")
        lines.append(f"{label.ljust(label_w)} │{bar.ljust(width)}│ {value:.2f}{unit}")
    return "\n".join(lines)


def sparkline(series: Sequence[float]) -> str:
    """One-line sparkline of a series."""
    if not series:
        return ""
    lo, hi = min(series), max(series)
    span = hi - lo or 1.0
    return "".join(_SPARKS[int((v - lo) / span * (len(_SPARKS) - 1))] for v in series)


def line_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 64,
) -> str:
    """Multi-series character plot (each series gets a distinct glyph)."""
    if not series or not x:
        return "(no data)"
    glyphs = "ox+*#@"
    all_vals = [v for ys in series.values() for v in ys]
    lo, hi = min(all_vals), max(all_vals)
    span = hi - lo or 1.0
    xlo, xhi = min(x), max(x)
    xspan = xhi - xlo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        glyph = glyphs[si % len(glyphs)]
        for xv, yv in zip(x, ys):
            col = int((xv - xlo) / xspan * (width - 1))
            row = height - 1 - int((yv - lo) / span * (height - 1))
            grid[row][col] = glyph
    lines = []
    for r, row in enumerate(grid):
        y_label = hi - r * span / (height - 1) if height > 1 else hi
        lines.append(f"{y_label:10.1f} ┤{''.join(row)}")
    lines.append(" " * 11 + "└" + "─" * width)
    lines.append(f"{'':11} {xlo:<10.0f}{'':{max(0, width - 20)}}{xhi:>10.0f}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
