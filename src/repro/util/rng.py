"""Deterministic random-number plumbing.

Every stochastic component of the reproduction — synthetic corpora, workload
extrapolation, sampling — draws from a :class:`numpy.random.Generator`
constructed here, so the whole benchmark suite is reproducible from a single
integer seed.  ``derive_seed`` deterministically forks child seeds from a
parent seed plus a string label, which lets independent subsystems (e.g. one
generator per collection file) consume randomness without coupling their
stream positions.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "derive_seed"]

#: Default seed used across the repository when the caller does not care.
DEFAULT_SEED = 20110516  # IPDPS 2011 conference date, for flavour.


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Build a PCG64 generator from an integer seed (``None`` → default)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(parent_seed: int, *labels: object) -> int:
    """Deterministically derive a 63-bit child seed.

    The derivation hashes the parent seed together with the string forms of
    ``labels``; distinct label tuples give independent child streams while
    identical inputs always reproduce the same child.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(parent_seed)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(str(label).encode())
    return int.from_bytes(h.digest(), "big") & ((1 << 63) - 1)
