"""Low-level utilities shared across the reproduction.

This package deliberately contains only dependency-free helpers:

- :mod:`repro.util.bitio` — MSB-first bit readers/writers used by the
  Elias-γ and Golomb postings codecs.
- :mod:`repro.util.rng` — deterministic RNG construction so every synthetic
  corpus and every simulation is reproducible from a single integer seed.
- :mod:`repro.util.timing` — wall-clock timers plus the simulated-time
  ``Stopwatch`` used by the engine's metrics.
- :mod:`repro.util.fmt` — human-readable size/throughput formatting used by
  the benchmark harnesses when printing paper-style tables.
"""

from repro.util.bitio import BitReader, BitWriter
from repro.util.fmt import fmt_bytes, fmt_count, fmt_mbps, fmt_seconds, render_table
from repro.util.rng import derive_seed, make_rng
from repro.util.timing import Stopwatch, Timer

__all__ = [
    "BitReader",
    "BitWriter",
    "Timer",
    "Stopwatch",
    "make_rng",
    "derive_seed",
    "fmt_bytes",
    "fmt_count",
    "fmt_mbps",
    "fmt_seconds",
    "render_table",
]
