"""Runtime sanitizer for the shm ring transport (``REPRO_SANITIZE=ring``).

The static layers — the protocol model checker and the RPR12x
conformance rules in :mod:`repro.lint` — prove the *modeled* ring
discipline sound and pin the source to it.  This module is the runtime
counterpart: when the ``REPRO_SANITIZE`` environment variable contains
``ring``, every :class:`repro.core.shm_ring.ShmRing` stamps an 8-byte
``(sequence, crc32)`` trailer onto each outgoing frame and verifies it
on receipt, so a torn frame, a replayed/skipped frame, or a write that
overlaps a timed-out predecessor turns into a loud
:class:`RingSanitizerError` at the exact frame instead of a corrupt
pickle somewhere downstream.

The trailer travels *inside* the length-prefixed frame, so the ring
wire format is unchanged — both sides of a ring read the same
environment (workers inherit it), so either both stamp/verify or
neither does.  Frames are stripped back to their original bytes before
the caller sees them: a sanitized build's output is byte-identical to
an unsanitized (and to a serial) build.

Everything the sanitizer observes is counted through
:mod:`repro.obs.runtime` under the ``shm_san.`` prefix
(``frames_stamped``, ``frames_verified``, ``seq_errors``,
``crc_errors``, ``use_after_unlink``, ``overlapping_writes``), so a
chaos run's ``run.metrics.json`` records both that the sanitizer was
live and that it found nothing.
"""

from __future__ import annotations

import os
import struct
import zlib

from repro.obs import runtime as obs

__all__ = [
    "RingSanitizerError",
    "RingSanitizer",
    "maybe_sanitizer",
    "sanitize_rings_enabled",
    "TRAILER_LEN",
]

#: Per-frame trailer: little-endian (sequence number, CRC-32 of payload).
_TRAILER = struct.Struct("<II")
TRAILER_LEN = _TRAILER.size

_ENV_VAR = "REPRO_SANITIZE"
_SEQ_MOD = 1 << 32


def sanitize_rings_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` lists the ``ring`` mode."""
    modes = os.environ.get(_ENV_VAR, "")
    return "ring" in {m.strip() for m in modes.split(",")}


def maybe_sanitizer(name: str) -> "RingSanitizer | None":
    """A sanitizer for ring ``name``, or ``None`` when the mode is off.

    Called from ``ShmRing.__init__`` so the check is per-ring, not
    per-frame: the unsanitized hot path costs one attribute test.
    """
    return RingSanitizer(name) if sanitize_rings_enabled() else None


class RingSanitizerError(RuntimeError):
    """The sanitizer observed a ring protocol violation.

    Raised at the faulting call site; deliberately *not* a subclass of
    the transport's timeout so supervision treats it as a real fault,
    never as backpressure.
    """


class RingSanitizer:
    """Per-ring-endpoint frame stamping, verification, and use checks.

    One instance is owned by one :class:`ShmRing` object, i.e. one side
    of one SPSC ring in one process — so producer and consumer sequence
    counters both start at zero for a fresh ring, and a recreated ring
    (worker restart) naturally restarts its numbering with the new
    objects on both sides.
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._put_seq = 0
        self._expect_seq = 0
        self._in_put = False
        self._poisoned = False
        self._closed = False
        self._unlinked = False

    # -- lifecycle observation ------------------------------------------ #

    def on_close(self) -> None:
        self._closed = True

    def on_unlink(self) -> None:
        self._closed = True
        self._unlinked = True

    def check_usable(self, op: str) -> None:
        """Fail fast on use-after-close / use-after-unlink."""
        if self._closed or self._unlinked:
            obs.count("shm_san.use_after_unlink")
            state = "unlinked" if self._unlinked else "closed"
            raise RingSanitizerError(
                f"shm_san: {op} on {state} ring {self._name!r}"
            )

    # -- producer side --------------------------------------------------- #

    def begin_put(self) -> None:
        """Guard frame-write exclusivity on this endpoint.

        Two hazards collapse into one check: a reentrant ``put_frame``
        (e.g. from an ``on_wait`` callback) and a ``put_frame`` after a
        timed-out predecessor left a partial frame pending — both would
        interleave bytes of two frames in the stream.
        """
        if self._in_put or self._poisoned:
            obs.count("shm_san.overlapping_writes")
            why = (
                "a timed-out put_frame left a partial frame pending"
                if self._poisoned
                else "another put_frame is still in progress"
            )
            raise RingSanitizerError(
                f"shm_san: overlapping write on ring {self._name!r}: {why}"
            )
        self._in_put = True

    def stamp(self, data: bytes) -> bytes:
        """Append the ``(seq, crc32)`` trailer to an outgoing payload."""
        seq = self._put_seq
        self._put_seq = (self._put_seq + 1) % _SEQ_MOD
        obs.count("shm_san.frames_stamped")
        return data + _TRAILER.pack(seq, zlib.crc32(data) & 0xFFFFFFFF)

    def end_put(self, ok: bool) -> None:
        """Close the write guard; an aborted write poisons the endpoint."""
        self._in_put = False
        if not ok:
            self._poisoned = True

    # -- consumer side --------------------------------------------------- #

    def verify(self, frame: bytes) -> bytes:
        """Check and strip the trailer of one received frame."""
        if len(frame) < TRAILER_LEN:
            obs.count("shm_san.crc_errors")
            raise RingSanitizerError(
                f"shm_san: frame on ring {self._name!r} too short for a "
                f"trailer ({len(frame)} bytes) — peer not sanitized?"
            )
        data = frame[:-TRAILER_LEN]
        seq, crc = _TRAILER.unpack_from(frame, len(data))
        problems = []
        if seq != self._expect_seq:
            obs.count("shm_san.seq_errors")
            problems.append(f"sequence {seq}, expected {self._expect_seq}")
        if zlib.crc32(data) & 0xFFFFFFFF != crc:
            obs.count("shm_san.crc_errors")
            problems.append("payload CRC mismatch (torn or corrupted frame)")
        if problems:
            raise RingSanitizerError(
                f"shm_san: bad frame on ring {self._name!r}: "
                + "; ".join(problems)
            )
        self._expect_seq = (seq + 1) % _SEQ_MOD
        obs.count("shm_san.frames_verified")
        return data
