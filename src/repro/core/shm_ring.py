"""SPSC byte rings over POSIX shared memory — the multiprocess transport.

The multiprocess execution backend (:mod:`repro.core.mp_backend`) gives
every worker process two rings: a *task* ring (engine produces, worker
consumes) and a *result* ring (worker produces, engine consumes).  Each
ring is one ``multiprocessing.shared_memory`` segment holding a small
header plus a circular byte buffer:

====== ======= ==========================================================
offset  width  field
====== ======= ==========================================================
0       u64    ``tail`` — total bytes ever written (producer-advanced)
8       u64    ``head`` — total bytes ever read (consumer-advanced)
16      u64    producer heartbeat counter
24      u64    consumer heartbeat counter
32      …      circular data region (``capacity`` bytes)
====== ======= ==========================================================

Messages are length-prefixed *frames* written through the byte stream,
so a frame larger than the ring capacity simply streams through in
chunks — no special-casing for big parsed files.  Single producer,
single consumer, and the counters are monotonic, so plain polling reads
are safe: the consumer only trusts bytes below ``tail``, the producer
only reuses bytes below ``head``, and each side publishes its counter
*after* the copy it covers (CPython bytearray/memoryview stores plus the
GIL-crossing on ``struct.pack_into`` give the needed ordering on every
platform CPython supports).

When a metrics registry is installed and armed, ``put_frame`` /
``get_frame`` additionally record cheap ring telemetry —
``shm.ring.frame_bytes`` / ``shm.ring.occupancy_bytes`` histograms and
producer/consumer wait-poll counters — which the profile report's
"shm codec hot path" section ranks against sampled encode/decode cost
(docs/OBSERVABILITY.md, "Profiling").  With telemetry off the checks
collapse to one global read; ring bytes are never touched either way.

**No cross-process locks or conditions.**  A crashed peer can never
leave a mutex held; the survivor just times out.  Heartbeats are plain
counters — the supervisor compares *change over its own clock*, never
raw timestamps, so nothing assumes clock epochs agree across processes.

Crash-safety of the segments themselves: only the **engine** process
ever creates (and therefore unlinks) segments; workers attach.  Every
created segment is recorded in a module registry swept by ``atexit`` and
by the backend's ``finally`` — a SIGKILLed worker cannot leak a segment
because it never owned one.  On Python ≤ 3.12 the attach side must also
be told not to "track" the segment, or the dying worker's resource
tracker unlinks it out from under the engine (:func:`_untrack`).
"""

from __future__ import annotations

import atexit
import os
import re
import struct
import threading
import time
from dataclasses import dataclass
from typing import Callable
from multiprocessing import resource_tracker, shared_memory

from repro.core import shm_san
from repro.obs import runtime as obs_runtime
from repro.util.timing import now

__all__ = [
    "RingSpec",
    "RingTimeout",
    "ShmRing",
    "SHM_PREFIX",
    "segment_name",
    "forget_inherited_segments",
    "sweep_created_segments",
    "list_repro_segments",
    "orphan_segments",
]

#: Every segment this project creates starts with this, so a leak check
#: can scan ``/dev/shm`` without false positives from other software.
SHM_PREFIX = "repro_mp"

_HEADER = 32
_TAIL_OFF, _HEAD_OFF, _PROD_HB_OFF, _CONS_HB_OFF = 0, 8, 16, 24
_U64 = struct.Struct("<Q")
_FRAME_LEN = struct.Struct("<I")

#: Poll sleep bounds: start fine-grained (sub-millisecond handoff), back
#: off to keep an idle wait from burning the single CPU the container has.
_POLL_MIN_S = 0.0002
_POLL_MAX_S = 0.002


class RingTimeout(TimeoutError):
    """A bounded ring operation did not complete within its deadline."""


def _ring_metrics() -> "obs_runtime.MetricsRegistry | None":
    """The installed, armed metrics registry — or ``None``.

    The disabled path is one global read plus two attribute tests; ring
    telemetry never touches the buffer or the header words, so with
    telemetry off (or a Null registry installed) ``put_frame`` /
    ``get_frame`` behave byte-for-byte as before the ``shm.ring.*``
    instrumentation existed (pinned by ``tests/test_shm_ring.py``).
    """
    tel = obs_runtime.current()
    if tel is None:
        return None
    m = tel.metrics
    return m if m.enabled else None


@dataclass(frozen=True)
class RingSpec:
    """Enough to attach to an existing ring from another process."""

    name: str
    capacity: int
    #: Causal edge label (e.g. ``"cpu-0.task"``) for per-edge wait
    #: attribution in `repro critpath`; ``None`` keeps telemetry
    #: aggregate-only.  Slot-stable across worker restarts.
    edge: str | None = None


# ---------------------------------------------------------------------- #
# Created-segment registry (engine side)
# ---------------------------------------------------------------------- #

_created_lock = threading.Lock()
_created: dict[str, shared_memory.SharedMemory] = {}
_name_seq = 0


def segment_name(suffix: str) -> str:
    """A unique segment name carrying the creator's pid.

    The pid is what lets :func:`orphan_segments` distinguish a segment
    leaked by a dead build from one owned by a live concurrent build.
    """
    global _name_seq
    with _created_lock:
        _name_seq += 1
        seq = _name_seq
    return f"{SHM_PREFIX}_{os.getpid()}_{seq}_{suffix}"


def _register_created(shm: shared_memory.SharedMemory) -> None:
    with _created_lock:
        _created[shm.name] = shm


def _forget_created(name: str) -> None:
    with _created_lock:
        _created.pop(name, None)


def forget_inherited_segments() -> None:
    """Disown the creator's registry in a forked worker process.

    A forked child inherits ``_created`` (and the ``atexit`` sweep) from
    the engine; without this reset, a cleanly exiting worker would
    unlink rings the engine still uses.  Workers call this first thing.
    """
    with _created_lock:
        _created.clear()


def sweep_created_segments() -> list[str]:
    """Unlink every segment this process created and still holds.

    Idempotent; runs at ``atexit`` and from the multiprocess backend's
    ``finally``, so even an aborted build (fatal fault, strict-mode read
    error, KeyboardInterrupt) reclaims its shared memory.
    """
    with _created_lock:
        leaked = list(_created.items())
        _created.clear()
    swept = []
    for name, shm in leaked:
        try:
            shm.close()
        except OSError:
            pass
        _retrack(shm)
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        swept.append(name)
    return swept


atexit.register(sweep_created_segments)

_SEGMENT_RE = re.compile(rf"^{SHM_PREFIX}_(\d+)_")


def list_repro_segments(shm_dir: str = "/dev/shm") -> list[str]:
    """All ``repro_*`` segments currently visible on this host."""
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return []
    return sorted(n for n in names if n.startswith("repro_"))


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def orphan_segments(shm_dir: str = "/dev/shm") -> list[str]:
    """``repro_*`` segments whose creating process is gone (or unknown).

    A segment named by a live pid belongs to a build still running
    somewhere on the host and is not a leak; anything else is.
    """
    orphans = []
    for name in list_repro_segments(shm_dir):
        m = _SEGMENT_RE.match(name)
        if m is None or not _pid_alive(int(m.group(1))):
            orphans.append(name)
    return orphans


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Stop this process's resource tracker from unlinking the segment.

    Python ≤ 3.12 registers attached (not just created) segments with the
    resource tracker, whose exit-time cleanup would unlink live segments
    the engine still uses.  ``SharedMemory(track=False)`` only exists
    from 3.13; unregistering right after attach is the portable fix.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # repro-lint: disable=RPR005 - best-effort bookkeeping on a private API
        pass


def _retrack(shm: shared_memory.SharedMemory) -> None:
    """Balance the tracker book right before an unlink.

    Under the fork start method a worker's :func:`_untrack` removes the
    (shared) tracker's entry for the engine's segment, so the engine's
    ``unlink`` — which unregisters internally — would make the tracker
    print a spurious KeyError traceback.  Re-registering first is a
    no-op when the entry is still there and restores it when it isn't.
    """
    try:
        resource_tracker.register(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # repro-lint: disable=RPR005 - best-effort bookkeeping on a private API
        pass


class ShmRing:
    """One single-producer/single-consumer byte ring (see module doc)."""

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int, owner: bool,
                 edge: str | None = None) -> None:
        self._shm = shm
        self._capacity = capacity
        self._owner = owner
        self._edge = edge
        self._buf = shm.buf
        self._closed = False
        # Consumer-side reassembly of the frame currently being read:
        # survives a timed-out get_frame so no byte is ever dropped.
        self._acc = bytearray()
        self._need_header = True
        self._frame_len = 0
        # None unless REPRO_SANITIZE=ring; see repro.core.shm_san.
        self._san = shm_san.maybe_sanitizer(shm.name)

    # -- lifecycle ------------------------------------------------------ #

    @classmethod
    def create(cls, suffix: str, capacity: int,
               edge: str | None = None) -> "ShmRing":
        """Create a new ring segment (engine side only)."""
        if capacity < 16:
            raise ValueError(f"ring capacity must be >= 16 bytes, got {capacity}")
        shm = shared_memory.SharedMemory(
            name=segment_name(suffix), create=True, size=_HEADER + capacity
        )
        _register_created(shm)
        shm.buf[:_HEADER] = b"\x00" * _HEADER
        return cls(shm, capacity, owner=True, edge=edge)

    @classmethod
    def attach(cls, spec: RingSpec) -> "ShmRing":
        """Attach to an engine-created ring (worker side)."""
        shm = shared_memory.SharedMemory(name=spec.name)
        _untrack(shm)
        return cls(shm, spec.capacity, owner=False, edge=spec.edge)

    def spec(self) -> RingSpec:
        return RingSpec(
            name=self._shm.name, capacity=self._capacity, edge=self._edge
        )

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._san is not None:
            self._san.on_close()
        self._buf = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except OSError:
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner side; idempotent)."""
        self.close()
        if not self._owner:
            return
        _forget_created(self._shm.name)
        _retrack(self._shm)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        if self._san is not None:
            self._san.on_unlink()

    # -- header words --------------------------------------------------- #

    def _load(self, offset: int) -> int:
        return _U64.unpack_from(self._buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value)

    def beat(self, role: str) -> None:
        """Bump this side's liveness counter (cheap; call freely)."""
        off = _PROD_HB_OFF if role == "producer" else _CONS_HB_OFF
        self._store(off, self._load(off) + 1)

    def beats(self, role: str) -> int:
        off = _PROD_HB_OFF if role == "producer" else _CONS_HB_OFF
        return self._load(off)

    # -- waiting -------------------------------------------------------- #

    @staticmethod
    def _wait(deadline: float | None, on_wait: "Callable[[], None] | None",
              poll_s: float) -> float:
        """One poll step; returns the next (backed-off) poll interval."""
        if on_wait is not None:
            on_wait()
        if deadline is not None and now() >= deadline:
            raise RingTimeout()
        time.sleep(poll_s)
        return min(poll_s * 2, _POLL_MAX_S)

    # -- producer side --------------------------------------------------- #

    def put_frame(self, data: bytes, timeout: float | None = None,
                  on_wait: "Callable[[], None] | None" = None) -> None:
        """Write one length-prefixed frame, chunking through the ring.

        Blocks while the ring is full; ``on_wait`` runs once per poll
        (heartbeats, supervision checks).  Raises :class:`RingTimeout`
        if the whole frame cannot be written within ``timeout`` seconds —
        note a partially written frame then remains pending, so a timed
        out producer must treat the ring as poisoned (the backend
        recreates rings rather than resuming them).
        """
        san = self._san
        if san is not None:
            san.check_usable("put_frame")
            san.begin_put()
            data = san.stamp(data)
        payload = _FRAME_LEN.pack(len(data)) + data
        deadline = None if timeout is None else now() + timeout
        capacity = self._capacity
        tail = self._load(_TAIL_OFF)
        m = _ring_metrics()
        if m is not None:
            # Frame-size and entry-occupancy distributions: the two
            # inputs to the "batch frames / resize rings" decision the
            # profile report's hot-path section feeds (ROADMAP).
            m.observe("shm.ring.frame_bytes", len(data))
            m.observe("shm.ring.occupancy_bytes", tail - self._load(_HEAD_OFF))
        wait_polls = 0
        wait_s = 0.0
        sent = 0
        poll_s = _POLL_MIN_S
        ok = False
        try:
            while sent < len(payload):
                free = capacity - (tail - self._load(_HEAD_OFF))
                if free <= 0:
                    wait_polls += 1
                    wait_s += poll_s
                    poll_s = self._wait(deadline, on_wait, poll_s)
                    continue
                poll_s = _POLL_MIN_S
                n = min(free, len(payload) - sent)
                pos = tail % capacity
                first = min(n, capacity - pos)
                self._buf[_HEADER + pos : _HEADER + pos + first] = payload[sent : sent + first]
                if n > first:
                    self._buf[_HEADER : _HEADER + n - first] = payload[
                        sent + first : sent + n
                    ]
                sent += n
                tail += n
                self._store(_TAIL_OFF, tail)  # publish *after* the copy
            ok = True
        finally:
            if m is not None and wait_polls:
                m.count("shm.ring.producer_wait_polls", wait_polls)
                m.count("shm.ring.producer_wait_s", wait_s)
                if self._edge is not None:
                    m.count(f"shm.ring.edge.{self._edge}.producer_wait_s", wait_s)
            if san is not None:
                # An aborted write (timeout, crash injection) leaves a
                # partial frame pending; poison the endpoint so a later
                # put is caught as an overlapping write.
                san.end_put(ok)

    # -- consumer side --------------------------------------------------- #

    def get_frame(self, timeout: float | None = None,
                  on_wait: "Callable[[], None] | None" = None) -> bytes | None:
        """Read one frame; ``None`` on timeout (no bytes are lost).

        A timed-out call leaves any partially received frame buffered in
        this object, and the next call resumes it — so a slow producer
        just makes the consumer poll again, while a *dead* producer
        leaves the consumer returning ``None`` forever (which is exactly
        the signal the supervisor acts on).
        """
        if self._san is not None:
            self._san.check_usable("get_frame")
        deadline = None if timeout is None else now() + timeout
        capacity = self._capacity
        m = _ring_metrics()
        wait_polls = 0
        wait_s = 0.0
        poll_s = _POLL_MIN_S
        while True:
            want = (_FRAME_LEN.size if self._need_header else self._frame_len) - len(
                self._acc
            )
            if want > 0:
                head = self._load(_HEAD_OFF)
                avail = self._load(_TAIL_OFF) - head
                if avail <= 0:
                    wait_polls += 1
                    wait_s += poll_s
                    try:
                        poll_s = self._wait(deadline, on_wait, poll_s)
                    except RingTimeout:
                        if m is not None and wait_polls:
                            m.count("shm.ring.consumer_wait_polls", wait_polls)
                            m.count("shm.ring.consumer_wait_s", wait_s)
                            if self._edge is not None:
                                m.count(
                                    f"shm.ring.edge.{self._edge}.consumer_wait_s",
                                    wait_s,
                                )
                        return None
                    continue
                poll_s = _POLL_MIN_S
                n = min(avail, want)
                pos = head % capacity
                first = min(n, capacity - pos)
                self._acc += self._buf[_HEADER + pos : _HEADER + pos + first]
                if n > first:
                    self._acc += self._buf[_HEADER : _HEADER + n - first]
                self._store(_HEAD_OFF, head + n)  # publish *after* the copy
                continue
            if self._need_header:
                self._frame_len = _FRAME_LEN.unpack(self._acc)[0]
                self._acc = bytearray()
                self._need_header = False
                continue
            frame = bytes(self._acc)
            self._acc = bytearray()
            self._need_header = True
            if m is not None and wait_polls:
                m.count("shm.ring.consumer_wait_polls", wait_polls)
                m.count("shm.ring.consumer_wait_s", wait_s)
                if self._edge is not None:
                    m.count(f"shm.ring.edge.{self._edge}.consumer_wait_s", wait_s)
            if self._san is not None:
                frame = self._san.verify(frame)
            return frame
