"""The paper's contribution: the pipelined heterogeneous indexing engine.

- :mod:`repro.core.config` — :class:`PlatformConfig`, the knobs of
  Section IV (parsers, CPU indexers, GPUs, thread blocks, codec, trie
  height, B-tree degree, buffers).
- :mod:`repro.core.costs` — the calibrated cost constants and the
  conversion from measured/modeled work to stage seconds.
- :mod:`repro.core.workload` — per-file :class:`FileWork` records, either
  measured from a functional build or extrapolated to paper scale with
  Heaps/Zipf statistics (drives Fig 10–12 and Tables IV/VI).
- :mod:`repro.core.pipeline` — the discrete-event pipeline of Fig 9:
  serialized disk reads, M parsers, bounded buffers consumed in
  round-robin order, the run lifecycle of Fig 8.
- :mod:`repro.core.engine` — :class:`IndexingEngine`, the public facade:
  samples, assigns, parses, indexes, writes runs + dictionary, and
  reports both functional statistics and simulated timings.
"""

from repro.core.config import PlatformConfig
from repro.core.costs import CostConstants, StageCosts
from repro.core.engine import EngineResult, IndexingEngine
from repro.core.pipeline import PipelineReport, simulate_pipeline
from repro.core.workload import FileWork, GroupWork, WorkloadModel

__all__ = [
    "PlatformConfig",
    "CostConstants",
    "StageCosts",
    "FileWork",
    "GroupWork",
    "WorkloadModel",
    "simulate_pipeline",
    "PipelineReport",
    "IndexingEngine",
    "EngineResult",
]
