"""The pipelined dataflow of Fig 9, as a discrete-event simulation.

Stage 1 — **parsers**: parser *i* handles files ``i, i+M, i+2M, …`` (the
static round-robin that makes "buffer of parser 0, buffer of parser 1, …"
equal global file order).  Each file: acquire the disk token (reads are
serialized by the paper's scheduler), read the compressed file, release,
decompress in memory, parse, and put the batch into the parser's bounded
output buffer — a full buffer back-pressures the parser.

Stage 2 — **the run loop** (Fig 8): the indexer stage takes buffers in
strict round-robin parser order; each buffer is one *run*: serialized
pre-processing (GPU input transfers), parallel indexing (CPU indexers and
GPU kernels run concurrently; the stage takes the max), serialized
post-processing (combine + compress + write postings).

The report carries every number the paper's evaluation section derives:
Table IV's pre/indexing/post/total rows and both throughputs, Fig 11's
per-file indexing throughput series, and the buffer-wait accounting behind
"the time during which the indexers are waiting for results from the
parsers".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.core.config import PlatformConfig
from repro.core.costs import StageCosts
from repro.core.workload import FileWork, GroupWork
from repro.sim.events import Get, Put, Request, Simulator, Timeout
from repro.sim.resources import Resource, Store

__all__ = ["PipelineReport", "BuildReport", "simulate_pipeline", "simulate_full_build"]

_MB = 1024 * 1024


@dataclass
class PipelineReport:
    """Timing outcome of one simulated pipeline pass."""

    config: PlatformConfig
    num_files: int
    uncompressed_bytes: int
    parser_finish_s: float = 0.0
    indexer_finish_s: float = 0.0
    pre_total_s: float = 0.0
    indexing_total_s: float = 0.0
    post_total_s: float = 0.0
    indexer_wait_s: float = 0.0
    disk_busy_s: float = 0.0
    #: Total parser-stage seconds lost to faults and retry backoff.
    fault_delay_s: float = 0.0
    per_file_indexing_s: list[float] = field(default_factory=list)
    per_file_segment: list[str] = field(default_factory=list)

    @property
    def pipeline_s(self) -> float:
        """Wall time of the two overlapped stages."""
        return max(self.parser_finish_s, self.indexer_finish_s)

    @property
    def total_indexer_s(self) -> float:
        """Table IV "Total Indexer Time": stage wall including waits."""
        return self.indexer_finish_s

    @property
    def sum_of_three_s(self) -> float:
        """Table IV "Sum of above Three"."""
        return self.pre_total_s + self.indexing_total_s + self.post_total_s

    @property
    def indexing_throughput_mbps(self) -> float:
        """Table IV: uncompressed size / pure indexing time."""
        if self.indexing_total_s <= 0:
            return 0.0
        return self.uncompressed_bytes / self.indexing_total_s / _MB

    @property
    def total_indexer_throughput_mbps(self) -> float:
        if self.total_indexer_s <= 0:
            return 0.0
        return self.uncompressed_bytes / self.total_indexer_s / _MB

    @property
    def overall_throughput_mbps(self) -> float:
        """Fig 10's y-axis: uncompressed size over pipeline wall time."""
        if self.pipeline_s <= 0:
            return 0.0
        return self.uncompressed_bytes / self.pipeline_s / _MB

    def per_file_throughput_mbps(self) -> list[float]:
        """Fig 11's series: per-file uncompressed MB / indexing seconds."""
        per_file = self.uncompressed_bytes / max(1, self.num_files) / _MB
        return [per_file / s if s > 0 else 0.0 for s in self.per_file_indexing_s]


def _stage_groups(
    work: FileWork, config: PlatformConfig
) -> tuple[list[GroupWork], GroupWork | None]:
    """Route the popular/unpopular groups per Section III.E for a config."""
    if config.num_gpus == 0:
        return [work.popular, work.unpopular], None
    if config.num_cpu_indexers == 0:
        merged = GroupWork()
        merged.merge(work.popular)
        merged.merge(work.unpopular)
        merged.hot_visit_fraction = 0.0  # irrelevant on the GPU
        return [], merged
    return [work.popular], work.unpopular


def simulate_pipeline(
    works: list[FileWork],
    config: PlatformConfig,
    costs: StageCosts | None = None,
    parse_only: bool = False,
) -> PipelineReport:
    """Run the Fig 9 pipeline over per-file work records.

    ``parse_only`` reproduces Fig 10's third scenario: parsers write to
    unbounded sinks and no indexing happens.
    """
    costs = costs if costs is not None else StageCosts()
    sim = Simulator()
    disk = Resource("disk", capacity=1)
    m = config.num_parsers
    # parse_only uses effectively-unbounded buffers (nothing consumes).
    cap = max(config.buffer_capacity, len(works) + 1) if parse_only else config.buffer_capacity
    buffers = [Store(f"buffer{i}", capacity=cap) for i in range(m)]

    report = PipelineReport(
        config=config,
        num_files=len(works),
        uncompressed_bytes=sum(w.uncompressed_bytes for w in works),
    )

    def parser_proc(parser_id: int) -> Generator[object, Any, None]:
        for k in range(parser_id, len(works), m):
            work = works[k]
            yield Request(disk)
            yield Timeout(costs.read_seconds(work))
            if work.fault_delay_s:
                # Retried reads hold the disk token while backing off —
                # a sick file delays every parser behind it, exactly the
                # degradation a shared-disk pipeline exhibits.
                yield Timeout(work.fault_delay_s)
                report.fault_delay_s += work.fault_delay_s
            disk.release()
            yield Timeout(costs.decompress_seconds(work))
            yield Timeout(costs.parse_seconds(work, regroup=config.regroup))
            yield Put(buffers[parser_id], (k, work))

    def indexer_stage() -> Generator[object, Any, None]:
        for k in range(len(works)):
            arrived = yield Get(buffers[k % m])
            file_index, work = arrived
            if file_index != k:
                raise RuntimeError(
                    f"buffer ordering violated: expected file {k}, got {file_index}"
                )
            # Pre-processing (serialized).
            pre = costs.pre_seconds(work, config.num_gpus)
            yield Timeout(pre)
            report.pre_total_s += pre
            # Parallel indexing: CPU threads and GPU kernels overlap.
            cpu_groups, gpu_group = _stage_groups(work, config)
            cpu_t = costs.cpu_stage_seconds(
                cpu_groups,
                config.num_cpu_indexers,
                config.num_parsers,
                config.total_cores,
            )
            gpu_t = (
                costs.gpu_kernel_seconds(
                    gpu_group,
                    config.num_gpus,
                    num_blocks=config.thread_blocks_per_gpu,
                    dynamic=config.gpu_schedule == "dynamic",
                )
                if gpu_group is not None
                else 0.0
            )
            stage_t = max(cpu_t, gpu_t)
            yield Timeout(stage_t)
            report.indexing_total_s += stage_t
            report.per_file_indexing_s.append(stage_t)
            report.per_file_segment.append(work.segment)
            # Post-processing (serialized).
            post = costs.post_seconds(work, config.num_gpus)
            yield Timeout(post)
            report.post_total_s += post

    parser_procs = [sim.add_process(parser_proc(i), f"parser{i}") for i in range(m)]
    stage_proc = sim.add_process(indexer_stage(), "indexers") if not parse_only else None

    sim.run()

    report.parser_finish_s = max(p.finish_time or 0.0 for p in parser_procs)
    if stage_proc is not None:
        report.indexer_finish_s = stage_proc.finish_time or 0.0
        report.indexer_wait_s = report.indexer_finish_s - report.sum_of_three_s
    report.disk_busy_s = disk.busy_s
    return report


@dataclass
class BuildReport:
    """Table VI's full-build rows: sampling + pipeline + dictionary."""

    pipeline: PipelineReport
    sampling_s: float
    dict_combine_s: float
    dict_write_s: float
    total_terms: int

    @property
    def total_s(self) -> float:
        return (
            self.sampling_s + self.pipeline.pipeline_s + self.dict_combine_s + self.dict_write_s
        )

    @property
    def throughput_mbps(self) -> float:
        if self.total_s <= 0:
            return 0.0
        return self.pipeline.uncompressed_bytes / self.total_s / _MB


def simulate_full_build(
    works: list[FileWork],
    config: PlatformConfig,
    costs: StageCosts | None = None,
) -> BuildReport:
    """Sampling + pipeline + dictionary epilogue — one Table VI column."""
    costs = costs if costs is not None else StageCosts()
    sampling = costs.sampling_seconds(works, config.sample_fraction)
    pipeline = simulate_pipeline(works, config, costs)
    total_terms = sum(w.popular.new_terms + w.unpopular.new_terms for w in works)
    return BuildReport(
        pipeline=pipeline,
        sampling_s=sampling,
        dict_combine_s=costs.dict_combine_seconds(total_terms),
        dict_write_s=costs.dict_write_seconds(total_terms),
        total_terms=total_terms,
    )
