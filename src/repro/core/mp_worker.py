"""Worker-process entry points for the multiprocess execution backend.

This module is deliberately a leaf: it imports no engine code, every
entry point is a module-level function (picklable under the ``spawn``
start method), and nothing here starts a process at import time — the
RPR110 lint rule holds all ``multiprocessing`` call sites in the tree to
that fork-bomb-safe layout, this module included.

One worker process runs :func:`worker_main` with a :class:`WorkerSpec`
describing its identity and its two shared-memory rings (task ring:
engine → worker, result ring: worker → engine).  Messages are pickled
tuples framed by :class:`~repro.core.shm_ring.ShmRing`; bulk payloads —
parsed streams — travel inside them as :mod:`repro.parsing.stream_codec`
bytes, and indexer state/postings as pickles (the same discipline the
checkpoint layer uses).

Protocol, indexer workers (slot keys ``cpu-<i>`` / ``gpu-<j>``)::

    ("state", state_pickle)                      -> (no reply)
    ("index", tid, tag, doc_offset, batch_bytes) -> ("done", tid, result, delta)
    ("boundary", tid)     -> ("boundary", tid, postings_pickle, state_pickle, delta)
    ("snapshot", tid)     -> ("snapshot", tid, state_pickle, delta)
    ("stop",)                                    -> (worker exits)

Protocol, parse workers (slot keys ``parser-<w>``)::

    ("parse", k, path, tag) -> ("parsed", k, file_bytes, attempts, backoff_s, delta)
                             | ("parse_error", k, exc_pickle, attempts, backoff_s, delta)
                             | ("parse_fatal", k, exc_pickle, delta)
    ("stop",)               -> (worker exits)

``delta`` is ``(fault_counts, fault_events, metrics_delta, spans,
profile)`` — what the worker-side fault injector, the worker-local
metrics registry, the worker-local tracer, and (under ``--profile``)
the worker's sampling profiler did since the previous reply.  The
engine folds all of it into its own injector/registry/tracer/profile,
so chaos assertions, the deterministic metrics file, the per-lane
trace, and the merged ``run.profile.json`` stay backend-agnostic: a
multiprocess build reports the same ``parse.*`` / ``index.*`` /
``btree.*`` counters — and the same ``parse_file`` / ``index_batch``
lanes — a serial build does.  ``spans`` is ``(worker_epoch, [Span,
...])`` or ``None``; both tracers read the same monotonic clock, so the
engine re-bases the epochs and the lanes line up on one timeline.
``profile`` is a :data:`repro.obs.profile.ProfileDelta` or ``None``;
because it rides *every* reply, a worker that is later SIGKILLed has
already shipped all samples up to its last completed task — profile
loss on a crash is bounded by one task, exactly like spans.

Failure discipline: the worker heartbeats (a counter in the result
ring's header) on every transport poll and around every task; it exits
on its own only when orphaned (parent pid gone) or told to stop.  Task
exceptions are reported, not fatal — the *engine* decides whether an
error aborts the build.  ``SIGKILL``-style deaths are the supervisor's
problem by design: the worker owns no shared-memory segments (it only
attaches) and no durable output, so there is nothing a dying worker can
leak or corrupt beyond its in-flight tasks, which the engine's journal
replays.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Callable

from repro.core.config import PlatformConfig
from repro.core.shm_ring import RingSpec, ShmRing, forget_inherited_segments
from repro.corpus.warc import CorruptContainerError
from repro.dictionary.trie import TrieTable
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ProfileDelta, SamplingProfiler
from repro.obs.trace import Span, Tracer
from repro.parsing.parser import Parser
from repro.parsing.stream_codec import decode_batch, encode_parsed_file
from repro.robustness import faults
from repro.robustness.errors import RetryExhausted
from repro.robustness.retry import retry_call

__all__ = ["WorkerSpec", "worker_main"]

#: Mirrors the engine's permanent-read-error classification without
#: importing the engine: these go to the ``on_error`` policy, anything
#: else that escapes a parse is fatal to the build.
_PERMANENT_READ_ERRORS = (CorruptContainerError, RetryExhausted, OSError)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs — plain data, pickle-friendly.

    Deliberately contains no multiprocessing primitives (no queues,
    locks, or conditions): a crashed peer can never strand this worker
    on a dead synchronization object, and the spec pickles under any
    start method.
    """

    key: str                    # slot key: "cpu-0" | "gpu-1" | "parser-2"
    kind: str                   # "indexer" | "parser"
    incarnation: int            # 1 + number of supervisor restarts
    task_ring: RingSpec
    result_ring: RingSpec
    config: PlatformConfig
    fault_plan: "faults.FaultPlan | None"
    parent_pid: int


class _WorkerDelta:
    """What the worker's injector and metrics did since the last reply."""

    def __init__(
        self,
        injector: "faults.FaultInjector | None",
        registry: MetricsRegistry | None,
        tracer: Tracer | None = None,
        profiler: SamplingProfiler | None = None,
    ) -> None:
        self._injector = injector
        self._registry = registry
        self._tracer = tracer
        self._profiler = profiler
        self._counts: dict[str, int] = {}
        self._events = 0
        self._metrics = registry.snapshot() if registry is not None else None

    def take(
        self,
    ) -> tuple[
        dict[str, int],
        list[tuple[str, str]],
        dict[str, dict[str, object]],
        "tuple[float, list[Span]] | None",
        "ProfileDelta | None",
    ]:
        inj = self._injector
        if inj is None:
            counts_delta: dict[str, int] = {}
            events: list[tuple[str, str]] = []
        else:
            counts = dict(inj.counts)
            counts_delta = {
                kind: n - self._counts.get(kind, 0)
                for kind, n in counts.items()
                if n - self._counts.get(kind, 0)
            }
            events = list(inj.events[self._events:])
            self._counts = counts
            self._events = len(inj.events)
        if self._registry is None:
            metrics_delta: dict[str, dict[str, object]] = {}
        else:
            after = self._registry.snapshot()
            metrics_delta = MetricsRegistry.delta(self._metrics, after)
            self._metrics = after
        spans: "tuple[float, list[Span]] | None" = None
        if self._tracer is not None:
            drained = self._tracer.drain_spans()
            if drained:
                spans = (self._tracer.epoch, drained)
        profile: "ProfileDelta | None" = None
        if self._profiler is not None:
            profile = self._profiler.drain_delta()
        return counts_delta, events, metrics_delta, spans, profile


def worker_main(spec: WorkerSpec) -> None:
    """Run one worker to completion.  The process's whole life."""
    # Forked children inherit the engine's created-segment registry and
    # its atexit sweep; disown it or a clean worker exit would unlink
    # rings the engine (and sibling workers) still use.
    forget_inherited_segments()
    # Under the fork start method the child inherits the engine's
    # installed telemetry and fault injector; neither may run here — the
    # engine owns the durable metrics file, and faults must fire under
    # *worker* context (or not at all).  Metrics and spans emitted by
    # parse/index code land in worker-local instruments and travel home
    # as reply deltas.
    obs_runtime.uninstall()
    faults.uninstall()
    registry: MetricsRegistry | None = None
    tracer: Tracer | None = None
    if spec.config.telemetry:
        registry = MetricsRegistry()
        tracer = Tracer()
        obs_runtime.install(
            obs_runtime.Telemetry(tracer=tracer, metrics=registry)
        )
    injector: "faults.FaultInjector | None" = None
    if spec.fault_plan is not None:
        injector = faults.FaultInjector(spec.fault_plan)
        injector.set_worker_context(spec.key, spec.incarnation)
        faults.install(injector)
    profiler: SamplingProfiler | None = None
    if spec.config.profile:
        # Worker-side sampler: lane = slot key, so a restarted worker's
        # samples merge into the same lane (with a second pid recorded).
        profiler = SamplingProfiler(
            spec.config.profile_interval_s, lane=spec.key
        )
        profiler.start()

    tasks = ShmRing.attach(spec.task_ring)
    results = ShmRing.attach(spec.result_ring)

    def on_wait() -> None:
        # Heartbeat while polling either ring; exit if orphaned (the
        # engine died without stopping us — never outlive it).
        results.beat("producer")
        if os.getppid() != spec.parent_pid:
            os._exit(2)

    def reply(msg: tuple) -> None:
        results.beat("producer")
        results.put_frame(pickle.dumps(msg), on_wait=on_wait)

    delta = _WorkerDelta(injector, registry, tracer, profiler)
    try:
        if spec.kind == "indexer":
            _indexer_loop(spec, tasks, results, injector, delta, on_wait, reply)
        else:
            _parser_loop(spec, tasks, injector, delta, on_wait, reply)
    finally:
        if profiler is not None:
            profiler.stop()
        tasks.close()
        results.close()


def _indexer_loop(
    spec: WorkerSpec,
    tasks: ShmRing,
    results: ShmRing,
    injector: "faults.FaultInjector | None",
    delta: _WorkerDelta,
    on_wait: Callable[[], None],
    reply: Callable[[tuple], None],
) -> None:
    indexer = None
    while True:
        frame = tasks.get_frame(on_wait=on_wait)
        results.beat("producer")
        cmd = pickle.loads(frame)
        op = cmd[0]
        if op == "stop":
            return
        if op == "state":
            indexer = pickle.loads(cmd[1])
        elif op == "index":
            _, tid, tag, doc_offset, payload = cmd
            if injector is not None:
                injector.worker_event(tag)  # may stall or SIGKILL us here
            try:
                result = indexer.index_batch(decode_batch(payload), doc_offset)
            except Exception as exc:  # repro-lint: disable=RPR005 - cross-process propagation: the engine unpickles and re-raises
                reply(("error", tid, pickle.dumps(exc), *delta.take()))
            else:
                reply(("done", tid, result, *delta.take()))
        elif op == "boundary":
            reply(
                (
                    "boundary",
                    cmd[1],
                    pickle.dumps(indexer.drain_postings()),
                    pickle.dumps(indexer),
                    *delta.take(),
                )
            )
        elif op == "snapshot":
            reply(("snapshot", cmd[1], pickle.dumps(indexer), *delta.take()))
        else:
            raise RuntimeError(f"unknown indexer-worker op {op!r}")


def _parser_loop(
    spec: WorkerSpec,
    tasks: ShmRing,
    injector: "faults.FaultInjector | None",
    delta: _WorkerDelta,
    on_wait: Callable[[], None],
    reply: Callable[[tuple], None],
) -> None:
    cfg = spec.config
    # The trie table is a pure function of its height — building a local
    # copy is exact, so parse workers need no engine state at all.
    parser = Parser(
        parser_id=0,
        trie=TrieTable(height=cfg.trie_height),
        strip_html=cfg.strip_html,
        regroup=cfg.regroup,
        positional=cfg.positional,
    )
    while True:
        frame = tasks.get_frame(on_wait=on_wait)
        cmd = pickle.loads(frame)
        if cmd[0] == "stop":
            return
        _, k, path, tag = cmd
        if injector is not None:
            injector.worker_event(tag)  # may stall or SIGKILL us here

        def call() -> object:
            # The paper's round-robin parser-array slot for this file,
            # stamped exactly as the in-process stream does it.
            parser.parser_id = k % cfg.num_parsers
            return parser.parse_file(path, sequence=k)

        try:
            parsed, outcome = retry_call(call, cfg.retry, path)
        except _PERMANENT_READ_ERRORS as exc:
            reply(("parse_error", k, pickle.dumps(exc), 1, 0.0, *delta.take()))
        except BaseException as exc:  # repro-lint: disable=RPR005 - FatalFault crosses the process boundary; the engine re-raises it
            reply(("parse_fatal", k, pickle.dumps(exc), *delta.take()))
        else:
            reply(
                (
                    "parsed",
                    k,
                    encode_parsed_file(parsed),
                    outcome.attempts,
                    outcome.backoff_s,
                    *delta.take(),
                )
            )
