"""Per-file work metrics: measured or extrapolated to paper scale.

The pipeline simulator consumes a list of :class:`FileWork` records — one
per collection file — describing how much parsing and indexing work the
file induces, split into the *popular* and *unpopular* trie-collection
groups of Section III.E (because every experiment configuration routes
those groups differently).

Two producers exist:

- the **functional engine** fills records from real parser/B-tree counters
  while building a mini collection (used by integration tests and the
  measured-mode benchmarks);
- :meth:`WorkloadModel.paper_scale` synthesizes records for the paper's
  full datasets from their Table III statistics plus Heaps/Zipf structure:
  vocabulary grows as ``V(n) = k·n^β``, B-tree depth grows as
  ``log_t(terms per collection)``, and per-op node visits are
  ``depth + 1`` — the mechanism behind Fig 11's "overall slope ...
  coincides with the inverse of the depth of B-tree".

The ClueWeb09 paper-scale model ends with a Wikipedia.org segment starting
at file 1,200 whose fresh vocabulary and different document shape cause
the Fig 11 throughput cliff.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dictionary.layout import DEFAULT_DEGREE

__all__ = ["GroupWork", "FileWork", "WorkloadModel", "SegmentStats"]


@dataclass
class GroupWork:
    """Indexing work of one trie-collection group for one file."""

    tokens: int = 0
    new_terms: int = 0
    node_visits: int = 0
    full_string_fetches: int = 0
    splits: int = 0
    stream_chars: int = 0
    dict_chars: int = 0
    #: Fraction of node visits served from the CPU cache when this group
    #: runs on a CPU indexer (popular ≈ 0.95; the long tail thrashes).
    hot_visit_fraction: float = 0.5
    #: Tokens of the single largest trie collection in this group — the
    #: serial floor of one warp-per-collection GPU execution.
    largest_collection_tokens: int = 0
    #: Mean node visits per token (depth + 1) for the largest collection.
    visits_per_token: float = 2.0

    def merge(self, other: "GroupWork") -> None:
        self.tokens += other.tokens
        self.new_terms += other.new_terms
        self.node_visits += other.node_visits
        self.full_string_fetches += other.full_string_fetches
        self.splits += other.splits
        self.stream_chars += other.stream_chars
        self.dict_chars += other.dict_chars
        self.largest_collection_tokens = max(
            self.largest_collection_tokens, other.largest_collection_tokens
        )
        if self.tokens:
            self.visits_per_token = self.node_visits / self.tokens


@dataclass
class FileWork:
    """Everything the pipeline simulator needs about one file."""

    file_index: int
    compressed_bytes: int
    uncompressed_bytes: int
    num_docs: int
    raw_tokens: int  # pre-stop-word tokens (parse cost driver)
    popular: GroupWork = field(default_factory=GroupWork)
    unpopular: GroupWork = field(default_factory=GroupWork)
    segment: str = ""
    #: Wall seconds lost to injected faults and retry backoff while reading
    #: this file — charged to the parser stage by the pipeline simulator.
    fault_delay_s: float = 0.0

    @property
    def tokens(self) -> int:
        return self.popular.tokens + self.unpopular.tokens

    @property
    def postings_estimate(self) -> int:
        """Rough distinct (term, doc) pairs — post-processing cost driver."""
        return int(self.tokens * 0.62)


# ---------------------------------------------------------------------- #
# Paper-scale synthesis
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class SegmentStats:
    """Statistical profile of a contiguous run of files."""

    name: str
    num_files: int
    uncompressed_bytes_per_file: int
    compressed_bytes_per_file: int
    docs_per_file: int
    tokens_per_file: int  # post-stop
    stop_fraction: float = 0.35
    #: Heaps parameters for this segment's vocabulary growth.
    heaps_k: float = 38.0
    heaps_beta: float = 0.59
    #: Fraction of the segment's vocabulary that is *new* relative to what
    #: earlier segments already inserted (Wikipedia.org ≈ mostly new).
    fresh_vocab_fraction: float = 1.0
    #: How badly the whole-collection sample misrepresents this segment
    #: (0 = perfectly, 1 = completely).  Fig 11: "our CPU and GPU
    #: parameters depend on sampling the whole collection prior to
    #: indexing and since the portion of the Wikipedia files is relatively
    #: small, the resulting parameters do not effectively reflect the
    #: characteristics of this small subset."  A mismatched segment sends
    #: much of its true head traffic to the GPU's unpopular side (bigger
    #: serial floor) and cools the CPU's hot paths.
    sampling_mismatch: float = 0.0


def _btree_depth(terms_per_collection: float, degree: int) -> float:
    """Mean op depth of an n-key B-tree of degree t (paper's height bound).

    ``height ≤ log_t((n+1)/2)``; most keys live in the leaves, so the mean
    operation depth tracks the height.
    """
    if terms_per_collection <= 2 * degree - 1:
        return 0.0
    return max(0.0, math.log((terms_per_collection + 1) / 2, degree))


class WorkloadModel:
    """Synthesizes :class:`FileWork` sequences from collection statistics.

    Parameters below default to the ClueWeb09 measurements and the
    paper-wide structural constants:

    - ``popular_token_share`` / ``popular_term_share`` — Table V measured
      the CPU (popular) side at 44.3% of tokens but only 28.6% of terms;
    - ``num_popular_collections`` — "around one hundred";
    - ``num_unpopular_collections`` — the rest of the 17,613-entry trie;
    - ``largest_popular_share`` / ``largest_unpopular_share`` — token share
      of the single biggest collection in each group, the serial floor of
      GPU execution (a key reason popular collections belong on the CPU).
    """

    def __init__(
        self,
        segments: list[SegmentStats],
        degree: int = DEFAULT_DEGREE,
        popular_token_share: float = 0.443,
        popular_term_share: float = 0.286,
        num_popular_collections: int = 128,
        num_unpopular_collections: int = 17_000,
        largest_popular_share: float = 0.0474,
        largest_unpopular_share: float = 0.006,
        mean_term_chars: float = 6.6,
        trie_strip_chars: float = 3.0,
        cache_tie_rate: float = 0.04,
        popular_hot_fraction: float = 0.95,
        unpopular_hot_fraction: float = 0.35,
    ) -> None:
        self.segments = segments
        self.degree = degree
        self.popular_token_share = popular_token_share
        self.popular_term_share = popular_term_share
        self.num_popular_collections = num_popular_collections
        self.num_unpopular_collections = num_unpopular_collections
        self.largest_popular_share = largest_popular_share
        self.largest_unpopular_share = largest_unpopular_share
        self.mean_term_chars = mean_term_chars
        self.trie_strip_chars = trie_strip_chars
        self.cache_tie_rate = cache_tie_rate
        self.popular_hot_fraction = popular_hot_fraction
        self.unpopular_hot_fraction = unpopular_hot_fraction

    # ------------------------------------------------------------------ #

    def files(self) -> list[FileWork]:
        """Generate the per-file work sequence across all segments."""
        works: list[FileWork] = []
        file_index = 0
        # Vocabulary state: cumulative tokens and terms *per segment pool*.
        # A segment with fresh vocabulary restarts Heaps growth for its
        # fresh share while the stale share keeps following the main pool.
        main_tokens = 0.0
        main_terms = 0.0
        for seg in self.segments:
            seg_tokens = 0.0
            seg_terms_prev = 0.0
            for _ in range(seg.num_files):
                # --- vocabulary growth ------------------------------- #
                fresh = seg.fresh_vocab_fraction
                main_tokens += seg.tokens_per_file * (1.0 - fresh)
                seg_tokens += seg.tokens_per_file * fresh
                main_now = seg.heaps_k * main_tokens**seg.heaps_beta if main_tokens else 0.0
                seg_now = seg.heaps_k * seg_tokens**seg.heaps_beta if seg_tokens else 0.0
                new_terms = max(0.0, (main_now - main_terms) + (seg_now - seg_terms_prev))
                main_terms = main_now
                seg_terms_prev = seg_now
                total_terms = main_terms + seg_terms_prev

                works.append(
                    self._file_work(
                        file_index=file_index,
                        seg=seg,
                        total_terms=total_terms,
                        new_terms=new_terms,
                    )
                )
                file_index += 1
        return works

    def _file_work(
        self, file_index: int, seg: SegmentStats, total_terms: float, new_terms: float
    ) -> FileWork:
        tokens = seg.tokens_per_file
        raw_tokens = int(tokens / (1.0 - seg.stop_fraction))
        mismatch = seg.sampling_mismatch
        pop_share = self.popular_token_share * (1.0 - mismatch)
        largest_unpop = self.largest_unpopular_share * (1.0 + 6.0 * mismatch)
        unpop_hot = self.unpopular_hot_fraction * (1.0 - 0.5 * mismatch)
        pop_tokens = int(tokens * pop_share)
        unpop_tokens = tokens - pop_tokens

        pop_terms = total_terms * self.popular_term_share
        unpop_terms = total_terms - pop_terms
        pop_new = new_terms * self.popular_term_share
        unpop_new = new_terms - pop_new

        pop = self._group(
            tokens=pop_tokens,
            terms=pop_terms,
            new_terms=pop_new,
            collections=self.num_popular_collections,
            largest_share=self.largest_popular_share,
            all_tokens=tokens,
            hot=self.popular_hot_fraction,
        )
        unpop = self._group(
            tokens=unpop_tokens,
            terms=unpop_terms,
            new_terms=unpop_new,
            collections=self.num_unpopular_collections,
            largest_share=largest_unpop,
            all_tokens=tokens,
            hot=unpop_hot,
        )
        return FileWork(
            file_index=file_index,
            compressed_bytes=seg.compressed_bytes_per_file,
            uncompressed_bytes=seg.uncompressed_bytes_per_file,
            num_docs=seg.docs_per_file,
            raw_tokens=raw_tokens,
            popular=pop,
            unpopular=unpop,
            segment=seg.name,
        )

    def _group(
        self,
        tokens: int,
        terms: float,
        new_terms: float,
        collections: int,
        largest_share: float,
        all_tokens: int,
        hot: float,
    ) -> GroupWork:
        depth = _btree_depth(terms / max(1, collections), self.degree)
        visits_per_token = depth + 1.0
        suffix_chars = max(1.0, self.mean_term_chars - self.trie_strip_chars)
        return GroupWork(
            tokens=tokens,
            new_terms=int(new_terms),
            node_visits=int(tokens * visits_per_token),
            full_string_fetches=int(tokens * visits_per_token * self.cache_tie_rate),
            splits=int(new_terms / (self.degree + 5)),
            stream_chars=int(tokens * suffix_chars),
            dict_chars=int(new_terms * suffix_chars),
            hot_visit_fraction=hot,
            largest_collection_tokens=int(all_tokens * largest_share),
            visits_per_token=visits_per_token,
        )

    # ------------------------------------------------------------------ #
    # Paper presets
    # ------------------------------------------------------------------ #

    @classmethod
    def paper_scale(cls, dataset: str = "clueweb09", degree: int = DEFAULT_DEGREE) -> "WorkloadModel":
        """Workload for one of the paper's three collections (Table III)."""
        GB = 1024**3
        if dataset == "clueweb09":
            # 1,492 files; the last ~292 are Wikipedia.org (Fig 11 cliff at
            # file index 1,200).  Wikipedia pages are smaller and denser
            # (more tokens per byte) than the average crawl file — which is
            # what lets the per-file throughput crater in Fig 11 while the
            # indexer stage only lags the parsers by a couple hundred
            # seconds in Table IV.
            web_files, wiki_files = 1200, 292
            total_tokens = 32_644_508_255
            wiki_tokens_pf = int(total_tokens / 1492 * 1.05)
            web_tokens_pf = (total_tokens - wiki_tokens_pf * wiki_files) // web_files
            wiki_unc = int(0.55 * GB)
            wiki_comp = int(0.11 * GB)
            web_unc = (1422 * GB - wiki_files * wiki_unc) // web_files
            web_comp = (230 * GB - wiki_files * wiki_comp) // web_files
            segments = [
                SegmentStats(
                    name="web",
                    num_files=web_files,
                    uncompressed_bytes_per_file=web_unc,
                    compressed_bytes_per_file=web_comp,
                    docs_per_file=50_220_423 // 1492,
                    tokens_per_file=web_tokens_pf,
                ),
                SegmentStats(
                    name="wikipedia.org",
                    num_files=wiki_files,
                    uncompressed_bytes_per_file=wiki_unc,
                    compressed_bytes_per_file=wiki_comp,
                    docs_per_file=50_220_423 // 1492,
                    tokens_per_file=wiki_tokens_pf,
                    # Mostly vocabulary unseen in the crawl so far — the
                    # sampled CPU/GPU parameters stop fitting.
                    fresh_vocab_fraction=0.8,
                    sampling_mismatch=0.35,
                ),
            ]
            return cls(segments, degree=degree)
        if dataset == "wikipedia":
            files = 84
            return cls(
                [
                    SegmentStats(
                        name="articles",
                        num_files=files,
                        uncompressed_bytes_per_file=79 * GB // files,
                        compressed_bytes_per_file=29 * GB // files,
                        docs_per_file=16_618_497 // files,
                        tokens_per_file=9_375_229_726 // files,
                        heaps_k=12.1,  # pre-cleaned text: lean vocabulary
                        heaps_beta=0.59,
                    )
                ],
                degree=degree,
            )
        if dataset == "congress":
            files = 530
            return cls(
                [
                    SegmentStats(
                        name="weekly-snapshots",
                        num_files=files,
                        uncompressed_bytes_per_file=507 * GB // files,
                        compressed_bytes_per_file=96 * GB // files,
                        docs_per_file=29_177_074 // files,
                        tokens_per_file=16_865_180_093 // files,
                        heaps_k=6.8,  # weekly re-crawls repeat vocabulary
                        heaps_beta=0.59,
                    )
                ],
                degree=degree,
            )
        raise KeyError(f"unknown paper dataset {dataset!r}")
