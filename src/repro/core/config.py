"""Platform and algorithm configuration (the knobs of Section IV).

The paper's best configuration on two quad-core Xeon X5560 + two Tesla
C1060: **six parsers, two CPU indexers, two GPU indexers with 480 thread
blocks each** — the default here.  The experiment benchmarks construct
variants (Fig 10 sweeps ``num_parsers``, Table IV sweeps the indexer mix,
the ablations toggle regrouping/trie height/degree/caches/scheduling).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.dictionary.layout import DEFAULT_DEGREE

from repro.gpusim.costmodel import GPUSpec, TESLA_C1060
from repro.indexers.assignment import PopularityPolicy
from repro.robustness.policy import ON_ERROR_POLICIES
from repro.robustness.retry import RetryPolicy
from repro.robustness.supervise import SupervisorPolicy

__all__ = [
    "PlatformConfig",
    "PIPELINE_DEPTH_ENV",
    "EXEC_BACKEND_ENV",
    "EXEC_BACKENDS",
]

#: Environment override for :attr:`PlatformConfig.pipeline_depth` — lets
#: CI force the pipelined engine on for the whole tier-1 suite without
#: touching any test's config construction.  Explicit constructor
#: arguments and ``--serial`` still win over the environment.
PIPELINE_DEPTH_ENV = "REPRO_PIPELINE_DEPTH"

#: Environment override for :attr:`PlatformConfig.exec_backend` — CI's
#: backend matrix forces the whole tier-1 suite through one backend the
#: same way ``REPRO_PIPELINE_DEPTH`` forces pipelining.  Explicit
#: constructor arguments still win over the environment.
EXEC_BACKEND_ENV = "REPRO_EXEC_BACKEND"

#: Valid values of :attr:`PlatformConfig.exec_backend`.  ``auto``
#: resolves to ``threaded`` when ``pipeline_depth > 0`` and ``serial``
#: otherwise (the pre-seam behavior); see
#: :func:`repro.core.exec_backend.resolve_backend_name`.
EXEC_BACKENDS = ("auto", "serial", "threaded", "multiprocess")


def _default_pipeline_depth() -> int:
    raw = os.environ.get(PIPELINE_DEPTH_ENV, "").strip()
    if not raw:
        return 0
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{PIPELINE_DEPTH_ENV} must be an integer, got {raw!r}"
        ) from None


def _default_exec_backend() -> str:
    raw = os.environ.get(EXEC_BACKEND_ENV, "").strip().lower()
    if not raw:
        return "auto"
    if raw not in EXEC_BACKENDS:
        raise ValueError(
            f"{EXEC_BACKEND_ENV} must be one of {EXEC_BACKENDS}, got {raw!r}"
        )
    return raw


@dataclass(frozen=True)
class PlatformConfig:
    """Everything the engine and the pipeline simulator need to know."""

    # --- pipeline shape (Fig 9) ---------------------------------------- #
    num_parsers: int = 6
    num_cpu_indexers: int = 2
    num_gpus: int = 2
    total_cores: int = 8
    buffer_capacity: int = 2

    # --- GPU (Section III.D.2 / IV.B) ---------------------------------- #
    gpu_spec: GPUSpec = TESLA_C1060
    thread_blocks_per_gpu: int = 480
    gpu_schedule: str = "dynamic"  # "dynamic" | "static" (ablation E)
    gpu_fidelity: str = "fast"  # "fast" | "warp"

    # --- dictionary (Section III.B) ------------------------------------ #
    trie_height: int = 3
    btree_degree: int = DEFAULT_DEGREE
    use_string_cache: bool = True

    # --- parsing (Section III.C) --------------------------------------- #
    strip_html: bool = True
    regroup: bool = True
    #: Real thread-pool lookahead for the functional build: up to this
    #: many files are read/decompressed/parsed ahead of the indexers on
    #: worker threads.  Output is byte-identical to a serial build.  Only
    #: the I/O and gzip portions release the GIL, so this pays off when
    #: reads dominate (big compressed files, slow storage) and can *cost*
    #: a little on small hot-cache corpora where Python-bound stemming
    #: dominates.  ``0`` (default) keeps the build strictly serial.
    parse_prefetch: int = 0
    #: Pipelined execution (Fig 8/9, executed for real): with a depth of
    #: N the engine dispatches parsed files to per-indexer worker threads
    #: through bounded queues and keeps at most N files in flight, so
    #: parsing, CPU indexing and (simulated) GPU indexing overlap while
    #: run-boundary bookkeeping stays on the engine thread and output
    #: stays byte-identical to a serial build.  ``0`` (default) keeps the
    #: classic inline loop.  The default can be raised fleet-wide via the
    #: ``REPRO_PIPELINE_DEPTH`` environment variable (CI's pipelined
    #: matrix leg); when ``parse_prefetch`` is 0, pipelined builds reuse
    #: the depth as their parse lookahead so both stages actually overlap.
    #: Like ``parse_prefetch``, the wall-clock win under the GIL comes
    #: from hiding I/O latency (slow or remote storage); on small
    #: hot-cache corpora the build is Python-bound and serial is as fast.
    pipeline_depth: int = field(default_factory=_default_pipeline_depth)
    #: Which execution backend runs the build (docs/ARCHITECTURE.md,
    #: "Execution backends"): ``"serial"`` (inline reference loop),
    #: ``"threaded"`` (worker-thread pool), ``"multiprocess"``
    #: (supervised OS processes over shared-memory rings — the only mode
    #: that escapes the GIL), or ``"auto"`` (default: ``threaded`` when
    #: ``pipeline_depth > 0``, else ``serial``).  All backends produce
    #: byte-identical output.  Overridable fleet-wide via
    #: ``REPRO_EXEC_BACKEND``; explicit values win over the environment.
    exec_backend: str = field(default_factory=_default_exec_backend)
    #: Supervision knobs for the multiprocess backend: restart budgets,
    #: heartbeat timeout, poison threshold, ring sizing (see
    #: :mod:`repro.robustness.supervise`).
    supervisor: SupervisorPolicy = field(default_factory=SupervisorPolicy)

    # --- load balancing (Section III.E) -------------------------------- #
    sample_fraction: float = 0.001
    popularity: PopularityPolicy = field(default_factory=PopularityPolicy)

    # --- output (Section III.F) ---------------------------------------- #
    codec: str = "varbyte"
    #: Spread run files round-robin over this many "disk" subdirectories
    #: (§III.F: "the output files can be written onto multiple disks",
    #: enabling parallel reading of the postings lists).
    output_stripes: int = 1
    #: Collection files per run.  The paper passes parsed results to the
    #: indexers "after processing a number of documents with a fixed total
    #: size, e.g. 1GB"; with 1GB collection files that is one file per run
    #: (the default), but smaller files can be grouped.
    files_per_run: int = 1
    #: Build an Ivory-style positional index: every posting carries the
    #: token's in-document positions, enabling phrase queries.  Selects a
    #: positional codec automatically when left on "varbyte".
    positional: bool = False

    # --- observability (docs/OBSERVABILITY.md) --------------------------- #
    #: Span tracing + metrics collection for the build.  On by default;
    #: when off, the engine runs with the null tracer/registry (near-zero
    #: overhead) and writes no ``run.metrics.json`` / ``trace.json``.
    telemetry: bool = True
    #: Sampling profiler (``repro build --profile``): the engine and
    #: every worker process run a deterministic-interval stack sampler
    #: whose merged view is written as ``run.profile.json`` (see
    #: docs/OBSERVABILITY.md, "Profiling").  Independent of
    #: ``telemetry`` — a profiled build with telemetry off still
    #: collects samples (it just lacks the ``shm.ring.*`` wait
    #: counters the hot-path report cross-references).
    profile: bool = False
    #: Sampler tick in seconds; smaller = finer attribution, more
    #: overhead.  The default 10ms keeps profiled builds within the
    #: ≤ 5% overhead gate pinned by ``tests/test_profile.py``.
    profile_interval_s: float = 0.01

    # --- robustness (docs/ROBUSTNESS.md) -------------------------------- #
    #: What to do with a permanently unreadable container file:
    #: ``"strict"`` aborts the build, ``"skip"`` records and continues,
    #: ``"quarantine"`` additionally moves the file aside for triage.
    on_error: str = "strict"
    #: Backoff schedule applied to every container read (sampling and
    #: build); only transient errors are retried.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Where quarantined containers land (default: ``quarantine/`` inside
    #: the collection directory).
    quarantine_dir: str | None = None

    def __post_init__(self) -> None:
        if self.positional:
            if self.codec == "varbyte":
                object.__setattr__(self, "codec", "varbyte-pos")
            elif self.codec != "varbyte-pos":
                raise ValueError(
                    f"positional indexes need a positional codec, not {self.codec!r}"
                )
            if not self.regroup:
                raise ValueError("positional indexing requires regrouping")
        if self.num_parsers < 1:
            raise ValueError("need at least one parser")
        if self.output_stripes < 1:
            raise ValueError("need at least one output stripe")
        if self.files_per_run < 1:
            raise ValueError("need at least one file per run")
        if self.parse_prefetch < 0:
            raise ValueError("parse_prefetch must be >= 0")
        if self.pipeline_depth < 0:
            raise ValueError("pipeline_depth must be >= 0 (0 = serial)")
        if self.exec_backend not in EXEC_BACKENDS:
            raise ValueError(
                f"exec_backend must be one of {EXEC_BACKENDS}, "
                f"got {self.exec_backend!r}"
            )
        if self.num_cpu_indexers < 0 or self.num_gpus < 0:
            raise ValueError("indexer counts must be non-negative")
        if self.num_cpu_indexers == 0 and self.num_gpus == 0:
            raise ValueError(
                "need at least one indexer (CPU or GPU); use the pipeline "
                "simulator's parse_only mode for the Fig 10 parse-only series"
            )
        if self.profile_interval_s <= 0:
            raise ValueError("profile_interval_s must be > 0")
        if self.on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, got {self.on_error!r}"
            )
        if self.num_parsers + self.num_cpu_indexers > self.total_cores:
            raise ValueError(
                f"{self.num_parsers} parsers + {self.num_cpu_indexers} CPU "
                f"indexers oversubscribe the {self.total_cores} physical cores "
                "(the paper binds one thread per core)"
            )

    # ------------------------------------------------------------------ #

    def with_(self, **changes: object) -> "PlatformConfig":
        """Functional update, for experiment sweeps."""
        return replace(self, **changes)

    @property
    def cores_for_indexing(self) -> int:
        return self.num_cpu_indexers

    def describe(self) -> str:
        """One-line summary used by benchmark headers."""
        gpu = (
            f"{self.num_gpus} GPU ({self.thread_blocks_per_gpu} blocks, "
            f"{self.gpu_schedule})"
            if self.num_gpus
            else "no GPU"
        )
        pipeline = (
            f" / pipelined (depth {self.pipeline_depth})"
            if self.pipeline_depth
            else ""
        )
        backend = (
            f" / exec {self.exec_backend}" if self.exec_backend != "auto" else ""
        )
        return (
            f"{self.num_parsers} parsers / {self.num_cpu_indexers} CPU "
            f"indexers / {gpu}{pipeline}{backend}"
        )
