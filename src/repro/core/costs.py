"""Calibrated cost constants and the work → seconds conversion.

The functional layer counts *work* (bytes, tokens, node visits, splits);
this module prices that work in seconds on the paper's hardware.  The
constants are calibrated against the paper's own measurements — see
DESIGN.md §5 and EXPERIMENTS.md — in particular:

- §IV.A's I/O analysis: a 160MB compressed / 1GB file takes 1.6 s to read
  (100 MB/s remote disk) and 3.2 s to decompress (312.5 MB/s);
- Table IV's four indexer configurations, which pin down the CPU cost
  trio (per-token, hot visit, cold visit), the memory-bandwidth
  contention between CPU indexer threads (2 threads → 1.77× speedup), and
  the two GPU parameters:

  * ``gpu_serial_cycles_per_visit ≈ 4000`` — a warp descending a B-tree
    is a *dependent chain* of 512-byte node loads (8 transactions × the
    C1060's ~500-cycle latency), nothing to overlap inside one warp;
  * ``gpu_effective_chains ≈ 17`` — how many such chains one GPU sustains
    concurrently in aggregate (of 30 SMs × 8 resident blocks theoretical;
    queue pops, divergence and bandwidth contention eat the rest).  This
    single scalar folds everything our simulator cannot deduce from the
    paper and is fitted to the measured 2-GPU-only throughput.

The *structure* — popular collections having deep-but-hot trees, the
largest collection being one warp's serial floor, latency hiding growing
with resident blocks — is what produces the paper's qualitative results
(GPU-alone slower than 2 CPUs, superlinear CPU+GPU combination, the 480
block optimum); the constants only set the scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.workload import FileWork, GroupWork
from repro.gpusim.costmodel import GPUSpec, TESLA_C1060

__all__ = ["CostConstants", "StageCosts"]


@dataclass(frozen=True)
class CostConstants:
    """All calibrated constants, in SI units (seconds, bytes)."""

    # --- I/O (paper §IV.A measurements) -------------------------------- #
    disk_read_bytes_per_s: float = 100e6
    decompress_bytes_per_s: float = 312.5e6

    # --- parsing (one Xeon thread; ~17.5 s per 1GB ClueWeb file) ------- #
    scan_s_per_byte: float = 4.4e-9
    parse_s_per_raw_token: float = 313e-9
    regroup_overhead: float = 0.05  # the paper's "about 5%"

    # --- CPU indexing (Table IV calibration) --------------------------- #
    cpu_s_per_token: float = 86e-9
    cpu_hot_visit_s: float = 19e-9
    cpu_cold_visit_s: float = 143e-9
    cpu_full_fetch_s: float = 40e-9
    cpu_split_s: float = 900e-9
    #: Throughput loss per additional CPU indexer thread on the same
    #: sockets (2 threads → 1.77× not 2×).
    cpu_bandwidth_contention: float = 0.131
    #: Hot-path cache residency lost per parser thread beyond ~3/4 of the
    #: core budget: parsers stream gigabytes through the shared L3,
    #: evicting the indexers' hot B-tree paths (why Fig 10's with-GPU
    #: curve tops out at six parsers instead of seven on the 8-core node).
    cpu_cache_pressure_per_extra_parser: float = 0.30

    # --- GPU indexing (Table IV calibration; see module docstring) ----- #
    gpu_serial_cycles_per_visit: float = 4000.0
    gpu_serial_cycles_per_token: float = 600.0
    gpu_effective_chains: float = 18.6
    gpu_spec: GPUSpec = TESLA_C1060

    # --- run lifecycle (Fig 8; Table IV pre/post rows) ------------------ #
    pre_fixed_s_per_run: float = 0.065
    post_s_per_posting: float = 22e-9
    post_fixed_s_per_run: float = 0.02

    # --- sampling & dictionary epilogue (Table VI rows) ----------------- #
    sample_seek_s_per_file: float = 0.015
    dict_combine_s_per_term: float = 29e-9
    dict_write_s_per_term: float = 698e-9


@dataclass
class StageCosts:
    """Prices :class:`FileWork` into per-stage seconds for one config."""

    constants: CostConstants = field(default_factory=CostConstants)

    # ------------------------------------------------------------------ #
    # Parser stage (Fig 3)
    # ------------------------------------------------------------------ #

    def read_seconds(self, work: FileWork) -> float:
        """Exclusive disk occupancy for the compressed file."""
        return work.compressed_bytes / self.constants.disk_read_bytes_per_s

    def decompress_seconds(self, work: FileWork) -> float:
        return work.uncompressed_bytes / self.constants.decompress_bytes_per_s

    def parse_seconds(self, work: FileWork, regroup: bool = True) -> float:
        """Steps 2–5 on one parser thread."""
        c = self.constants
        base = (
            work.uncompressed_bytes * c.scan_s_per_byte
            + work.raw_tokens * c.parse_s_per_raw_token
        )
        return base * (1.0 + (c.regroup_overhead if regroup else 0.0))

    # ------------------------------------------------------------------ #
    # CPU indexers
    # ------------------------------------------------------------------ #

    def cpu_group_seconds(
        self, group: GroupWork, num_parsers: int = 6, total_cores: int = 8
    ) -> float:
        """One CPU thread consuming one group's work, no contention."""
        c = self.constants
        pressure_threshold = 0.75 * total_cores
        pressure = c.cpu_cache_pressure_per_extra_parser * max(
            0.0, num_parsers - pressure_threshold
        )
        hot_fraction = group.hot_visit_fraction * max(0.0, 1.0 - pressure)
        hot = group.node_visits * hot_fraction
        cold = group.node_visits - hot
        return (
            group.tokens * c.cpu_s_per_token
            + hot * c.cpu_hot_visit_s
            + cold * c.cpu_cold_visit_s
            + group.full_string_fetches * c.cpu_full_fetch_s
            + group.splits * c.cpu_split_s
        )

    def cpu_stage_seconds(
        self,
        groups: list[GroupWork],
        n_indexers: int,
        num_parsers: int = 6,
        total_cores: int = 8,
    ) -> float:
        """Balanced split across ``n_indexers`` threads with contention."""
        if n_indexers <= 0 or not groups:
            return 0.0
        total = sum(
            self.cpu_group_seconds(g, num_parsers, total_cores) for g in groups
        )
        contention = 1.0 + self.constants.cpu_bandwidth_contention * (n_indexers - 1)
        return total / n_indexers * contention

    # ------------------------------------------------------------------ #
    # GPU indexers
    # ------------------------------------------------------------------ #

    def gpu_kernel_seconds(
        self, group: GroupWork, n_gpus: int, num_blocks: int = 480, dynamic: bool = True
    ) -> float:
        """Per-GPU kernel time for one group split over ``n_gpus``.

        ``time = max(aggregate path, serial floor)`` where the aggregate
        path spreads the group's dependent-load chains over the device's
        effective concurrent chains (scaled by residency when the block
        count is below saturation) and the serial floor is the largest
        single trie collection processed by one warp — the structural
        reason a GPU struggles with popular collections.
        """
        if n_gpus <= 0 or group.tokens == 0:
            return 0.0
        c = self.constants
        spec = c.gpu_spec
        serial_cycles = (
            group.node_visits * c.gpu_serial_cycles_per_visit
            + group.tokens * c.gpu_serial_cycles_per_token
        ) / n_gpus
        # Residency scaling: chains can't exceed what the launched blocks
        # provide; 480 blocks on 30 SMs saturates the effective figure.
        blocks_per_sm = max(1.0, num_blocks / spec.num_sms)
        resident = min(spec.max_blocks_per_sm, blocks_per_sm)
        # Residency fills to max at 8 blocks/SM; a deeper backlog (up to
        # 16/SM = the paper's 480) keeps SMs fed across block retirement,
        # worth a further ~25%.
        backlog_bonus = 0.25 * min(1.0, max(0.0, (blocks_per_sm - 8.0) / 8.0))
        saturation = resident / spec.max_blocks_per_sm + backlog_bonus
        chains = max(1.0, c.gpu_effective_chains * saturation)
        aggregate = serial_cycles / chains
        # Serial floor: one warp owns the biggest collection end to end.
        floor_cycles = group.largest_collection_tokens * (
            group.visits_per_token * c.gpu_serial_cycles_per_visit
            + c.gpu_serial_cycles_per_token
        )
        if not dynamic:
            # Static pre-assignment: expected collision of big collections
            # on one block inflates the floor (ablation E).
            floor_cycles *= 1.6
        overhead = spec.kernel_launch_cycles + num_blocks * spec.block_overhead_cycles / max(
            1, spec.num_sms
        )
        return spec.seconds(max(aggregate, floor_cycles) + overhead)

    def gpu_transfer_seconds(self, group: GroupWork, n_gpus: int) -> float:
        """Pre/post PCIe traffic for one group split over ``n_gpus``."""
        if n_gpus <= 0 or group.tokens == 0:
            return 0.0
        spec = self.constants.gpu_spec
        h2d = group.stream_chars + group.tokens  # length-prefixed suffixes
        d2h = group.tokens * 8  # postings back to host
        return spec.transfer_seconds(h2d // n_gpus) + spec.transfer_seconds(d2h // n_gpus)

    # ------------------------------------------------------------------ #
    # Run lifecycle (Fig 8)
    # ------------------------------------------------------------------ #

    def pre_seconds(self, work: FileWork, n_gpus: int) -> float:
        """Serialized pre-processing: buffer handoff + h2d transfers."""
        c = self.constants
        transfer = 0.0
        if n_gpus:
            spec = c.gpu_spec
            h2d = work.unpopular.stream_chars + work.unpopular.tokens
            transfer = n_gpus * spec.transfer_seconds(h2d // max(1, n_gpus))
        return c.pre_fixed_s_per_run + transfer

    def post_seconds(self, work: FileWork, n_gpus: int) -> float:
        """Serialized post-processing: combine + compress + write."""
        c = self.constants
        transfer = 0.0
        if n_gpus:
            spec = c.gpu_spec
            d2h = work.unpopular.tokens * 8
            transfer = n_gpus * spec.transfer_seconds(d2h // max(1, n_gpus))
        return (
            c.post_fixed_s_per_run
            + work.postings_estimate * c.post_s_per_posting
            + transfer
        )

    # ------------------------------------------------------------------ #
    # Whole-run epilogue (Table VI rows)
    # ------------------------------------------------------------------ #

    def sampling_seconds(self, works: list[FileWork], sample_fraction: float) -> float:
        """Extract + parse the load-balancing sample (Table VI row 1)."""
        c = self.constants
        total_unc = sum(w.uncompressed_bytes for w in works)
        total_raw = sum(w.raw_tokens for w in works)
        sampled_bytes = total_unc * sample_fraction
        sampled_tokens = total_raw * sample_fraction
        return (
            len(works) * c.sample_seek_s_per_file
            + sampled_bytes / c.disk_read_bytes_per_s
            + sampled_bytes * c.scan_s_per_byte
            + sampled_tokens * c.parse_s_per_raw_token
        )

    def dict_combine_seconds(self, total_terms: int) -> float:
        return total_terms * self.constants.dict_combine_s_per_term

    def dict_write_seconds(self, total_terms: int) -> float:
        return total_terms * self.constants.dict_write_s_per_term
