"""The multiprocess execution backend: supervised workers over shm rings.

Process layout (engine process + one OS process per slot)::

    engine ──task ring──▶ parser-w ──result ring──▶ engine   (w per parser)
    engine ──task ring──▶ cpu-i/gpu-j ──result ring──▶ engine (per indexer)

Parsers ship whole files back as :mod:`repro.parsing.stream_codec`
bytes; indexer workers hold a private copy of their indexer object and
stream sub-batches in / reports out.  All *durable* effects — doc table,
run files, manifest, checkpoint — happen on the engine thread through
the shared :class:`~repro.core.exec_backend.BuildHooks`, which is what
makes worker failures recoverable with at-most-once side effects.

Ordering contract (byte-identity with serial/threaded):

- files are assigned to parser slots round-robin and *collected in
  global file order*, so the engine sees parsed files exactly as the
  serial loop would;
- sub-batches are split and dispatched on the engine thread in file
  order, per-slot FIFO rings preserve that order per indexer, and the
  drain window always collects the oldest file first;
- run boundaries quiesce the window, then pull postings *and refreshed
  indexer state* out of every worker, so ``close_run``'s checkpoint and
  the dictionary epilogue operate on authoritative objects.

Supervision (:mod:`repro.robustness.supervise`) is passive: every
blocking ring wait doubles as the supervision tick.  A dead or silent
worker is recovered by restart (fresh rings — a SIGKILL mid-frame
poisons a ring — state snapshot pushed, journal replayed, already-
collected replies discarded by task id) or, when budgets or poison say
stop, by degrading the slot to inline execution on the engine thread.
Worker-side fault-injection counts and metric emissions return as reply
deltas and are folded into the engine's injector/registry, keeping
chaos assertions and ``run.metrics.json`` backend-agnostic.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.exec_backend import (
    DEFAULT_CONCURRENT_DEPTH,
    BuildHooks,
    ExecutionBackend,
    ParsedStream,
    _InflightFile,
)
from repro.core.mp_worker import WorkerSpec, worker_main
from repro.core.pipeline_exec import QUEUE_DEPTH_BUCKETS, PipelineStats
from repro.core.shm_ring import RingTimeout, ShmRing, sweep_created_segments
from repro.parsing.stream_codec import decode_batch, decode_parsed_file, encode_batch
from repro.robustness.retry import RetryOutcome
from repro.robustness.supervise import Supervisor, SupervisorReport, WorkerFailure
from repro.util.timing import now

if TYPE_CHECKING:
    from repro.postings.lists import PostingsList

__all__ = ["MultiprocessBackend"]

#: Files dispatched ahead per parser slot (its private parse lookahead).
_PARSE_LOOKAHEAD = 2


class _SlotInterrupted(Exception):
    """A blocking put was abandoned because its slot was recovered."""


@dataclass
class _Journal:
    """One dispatched sub-batch, replayable into a restarted worker."""

    tid: int
    tag: str
    doc_offset: int
    payload: bytes
    collected: bool = False


class _Handle:
    """One live worker incarnation: process + its two rings."""

    __slots__ = (
        "proc", "incarnation", "task_ring", "result_ring",
        "last_beats", "last_change",
    )

    def __init__(
        self,
        proc: Any,
        incarnation: int,
        task_ring: ShmRing,
        result_ring: ShmRing,
    ) -> None:
        self.proc = proc
        self.incarnation = incarnation
        self.task_ring = task_ring
        self.result_ring = result_ring
        self.last_beats = result_ring.beats("producer")
        self.last_change = now()


class _Slot:
    """One logical worker slot, surviving restarts and degradation."""

    def __init__(self, key: str) -> None:
        self.key = key
        self.mode = "process"  # "process" | "inline"
        self.handle: _Handle | None = None
        #: Bumped on every restart/degrade; generation-guarded puts let
        #: nested recovery abandon sends the replay already covered.
        self.generation = 0


class _IndexerSlot(_Slot):
    def __init__(self, key: str, kind: str, idx: int) -> None:
        super().__init__(key)
        self.kind = kind
        self.idx = idx
        #: Pickled indexer state at the last run boundary (or start).
        self.snapshot = b""
        #: Every sub-batch dispatched since the snapshot, in order.
        self.journal: list[_Journal] = []
        self.by_tid: dict[int, _Journal] = {}
        #: Replayed-task ids whose duplicate "done" replies to skip.
        self.discard: set[int] = set()
        #: Results produced by inline (degraded) execution, by task id.
        self.inline_results: dict[int, Any] = {}

    def uncollected(self) -> int:
        return sum(1 for e in self.journal if not e.collected)


class _ParserSlot(_Slot):
    def __init__(self, key: str, w: int) -> None:
        super().__init__(key)
        self.w = w
        #: ``(file_index, path, tag)`` dispatched but not yet collected.
        self.outstanding: deque[tuple[int, str, str]] = deque()
        self.next_k = 0

    def uncollected(self) -> int:
        return len(self.outstanding)


class MultiprocessBackend(ExecutionBackend):
    """Parsers + indexers as supervised OS processes (see module doc)."""

    name = "multiprocess"

    def __init__(self, hooks: BuildHooks) -> None:
        super().__init__(hooks)
        cfg = hooks.config
        self.policy = cfg.supervisor
        self.sup = Supervisor(self.policy)
        self.depth = cfg.pipeline_depth or DEFAULT_CONCURRENT_DEPTH
        method = self.policy.start_method or (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        self._ctx = multiprocessing.get_context(method)
        self._tid = 0
        self._closed = False
        self._islots: list[_IndexerSlot] = [
            _IndexerSlot(f"cpu-{i}", "cpu", i)
            for i in range(len(hooks.cpu_indexers))
        ] + [
            _IndexerSlot(f"gpu-{j}", "gpu", j)
            for j in range(len(hooks.gpu_indexers))
        ]
        self._islot_map = {(s.kind, s.idx): s for s in self._islots}
        remaining = len(hooks.collection.files) - hooks.start_file
        self._pslots: list[_ParserSlot] = [
            _ParserSlot(f"parser-{w}", w)
            for w in range(min(cfg.num_parsers, max(0, remaining)))
        ]
        self.stats = PipelineStats(
            depth=self.depth, workers=len(self._islots), backend=self.name
        )

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #

    def run(self) -> PipelineStats:
        h = self.hooks
        metrics = h.tel.metrics
        stats = self.stats
        inflight: deque[_InflightFile] = deque()
        next_offset = h.doc_offset

        def collect_oldest(reason: str) -> None:
            item = inflight.popleft()
            t0 = now()
            with h.tel.tracer.span(
                "pipeline.wait", cat="pipeline", file=item.file_index, reason=reason,
                cp=f"drain:{item.file_index}", cp_from=f"index:{item.file_index}",
            ):
                results = []
                for (kind, idx, _pop, sub), tid in zip(item.tasks, item.task_ids):
                    slot = self._islot_map[(kind, idx)]
                    results.append(
                        self._collect_result(slot, tid, self._task_tag(sub, slot))
                    )
            waited = now() - t0
            h.watch.charge("pipeline.wait", waited)
            (stats.backpressure if reason == "backpressure" else stats.quiesce).add(
                waited
            )
            pop_work, unpop_work = h.aggregate_group_work(
                item.parsed.batch, item.tasks, results
            )
            h.record_file(item.file_index, item.parsed, item.outcome, pop_work, unpop_work)

        def quiesce(reason: str) -> None:
            while inflight:
                collect_oldest(reason)

        try:
            self._start_workers()
            metrics.set_gauge("pipeline.depth", self.depth)
            metrics.set_gauge("pipeline.workers", len(self._islots))
            for k, parsed, error, outcome in self._parsed_stream():
                if h.injector is not None:
                    failures = h.injector.gpu_failures(k)
                    if failures:
                        quiesce("quiesce")
                        self._gpu_failover(failures, k)

                if error is not None:
                    h.handle_read_failure(k, error)
                else:
                    assert parsed is not None
                    while len(inflight) >= self.depth:
                        collect_oldest("backpressure")
                    batch = parsed.batch
                    tasks = h.split_batch(batch)
                    task_ids = []
                    with h.tel.tracer.span(
                        "pipeline.dispatch", cat="pipeline", file=k, tasks=len(tasks),
                        cp=f"dispatch:{k}", cp_from=f"collect:{k}",
                    ):
                        for kind, idx, _pop, sub in tasks:
                            slot = self._islot_map[(kind, idx)]
                            task_ids.append(self._dispatch(slot, sub, next_offset))
                    inflight.append(
                        _InflightFile(k, parsed, outcome, tasks, task_ids=task_ids)
                    )
                    next_offset += batch.num_docs
                    stats.files += 1
                    stats.max_inflight = max(stats.max_inflight, len(inflight))
                    metrics.set_gauge("pipeline.queue_depth", len(inflight))
                    metrics.observe(
                        "pipeline.inflight", len(inflight), buckets=QUEUE_DEPTH_BUCKETS
                    )

                if h.is_run_boundary(k):
                    quiesce("quiesce")
                    h.close_run(k)
        finally:
            self.close()
        metrics.set_gauge("pipeline.queue_depth", 0)
        for key, tasks_done in sorted(stats.worker_tasks.items()):
            metrics.set_gauge(f"pipeline.tasks.{key}", tasks_done)
        return stats

    def supervisor_report(self) -> SupervisorReport:
        return self.sup.report

    # ------------------------------------------------------------------ #
    # Dispatch / collect (indexer slots)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _task_tag(sub: Any, slot: _Slot) -> str:
        # Carries both the file path (for FaultSpec.path_substring) and
        # the slot key (for FaultSpec.worker), and doubles as the poison
        # identity: "the same sub-batch killed N incarnations".
        return f"{sub.source_file}::{slot.key}"

    def _next_tid(self) -> int:
        self._tid += 1
        return self._tid

    def _dispatch(self, slot: _IndexerSlot, sub: Any, doc_offset: int) -> int:
        tid = self._next_tid()
        tag = self._task_tag(sub, slot)
        self.stats.tasks += 1
        self.stats.worker_tasks[slot.key] = self.stats.worker_tasks.get(slot.key, 0) + 1
        if slot.mode == "inline":
            obj = self.hooks.indexer_for(slot.kind, slot.idx)
            slot.inline_results[tid] = obj.index_batch(sub, doc_offset)
            return tid
        # Journal *before* sending: if the put itself triggers recovery,
        # replay (restart) or inline re-execution (degrade) has already
        # seen this entry and the returned False is safe to ignore.
        payload = encode_batch(sub)
        entry = _Journal(tid, tag, doc_offset, payload)
        slot.journal.append(entry)
        slot.by_tid[tid] = entry
        self._put(slot, ("index", tid, tag, doc_offset, payload), tag=tag)
        return tid

    def _collect_result(self, slot: _IndexerSlot, tid: int, tag: str) -> Any:
        while True:
            if slot.mode == "inline":
                return slot.inline_results.pop(tid)
            msg = slot.handle.result_ring.get_frame(
                timeout=self.policy.supervise_interval_s
            )
            if msg is None:
                self._supervise(slot, tag)
                continue
            cmd = pickle.loads(msg)
            op = cmd[0]
            if op == "done":
                _, rtid, result, fc, fe, md, sp, pf = cmd
                if rtid in slot.discard:
                    # Duplicate completion of a replayed, already-
                    # collected task; its effects were counted once.
                    slot.discard.discard(rtid)
                    continue
                self._merge_delta(fc, fe, md, sp, pf)
                if rtid != tid:
                    raise RuntimeError(
                        f"{slot.key}: expected reply for task {tid}, got {rtid}"
                    )
                entry = slot.by_tid.get(tid)
                if entry is not None:
                    entry.collected = True
                return result
            if op == "error":
                _, _rtid, exc_blob, fc, fe, md, sp, pf = cmd
                self._merge_delta(fc, fe, md, sp, pf)
                raise pickle.loads(exc_blob)
            raise RuntimeError(f"{slot.key}: unexpected reply {op!r}")

    def _collect_control(
        self, slot: _IndexerSlot, tid: int, opname: str, tag: str
    ) -> tuple | None:
        """Await a boundary/snapshot reply; ``None`` if the slot recovered
        (caller re-issues) or degraded (caller goes inline)."""
        gen = slot.generation
        while True:
            if slot.mode != "process" or slot.generation != gen:
                return None
            msg = slot.handle.result_ring.get_frame(
                timeout=self.policy.supervise_interval_s
            )
            if msg is None:
                self._supervise(slot, tag)
                continue
            cmd = pickle.loads(msg)
            op = cmd[0]
            if op == "done" and cmd[1] in slot.discard:
                slot.discard.discard(cmd[1])
                continue
            if op == opname and cmd[1] == tid:
                return cmd
            raise RuntimeError(
                f"{slot.key}: unexpected reply {op!r} while awaiting {opname}"
            )

    # ------------------------------------------------------------------ #
    # Run boundaries / GPU failover
    # ------------------------------------------------------------------ #

    def drain_run_postings(self) -> "dict[int, PostingsList]":
        run_lists: "dict[int, PostingsList]" = {}
        for slot in self._islots:
            run_lists.update(self._drain_slot(slot))
        return run_lists

    def _drain_slot(self, slot: _IndexerSlot) -> "dict[int, PostingsList]":
        if slot.mode == "process":
            # The boundary roundtrip ships pickled postings + state over
            # the result ring — transport `repro critpath` must see as
            # its own causal edge (ring-wait, not flush).
            with self.hooks.tel.tracer.span(
                "drain.wait", cat="pipeline", worker=slot.key,
                cp=f"boundary:{slot.key}", cp_from=f"index:{slot.key}",
            ):
                while slot.mode == "process":
                    tid = self._next_tid()
                    tag = f"<boundary::{slot.key}>"
                    if not self._put(slot, ("boundary", tid), tag=tag):
                        continue
                    cmd = self._collect_control(slot, tid, "boundary", tag)
                    if cmd is None:
                        continue
                    _, _, postings_blob, state_blob, fc, fe, md, sp, pf = cmd
                    self._merge_delta(fc, fe, md, sp, pf)
                    self._install_state(slot, state_blob)
                    return pickle.loads(postings_blob)
        return self.hooks.indexer_for(slot.kind, slot.idx).drain_postings()

    def _refresh_state(self, slot: _IndexerSlot) -> None:
        """Pull current state out of a worker without draining postings."""
        if slot.mode != "process":
            return
        with self.hooks.tel.tracer.span(
            "drain.wait", cat="pipeline", worker=slot.key,
            cp=f"snapshot:{slot.key}", cp_from=f"index:{slot.key}",
        ):
            while slot.mode == "process":
                tid = self._next_tid()
                tag = f"<snapshot::{slot.key}>"
                if not self._put(slot, ("snapshot", tid), tag=tag):
                    continue
                cmd = self._collect_control(slot, tid, "snapshot", tag)
                if cmd is None:
                    continue
                _, _, state_blob, fc, fe, md, sp, pf = cmd
                self._merge_delta(fc, fe, md, sp, pf)
                self._install_state(slot, state_blob)
                return

    def _install_state(self, slot: _IndexerSlot, state_blob: bytes) -> None:
        """The worker's pickled state becomes the engine's authoritative
        object and the slot's new replay snapshot; the journal resets."""
        lst = self.hooks.cpu_indexers if slot.kind == "cpu" else self.hooks.gpu_indexers
        lst[slot.idx] = pickle.loads(state_blob)
        slot.snapshot = state_blob
        slot.journal.clear()
        slot.by_tid.clear()
        slot.discard.clear()

    def _gpu_failover(self, ordinals: list[int], k: int) -> None:
        # Window already quiesced by the caller.  Refresh the engine-side
        # object so fail_gpu adopts the worker's accumulated shard state,
        # then push the CPU-fallback object back as the worker's state.
        for ordinal in ordinals:
            slot = self._islot_map.get(("gpu", ordinal))
            if slot is None:
                continue
            self._refresh_state(slot)
            self.hooks.fail_gpu(ordinal, k)
            if slot.mode == "process":
                slot.snapshot = pickle.dumps(self.hooks.gpu_indexers[ordinal])
                self._put(slot, ("state", slot.snapshot))

    # ------------------------------------------------------------------ #
    # Parsed stream (parser slots)
    # ------------------------------------------------------------------ #

    def _parsed_stream(self) -> ParsedStream:
        h = self.hooks
        n = len(h.collection.files)
        start = h.start_file
        P = len(self._pslots)
        if P == 0:
            return
        for slot in self._pslots:
            slot.next_k = start + slot.w
            self._top_up(slot)
        for k in range(start, n):
            slot = self._pslots[(k - start) % P]
            result = self._collect_parse(slot, k)
            self._top_up(slot)
            yield result

    def _top_up(self, slot: _ParserSlot) -> None:
        n = len(self.hooks.collection.files)
        P = len(self._pslots)
        while len(slot.outstanding) < _PARSE_LOOKAHEAD and slot.next_k < n:
            k = slot.next_k
            slot.next_k += P
            path = self.hooks.collection.files[k]
            tag = f"{path}::{slot.key}"
            # Outstanding *before* sending — same journaling discipline
            # as _dispatch; replay and inline both cover this entry.
            slot.outstanding.append((k, path, tag))
            if slot.mode == "process":
                self._put(slot, ("parse", k, path, tag), tag=tag)

    def _collect_parse(
        self, slot: _ParserSlot, k: int
    ) -> "tuple[int, object, Exception | None, RetryOutcome | None]":
        h = self.hooks
        with h.watch.measure("parse"), h.tel.tracer.span(
            "parse.wait", cat="parse", file=k,
            cp=f"collect:{k}", cp_from=f"parse:{k}",
        ):
            while True:
                if slot.mode == "inline":
                    if slot.outstanding and slot.outstanding[0][0] == k:
                        slot.outstanding.popleft()
                    return h.parse_file_inline(k)
                assert slot.outstanding and slot.outstanding[0][0] == k
                tag = slot.outstanding[0][2]
                msg = slot.handle.result_ring.get_frame(
                    timeout=self.policy.supervise_interval_s
                )
                if msg is None:
                    self._supervise(slot, tag)
                    continue
                cmd = pickle.loads(msg)
                op = cmd[0]
                if op == "parsed":
                    _, rk, payload, attempts, backoff_s, fc, fe, md, sp, pf = cmd
                    if rk != k:
                        raise RuntimeError(
                            f"{slot.key}: expected file {k}, got {rk}"
                        )
                    slot.outstanding.popleft()
                    self._merge_delta(fc, fe, md, sp, pf)
                    outcome = RetryOutcome(attempts=attempts, backoff_s=backoff_s)
                    if h.robustness is not None:
                        h.robustness.merge_outcome(outcome.retries, outcome.backoff_s)
                    return k, decode_parsed_file(payload), None, outcome
                if op == "parse_error":
                    _, rk, exc_blob, _att, _bo, fc, fe, md, sp, pf = cmd
                    slot.outstanding.popleft()
                    self._merge_delta(fc, fe, md, sp, pf)
                    return k, None, pickle.loads(exc_blob), None
                if op == "parse_fatal":
                    _, _rk, exc_blob, fc, fe, md, sp, pf = cmd
                    self._merge_delta(fc, fe, md, sp, pf)
                    raise pickle.loads(exc_blob)
                raise RuntimeError(f"{slot.key}: unexpected reply {op!r}")

    # ------------------------------------------------------------------ #
    # Transport with passive supervision
    # ------------------------------------------------------------------ #

    def _put(self, slot: _Slot, msg: tuple, gen: int | None = None,
             tag: str | None = None) -> bool:
        """Send one message; ``False`` if the slot was recovered or
        degraded mid-send (the recovery already covered the message)."""
        if gen is None:
            gen = slot.generation
        if slot.mode != "process" or slot.generation != gen:
            return False
        ring = slot.handle.task_ring

        def on_wait() -> None:
            # Runs once per poll while the ring is full — the only time
            # a put can block is a worker that stopped draining.
            self._supervise(slot, tag)
            if slot.mode != "process" or slot.generation != gen:
                raise _SlotInterrupted()

        try:
            ring.put_frame(pickle.dumps(msg), on_wait=on_wait)
        except _SlotInterrupted:
            return False
        return True

    def _supervise(self, slot: _Slot, tag: str | None) -> None:
        """One passive supervision tick for ``slot`` (engine thread)."""
        h = slot.handle
        if h.proc.is_alive():
            beats = h.result_ring.beats("producer")
            t = now()
            if beats != h.last_beats:
                h.last_beats = beats
                h.last_change = t
                return
            if t - h.last_change <= self.policy.heartbeat_timeout_s:
                return
            kind = "stall"
            detail = f"heartbeat silent for {t - h.last_change:.2f}s"
            h.proc.kill()
            h.proc.join()
        else:
            kind = "crash"
            detail = f"exit code {h.proc.exitcode}"
        self._recover(slot, kind, detail, tag)

    def _recover(self, slot: _Slot, kind: str, detail: str,
                 tag: str | None) -> None:
        # The span nests inside whatever engine wait triggered
        # supervision; `repro critpath` subtracts these intervals from
        # the wait before blaming transport (supervisor restart/replay
        # edges in the causal graph).
        with self.hooks.tel.tracer.span(
            "supervisor.recover", cat="robustness", worker=slot.key, kind=kind,
        ) as tags:
            incarnation = slot.handle.incarnation if slot.handle else 0
            poison = tag is not None and self.sup.note_task_crash(tag)
            if poison:
                self.sup.record_poisoned(tag)
            if poison or not self.sup.allow_restart(slot.key):
                self.sup.record_failure(
                    WorkerFailure(slot.key, kind, incarnation, detail, tag, "degrade")
                )
                tags["action"] = "degrade"
                self._degrade(slot)
                return
            delay = self.sup.restart_delay_s(slot.key)
            self.sup.record_failure(
                WorkerFailure(slot.key, kind, incarnation, detail, tag, "restart")
            )
            self.sup.record_restart(slot.key, requeued=slot.uncollected())
            tags["action"] = "restart"
            if delay > 0:
                time.sleep(delay)
            slot.generation += 1
            self._spawn(slot)
            self._replay(slot)

    def _replay(self, slot: _Slot) -> None:
        """Re-seed a restarted worker and resend everything in flight."""
        gen = slot.generation
        if isinstance(slot, _IndexerSlot):
            # Replies for already-collected tasks were consumed once;
            # the fresh incarnation will re-emit them — skip by id.
            slot.discard = {e.tid for e in slot.journal if e.collected}
            if not self._put(slot, ("state", slot.snapshot), gen=gen):
                return
            for e in list(slot.journal):
                msg = ("index", e.tid, e.tag, e.doc_offset, e.payload)
                if not self._put(slot, msg, gen=gen, tag=e.tag):
                    return
        else:
            assert isinstance(slot, _ParserSlot)
            for k, path, tag in list(slot.outstanding):
                if not self._put(slot, ("parse", k, path, tag), gen=gen, tag=tag):
                    return

    def _degrade(self, slot: _Slot) -> None:
        """Leave the process fleet: this slot runs inline from now on."""
        requeued = slot.uncollected()
        self._kill_slot(slot)
        slot.generation += 1
        slot.mode = "inline"
        self.sup.record_degraded(slot.key, requeued=requeued)
        if isinstance(slot, _IndexerSlot):
            # Rebuild the object from the last boundary snapshot and
            # replay the journal inline; results the engine never got to
            # collect become inline results, everything else was already
            # consumed once and is simply re-applied to reach the same
            # post-journal state the worker would have had.
            obj = pickle.loads(slot.snapshot)
            for e in slot.journal:
                res = obj.index_batch(decode_batch(e.payload), e.doc_offset)
                if not e.collected:
                    slot.inline_results[e.tid] = res
            lst = (
                self.hooks.cpu_indexers if slot.kind == "cpu"
                else self.hooks.gpu_indexers
            )
            lst[slot.idx] = obj
            slot.journal.clear()
            slot.by_tid.clear()
            slot.discard.clear()
        # Parser slots: outstanding files re-parse inline on collection.

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #

    def _start_workers(self) -> None:
        h = self.hooks
        for slot in self._islots:
            slot.snapshot = pickle.dumps(h.indexer_for(slot.kind, slot.idx))
            self._spawn(slot)
            self._put(slot, ("state", slot.snapshot))
        for slot in self._pslots:
            self._spawn(slot)
        self.sup.report.workers = len(self._islots) + len(self._pslots)
        h.tel.metrics.set_gauge("supervisor.workers", self.sup.report.workers)

    def _spawn(self, slot: _Slot) -> None:
        incarnation = slot.handle.incarnation + 1 if slot.handle else 1
        if slot.handle is not None:
            # SIGKILL can land mid-frame, leaving a ring unparseable —
            # every incarnation gets fresh rings instead of resyncing.
            self._kill_slot(slot)
        cap = self.policy.ring_capacity_bytes
        # Edge labels are per slot (not per incarnation) so restart
        # telemetry accumulates under one causal edge per ring.
        task_ring = ShmRing.create(
            f"{slot.key}-t{incarnation}", cap, edge=f"{slot.key}.task"
        )
        result_ring = ShmRing.create(
            f"{slot.key}-r{incarnation}", cap, edge=f"{slot.key}.result"
        )
        spec = WorkerSpec(
            key=slot.key,
            kind="indexer" if isinstance(slot, _IndexerSlot) else "parser",
            incarnation=incarnation,
            task_ring=task_ring.spec(),
            result_ring=result_ring.spec(),
            config=self.hooks.config,
            fault_plan=(
                self.hooks.injector.plan if self.hooks.injector is not None else None
            ),
            parent_pid=os.getpid(),
        )
        proc = self._ctx.Process(
            target=worker_main, args=(spec,), name=f"repro-{slot.key}", daemon=True
        )
        proc.start()
        slot.handle = _Handle(proc, incarnation, task_ring, result_ring)

    def _kill_slot(self, slot: _Slot, graceful: bool = False) -> None:
        h = slot.handle
        if h is None:
            return
        slot.handle = None
        try:
            if h.proc.is_alive():
                if graceful:
                    try:
                        h.task_ring.put_frame(pickle.dumps(("stop",)), timeout=0.5)
                        h.proc.join(timeout=2.0)
                    except RingTimeout:
                        pass
                if h.proc.is_alive():
                    h.proc.kill()
                    h.proc.join(timeout=10.0)
        finally:
            h.task_ring.unlink()
            h.result_ring.unlink()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for slot in [*self._islots, *self._pslots]:
            self._kill_slot(slot, graceful=True)
        # Safety net for segments created but never bound to a handle
        # (e.g. an exception between the two ShmRing.create calls).
        sweep_created_segments()

    # ------------------------------------------------------------------ #
    # Worker-delta folding
    # ------------------------------------------------------------------ #

    def _merge_delta(
        self,
        fault_counts: dict[str, int],
        fault_events: list[tuple[str, str]],
        metrics_delta: dict[str, dict[str, object]],
        spans: "tuple[float, list[object]] | None" = None,
        profile: "tuple | None" = None,
    ) -> None:
        inj = self.hooks.injector
        if inj is not None and (fault_counts or fault_events):
            inj.merge_child_counts(fault_counts, fault_events)
        tracer = self.hooks.tel.tracer
        if spans is not None and tracer.enabled:
            worker_epoch, worker_spans = spans
            tracer.absorb(worker_spans, worker_epoch)
        tel_profile = self.hooks.tel.profile
        if profile is not None and tel_profile is not None:
            tel_profile.absorb(profile)
        if not metrics_delta:
            return
        reg = self.hooks.tel.metrics
        if not reg.enabled:
            return
        for mname, value in metrics_delta.get("counters", {}).items():
            reg.count(mname, value)
        for mname, value in metrics_delta.get("gauges", {}).items():
            reg.set_gauge(mname, value)
        for mname, hist_delta in metrics_delta.get("histograms", {}).items():
            hist = reg.histogram(mname, tuple(hist_delta["buckets"]))
            for i, c in enumerate(hist_delta["counts"]):
                hist.counts[i] += c
            hist.count += hist_delta["count"]
            hist.total += hist_delta["sum"]
