"""Pipelined parser→indexer execution: worker threads + bounded queues.

The paper's throughput comes from running parsers and indexers
*concurrently* (Fig 8/9): parsed streams are buffered to CPU/GPU
indexers, which consume them while the parsers move on.  The serial
engine loop indexes every sub-batch inline on the engine thread; this
module supplies the real pipelined alternative:

- one :class:`IndexerWorker` thread per indexer slot (each CPU shard and
  each simulated GPU), consuming that slot's bounded FIFO queue;
- the engine splits each parsed file into per-indexer sub-batches and
  dispatches them to the owning slot's queue, so every dictionary shard
  and postings accumulator keeps its single-writer discipline;
- per-slot FIFO consumption preserves file order *per indexer*, which is
  exactly the invariant the postings accumulators need (occurrences in
  non-decreasing global document order) — so pipelined output is
  byte-identical to a serial build;
- backpressure lives in the engine's in-flight window (at most
  ``pipeline_depth`` parsed files dispatched but not yet drained) plus
  each worker queue's ``maxsize``.

Thread contract
---------------
One worker thread consumes one indexer; the engine never touches an
indexer while work for it is in flight.  Handoff happens-before is given
by the queue (dispatch) and the :class:`~concurrent.futures.Future`
(drain).  Run boundaries quiesce the pool — the engine drains every
in-flight file first — so checkpoint pickling and GPU failover always
see workers idle and queues empty (see ``IndexingEngine._run_pipelined``).

Every wall-clock stall measured here (worker idle time, engine
backpressure/quiesce waits) is surfaced through :meth:`PipelineStats.timings`
into the quarantined ``timings`` section of ``run.metrics.json`` — the
deterministic registry sections only ever receive values that are pure
functions of the dispatch sequence (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from queue import Queue
from typing import TYPE_CHECKING, Any

from repro.obs import runtime as obs
from repro.util.timing import now

if TYPE_CHECKING:  # import cycle: engine → pipeline_exec → indexers
    from repro.indexers.base import BaseIndexer
    from repro.parsing.regroup import ParsedBatch

__all__ = ["IndexerPool", "IndexerWorker", "PipelineStats", "QUEUE_DEPTH_BUCKETS"]

#: Histogram geometry for the deterministic ``pipeline.inflight``
#: distribution (files in flight after each dispatch).
QUEUE_DEPTH_BUCKETS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

#: Queue sentinel telling a worker to exit its loop.
_STOP: Any = object()


@dataclass
class StallStat:
    """Count/total/max of one kind of engine-side stall (wall-clock)."""

    events: int = 0
    seconds: float = 0.0
    max_seconds: float = 0.0

    def add(self, seconds: float) -> None:
        self.events += 1
        self.seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)


@dataclass
class PipelineStats:
    """One pipelined build's execution summary.

    ``files``/``tasks``/``max_inflight`` are deterministic functions of
    the dispatch sequence; the stall stats and per-worker idle seconds
    are wall-clock and belong in the ``timings`` quarantine.
    """

    depth: int
    workers: int
    #: Which execution backend produced these stats ("threaded" or
    #: "multiprocess"); serial builds carry no stats at all.
    backend: str = "threaded"
    files: int = 0
    tasks: int = 0
    max_inflight: int = 0
    #: Engine blocked because ``pipeline_depth`` files were in flight.
    backpressure: StallStat = field(default_factory=StallStat)
    #: Engine drained the whole window at a run boundary / GPU failover.
    quiesce: StallStat = field(default_factory=StallStat)
    #: Per worker lane: seconds spent waiting for work, batches consumed.
    worker_idle_s: dict[str, float] = field(default_factory=dict)
    worker_tasks: dict[str, int] = field(default_factory=dict)

    def timings(self) -> dict[str, float]:
        """Wall-clock stall summary for ``run.metrics.json``'s timings.

        Flattened count/total/max per stall kind plus per-worker idle
        seconds — a quarantine-safe stand-in for a stall histogram (the
        full distribution is in the trace's ``pipeline.wait`` spans).
        """
        out: dict[str, float] = {}
        for kind, stat in (("backpressure", self.backpressure), ("quiesce", self.quiesce)):
            out[f"pipeline.stall.{kind}.events"] = float(stat.events)
            out[f"pipeline.stall.{kind}.seconds"] = stat.seconds
            out[f"pipeline.stall.{kind}.max_seconds"] = stat.max_seconds
        for lane, idle in sorted(self.worker_idle_s.items()):
            out[f"pipeline.idle.{lane}"] = idle
        return out


class IndexerWorker:
    """One indexer slot's dedicated consumer thread.

    The worker owns nothing but its queue: each task carries the indexer
    object to run, so a GPU→CPU failover (which swaps the indexer in the
    engine's slot list while the pool is quiesced) needs no worker-side
    coordination — the next task simply carries the replacement.
    """

    def __init__(self, key: str, capacity: int) -> None:
        self.key = key
        self.queue: Queue[Any] = Queue(maxsize=max(1, capacity))
        #: Single-writer stats: written only by the worker thread, read
        #: by the engine after ``stop_and_join`` (vetted in
        #: race_allowlist.txt with that happens-before argument).
        self.idle_s = 0.0
        self.tasks_done = 0
        self._thread = threading.Thread(
            target=self._run, name=f"indexer-{key}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def submit(
        self, indexer: "BaseIndexer", batch: "ParsedBatch", doc_offset: int
    ) -> "Future[Any]":
        """Enqueue one sub-batch; blocks when the slot's queue is full."""
        future: Future[Any] = Future()
        self.queue.put((indexer, batch, doc_offset, future))
        return future

    def stop_and_join(self) -> None:
        """Signal the worker to exit after its pending tasks and wait."""
        self.queue.put(_STOP)
        self._thread.join()

    def _run(self) -> None:
        while True:
            t0 = now()
            item = self.queue.get()
            self.idle_s += now() - t0
            if item is _STOP:
                return
            indexer, batch, doc_offset, future = item
            # Causal ring-dequeue edge for `repro critpath`: this task
            # left the slot's queue and is about to run on this lane.
            obs.tracer().instant(
                "queue.dequeue", cat="pipeline", lane=self.key,
                file=batch.sequence,
                cp=f"dequeue:{batch.sequence}",
                cp_from=f"dispatch:{batch.sequence}",
            )
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(indexer.index_batch(batch, doc_offset))
            except BaseException as exc:  # propagate to the engine's drain
                future.set_exception(exc)
            finally:
                self.tasks_done += 1


class IndexerPool:
    """Slot-keyed pool: one :class:`IndexerWorker` per indexer slot.

    Slots are ``("cpu", i)`` for CPU indexer shards and ``("gpu", j)``
    for GPU ordinals; the slot key is stable across GPU failover even
    though the indexer object in the engine's list changes kind.
    """

    def __init__(self, num_cpu: int, num_gpus: int, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"pipeline depth must be >= 1, got {depth}")
        self.depth = depth
        self.workers: dict[tuple[str, int], IndexerWorker] = {}
        for i in range(num_cpu):
            self.workers[("cpu", i)] = IndexerWorker(f"cpu-{i}", depth)
        for j in range(num_gpus):
            self.workers[("gpu", j)] = IndexerWorker(f"gpu-{j}", depth)
        if not self.workers:
            raise ValueError("pipelined execution needs at least one indexer")
        self.stats = PipelineStats(depth=depth, workers=len(self.workers))
        self._running = False

    def start(self) -> "IndexerPool":
        for worker in self.workers.values():
            worker.start()
        self._running = True
        return self

    def submit(
        self,
        kind: str,
        idx: int,
        indexer: "BaseIndexer",
        batch: "ParsedBatch",
        doc_offset: int,
    ) -> "Future[Any]":
        self.stats.tasks += 1
        return self.workers[(kind, idx)].submit(indexer, batch, doc_offset)

    def shutdown(self) -> None:
        """Stop every worker (after pending tasks) and fold their stats.

        Idempotent; always called from the engine's ``finally`` so an
        aborted build (fatal fault, strict read error) never leaks
        threads past the build call.
        """
        if not self._running:
            return
        self._running = False
        for worker in self.workers.values():
            worker.stop_and_join()
        for worker in self.workers.values():
            self.stats.worker_idle_s[worker.key] = worker.idle_s
            self.stats.worker_tasks[worker.key] = worker.tasks_done
