"""The execution-backend seam: serial, threaded, multiprocess.

:class:`~repro.core.engine.IndexingEngine` decides *what* to do with a
parsed file — split it per indexer, aggregate the group work, advance
the doc-ID cursor, close runs, apply error policy.  A backend decides
*where the work runs*:

``serial``
    Everything inline on the engine thread — the reference
    implementation the other two must match byte for byte.
``threaded``
    PR 4's worker-thread pool (:mod:`repro.core.pipeline_exec`): one
    thread per indexer slot behind a bounded queue, with the engine
    keeping at most ``pipeline_depth`` parsed files in flight.
``multiprocess``
    :mod:`repro.core.mp_backend`: parsers and indexers as OS processes
    exchanging the compact parsed-stream encoding over shared-memory
    rings, supervised by :mod:`repro.robustness.supervise` (heartbeats,
    crash/hang recovery, graceful degradation).

All three consume the same engine callbacks (:class:`BuildHooks`) and
preserve the same ordering contract — per-slot FIFO dispatch, per-file
bookkeeping strictly in file order, quiesced run boundaries — so their
output is byte-identical; ``tests/test_exec_backend.py`` enforces it in
the tier-1 path.

Backend selection: ``config.exec_backend`` (CLI ``build --exec``, env
``REPRO_EXEC_BACKEND``).  ``auto`` maps to ``threaded`` when
``pipeline_depth > 0`` and ``serial`` otherwise, which keeps every
pre-seam config (and CI's ``REPRO_PIPELINE_DEPTH`` matrix leg) meaning
exactly what it meant before the seam existed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.core.config import PlatformConfig
from repro.core.pipeline_exec import (
    QUEUE_DEPTH_BUCKETS,
    IndexerPool,
    PipelineStats,
)
from repro.core.workload import GroupWork
from repro.util.timing import Stopwatch, now

if TYPE_CHECKING:
    from concurrent.futures import Future

    from repro.corpus.collection import Collection
    from repro.indexers.assignment import WorkAssignment
    from repro.obs.runtime import Telemetry
    from repro.parsing.parser import ParsedFile
    from repro.parsing.regroup import ParsedBatch
    from repro.postings.lists import PostingsList
    from repro.robustness import faults
    from repro.robustness.policy import RobustnessReport
    from repro.robustness.retry import RetryOutcome
    from repro.robustness.supervise import SupervisorReport

__all__ = [
    "BuildHooks",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadedBackend",
    "resolve_backend_name",
    "create_backend",
    "DEFAULT_CONCURRENT_DEPTH",
]

#: In-flight window used when a concurrent backend is forced explicitly
#: (``--exec threaded|multiprocess``) on a config with ``pipeline_depth=0``.
DEFAULT_CONCURRENT_DEPTH = 3

#: ``(file_index, parsed, permanent_error, retry_outcome)`` — the parsed
#: stream contract shared by every backend.
ParsedStream = Iterator[
    tuple[int, "ParsedFile | None", Exception | None, "RetryOutcome | None"]
]


@dataclass
class BuildHooks:
    """Everything the engine lends a backend for one build.

    The callables close over engine-private state (doc-ID cursor, run
    bookkeeping, error policy) and must only ever be invoked from the
    engine thread, in file order — that discipline, not any property of
    the backends, is what makes the three modes byte-identical.
    """

    config: PlatformConfig
    collection: "Collection"
    assignment: "WorkAssignment"
    popular_set: set[int]
    cpu_indexers: list[Any]
    gpu_indexers: list[Any]
    trie: Any
    robustness: "RobustnessReport"
    injector: "faults.FaultInjector | None"
    watch: Stopwatch
    tel: "Telemetry"
    start_file: int
    doc_offset: int
    #: ``(batch) -> [(kind, idx, is_popular, sub_batch)]``, engine thread.
    split_batch: Callable[["ParsedBatch"], list[tuple[str, int, bool, "ParsedBatch"]]]
    #: Serial inline indexing of one whole batch at a doc offset.
    index_batch: Callable[["ParsedBatch", int], tuple[GroupWork, GroupWork]]
    aggregate_group_work: Callable[..., tuple[GroupWork, GroupWork]]
    record_file: Callable[..., None]
    close_run: Callable[[int], None]
    is_run_boundary: Callable[[int], bool]
    handle_read_failure: Callable[[int, Exception], None]
    fail_gpu: Callable[[int, int], None]
    #: ``(prefetch) -> ParsedStream`` over the engine's in-process parser.
    make_parsed_stream: Callable[[int], ParsedStream]
    #: ``(k) -> (k, parsed, error, outcome)`` — parse one file inline on
    #: the engine thread (retry policy applied, robustness merged).  The
    #: multiprocess backend uses it when a parser slot degrades.
    parse_file_inline: Callable[
        [int],
        tuple[int, "ParsedFile | None", Exception | None, "RetryOutcome | None"],
    ]

    def indexer_for(self, kind: str, idx: int) -> Any:
        return (self.cpu_indexers if kind == "cpu" else self.gpu_indexers)[idx]


@dataclass
class _InflightFile:
    """One parsed file dispatched to the worker pool, awaiting its drain."""

    file_index: int
    parsed: "ParsedFile"
    outcome: "RetryOutcome | None"
    #: ``(kind, indexer_index, is_popular, sub_batch)`` in dispatch order.
    tasks: list[tuple[str, int, bool, "ParsedBatch"]]
    futures: list["Future[Any]"] = field(default_factory=list)
    #: Multiprocess backend: per-task ids, parallel to ``tasks``.
    task_ids: list[int] = field(default_factory=list)


class ExecutionBackend:
    """Base class: the engine's four entry points into a backend."""

    name = "abstract"

    def __init__(self, hooks: BuildHooks) -> None:
        self.hooks = hooks

    def run(self) -> PipelineStats | None:
        """Consume the parsed stream to completion; called exactly once."""
        raise NotImplementedError

    def drain_run_postings(self) -> "dict[int, PostingsList]":
        """Collect every indexer's accumulated postings for ``close_run``.

        Called from the engine's ``close_run`` at a quiesced run boundary.
        The base implementation drains the engine-resident indexer
        objects; the multiprocess backend overrides it to pull postings
        and refreshed indexer state out of its worker processes (so the
        checkpoint pickle and the dictionary epilogue keep seeing
        authoritative objects).
        """
        run_lists: "dict[int, PostingsList]" = {}
        for indexer in [*self.hooks.cpu_indexers, *self.hooks.gpu_indexers]:
            run_lists.update(indexer.drain_postings())
        return run_lists

    def supervisor_report(self) -> "SupervisorReport | None":
        return None

    def close(self) -> None:
        """Release workers/segments; idempotent, runs in a ``finally``."""


class SerialBackend(ExecutionBackend):
    """The reference loop: parse, index inline, bookkeep — one thread."""

    name = "serial"

    def run(self) -> PipelineStats | None:
        h = self.hooks
        next_offset = h.doc_offset
        for k, parsed, error, outcome in h.make_parsed_stream(h.config.parse_prefetch):
            if h.injector is not None:
                for ordinal in h.injector.gpu_failures(k):
                    h.fail_gpu(ordinal, k)

            if error is not None:
                h.handle_read_failure(k, error)
            else:
                assert parsed is not None
                batch = parsed.batch
                with h.watch.measure("index"), h.tel.tracer.span(
                    "index", cat="index", file=k,
                    docs=batch.num_docs, tokens=batch.total_tokens,
                    cp=f"index:{k}", cp_from=f"parse:{k}",
                ):
                    pop_work, unpop_work = h.index_batch(batch, next_offset)
                h.record_file(k, parsed, outcome, pop_work, unpop_work)
                next_offset += batch.num_docs

            if h.is_run_boundary(k):
                h.close_run(k)
        return None


class ThreadedBackend(ExecutionBackend):
    """PR 4's pipelined pool behind the seam (formerly ``_run_pipelined``).

    One :class:`~repro.core.pipeline_exec.IndexerWorker` thread per
    indexer slot consumes that slot's bounded queue; the engine thread
    splits each parsed file into per-(indexer, group) sub-batches,
    dispatches them, and keeps at most ``depth`` files in flight.
    Draining always collects the *oldest* file first and runs the shared
    ``record_file`` bookkeeping, so doc table, range map and counters
    advance in file order exactly as in the serial loop.

    Run boundaries, GPU failovers and error-policy decisions quiesce the
    window first (every in-flight file drained, every queue empty),
    giving ``close_run``'s accumulator drain / checkpoint pickle and
    ``fail_gpu``'s indexer swap a settled, single-threaded view.

    Determinism: everything recorded to the metrics registry here
    (dispatch counts, in-flight depth) is a pure function of the file
    sequence and the config; wall-clock stalls go to the trace and the
    quarantined ``timings`` section via :class:`PipelineStats`.
    """

    name = "threaded"

    def __init__(self, hooks: BuildHooks) -> None:
        super().__init__(hooks)
        self.depth = hooks.config.pipeline_depth or DEFAULT_CONCURRENT_DEPTH
        self._pool: IndexerPool | None = None

    def run(self) -> PipelineStats:
        h = self.hooks
        cfg = h.config
        depth = self.depth
        metrics = h.tel.metrics
        pool = IndexerPool(cfg.num_cpu_indexers, cfg.num_gpus, depth).start()
        self._pool = pool
        stats = pool.stats
        metrics.set_gauge("pipeline.depth", depth)
        metrics.set_gauge("pipeline.workers", len(pool.workers))
        inflight: deque[_InflightFile] = deque()
        # Dispatch-side doc-ID cursor: runs ahead of the drain-side
        # offset (advanced by ``record_file``) by exactly the documents
        # currently in flight.
        next_offset = h.doc_offset

        def collect_oldest(reason: str) -> None:
            item = inflight.popleft()
            t0 = now()
            with h.tel.tracer.span(
                "pipeline.wait", cat="pipeline", file=item.file_index, reason=reason,
                cp=f"drain:{item.file_index}", cp_from=f"index:{item.file_index}",
            ):
                results = [future.result() for future in item.futures]
            waited = now() - t0
            h.watch.charge("pipeline.wait", waited)
            (stats.backpressure if reason == "backpressure" else stats.quiesce).add(
                waited
            )
            pop_work, unpop_work = h.aggregate_group_work(
                item.parsed.batch, item.tasks, results
            )
            h.record_file(item.file_index, item.parsed, item.outcome, pop_work, unpop_work)

        def quiesce(reason: str) -> None:
            while inflight:
                collect_oldest(reason)

        prefetch = cfg.parse_prefetch if cfg.parse_prefetch > 0 else depth
        try:
            for k, parsed, error, outcome in h.make_parsed_stream(prefetch):
                if h.injector is not None:
                    failures = h.injector.gpu_failures(k)
                    if failures:
                        # The failover swaps the indexer object in its
                        # slot; drain everything dispatched to the old
                        # object first so its accumulator state is final.
                        quiesce("quiesce")
                        for ordinal in failures:
                            h.fail_gpu(ordinal, k)

                if error is not None:
                    # Error-policy decisions happen on the engine thread
                    # in file order; a "strict" abort propagates through
                    # the finally below with the pool shut down.
                    h.handle_read_failure(k, error)
                else:
                    assert parsed is not None
                    while len(inflight) >= depth:
                        collect_oldest("backpressure")
                    batch = parsed.batch
                    tasks = h.split_batch(batch)
                    with h.tel.tracer.span(
                        "pipeline.dispatch", cat="pipeline", file=k, tasks=len(tasks),
                        cp=f"dispatch:{k}", cp_from=f"collect:{k}",
                    ):
                        futures = [
                            pool.submit(
                                kind, idx, h.indexer_for(kind, idx), sub, next_offset
                            )
                            for kind, idx, _is_popular, sub in tasks
                        ]
                    inflight.append(
                        _InflightFile(k, parsed, outcome, tasks, futures=futures)
                    )
                    next_offset += batch.num_docs
                    stats.files += 1
                    stats.max_inflight = max(stats.max_inflight, len(inflight))
                    metrics.set_gauge("pipeline.queue_depth", len(inflight))
                    metrics.observe(
                        "pipeline.inflight", len(inflight), buckets=QUEUE_DEPTH_BUCKETS
                    )

                if h.is_run_boundary(k):
                    quiesce("quiesce")
                    h.close_run(k)
        finally:
            pool.shutdown()
        metrics.set_gauge("pipeline.queue_depth", 0)
        for key, tasks_done in sorted(stats.worker_tasks.items()):
            metrics.set_gauge(f"pipeline.tasks.{key}", tasks_done)
        return stats

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()


def resolve_backend_name(config: PlatformConfig) -> str:
    """Map ``config.exec_backend`` to a concrete backend name."""
    mode = config.exec_backend
    if mode == "auto":
        return "threaded" if config.pipeline_depth > 0 else "serial"
    return mode


def create_backend(name: str, hooks: BuildHooks) -> ExecutionBackend:
    """Instantiate the named backend over ``hooks``.

    The multiprocess implementation is imported lazily so serial and
    threaded builds never pay for (or depend on) the shm machinery.
    """
    if name == "serial":
        return SerialBackend(hooks)
    if name == "threaded":
        return ThreadedBackend(hooks)
    if name == "multiprocess":
        # Imported lazily: the multiprocess machinery (shared memory,
        # process spawning) should cost nothing unless selected.
        from repro.core.mp_backend import MultiprocessBackend

        return MultiprocessBackend(hooks)
    raise ValueError(f"unknown execution backend {name!r}")
