""":class:`IndexingEngine` — the public facade of the reproduction.

``engine.build(collection, output_dir)`` executes the paper's whole
system functionally, in file order:

1. **Sampling** (Section III.E): parse ~0.1% of documents, classify trie
   collections into popular/unpopular, split popular across CPU indexers
   by token balance and unpopular across GPUs by ``i mod N₂``.
2. **Parse + index + runs** (Fig 8): parse with trie-indexed
   regrouping; route each collection's stream to its bound indexer; CPU
   indexers insert into their B-tree shards, GPU indexers run the warp
   algorithm on the SIMT simulator; every ``files_per_run`` files, drain
   all postings accumulators into a run file with its header mapping
   table (one file per run by default — the paper's 1GB batches).
3. **Epilogue** (Table VI): combine the dictionary shards, write the
   front-coded dictionary and the docID-range map.
4. **Timing**: replay the *measured* per-file work through the
   discrete-event pipeline to produce the simulated Table IV/VI rows
   (eight cores + two GPUs cannot run concurrently inside one Python
   process; see DESIGN.md §2).

The resulting directory is a queryable index:
:class:`repro.postings.reader.PostingsReader` resolves term strings
through the dictionary and splices partial postings across runs.
"""

from __future__ import annotations

import hashlib
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.config import PlatformConfig
from repro.core.costs import CostConstants, StageCosts
from repro.core.exec_backend import (
    BuildHooks,
    ExecutionBackend,
    create_backend,
    resolve_backend_name,
)
from repro.core.pipeline import BuildReport, simulate_full_build
from repro.core.pipeline_exec import PipelineStats
from repro.core.workload import FileWork, GroupWork
from repro.corpus.collection import Collection
from repro.corpus.warc import CorruptContainerError
from repro.dictionary.dictionary import Dictionary, DictionaryShard
from repro.dictionary.serialize import save_dictionary
from repro.dictionary.trie import TrieTable
from repro.gpusim.device import Device
from repro.indexers.assignment import WorkAssignment, build_assignment, sample_collection
from repro.indexers.base import IndexerReport
from repro.indexers.cpu import CPUIndexer
from repro.indexers.gpu import GPUIndexer
from repro.obs import runtime as obs
from repro.obs.profile import Profile, SamplingProfiler
from repro.obs.profile_schema import PROFILE_FILENAME, write_profile
from repro.obs.runtime import Telemetry
from repro.obs.schema import METRICS_FILENAME, TRACE_FILENAME, build_payload, write_metrics
from repro.parsing.parser import ParsedFile, Parser
from repro.parsing.regroup import ParsedBatch
from repro.postings.compression import get_codec
from repro.postings.lists import PostingsList
from repro.postings.doctable import DocTable
from repro.postings.output import DocRangeMap, RunWriter
from repro.robustness import faults
from repro.robustness.checkpoint import (
    BuildManifest,
    RunRecord,
    clear_checkpoint,
    crc32_of_file,
    load_checkpoint,
    save_checkpoint,
)
from repro.robustness.errors import RetryExhausted
from repro.robustness.policy import GpuFailover, RobustnessReport, SkippedFile
from repro.robustness.retry import RetryOutcome, retry_call
from repro.robustness.supervise import SupervisorReport
from repro.util.timing import Stopwatch, now

__all__ = ["IndexingEngine", "EngineResult", "WorkSplit"]

#: Errors that mark a container permanently unreadable — the retry layer
#: has already given up (or declined to try) by the time these surface, so
#: they go straight to the ``on_error`` policy.
_PERMANENT_READ_ERRORS = (CorruptContainerError, RetryExhausted, OSError)


@dataclass
class WorkSplit:
    """Table V: what the CPU side vs the GPU side actually processed."""

    cpu_tokens: int = 0
    cpu_terms: int = 0
    cpu_characters: int = 0
    gpu_tokens: int = 0
    gpu_terms: int = 0
    gpu_characters: int = 0


@dataclass
class EngineResult:
    """Everything a build produces."""

    output_dir: str
    dictionary: Dictionary
    assignment: WorkAssignment
    file_works: list[FileWork]
    report: BuildReport
    split: WorkSplit
    term_count: int = 0
    token_count: int = 0
    posting_count: int = 0
    document_count: int = 0
    run_count: int = 0
    #: Real elapsed time of the whole build (one monotonic interval).
    wall_seconds: float = 0.0
    #: Sum of the stopwatch buckets — *CPU seconds*.  With prefetch
    #: threads this legitimately exceeds ``wall_seconds`` (overlapping
    #: work is counted once per worker; see :mod:`repro.util.timing`).
    cpu_seconds: float = 0.0
    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    indexer_reports: dict[str, IndexerReport] = field(default_factory=dict)
    #: Fault handling summary: retries, skipped/quarantined files, GPU
    #: failovers, and how many runs a resume recovered from the manifest.
    robustness: RobustnessReport = field(default_factory=RobustnessReport)
    #: The telemetry bundle the build ran under, and where its artifacts
    #: landed (``None`` when ``config.telemetry`` is off).
    telemetry: Telemetry | None = None
    metrics_path: str | None = None
    trace_path: str | None = None
    #: Merged cross-process ``run.profile.json`` (``None`` unless the
    #: build ran with ``config.profile``).
    profile_path: str | None = None
    #: Pipelined-mode execution summary (``None`` for serial builds):
    #: dispatch counts, backpressure/quiesce stalls, per-worker idle time.
    pipeline: PipelineStats | None = None
    #: What the multiprocess backend's supervisor saw: worker restarts,
    #: requeued sub-batches, heartbeat misses, degraded slots (``None``
    #: for serial/threaded builds, which have no processes to supervise).
    supervisor: SupervisorReport | None = None

    @property
    def simulated_total_seconds(self) -> float:
        return self.report.total_s

    @property
    def simulated_throughput_mbps(self) -> float:
        """Modeled MB/s from the discrete-event replay (the paper's figure)."""
        return self.report.throughput_mbps

    @property
    def measured_throughput_mbps(self) -> float:
        """Real uncompressed MB over real *wall* seconds.

        Divides by :attr:`wall_seconds`, never :attr:`cpu_seconds` — a
        prefetching build overlaps parse and index work, and dividing by
        summed bucket time would understate it by up to the worker count.
        """
        if self.wall_seconds <= 0:
            return 0.0
        total = sum(w.uncompressed_bytes for w in self.file_works)
        return total / 1e6 / self.wall_seconds


class IndexingEngine:
    """The heterogeneous pipelined indexer."""

    def __init__(
        self,
        config: PlatformConfig | None = None,
        cost_constants: CostConstants | None = None,
    ) -> None:
        self.config = config if config is not None else PlatformConfig()
        self.costs = StageCosts(cost_constants if cost_constants is not None else CostConstants())
        if not self.config.regroup and self.config.num_gpus:
            raise ValueError(
                "regrouping cannot be disabled with GPU indexers: one thread "
                "block consumes one trie collection at a time (Section III.C)"
            )

    # ------------------------------------------------------------------ #

    def build(
        self, collection: Collection, output_dir: str, resume: bool = False
    ) -> EngineResult:
        """Build inverted files for ``collection`` into ``output_dir``.

        ``resume=True`` restarts an interrupted build from its last
        durable run boundary (``checkpoint.bin`` + ``build.manifest``);
        the resumed build allocates the same term ids and produces output
        byte-identical to an uninterrupted one.  With no checkpoint on
        disk, ``resume=True`` silently falls back to a fresh build.

        Unless ``config.telemetry`` is off, the build runs under an
        installed :class:`~repro.obs.runtime.Telemetry` bundle and writes
        ``run.metrics.json`` and ``trace.json`` next to ``build.manifest``
        (see docs/OBSERVABILITY.md).
        """
        tel = Telemetry.create(self.config.telemetry)
        profiler: SamplingProfiler | None = None
        if self.config.profile:
            # Merge target for the engine's own sampler and every worker
            # delta (mp_backend._merge_delta absorbs into tel.profile).
            tel.profile = Profile(self.config.profile_interval_s)
            profiler = SamplingProfiler(
                self.config.profile_interval_s, lane="engine"
            )
        t_start = now()
        with obs.session(tel), tel.tracer.span(
            "build",
            collection=collection.name,
            files=len(collection.files),
            resume=resume,
        ):
            if profiler is not None:
                profiler.start()
            try:
                result = self._build(collection, output_dir, resume, tel)
            finally:
                if profiler is not None:
                    profiler.stop()
                    assert tel.profile is not None
                    tel.profile.absorb(profiler.drain_delta())
        result.wall_seconds = now() - t_start
        result.cpu_seconds = result.stopwatch.total()
        result.telemetry = tel
        if tel.enabled:
            result.metrics_path, result.trace_path = self._write_telemetry(
                tel, result, collection, output_dir
            )
        if tel.profile is not None:
            # Written even with telemetry off: profiling was requested
            # explicitly and has its own artifact.
            result.profile_path = write_profile(
                os.path.join(output_dir, PROFILE_FILENAME),
                tel.profile.to_payload(
                    meta={
                        "collection": collection.name,
                        "config": self.config.describe(),
                    }
                ),
            )
        return result

    def _build(
        self,
        collection: Collection,
        output_dir: str,
        resume: bool,
        tel: Telemetry,
    ) -> EngineResult:
        """The instrumented build body; runs inside the root ``build`` span."""
        cfg = self.config
        watch = Stopwatch()
        metrics = tel.metrics
        os.makedirs(output_dir, exist_ok=True)

        injector = faults.active()
        manifest = BuildManifest(output_dir)
        fingerprint = self._fingerprint(collection)

        state = load_checkpoint(output_dir) if resume else None
        if state is not None and state.get("fingerprint") != fingerprint:
            raise ValueError(
                f"checkpoint in {output_dir} was written for a different "
                "configuration or collection; delete checkpoint.bin or "
                "rebuild from scratch"
            )

        if state is not None:
            # ---- resume: restore the run-boundary state graph --------- #
            trie = state["trie"]
            assignment = state["assignment"]
            cpu_indexers = state["cpu_indexers"]
            gpu_indexers = state["gpu_indexers"]
            doc_table = state["doc_table"]
            file_works = state["file_works"]
            range_map = state["range_map"]
            robustness = state["robustness"]
            doc_offset = state["doc_offset"]
            token_count = state["token_count"]
            posting_count = state["posting_count"]
            run_count = state["run_count"]
            start_file = state["next_file_index"]
            robustness.resumed_runs = run_count
            # A crash between manifest append and checkpoint replace
            # leaves one orphan record; drop it and re-index that run.
            manifest.truncate_runs(run_count)
        else:
            trie = TrieTable(height=cfg.trie_height)
            robustness = RobustnessReport(on_error=cfg.on_error)

            # ---- 1. sampling + assignment (Section III.E) ------------- #
            with watch.measure("sampling"), tel.tracer.span("sampling"):
                faults.set_stage("sampling")
                try:
                    sampled = sample_collection(
                        collection,
                        sample_fraction=cfg.sample_fraction,
                        strip_html=cfg.strip_html,
                        retry=cfg.retry,
                        on_error=cfg.on_error,
                        report=robustness,
                    )
                finally:
                    faults.set_stage("build")
                assignment = build_assignment(
                    sampled, cfg.num_cpu_indexers, cfg.num_gpus, cfg.popularity
                )

            # ---- 2. indexers ------------------------------------------ #
            cpu_indexers = [
                CPUIndexer(
                    i,
                    DictionaryShard(
                        trie, shard_id=i, degree=cfg.btree_degree,
                        use_string_cache=cfg.use_string_cache,
                    ),
                )
                for i in range(cfg.num_cpu_indexers)
            ]
            gpu_indexers: list = [
                GPUIndexer(
                    100 + j,
                    DictionaryShard(
                        trie, shard_id=100 + j, degree=cfg.btree_degree,
                        use_string_cache=cfg.use_string_cache,
                    ),
                    device=Device(device_id=j, spec=cfg.gpu_spec),
                    num_blocks=cfg.thread_blocks_per_gpu,
                    schedule=cfg.gpu_schedule,
                    fidelity=cfg.gpu_fidelity,
                )
                for j in range(cfg.num_gpus)
            ]
            doc_table = DocTable()
            range_map = DocRangeMap()
            file_works = []
            doc_offset = 0
            token_count = 0
            posting_count = 0
            run_count = 0
            start_file = 0
            manifest.start(fingerprint, collection.name, len(collection.files))

        popular_set = set(assignment.popular)
        split = WorkSplit()
        metrics.set_gauge("assignment.popular_collections", len(assignment.popular))
        metrics.set_gauge(
            "assignment.gpu_collections", sum(len(s) for s in assignment.gpu_sets)
        )
        metrics.set_gauge("robustness.resumed_runs", robustness.resumed_runs)

        # ---- 3. parse + index + write runs (Fig 8) -------------------- #
        writer = RunWriter(output_dir, codec=get_codec(cfg.codec), num_stripes=cfg.output_stripes)
        run_file_indices: list[int] = []
        run_first_doc = doc_offset
        run_docs = 0
        pipeline_stats: PipelineStats | None = None

        def record_file(
            k: int,
            parsed: ParsedFile,
            outcome: RetryOutcome | None,
            pop_work: GroupWork,
            unpop_work: GroupWork,
        ) -> None:
            """Post-index bookkeeping for one file, on the engine thread.

            Both execution modes call this strictly in file order — it
            advances the global doc-ID cursor and the doc table, which is
            what keeps serial and pipelined output byte-identical.
            """
            nonlocal doc_offset, token_count, run_docs
            batch = parsed.batch
            metrics.count("build.files_indexed")
            metrics.count("build.docs", batch.num_docs)
            metrics.count("build.tokens", batch.total_tokens)
            metrics.observe("file.uncompressed_bytes",
                            parsed.metrics.uncompressed_bytes)
            file_works.append(
                FileWork(
                    file_index=k,
                    compressed_bytes=parsed.metrics.compressed_bytes,
                    uncompressed_bytes=parsed.metrics.uncompressed_bytes,
                    num_docs=batch.num_docs,
                    raw_tokens=parsed.metrics.tokens_raw,
                    popular=pop_work,
                    unpopular=unpop_work,
                    segment=collection.segment_of(k),
                    fault_delay_s=outcome.backoff_s if outcome else 0.0,
                )
            )
            for entry in parsed.doc_table:
                doc_table.add(entry.source_file, entry.uri, entry.offset)
            token_count += batch.total_tokens
            doc_offset += batch.num_docs
            run_docs += batch.num_docs
            run_file_indices.append(k)

        def is_run_boundary(k: int) -> bool:
            # A run closes after `files_per_run` files (the paper's
            # fixed-total-size batches) or at the end of the collection —
            # on file *position*, so run numbering survives skipped files.
            return (k + 1) % cfg.files_per_run == 0 or k == len(collection.files) - 1

        def close_run(k: int) -> None:
            """Drain accumulators → run file → manifest → checkpoint.

            Engine-thread only.  Concurrent backends quiesce their
            in-flight window first, so the drain and the checkpoint
            pickle see settled indexer state with empty queues; the
            multiprocess backend's ``drain_run_postings`` additionally
            pulls refreshed indexer objects out of its workers so the
            checkpoint and the dictionary epilogue stay authoritative.
            """
            nonlocal posting_count, run_count, run_file_indices, run_first_doc, run_docs
            with watch.measure("write_runs"), tel.tracer.span(
                "write_run", cat="output"
            ) as run_tags:
                run_lists: dict[int, PostingsList] = backend.drain_run_postings()
                run_postings = sum(len(p) for p in run_lists.values())
                posting_count += run_postings
                run_id = k // cfg.files_per_run
                run_file = writer.write_run(run_id, run_lists)
                range_map.add(run_file)
                run_count += 1
                run_tags["run"] = run_id
                run_tags["postings"] = run_postings
                run_tags["bytes"] = run_file.byte_size
                run_tags["cp"] = f"flush:{run_id}"
                run_tags["cp_from"] = f"drain:{k}"
            metrics.count("runs.written")
            metrics.count("postings.entries", run_postings)
            metrics.count(f"postings.bytes.{cfg.codec}", run_file.byte_size)
            metrics.observe("run.bytes", run_file.byte_size)
            metrics.observe("run.postings", run_postings)
            # Durability order: run file → manifest append →
            # checkpoint replace.  A crash at any point leaves a
            # resumable directory (see repro.robustness.checkpoint).
            with tel.tracer.span(
                "checkpoint", cat="robustness", run=run_id,
                cp=f"checkpoint:{run_id}", cp_from=f"flush:{run_id}",
            ):
                manifest.append_run(
                    RunRecord(
                        run_id=run_id,
                        path=os.path.relpath(run_file.path, output_dir),
                        crc32=crc32_of_file(run_file.path),
                        min_doc=run_file.min_doc,
                        max_doc=run_file.max_doc,
                        entry_count=run_file.entry_count,
                        byte_size=run_file.byte_size,
                        first_doc=run_first_doc,
                        docs=run_docs,
                        postings=run_postings,
                        file_indices=tuple(run_file_indices),
                        files=tuple(
                            os.path.basename(collection.files[i])
                            for i in run_file_indices
                        ),
                    )
                )
                save_checkpoint(
                    output_dir,
                    {
                        "fingerprint": fingerprint,
                        "trie": trie,
                        "assignment": assignment,
                        "cpu_indexers": cpu_indexers,
                        "gpu_indexers": gpu_indexers,
                        "doc_table": doc_table,
                        "file_works": file_works,
                        "range_map": range_map,
                        "robustness": robustness,
                        "doc_offset": doc_offset,
                        "token_count": token_count,
                        "posting_count": posting_count,
                        "run_count": run_count,
                        "next_file_index": k + 1,
                    },
                )
            run_file_indices = []
            run_first_doc = doc_offset
            run_docs = 0

        inline_parser: list[Parser] = []

        def parse_file_inline(
            k: int,
        ) -> tuple[int, ParsedFile | None, Exception | None, RetryOutcome | None]:
            """Parse one file on the engine thread (mp degraded-slot path)."""
            if not inline_parser:
                inline_parser.append(
                    Parser(
                        parser_id=0, trie=trie, strip_html=cfg.strip_html,
                        regroup=cfg.regroup, positional=cfg.positional,
                    )
                )
            parser = inline_parser[0]
            path = collection.files[k]

            def call() -> ParsedFile:
                parser.parser_id = k % cfg.num_parsers
                return parser.parse_file(path, sequence=k)

            try:
                parsed, outcome = retry_call(call, cfg.retry, path)
            except _PERMANENT_READ_ERRORS as exc:
                return k, None, exc, None
            robustness.merge_outcome(outcome.retries, outcome.backoff_s)
            return k, parsed, None, outcome

        hooks = BuildHooks(
            config=cfg,
            collection=collection,
            assignment=assignment,
            popular_set=popular_set,
            cpu_indexers=cpu_indexers,
            gpu_indexers=gpu_indexers,
            trie=trie,
            robustness=robustness,
            injector=injector,
            watch=watch,
            tel=tel,
            start_file=start_file,
            doc_offset=doc_offset,
            split_batch=lambda batch: self._split_batch(
                batch, assignment, popular_set
            ),
            index_batch=lambda batch, offset: self._index_batch(
                batch, offset, assignment, popular_set, cpu_indexers, gpu_indexers
            ),
            aggregate_group_work=self._aggregate_group_work,
            record_file=record_file,
            close_run=close_run,
            is_run_boundary=is_run_boundary,
            handle_read_failure=lambda k, err: self._handle_read_failure(
                collection, k, err, robustness
            ),
            fail_gpu=lambda ordinal, k: self._fail_gpu(
                ordinal, k, gpu_indexers, assignment, robustness
            ),
            make_parsed_stream=lambda prefetch: self._parsed_files(
                collection, trie, watch, tel,
                start=start_file, robustness=robustness, prefetch=prefetch,
            ),
            parse_file_inline=parse_file_inline,
        )
        # close_run above late-binds this name: by the time any backend
        # reaches a run boundary, the backend exists.
        backend: ExecutionBackend = create_backend(resolve_backend_name(cfg), hooks)
        supervisor_report: SupervisorReport | None = None
        with tel.tracer.span(
            "run_loop", start_file=start_file, backend=backend.name
        ):
            try:
                pipeline_stats = backend.run()
            finally:
                supervisor_report = backend.supervisor_report()
                backend.close()

        # ---- 4. dictionary epilogue (Table VI) ------------------------ #
        with watch.measure("dict_combine"), tel.tracer.span("dict.combine"):
            dictionary = Dictionary.combine(
                [ix.shard for ix in [*cpu_indexers, *gpu_indexers]]
            )
        with watch.measure("dict_write"), tel.tracer.span("dict.write"):
            save_dictionary(dictionary, os.path.join(output_dir, "dictionary.bin"))
            range_map.save(output_dir)
            doc_table.save(output_dir)
        clear_checkpoint(output_dir)  # the build is durable without it now

        # ---- 5. Table V split + simulated timing ----------------------- #
        # Bucket by the indexer's *kind*: after a GPU failover, the slot in
        # gpu_indexers holds a CPU fallback whose work (including what the
        # dead GPU indexed first — see GpuFailover.tokens_before_failure)
        # counts on the CPU side.
        for ix in [*cpu_indexers, *gpu_indexers]:
            if ix.kind == "cpu":
                split.cpu_tokens += ix.total.tokens
                split.cpu_terms += ix.total.new_terms
                split.cpu_characters += ix.shard.string_bytes() - ix.total.new_terms
            else:
                split.gpu_tokens += ix.total.tokens
                split.gpu_terms += ix.total.new_terms
                split.gpu_characters += ix.shard.string_bytes() - ix.total.new_terms

        metrics.set_gauge("dictionary.terms", dictionary.term_count())
        metrics.set_gauge("dictionary.string_heap_bytes", dictionary.string_bytes())
        metrics.set_gauge("split.cpu_tokens", split.cpu_tokens)
        metrics.set_gauge("split.gpu_tokens", split.gpu_tokens)
        with tel.tracer.span("simulate", cat="model"):
            report = simulate_full_build(file_works, cfg, self.costs)

        result = EngineResult(
            output_dir=output_dir,
            dictionary=dictionary,
            assignment=assignment,
            file_works=file_works,
            report=report,
            split=split,
            term_count=dictionary.term_count(),
            token_count=token_count,
            posting_count=posting_count,
            document_count=doc_offset,
            run_count=run_count,
            stopwatch=watch,
            indexer_reports={
                f"{ix.kind}{ix.indexer_id}": ix.total
                for ix in [*cpu_indexers, *gpu_indexers]
            },
            robustness=robustness,
            pipeline=pipeline_stats,
            supervisor=supervisor_report,
        )
        return result

    # ------------------------------------------------------------------ #
    # Telemetry artifacts
    # ------------------------------------------------------------------ #

    def _write_telemetry(
        self,
        tel: Telemetry,
        result: EngineResult,
        collection: Collection,
        output_dir: str,
    ) -> tuple[str, str]:
        """Write ``run.metrics.json`` + ``trace.json`` next to the manifest.

        Wall-clock values (stopwatch buckets, wall/cpu seconds) go into
        the payload's quarantined ``timings`` section; everything else in
        the registry is seed-deterministic by construction.
        """
        watch = result.stopwatch
        timings = {f"stage.{name}": s for name, s in watch.buckets.items()}
        timings["wall_seconds"] = result.wall_seconds
        timings["cpu_seconds"] = result.cpu_seconds
        timings["measured_union_seconds"] = watch.wall()
        if result.pipeline is not None:
            # Pipelined stall/idle wall-clock: quarantined with the other
            # timings; the registry only sees deterministic pipeline.*.
            timings.update(result.pipeline.timings())
        payload = build_payload(
            tel.metrics.snapshot(),
            timings,
            meta={
                "collection": collection.name,
                "config": self.config.describe(),
                "codec": self.config.codec,
                "files": len(collection.files),
            },
        )
        metrics_path = write_metrics(
            os.path.join(output_dir, METRICS_FILENAME), payload
        )
        trace_path = tel.tracer.write(os.path.join(output_dir, TRACE_FILENAME))
        return metrics_path, trace_path

    # ------------------------------------------------------------------ #
    # Robustness plumbing
    # ------------------------------------------------------------------ #

    def _fingerprint(self, collection: Collection) -> str:
        """Identity of (config, collection) a checkpoint must match."""
        basis = (
            f"{self.config!r}|{collection.name}|{collection.num_files}|"
            f"{collection.seed}"
        )
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def _handle_read_failure(
        self,
        collection: Collection,
        file_index: int,
        error: Exception,
        robustness: RobustnessReport,
    ) -> None:
        """Apply the ``on_error`` policy to a permanently unreadable file."""
        cfg = self.config
        if cfg.on_error == "strict":
            raise error
        path = collection.files[file_index]
        reason = f"{type(error).__name__}: {error}"
        if cfg.on_error == "quarantine":
            dest = collection.quarantine_file(
                file_index, reason, quarantine_dir=cfg.quarantine_dir
            )
            robustness.skipped.append(
                SkippedFile(
                    file_index=file_index,
                    path=path,
                    reason=reason,
                    action="quarantine",
                    quarantined_to=dest,
                )
            )
            obs.count("robustness.quarantined")
        else:
            robustness.skipped.append(
                SkippedFile(file_index=file_index, path=path, reason=reason)
            )
            obs.count("robustness.skipped")

    def _fail_gpu(
        self,
        ordinal: int,
        file_index: int,
        gpu_indexers: list,
        assignment: WorkAssignment,
        robustness: RobustnessReport,
    ) -> None:
        """Replace a dead GPU indexer with a CPU fallback, mid-build.

        The fallback adopts the failed indexer's dictionary shard and
        postings accumulator *objects*, so term ids, accumulated postings
        and run output are exactly what the GPU would have produced — the
        index stays correct; only the (simulated) speed degrades.
        """
        if not 0 <= ordinal < len(gpu_indexers):
            return
        failed = gpu_indexers[ordinal]
        if failed.kind != "gpu":
            return  # this ordinal already failed over
        replacement = CPUIndexer(failed.indexer_id, failed.shard)
        replacement.accumulator = failed.accumulator
        replacement.total = failed.total
        gpu_indexers[ordinal] = replacement
        assignment.mark_gpu_failed(ordinal)
        robustness.gpu_failovers.append(
            GpuFailover(
                gpu_ordinal=ordinal,
                indexer_id=failed.indexer_id,
                file_index=file_index,
                collections=len(assignment.gpu_sets[ordinal]),
                tokens_before_failure=failed.total.tokens,
            )
        )
        obs.count("robustness.gpu_failovers")
        t = obs.current()
        if t is not None:
            t.tracer.instant(
                "gpu_failover", cat="robustness", gpu=ordinal, file=file_index
            )

    # ------------------------------------------------------------------ #

    def _parsed_files(
        self,
        collection: Collection,
        trie: TrieTable,
        watch: Stopwatch,
        tel: Telemetry,
        start: int = 0,
        robustness: RobustnessReport | None = None,
        prefetch: int | None = None,
    ) -> Iterator[tuple[int, ParsedFile | None, Exception | None, RetryOutcome | None]]:
        """Yield ``(file_index, parsed, error, retry_outcome)`` in order.

        Every container read runs under the config's retry policy; a file
        that stays unreadable yields ``parsed=None`` with the permanent
        ``error`` for the caller's ``on_error`` policy (a fatal injected
        fault propagates — that *is* the crash).  ``start`` skips files a
        resumed build already indexed.

        With a positive lookahead (``prefetch`` argument, defaulting to
        ``config.parse_prefetch``) a thread pool reads, decompresses and
        parses up to that many files ahead — gzip inflation and the regex
        scan release the GIL, so the lookahead genuinely overlaps with
        indexing (the paper's parser/indexer pipeline, executed for real).
        Results are always consumed in file order, so indexes are
        byte-identical to a serial build.

        Each worker *thread* owns one stable trace lane (``parser-w<n>``):
        spans on a lane never overlap, which is what Perfetto-style
        timeline rows require.  The paper's round-robin parser slot for
        file ``k`` (``k % num_parsers``) is recorded as the ``parser``
        span attribute instead of rotating the lane per file.
        """
        cfg = self.config

        def make_parser() -> Parser:
            return Parser(
                parser_id=0,
                trie=trie,
                strip_html=cfg.strip_html,
                regroup=cfg.regroup,
                positional=cfg.positional,
            )

        def attempt(
            parser: Parser, k: int, path: str
        ) -> tuple[ParsedFile | None, Exception | None, RetryOutcome | None]:
            """Parse under retry; classify the outcome for the caller."""
            def call() -> ParsedFile:
                # The paper's parser-array slot for this file: stamped on
                # the batch (and the parse_file span) for round-robin
                # accounting, while the trace lane stays per-thread.
                parser.parser_id = k % cfg.num_parsers
                return parser.parse_file(path, sequence=k)

            try:
                parsed, outcome = retry_call(call, cfg.retry, path)
                return parsed, None, outcome
            except _PERMANENT_READ_ERRORS as exc:
                return None, exc, None

        def merge(outcome: RetryOutcome | None) -> None:
            if outcome is not None and robustness is not None:
                robustness.merge_outcome(outcome.retries, outcome.backoff_s)

        indices = range(start, len(collection.files))
        window = cfg.parse_prefetch if prefetch is None else prefetch

        if window <= 0:
            parser = make_parser()
            for k in indices:
                path = collection.files[k]
                with watch.measure("parse"), tel.tracer.span(
                    "parse", cat="parse", file=k, cp=f"parse:{k}"
                ):
                    parsed, error, outcome = attempt(parser, k, path)
                merge(outcome)
                yield k, parsed, error, outcome
            return

        import itertools
        import threading
        from concurrent.futures import ThreadPoolExecutor

        local = threading.local()
        lane_ids = itertools.count()
        lane_lock = threading.Lock()

        def parse_one(
            k: int,
        ) -> tuple[ParsedFile | None, Exception | None, RetryOutcome | None]:
            parser = getattr(local, "parser", None)
            if parser is None:
                parser = make_parser()
                with lane_lock:
                    worker = next(lane_ids)
                parser.lane_override = f"parser-w{worker}"
                local.parser = parser
            return attempt(parser, k, collection.files[k])

        with ThreadPoolExecutor(max_workers=window) as pool:
            pending = deque()
            files = iter(indices)
            for k in itertools.islice(files, window):
                pending.append((k, pool.submit(parse_one, k)))
            while pending:
                k, future = pending.popleft()
                # Worker threads trace their own "parse" spans on the
                # parser lanes; the engine lane records only the wait.
                with watch.measure("parse"), tel.tracer.span(
                    "parse.wait", cat="parse", file=k,
                    cp=f"collect:{k}", cp_from=f"parse:{k}",
                ):
                    parsed, error, outcome = future.result()
                merge(outcome)
                nxt = next(files, None)
                if nxt is not None:
                    pending.append((nxt, pool.submit(parse_one, nxt)))
                yield k, parsed, error, outcome

    def _index_batch(
        self,
        batch: ParsedBatch,
        doc_offset: int,
        assignment: WorkAssignment,
        popular_set: set[int],
        cpu_indexers: list[CPUIndexer],
        gpu_indexers: list[GPUIndexer],
    ) -> tuple[GroupWork, GroupWork]:
        """Route one buffer's collections to their bound indexers, inline.

        The serial path: split the buffer per (indexer, group), index
        each sub-batch on the engine thread in deterministic order, and
        aggregate the group work.  The pipelined path runs the *same*
        split and aggregation around worker-pool dispatch
        (``_run_pipelined``), which is what keeps the two modes
        byte-identical.
        """
        tasks = self._split_batch(batch, assignment, popular_set)
        results = [
            (cpu_indexers[idx] if kind == "cpu" else gpu_indexers[idx]).index_batch(
                sub, doc_offset
            )
            for kind, idx, _is_popular, sub in tasks
        ]
        return self._aggregate_group_work(batch, tasks, results)

    def _split_batch(
        self,
        batch: ParsedBatch,
        assignment: WorkAssignment,
        popular_set: set[int],
    ) -> list[tuple[str, int, bool, ParsedBatch]]:
        """Partition one buffer into per-(indexer, group) sub-batches.

        Returns ``(kind, indexer_index, is_popular, sub_batch)`` tuples
        sorted into the serial loop's historical consumption order (CPU
        slots before GPU slots, then by index) — term-id allocation order
        depends on it.  Runs on the engine thread in both modes:
        ``bind_unseen`` mutates the assignment and must see collections
        in file order.  Sub-batches are built per (indexer, group) so
        group-level work attribution stays exact even on CPU-only
        configurations.
        """
        if batch.ungrouped is not None:
            # Regrouping disabled (ablation): the whole document-order
            # stream goes through one CPU indexer — the paper's ~15×
            # comparison is against a *serial* indexer, and splitting an
            # ungrouped stream would duplicate collections across shards.
            return [("cpu", 0, False, batch)]

        subs: dict[tuple[str, int, bool], ParsedBatch] = {}
        for cidx, stream in batch.collections.items():
            kind, idx = assignment.bind_unseen(cidx)
            is_popular = cidx in popular_set
            key = (kind, idx, is_popular)
            sub = subs.get(key)
            if sub is None:
                sub = ParsedBatch(
                    parser_id=batch.parser_id,
                    sequence=batch.sequence,
                    source_file=batch.source_file,
                    num_docs=batch.num_docs,
                )
                subs[key] = sub
            sub.collections[cidx] = stream
            if batch.positions is not None:
                if sub.positions is None:
                    sub.positions = {}
                sub.positions[cidx] = batch.positions[cidx]
            sub.tokens_per_collection[cidx] = batch.tokens_per_collection[cidx]
            sub.chars_per_collection[cidx] = batch.chars_per_collection[cidx]
        return [
            (kind, idx, is_popular, sub)
            for (kind, idx, is_popular), sub in sorted(
                subs.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
            )
        ]

    def _aggregate_group_work(
        self,
        batch: ParsedBatch,
        tasks: list[tuple[str, int, bool, ParsedBatch]],
        results: list[Any],
    ) -> tuple[GroupWork, GroupWork]:
        """Fold per-sub-batch indexer reports into (popular, unpopular) work.

        ``results`` is parallel to ``tasks``; entries are
        :class:`~repro.indexers.base.IndexerReport` or GPU batch reports
        carrying one.  Pure aggregation — safe to run on the engine
        thread after out-of-order worker completion.
        """
        if batch.ungrouped is not None:
            report = GroupWork()
            rep = getattr(results[0], "report", results[0])
            report.tokens = rep.tokens
            report.new_terms = rep.new_terms
            report.node_visits = rep.btree.node_visits
            report.hot_visit_fraction = 0.0
            return GroupWork(), report

        groups = {True: GroupWork(), False: GroupWork()}
        hot_fractions = {True: 0.95, False: 0.35}
        for (kind, idx, is_popular, sub), res in zip(tasks, results):
            # A GPU slot can hold a CPU fallback after a failover, so
            # normalize on the report attribute GPU batches carry.
            rep = getattr(res, "report", res)
            g = groups[is_popular]
            g.tokens += rep.tokens
            g.new_terms += rep.new_terms
            g.node_visits += rep.btree.node_visits
            g.full_string_fetches += rep.btree.full_string_fetches
            g.splits += rep.btree.splits
            g.stream_chars += rep.characters
            g.dict_chars += rep.characters  # refined below
            g.hot_visit_fraction = hot_fractions[is_popular]
            largest = max(sub.tokens_per_collection.values(), default=0)
            g.largest_collection_tokens = max(g.largest_collection_tokens, largest)
        for g in groups.values():
            if g.tokens:
                g.visits_per_token = g.node_visits / g.tokens
        return groups[True], groups[False]
