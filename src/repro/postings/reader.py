"""Retrieval path over an output directory of run files.

"To retrieve a postings list for a certain term string, we look it up in
the dictionary and use the corresponding pointer to determine the location
of the partial postings list in each of the output files."  The reader also
implements the paper's range-narrowed search benefit: a query restricted to
a document-ID range only fetches partial lists from the run files whose
ranges overlap (counted in :attr:`PostingsReader.partial_fetches` so tests
and benchmarks can observe the saving).
"""

from __future__ import annotations

import os

from repro.postings.compression import get_codec
from repro.postings.output import (
    DocRangeMap,
    RunFile,
    read_run_header,
    verify_run_bytes,
)

__all__ = ["PostingsReader"]


class _OpenRun:
    """A run file parsed into (codec, mapping table, raw bytes).

    With ``use_mmap`` the payload stays file-backed and pages in on
    demand — the right mode for large indexes where a query touches a
    handful of partial lists out of gigabytes of runs.

    Opening verifies the file's trailing CRC32 (unless the reader was
    constructed with ``verify_checksums=False``): a flipped byte anywhere
    in the run raises :class:`~repro.robustness.errors.ChecksumError`
    before a single posting is decoded.
    """

    __slots__ = ("run", "codec", "table", "data", "_mm", "_fh")

    def __init__(self, run: RunFile, use_mmap: bool = False, verify: bool = True) -> None:
        self._mm = None
        self._fh = None
        if use_mmap:
            import mmap

            self._fh = open(run.path, "rb")
            self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
            self.data = self._mm
        else:
            with open(run.path, "rb") as fh:
                self.data = fh.read()
        if verify:
            verify_run_bytes(run.path, bytes(self.data))
        header = bytes(self.data[:4096]) if use_mmap else self.data
        # Headers of big runs can exceed 4 KiB; fall back to the full map.
        try:
            _, codec_name, min_doc, max_doc, self.table, _ = read_run_header(header)
        except (EOFError, IndexError):
            _, codec_name, min_doc, max_doc, self.table, _ = read_run_header(
                bytes(self.data)
            )
        self.codec = get_codec(codec_name)
        self.run = run
        # Backfill lazily-loaded descriptor fields.
        run.min_doc, run.max_doc = min_doc, max_doc
        run.entry_count = len(self.table)

    def fetch(self, term_id: int) -> list[tuple[int, int]]:
        """Decode one partial postings list (empty when term absent)."""
        entry = self.table.get(term_id)
        if entry is None:
            return []
        offset, length = entry
        return self.codec.decode(bytes(self.data[offset : offset + length]))

    def close(self) -> None:
        """Release the mmap/file handle (no-op for in-memory runs)."""
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class PostingsReader:
    """Reads merged postings for a term across all run files.

    Parameters
    ----------
    output_dir:
        Directory produced by the engine: run files, ``runs.map`` and
        (optionally) a serialized dictionary ``dictionary.bin`` which lets
        callers query by term *string* instead of postings pointer.
    """

    def __init__(self, output_dir: str, use_mmap: bool = False) -> None:
        self.output_dir = output_dir
        self.use_mmap = use_mmap
        self.range_map = DocRangeMap.load(output_dir)
        self._open_runs: dict[int, _OpenRun] = {}
        self._term_ids: dict[str, int] | None = None
        #: Number of partial-list fetch operations performed (observability
        #: for the range-narrowing benefit).
        self.partial_fetches = 0
        dict_path = os.path.join(output_dir, "dictionary.bin")
        if os.path.exists(dict_path):
            from repro.dictionary.serialize import load_dictionary

            self._term_ids = load_dictionary(dict_path)

    # ------------------------------------------------------------------ #
    # Term resolution
    # ------------------------------------------------------------------ #

    def term_id(self, term: str) -> int | None:
        """Postings pointer for a term string (needs the dictionary file)."""
        if self._term_ids is None:
            raise RuntimeError(
                "no dictionary.bin in output directory; query by term_id instead"
            )
        return self._term_ids.get(term)

    def vocabulary(self) -> dict[str, int]:
        """The full term → postings-pointer map (dictionary required)."""
        if self._term_ids is None:
            raise RuntimeError("no dictionary.bin in output directory")
        return dict(self._term_ids)

    def _resolve(self, term: str | int) -> int | None:
        return term if isinstance(term, int) else self.term_id(term)

    # ------------------------------------------------------------------ #
    # Postings access
    # ------------------------------------------------------------------ #

    def _run(self, run: RunFile) -> _OpenRun:
        opened = self._open_runs.get(run.run_id)
        if opened is None:
            opened = _OpenRun(run, use_mmap=self.use_mmap)
            self._open_runs[run.run_id] = opened
        return opened

    def close(self) -> None:
        """Release all open run files (important in mmap mode)."""
        for opened in self._open_runs.values():
            opened.close()
        self._open_runs.clear()

    def __enter__(self) -> "PostingsReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _postings_raw(self, term: str | int) -> list:
        """Raw spliced entries (3-tuples when the index is positional)."""
        term_id = self._resolve(term)
        if term_id is None:
            return []
        merged: list = []
        for run in self.range_map.runs:
            partial = self._run(run).fetch(term_id)
            if partial:
                self.partial_fetches += 1
                if merged and partial[0][0] <= merged[-1][0]:
                    raise ValueError(
                        "run files overlap in document order; output corrupt"
                    )
                merged.extend(partial)
        return merged

    def postings(self, term: str | int) -> list[tuple[int, int]]:
        """Full postings list, spliced across runs in run order.

        Runs are written in document order, so simple concatenation yields
        a globally docID-sorted list — the paper's "index is still
        monolithic for the entire document collection".  Positions (if the
        index is positional) are stripped; use :meth:`positional_postings`.
        """
        return [(e[0], e[1]) for e in self._postings_raw(term)]

    def positional_postings(
        self, term: str | int
    ) -> list[tuple[int, int, tuple[int, ...]]]:
        """``(doc, tf, positions)`` entries — requires a positional index."""
        if not self.is_positional:
            raise ValueError("this index was built without positions")
        return self._postings_raw(term)

    @property
    def is_positional(self) -> bool:
        """Whether the run files carry per-occurrence positions."""
        if not self.range_map.runs:
            return False
        return self._run(self.range_map.runs[0]).codec.positional

    def postings_in_range(
        self, term: str | int, lo_doc: int, hi_doc: int
    ) -> list[tuple[int, int]]:
        """Postings restricted to documents in ``[lo_doc, hi_doc]``.

        Only run files whose document range overlaps are touched — the
        "faster search when narrowed down to a range of document IDs"
        benefit of the run-per-file output format.
        """
        term_id = self._resolve(term)
        if term_id is None:
            return []
        out: list[tuple[int, int]] = []
        for run in self.range_map.runs_overlapping(lo_doc, hi_doc):
            partial = self._run(run).fetch(term_id)
            if partial:
                self.partial_fetches += 1
            out.extend((e[0], e[1]) for e in partial if lo_doc <= e[0] <= hi_doc)
        return out

    def document_frequency(self, term: str | int) -> int:
        """Number of documents containing ``term``."""
        return len(self.postings(term))

    def run_count(self) -> int:
        """Number of run files in the index."""
        return len(self.range_map.runs)
