"""Optional post-processing merge of partial postings lists.

"If necessary, we can combine the partial postings lists of each term into
a single list in a post-processing step, with an additional cost of less
than 10% of the total running time."  This module implements that step: it
reads every run file in run order, splices each term's partial lists, and
writes a single consolidated run file (run id ``0`` by convention) plus a
fresh ``runs.map``.  The merge benchmark checks the <10% cost claim against
the engine's build time.
"""

from __future__ import annotations

import os

from repro.obs import runtime as obs
from repro.postings.compression import PostingsCodec, VarByteCodec, get_codec
from repro.postings.lists import PostingsList
from repro.postings.output import (
    DocRangeMap,
    RunWriter,
    read_run_header,
    verify_run_bytes,
)

__all__ = ["merge_index"]


def merge_index(
    input_dir: str,
    output_dir: str,
    codec: PostingsCodec | None = None,
) -> dict[str, int]:
    """Merge a multi-run index directory into a single-run directory.

    Returns summary statistics: terms merged, postings written, input and
    output byte sizes.  The dictionary file (if present) is copied verbatim
    because postings pointers are stable across the merge.
    """
    range_map = DocRangeMap.load(input_dir)
    tracer = obs.tracer()
    reg = obs.metrics()

    merged: dict[int, PostingsList] = {}
    input_bytes = 0
    with tracer.span(
        "merge.read_runs", cat="merge", lane="merge", runs=len(range_map.runs)
    ):
        for run in range_map.runs:  # already sorted by run id = document order
            with open(run.path, "rb") as fh:
                data = fh.read()
            input_bytes += len(data)
            verify_run_bytes(run.path, data)  # never splice a damaged run
            _, codec_name, _, _, table, _ = read_run_header(data)
            run_codec = get_codec(codec_name)
            if codec is None and run_codec.positional:
                codec = get_codec(codec_name)  # keep positions through the merge
            reg.count("merge.runs_read")
            reg.count("merge.input_bytes", len(data))
            for term_id, (offset, length) in table.items():
                plist = merged.setdefault(term_id, PostingsList())
                for entry in run_codec.decode(data[offset : offset + length]):
                    if run_codec.positional:
                        doc_id, tf, positions = entry
                        plist.add_posting(doc_id, tf, list(positions))
                    else:
                        doc_id, tf = entry
                        plist.add_posting(doc_id, tf)

    os.makedirs(output_dir, exist_ok=True)
    writer = RunWriter(output_dir, codec=codec if codec is not None else VarByteCodec())
    with tracer.span(
        "merge.write", cat="merge", lane="merge", terms=len(merged)
    ):
        run_file = writer.write_run(0, merged)
    reg.count("merge.terms", len(merged))
    reg.count("merge.output_bytes", run_file.byte_size)
    out_map = DocRangeMap()
    out_map.add(run_file)
    out_map.save(output_dir)

    dict_src = os.path.join(input_dir, "dictionary.bin")
    if os.path.exists(dict_src) and os.path.abspath(input_dir) != os.path.abspath(output_dir):
        with open(dict_src, "rb") as src, open(
            os.path.join(output_dir, "dictionary.bin"), "wb"
        ) as dst:
            dst.write(src.read())

    return {
        "terms": len(merged),
        "postings": sum(len(p) for p in merged.values()),
        "input_bytes": input_bytes,
        "output_bytes": run_file.byte_size,
        "input_runs": len(range_map.runs),
    }
