"""Optional post-processing merge of partial postings lists.

"If necessary, we can combine the partial postings lists of each term into
a single list in a post-processing step, with an additional cost of less
than 10% of the total running time."  This module implements that step: it
splices each term's partial lists across every run (in run order = document
order) and writes a single consolidated run file (run id ``0`` by
convention) plus a fresh ``runs.map``.  The merge benchmark checks the
<10% cost claim against the engine's build time.

The merge streams: run files are verified and their headers parsed without
loading payloads, then each term's partial lists are seek-read from the
open run handles one term at a time and fed straight into
:meth:`~repro.postings.output.RunWriter.write_run_streaming`.  Peak
resident postings are therefore bounded by the largest single term's
merged list, not by the index size.

Codec handling: when ``codec`` is ``None`` the merged run keeps the input
runs' codec — positional or not — so a merge never silently re-encodes.
A run set that mixes codecs cannot be spliced byte-for-byte and raises
``ValueError``; pass an explicit ``codec`` after re-encoding if that is
really intended.
"""

from __future__ import annotations

import os
from contextlib import ExitStack
from typing import BinaryIO, Iterator

from repro.obs import runtime as obs
from repro.postings.compression import PostingsCodec, VarByteCodec, get_codec
from repro.postings.lists import PostingsList
from repro.postings.output import (
    DocRangeMap,
    RunWriter,
    read_run_header_from_file,
    verify_run_file,
)

__all__ = ["merge_index"]


def merge_index(
    input_dir: str,
    output_dir: str,
    codec: PostingsCodec | None = None,
) -> dict[str, int]:
    """Merge a multi-run index directory into a single-run directory.

    Returns summary statistics: terms merged, postings written, input and
    output byte sizes, and ``peak_resident_postings`` — the largest number
    of postings held in memory at once (the merged length of the most
    frequent term).  The dictionary file (if present) is copied verbatim
    because postings pointers are stable across the merge.

    Raises ``ValueError`` if the input runs do not all share one codec.
    """
    range_map = DocRangeMap.load(input_dir)
    tracer = obs.tracer()
    reg = obs.metrics()

    input_bytes = 0
    peak_resident = 0
    total_postings = 0

    with ExitStack() as stack:
        handles: list[BinaryIO] = []
        tables: list[dict[int, tuple[int, int]]] = []
        codec_names: list[str] = []
        with tracer.span(
            "merge.read_runs", cat="merge", lane="merge", runs=len(range_map.runs)
        ):
            for run in range_map.runs:  # already sorted by run id = document order
                size = verify_run_file(run.path)  # never splice a damaged run
                input_bytes += size
                fh = stack.enter_context(open(run.path, "rb"))
                _, codec_name, _, _, table, _ = read_run_header_from_file(fh)
                handles.append(fh)
                tables.append(table)
                codec_names.append(codec_name)
                reg.count("merge.runs_read")
                reg.count("merge.input_bytes", size)

        names = sorted(set(codec_names))
        if len(names) > 1:
            raise ValueError(
                f"cannot merge runs with mixed codecs ({', '.join(names)}); "
                "rebuild or re-encode the runs with one codec first"
            )
        run_codec = get_codec(names[0]) if names else VarByteCodec()
        if codec is None:
            codec = run_codec  # preserve the run codec through the merge
        term_ids = sorted(set().union(*tables)) if tables else []

        def spliced() -> Iterator[tuple[int, PostingsList]]:
            """Yield one fully merged term at a time, in term-id order."""
            nonlocal peak_resident, total_postings
            for term_id in term_ids:
                plist = PostingsList()
                for fh, table in zip(handles, tables):
                    loc = table.get(term_id)
                    if loc is None:
                        continue
                    offset, length = loc
                    fh.seek(offset)
                    for entry in run_codec.decode(fh.read(length)):
                        if run_codec.positional:
                            doc_id, tf, positions = entry
                            plist.add_posting(doc_id, tf, list(positions))
                        else:
                            doc_id, tf = entry
                            plist.add_posting(doc_id, tf)
                peak_resident = max(peak_resident, len(plist))
                total_postings += len(plist)
                yield term_id, plist

        os.makedirs(output_dir, exist_ok=True)
        writer = RunWriter(output_dir, codec=codec)
        with tracer.span(
            "merge.write", cat="merge", lane="merge", terms=len(term_ids)
        ):
            run_file = writer.write_run_streaming(0, spliced())

    reg.count("merge.terms", len(term_ids))
    reg.count("merge.output_bytes", run_file.byte_size)
    out_map = DocRangeMap()
    out_map.add(run_file)
    out_map.save(output_dir)

    dict_src = os.path.join(input_dir, "dictionary.bin")
    if os.path.exists(dict_src) and os.path.abspath(input_dir) != os.path.abspath(output_dir):
        with open(dict_src, "rb") as src, open(
            os.path.join(output_dir, "dictionary.bin"), "wb"
        ) as dst:
            dst.write(src.read())

    return {
        "terms": len(term_ids),
        "postings": total_postings,
        "input_bytes": input_bytes,
        "output_bytes": run_file.byte_size,
        "input_runs": len(range_map.runs),
        "peak_resident_postings": peak_resident,
    }
