"""Run output files with header mapping tables (Section III.F).

"A separate output file is created for the postings lists generated during a
single run, whose header contains a mapping table indicating the location
and length of each postings list.  This mapping table is indexed by the
pointers to postings lists stored in the dictionary."

On-disk format of one run file::

    magic  b"RPRORUN1"                       8 bytes
    uvarint run_id
    uvarint codec-name length, codec name    (self-describing)
    uvarint min_doc_id + 1, uvarint max_doc_id + 1   (0 when run is empty)
    uvarint n_entries
    n_entries × (uvarint term_id, uvarint offset, uvarint length)
    payload: concatenated codec-encoded postings lists
    footer: CRC32 of everything above, 4 bytes little-endian

Offsets are relative to the payload start so the header can be built after
the payload without back-patching.  The trailing CRC32 covers header and
payload; :class:`~repro.postings.reader.PostingsReader` refuses to serve a
run whose checksum does not match, so a flipped byte anywhere in the file
surfaces as a :class:`~repro.robustness.errors.ChecksumError`, never as
silently wrong postings.  The auxiliary docID→file map the paper describes
("an auxiliary file containing the mapping of document IDs to output file
names") is :class:`DocRangeMap`, stored as ``runs.map`` — one line per
run: ``run_id  min_doc  max_doc  filename``, ending with a ``#crc``
comment line checksumming the map itself.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterable

from repro.postings.compression import (
    PostingsCodec,
    VarByteCodec,
    decode_uvarint,
    encode_uvarint,
)
from repro.postings.lists import PostingsList
from repro.robustness.errors import ChecksumError

__all__ = [
    "RunWriter",
    "RunFile",
    "DocRangeMap",
    "RUN_MAGIC",
    "RUN_CRC_BYTES",
    "run_filename",
    "verify_run_bytes",
    "verify_run_file",
    "read_run_header_from_file",
]

RUN_MAGIC = b"RPRORUN1"
MAP_FILENAME = "runs.map"
#: Width of the little-endian CRC32 footer at the end of every run file.
RUN_CRC_BYTES = 4
#: Chunk size for streaming CRC verification / payload copying.
_STREAM_CHUNK = 1 << 16


def run_filename(run_id: int) -> str:
    """Canonical run file name, e.g. ``run_00003.post``."""
    return f"run_{run_id:05d}.post"


@dataclass(frozen=True)
class RunEntry:
    """One mapping-table row: where a term's partial list lives."""

    term_id: int
    offset: int
    length: int


class RunWriter:
    """Serializes one run's postings lists into a run file.

    ``num_stripes > 1`` spreads run files round-robin over ``disk0`` …
    ``diskN-1`` subdirectories — the paper's §III.F observation that "the
    output files can be written onto multiple disks", enabling parallel
    reads of the partial postings lists.  The docID-range map references
    stripe-relative paths, so readers need no configuration.
    """

    def __init__(
        self,
        output_dir: str,
        codec: PostingsCodec | None = None,
        num_stripes: int = 1,
    ) -> None:
        if num_stripes < 1:
            raise ValueError(f"need at least one stripe, got {num_stripes}")
        self.output_dir = output_dir
        self.codec = codec if codec is not None else VarByteCodec()
        self.num_stripes = num_stripes
        os.makedirs(output_dir, exist_ok=True)
        self._stripe_dirs = [output_dir]
        if num_stripes > 1:
            self._stripe_dirs = [
                os.path.join(output_dir, f"disk{i}") for i in range(num_stripes)
            ]
            for d in self._stripe_dirs:
                os.makedirs(d, exist_ok=True)

    def stripe_dir(self, run_id: int) -> str:
        """Directory ("disk") that run ``run_id`` lands on."""
        return self._stripe_dirs[run_id % self.num_stripes]

    def write_run(self, run_id: int, lists: dict[int, PostingsList]) -> "RunFile":
        """Compress and write all lists of a run; return its descriptor."""
        payload = bytearray()
        entries: list[RunEntry] = []
        min_doc: int | None = None
        max_doc: int | None = None
        for term_id in sorted(lists):
            plist = lists[term_id]
            if not plist.doc_ids:
                continue
            if self.codec.positional:
                encoded = self.codec.encode(plist.positional_postings())
            else:
                encoded = self.codec.encode(plist.postings())
            entries.append(RunEntry(term_id, len(payload), len(encoded)))
            payload.extend(encoded)
            lo, hi = plist.doc_ids[0], plist.doc_ids[-1]
            min_doc = lo if min_doc is None else min(min_doc, lo)
            max_doc = hi if max_doc is None else max(max_doc, hi)

        header = bytearray(RUN_MAGIC)
        encode_uvarint(run_id, header)
        name_bytes = self.codec.name.encode("ascii")
        encode_uvarint(len(name_bytes), header)
        header.extend(name_bytes)
        encode_uvarint(0 if min_doc is None else min_doc + 1, header)
        encode_uvarint(0 if max_doc is None else max_doc + 1, header)
        encode_uvarint(len(entries), header)
        for entry in entries:
            encode_uvarint(entry.term_id, header)
            encode_uvarint(entry.offset, header)
            encode_uvarint(entry.length, header)

        filename = run_filename(run_id)
        path = os.path.join(self.stripe_dir(run_id), filename)
        crc = zlib.crc32(payload, zlib.crc32(header)) & 0xFFFFFFFF
        with open(path, "wb") as fh:
            fh.write(header)
            fh.write(payload)
            fh.write(crc.to_bytes(RUN_CRC_BYTES, "little"))
        return RunFile(
            path=path,
            run_id=run_id,
            min_doc=min_doc,
            max_doc=max_doc,
            entry_count=len(entries),
            byte_size=len(header) + len(payload) + RUN_CRC_BYTES,
        )


    def write_run_streaming(
        self, run_id: int, lists: Iterable[tuple[int, PostingsList]]
    ) -> "RunFile":
        """Write a run from a ``(term_id, list)`` stream, bounded memory.

        Byte-identical to :meth:`write_run` over the same content, but
        only one term's encoded postings are resident at a time: the
        payload streams into a sibling temp file while the mapping table
        accumulates, then header, payload copy and trailing CRC are
        written in one pass.  Offsets are payload-relative (see the
        module docstring), which is what makes the two-pass layout
        possible without back-patching.

        ``lists`` must yield term ids in strictly ascending order — the
        same order ``write_run`` gets from sorting — so readers can rely
        on table order.  Empty lists are skipped, as in ``write_run``.
        """
        filename = run_filename(run_id)
        path = os.path.join(self.stripe_dir(run_id), filename)
        tmp_path = path + ".payload.tmp"
        entries: list[RunEntry] = []
        min_doc: int | None = None
        max_doc: int | None = None
        payload_len = 0
        try:
            with open(tmp_path, "wb") as payload_fh:
                for term_id, plist in lists:
                    if entries and term_id <= entries[-1].term_id:
                        raise ValueError(
                            f"write_run_streaming needs strictly ascending term "
                            f"ids, got {term_id} after {entries[-1].term_id}"
                        )
                    if not plist.doc_ids:
                        continue
                    if self.codec.positional:
                        encoded = self.codec.encode(plist.positional_postings())
                    else:
                        encoded = self.codec.encode(plist.postings())
                    entries.append(RunEntry(term_id, payload_len, len(encoded)))
                    payload_fh.write(encoded)
                    payload_len += len(encoded)
                    lo, hi = plist.doc_ids[0], plist.doc_ids[-1]
                    min_doc = lo if min_doc is None else min(min_doc, lo)
                    max_doc = hi if max_doc is None else max(max_doc, hi)

            header = bytearray(RUN_MAGIC)
            encode_uvarint(run_id, header)
            name_bytes = self.codec.name.encode("ascii")
            encode_uvarint(len(name_bytes), header)
            header.extend(name_bytes)
            encode_uvarint(0 if min_doc is None else min_doc + 1, header)
            encode_uvarint(0 if max_doc is None else max_doc + 1, header)
            encode_uvarint(len(entries), header)
            for entry in entries:
                encode_uvarint(entry.term_id, header)
                encode_uvarint(entry.offset, header)
                encode_uvarint(entry.length, header)

            crc = zlib.crc32(header)
            with open(path, "wb") as fh:
                fh.write(header)
                with open(tmp_path, "rb") as payload_fh:
                    while True:
                        chunk = payload_fh.read(_STREAM_CHUNK)
                        if not chunk:
                            break
                        crc = zlib.crc32(chunk, crc)
                        fh.write(chunk)
                fh.write((crc & 0xFFFFFFFF).to_bytes(RUN_CRC_BYTES, "little"))
        finally:
            if os.path.exists(tmp_path):
                os.remove(tmp_path)
        return RunFile(
            path=path,
            run_id=run_id,
            min_doc=min_doc,
            max_doc=max_doc,
            entry_count=len(entries),
            byte_size=len(header) + payload_len + RUN_CRC_BYTES,
        )


def verify_run_bytes(path: str, data: bytes) -> None:
    """Check a run file's trailing CRC32 over its full bytes.

    Raises :class:`ChecksumError` on mismatch and ``ValueError`` when the
    file is too short to even carry a footer.
    """
    if len(data) < len(RUN_MAGIC) + RUN_CRC_BYTES:
        raise ValueError(f"{path} is too short to be a run file ({len(data)} bytes)")
    stored = int.from_bytes(data[-RUN_CRC_BYTES:], "little")
    actual = zlib.crc32(data[:-RUN_CRC_BYTES]) & 0xFFFFFFFF
    if stored != actual:
        raise ChecksumError(path, stored, actual)


def verify_run_file(path: str) -> int:
    """Streaming equivalent of :func:`verify_run_bytes`: constant memory.

    Reads the file in chunks, never holding more than one chunk resident
    — the merge path uses this so verification cost does not scale with
    run size in memory.  Returns the file's total byte size.
    """
    size = os.path.getsize(path)
    if size < len(RUN_MAGIC) + RUN_CRC_BYTES:
        raise ValueError(f"{path} is too short to be a run file ({size} bytes)")
    crc = 0
    remaining = size - RUN_CRC_BYTES
    with open(path, "rb") as fh:
        while remaining:
            chunk = fh.read(min(_STREAM_CHUNK, remaining))
            if not chunk:
                raise ValueError(f"{path} truncated while verifying")
            crc = zlib.crc32(chunk, crc)
            remaining -= len(chunk)
        stored = int.from_bytes(fh.read(RUN_CRC_BYTES), "little")
    actual = crc & 0xFFFFFFFF
    if stored != actual:
        raise ChecksumError(path, stored, actual)
    return size


def read_run_header_from_file(
    fh: BinaryIO,
) -> tuple[int, str, int | None, int | None, dict[int, tuple[int, int]], int]:
    """Parse a run header from an open file without loading the payload.

    Reads the file in growing chunks until the header (whose length is
    only known once its entry table is decoded) parses completely; the
    payload itself is never read.  Returns the same tuple as
    :func:`read_run_header`, with absolute offsets usable for
    ``seek``/``read`` splicing.
    """
    data = bytearray()
    while True:
        piece = fh.read(_STREAM_CHUNK)
        if piece:
            data.extend(piece)
            if len(data) < len(RUN_MAGIC):
                continue  # too short to even check the magic yet
        try:
            return read_run_header(bytes(data))
        except (IndexError, EOFError):
            # Header extends past what we buffered so far (a byte index
            # past the buffer or a uvarint cut mid-sequence).
            if not piece:
                raise ValueError("truncated run file header") from None


@dataclass
class RunFile:
    """Descriptor of a written run file (fed into :class:`DocRangeMap`)."""

    path: str
    run_id: int
    min_doc: int | None
    max_doc: int | None
    entry_count: int
    byte_size: int

    @property
    def filename(self) -> str:
        return os.path.basename(self.path)

    def overlaps(self, lo: int, hi: int) -> bool:
        """Whether this run holds any document in ``[lo, hi]``."""
        if self.min_doc is None or self.max_doc is None:
            return False
        return self.min_doc <= hi and lo <= self.max_doc


class DocRangeMap:
    """The auxiliary docID-range → run-file map."""

    def __init__(self) -> None:
        self.runs: list[RunFile] = []

    def add(self, run: RunFile) -> None:
        self.runs.append(run)

    def runs_overlapping(self, lo: int, hi: int) -> list[RunFile]:
        """Run files that may hold postings for documents in ``[lo, hi]``."""
        return [r for r in self.runs if r.overlaps(lo, hi)]

    def save(self, output_dir: str) -> str:
        """Write ``runs.map`` into the index root.

        Run paths are stored relative to ``output_dir``, so striped
        layouts (runs spread over several "disk" subdirectories, §III.F's
        parallel-reading benefit) round-trip transparently.
        """
        path = os.path.join(output_dir, MAP_FILENAME)
        body = []
        for run in sorted(self.runs, key=lambda r: r.run_id):
            lo = -1 if run.min_doc is None else run.min_doc
            hi = -1 if run.max_doc is None else run.max_doc
            rel = os.path.relpath(run.path, output_dir)
            body.append(f"{run.run_id}\t{lo}\t{hi}\t{rel}\n")
        text = "".join(body)
        crc = zlib.crc32(text.encode("ascii")) & 0xFFFFFFFF
        with open(path, "w", encoding="ascii") as fh:
            fh.write(text)
            fh.write(f"#crc\t{crc:08x}\n")
        return path

    @classmethod
    def load(cls, output_dir: str) -> "DocRangeMap":
        """Read ``runs.map`` back; sizes/entry counts are read lazily.

        The trailing ``#crc`` line (when present) is verified over the
        preceding body, so a damaged map never silently drops a run.
        """
        path = os.path.join(output_dir, MAP_FILENAME)
        mapping = cls()
        with open(path, "r", encoding="ascii") as fh:
            lines = fh.readlines()
        body: list[str] = []
        stored_crc: int | None = None
        for line in lines:
            if line.startswith("#crc"):
                stored_crc = int(line.rstrip("\n").split("\t")[1], 16)
            elif not line.startswith("#"):
                body.append(line)
        if stored_crc is not None:
            actual = zlib.crc32("".join(body).encode("ascii")) & 0xFFFFFFFF
            if actual != stored_crc:
                raise ChecksumError(path, stored_crc, actual)
        for line in body:
            run_id_s, lo_s, hi_s, filename = line.rstrip("\n").split("\t")
            lo, hi = int(lo_s), int(hi_s)
            mapping.add(
                RunFile(
                    path=os.path.join(output_dir, filename),
                    run_id=int(run_id_s),
                    min_doc=None if lo < 0 else lo,
                    max_doc=None if hi < 0 else hi,
                    entry_count=-1,
                    byte_size=os.path.getsize(os.path.join(output_dir, filename)),
                )
            )
        mapping.runs.sort(key=lambda r: r.run_id)
        return mapping


def read_run_header(data: bytes) -> tuple[int, str, int | None, int | None, dict[int, tuple[int, int]], int]:
    """Parse a run file's header.

    Returns ``(run_id, codec name, min_doc, max_doc, {term_id: (absolute
    offset, length)}, payload start)``.
    """
    if data[: len(RUN_MAGIC)] != RUN_MAGIC:
        raise ValueError("not a run file (bad magic)")
    pos = len(RUN_MAGIC)
    run_id, pos = decode_uvarint(data, pos)
    name_len, pos = decode_uvarint(data, pos)
    codec_name = data[pos : pos + name_len].decode("ascii")
    pos += name_len
    min_plus, pos = decode_uvarint(data, pos)
    max_plus, pos = decode_uvarint(data, pos)
    n_entries, pos = decode_uvarint(data, pos)
    table: dict[int, tuple[int, int]] = {}
    for _ in range(n_entries):
        term_id, pos = decode_uvarint(data, pos)
        offset, pos = decode_uvarint(data, pos)
        length, pos = decode_uvarint(data, pos)
        table[term_id] = (offset, length)
    payload_start = pos
    for term_id, (offset, length) in table.items():
        table[term_id] = (payload_start + offset, length)
    return (
        run_id,
        codec_name,
        min_plus - 1 if min_plus else None,
        max_plus - 1 if max_plus else None,
        table,
        payload_start,
    )
