"""In-memory postings accumulation during a single run.

Indexers consume parser buffers in strict round-robin order (Section III.F),
so occurrences of a term arrive in non-decreasing global document order and
"the postings lists are intrinsically in sorted order": an arriving
occurrence either increments the term frequency of the list's last posting
(same document) or appends a fresh posting.  No sort is ever needed — this
is one of the paper's key structural wins over sort-based indexing.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["PostingsList", "PostingsAccumulator"]


class PostingsList:
    """DocID-sorted ``(doc ID, term frequency)`` pairs for one term.

    Optionally *positional*: when occurrences carry token positions (the
    Ivory-style positional index the paper's §IV.D mentions), the list
    also stores each document's sorted in-document positions, enabling
    phrase queries.
    """

    __slots__ = ("doc_ids", "tfs", "positions")

    def __init__(self) -> None:
        self.doc_ids: list[int] = []
        self.tfs: list[int] = []
        #: Parallel to ``doc_ids`` when positional, else ``None``.
        self.positions: list[list[int]] | None = None

    def add_occurrence(self, doc_id: int, position: int | None = None) -> None:
        """Record one occurrence of the term in ``doc_id``.

        Documents must arrive in non-decreasing order — the pipeline's
        ordered buffer consumption guarantees this; violating it means the
        scheduler is broken, so we fail loudly.  A positional list must
        receive a position with *every* occurrence.
        """
        if position is not None and self.positions is None:
            if self.doc_ids:
                raise ValueError("cannot mix positional and plain occurrences")
            self.positions = []
        if self.positions is not None and position is None:
            raise ValueError("positional list requires a position per occurrence")
        if self.doc_ids and doc_id == self.doc_ids[-1]:
            self.tfs[-1] += 1
            if self.positions is not None:
                doc_positions = self.positions[-1]
                if doc_positions and position <= doc_positions[-1]:
                    raise ValueError(
                        f"position {position} not after {doc_positions[-1]} "
                        f"within document {doc_id}"
                    )
                doc_positions.append(position)
            return
        if self.doc_ids and doc_id < self.doc_ids[-1]:
            raise ValueError(
                f"document {doc_id} arrived after {self.doc_ids[-1]}; "
                "pipeline ordering invariant violated"
            )
        self.doc_ids.append(doc_id)
        self.tfs.append(1)
        if self.positions is not None:
            self.positions.append([position])

    def add_posting(
        self, doc_id: int, tf: int, positions: list[int] | None = None
    ) -> None:
        """Append a pre-counted posting (used by merges and baselines)."""
        if tf < 1:
            raise ValueError(f"term frequency must be >= 1, got {tf}")
        if self.doc_ids and doc_id <= self.doc_ids[-1]:
            raise ValueError(
                f"posting for document {doc_id} is not strictly after {self.doc_ids[-1]}"
            )
        if positions is not None:
            if len(positions) != tf:
                raise ValueError(f"{tf} occurrences but {len(positions)} positions")
            if sorted(positions) != list(positions) or len(set(positions)) != tf:
                raise ValueError("positions must be strictly increasing")
            if self.positions is None:
                if self.doc_ids:
                    raise ValueError("cannot mix positional and plain postings")
                self.positions = []
            self.positions.append(list(positions))
        elif self.positions is not None:
            raise ValueError("positional list requires positions per posting")
        self.doc_ids.append(doc_id)
        self.tfs.append(tf)

    @property
    def is_positional(self) -> bool:
        return self.positions is not None

    def postings(self) -> list[tuple[int, int]]:
        """Materialize as ``[(doc ID, tf), ...]`` (positions dropped)."""
        return list(zip(self.doc_ids, self.tfs))

    def positional_postings(self) -> list[tuple[int, int, tuple[int, ...]]]:
        """Materialize as ``[(doc ID, tf, positions), ...]``."""
        if self.positions is None:
            raise ValueError("this postings list carries no positions")
        return [
            (doc, tf, tuple(pos))
            for doc, tf, pos in zip(self.doc_ids, self.tfs, self.positions)
        ]

    @property
    def document_frequency(self) -> int:
        """Number of distinct documents containing the term."""
        return len(self.doc_ids)

    @property
    def collection_frequency(self) -> int:
        """Total occurrences of the term."""
        return sum(self.tfs)

    def __len__(self) -> int:
        return len(self.doc_ids)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(zip(self.doc_ids, self.tfs))


class PostingsAccumulator:
    """Per-indexer map of term id → :class:`PostingsList` for one run.

    At the end of each run the engine drains the accumulator through a
    :class:`~repro.postings.output.RunWriter` and clears it, mirroring the
    paper's run lifecycle (Fig 8).
    """

    __slots__ = ("lists", "token_count")

    def __init__(self) -> None:
        self.lists: dict[int, PostingsList] = {}
        self.token_count = 0

    def add_occurrence(
        self, term_id: int, doc_id: int, position: int | None = None
    ) -> None:
        """Record one token occurrence (optionally with its position)."""
        plist = self.lists.get(term_id)
        if plist is None:
            plist = PostingsList()
            self.lists[term_id] = plist
        plist.add_occurrence(doc_id, position)
        self.token_count += 1

    def drain(self) -> dict[int, PostingsList]:
        """Hand over all lists and reset for the next run."""
        lists = self.lists
        self.lists = {}
        self.token_count = 0
        return lists

    @property
    def term_count(self) -> int:
        return len(self.lists)

    @property
    def posting_count(self) -> int:
        return sum(len(p) for p in self.lists.values())

    def __len__(self) -> int:
        return len(self.lists)
