"""Postings compression: d-gaps + variable-byte, Elias-γ, Golomb codecs.

A postings list is a docID-sorted sequence of ``(document ID, term
frequency)`` pairs.  Because IDs are sorted, the codecs store the *gap* to
the previous ID (the first entry stores ``docID + 1`` so every encoded gap
is ≥ 1, which is what γ and Golomb require).  Term frequencies are ≥ 1 and
are stored with the same integer code as the gaps.

The engine's post-processing step uses variable-byte encoding — the paper's
choice ("compress them with variable bytes encoding") — while γ and Golomb
exist for the codec ablation benchmark and for parity with the classical
inverted-file literature cited in Section II.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.util.bitio import BitReader, BitWriter

__all__ = [
    "PostingsCodec",
    "VarByteCodec",
    "EliasGammaCodec",
    "GolombCodec",
    "VarBytePositionalCodec",
    "CODECS",
    "get_codec",
    "to_gaps",
    "from_gaps",
    "encode_uvarint",
    "decode_uvarint",
]

Posting = tuple[int, int]
#: ``(doc_id, tf, positions)`` — the positional codec's entry shape.
PositionalPosting = tuple[int, int, tuple[int, ...]]


# ---------------------------------------------------------------------- #
# Varint primitives (shared with the dictionary serializer)
# ---------------------------------------------------------------------- #


def encode_uvarint(value: int, out: bytearray) -> None:
    """Append ``value`` as a little-endian base-128 varint."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Decode a varint at ``pos``; return ``(value, next position)``."""
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise EOFError("truncated uvarint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


# ---------------------------------------------------------------------- #
# Gap transform
# ---------------------------------------------------------------------- #


def to_gaps(doc_ids: Sequence[int]) -> list[int]:
    """Sorted docIDs → gaps, all ≥ 1 (first entry stores ``docID + 1``)."""
    gaps: list[int] = []
    prev = -1
    for doc_id in doc_ids:
        if doc_id <= prev:
            raise ValueError(
                f"doc ids must be strictly increasing: {doc_id} after {prev}"
            )
        gaps.append(doc_id - prev)
        prev = doc_id
    return gaps


def from_gaps(gaps: Sequence[int]) -> list[int]:
    """Inverse of :func:`to_gaps`."""
    doc_ids: list[int] = []
    prev = -1
    for gap in gaps:
        if gap < 1:
            raise ValueError(f"gaps must be >= 1, got {gap}")
        prev += gap
        doc_ids.append(prev)
    return doc_ids


# ---------------------------------------------------------------------- #
# Codec interface
# ---------------------------------------------------------------------- #


class PostingsCodec:
    """Encode/decode a docID-sorted postings list."""

    name = "abstract"
    #: Positional codecs carry per-occurrence positions (Ivory-style).
    positional = False

    def encode(self, postings: Sequence[Posting]) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes) -> list[Posting]:
        raise NotImplementedError


class VarByteCodec(PostingsCodec):
    """Byte-aligned base-128 codec — the engine's production choice."""

    name = "varbyte"

    def encode(self, postings: Sequence[Posting]) -> bytes:
        out = bytearray()
        encode_uvarint(len(postings), out)
        prev = -1
        for doc_id, tf in postings:
            if doc_id <= prev:
                raise ValueError("postings must be sorted by strictly increasing docID")
            if tf < 1:
                raise ValueError(f"term frequency must be >= 1, got {tf}")
            encode_uvarint(doc_id - prev, out)
            encode_uvarint(tf, out)
            prev = doc_id
        return bytes(out)

    def decode(self, data: bytes) -> list[Posting]:
        count, pos = decode_uvarint(data, 0)
        postings: list[Posting] = []
        prev = -1
        for _ in range(count):
            gap, pos = decode_uvarint(data, pos)
            tf, pos = decode_uvarint(data, pos)
            prev += gap
            postings.append((prev, tf))
        return postings


class EliasGammaCodec(PostingsCodec):
    """Elias-γ bit codec: unary length prefix + binary remainder."""

    name = "gamma"

    @staticmethod
    def _write_gamma(writer: BitWriter, value: int) -> None:
        if value < 1:
            raise ValueError(f"gamma can only encode integers >= 1, got {value}")
        nbits = value.bit_length()
        writer.write_unary(nbits - 1)
        if nbits > 1:
            writer.write_bits(value - (1 << (nbits - 1)), nbits - 1)

    @staticmethod
    def _read_gamma(reader: BitReader) -> int:
        nbits = reader.read_unary() + 1
        if nbits == 1:
            return 1
        return (1 << (nbits - 1)) | reader.read_bits(nbits - 1)

    def encode(self, postings: Sequence[Posting]) -> bytes:
        writer = BitWriter()
        self._write_gamma(writer, len(postings) + 1)  # γ needs values >= 1
        prev = -1
        for doc_id, tf in postings:
            if doc_id <= prev:
                raise ValueError("postings must be sorted by strictly increasing docID")
            if tf < 1:
                raise ValueError(f"term frequency must be >= 1, got {tf}")
            self._write_gamma(writer, doc_id - prev)
            self._write_gamma(writer, tf)
            prev = doc_id
        return writer.getvalue()

    def decode(self, data: bytes) -> list[Posting]:
        reader = BitReader(data)
        count = self._read_gamma(reader) - 1
        postings: list[Posting] = []
        prev = -1
        for _ in range(count):
            prev += self._read_gamma(reader)
            tf = self._read_gamma(reader)
            postings.append((prev, tf))
        return postings


class GolombCodec(PostingsCodec):
    """Golomb codec with per-list parameter selection.

    The divisor ``b`` is chosen per list from the mean gap with the classic
    ``b ≈ 0.69 · mean_gap`` rule and stored in the list header (as a γ
    code), so decode is self-contained.  Remainders use truncated binary;
    term frequencies use γ (they are small and not geometric).
    """

    name = "golomb"

    def __init__(self, b: int | None = None) -> None:
        #: Fixed divisor override for tests; ``None`` selects per list.
        self.fixed_b = b
        if b is not None and b < 1:
            raise ValueError(f"Golomb parameter must be >= 1, got {b}")

    @staticmethod
    def optimal_b(mean_gap: float) -> int:
        """``max(1, ceil(0.69 · mean_gap))`` — Witten/Moffat/Bell rule."""
        return max(1, math.ceil(0.69 * mean_gap))

    @staticmethod
    def _write_golomb(writer: BitWriter, value: int, b: int) -> None:
        if value < 1:
            raise ValueError(f"Golomb can only encode integers >= 1, got {value}")
        q, r = divmod(value - 1, b)
        writer.write_unary(q)
        # Truncated binary remainder.
        k = (b - 1).bit_length() if b > 1 else 0
        cutoff = (1 << k) - b
        if b == 1:
            return
        if r < cutoff:
            writer.write_bits(r, k - 1)
        else:
            writer.write_bits(r + cutoff, k)

    @staticmethod
    def _read_golomb(reader: BitReader, b: int) -> int:
        q = reader.read_unary()
        if b == 1:
            return q + 1
        k = (b - 1).bit_length()
        cutoff = (1 << k) - b
        r = reader.read_bits(k - 1) if k > 1 else 0
        if r >= cutoff:
            r = (r << 1) | reader.read_bits(1)
            r -= cutoff
        return q * b + r + 1

    def encode(self, postings: Sequence[Posting]) -> bytes:
        gaps = to_gaps([doc for doc, _ in postings])
        if self.fixed_b is not None:
            b = self.fixed_b
        elif gaps:
            # ceil(0.69 · mean gap) in exact integer arithmetic: the float
            # round trip of optimal_b() could pick a different b on another
            # platform and silently change the emitted stream (RPR003).
            b = max(1, -(-(69 * sum(gaps)) // (100 * len(gaps))))
        else:
            b = 1
        writer = BitWriter()
        EliasGammaCodec._write_gamma(writer, len(postings) + 1)
        EliasGammaCodec._write_gamma(writer, b)
        for gap, (_, tf) in zip(gaps, postings):
            if tf < 1:
                raise ValueError(f"term frequency must be >= 1, got {tf}")
            self._write_golomb(writer, gap, b)
            EliasGammaCodec._write_gamma(writer, tf)
        return writer.getvalue()

    def decode(self, data: bytes) -> list[Posting]:
        reader = BitReader(data)
        count = EliasGammaCodec._read_gamma(reader) - 1
        b = EliasGammaCodec._read_gamma(reader)
        postings: list[Posting] = []
        prev = -1
        for _ in range(count):
            prev += self._read_golomb(reader, b)
            tf = EliasGammaCodec._read_gamma(reader)
            postings.append((prev, tf))
        return postings


class VarBytePositionalCodec(PostingsCodec):
    """Variable-byte codec carrying in-document token positions.

    Entry layout per posting: doc gap, tf, then ``tf`` position gaps
    (positions are strictly increasing within a document, so gaps are
    ≥ 1 with the first stored as ``position + 1``).  This is the postings
    shape of positional indexes like Ivory's [9], which the paper's
    comparison section discusses.
    """

    name = "varbyte-pos"
    positional = True

    # The positional entry shape intentionally differs from the base
    # codec's (doc, tf) pairs; the engine selects by `positional` flag.
    def encode(self, postings: Sequence[PositionalPosting]) -> bytes:  # type: ignore[override]
        out = bytearray()
        encode_uvarint(len(postings), out)
        prev = -1
        for doc_id, tf, positions in postings:
            if doc_id <= prev:
                raise ValueError("postings must be sorted by strictly increasing docID")
            if tf < 1:
                raise ValueError(f"term frequency must be >= 1, got {tf}")
            if len(positions) != tf:
                raise ValueError(f"{tf} occurrences but {len(positions)} positions")
            encode_uvarint(doc_id - prev, out)
            encode_uvarint(tf, out)
            prev_pos = -1
            for pos in positions:
                if pos <= prev_pos:
                    raise ValueError("positions must be strictly increasing")
                encode_uvarint(pos - prev_pos, out)
                prev_pos = pos
            prev = doc_id
        return bytes(out)

    def decode(self, data: bytes) -> list[PositionalPosting]:  # type: ignore[override]
        count, pos = decode_uvarint(data, 0)
        postings: list[PositionalPosting] = []
        prev = -1
        for _ in range(count):
            gap, pos = decode_uvarint(data, pos)
            tf, pos = decode_uvarint(data, pos)
            prev += gap
            prev_pos = -1
            positions = []
            for _ in range(tf):
                pgap, pos = decode_uvarint(data, pos)
                prev_pos += pgap
                positions.append(prev_pos)
            postings.append((prev, tf, tuple(positions)))
        return postings


#: Registry used by the engine configuration and the codec ablation bench.
CODECS: dict[str, type[PostingsCodec]] = {
    VarByteCodec.name: VarByteCodec,
    EliasGammaCodec.name: EliasGammaCodec,
    GolombCodec.name: GolombCodec,
    VarBytePositionalCodec.name: VarBytePositionalCodec,
}


def get_codec(name: str) -> PostingsCodec:
    """Instantiate a codec by registry name."""
    try:
        return CODECS[name]()
    except KeyError:
        raise KeyError(f"unknown codec {name!r}; available: {sorted(CODECS)}") from None
