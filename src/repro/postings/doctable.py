"""The global ``<document ID, document location>`` table.

Step 1 of every parser "builds a table containing <document ID, document
location on disk> mapping" (Fig 3), and the output format's docID-range
narrowing relies on "an auxiliary file containing the mapping of document
IDs to output file names".  This module persists the *document* side of
that metadata: for every global document ID, the source collection file,
the document's URI, and its byte offset inside the (uncompressed)
container — enough to fetch the original document for result display.

On disk: ``doctable.tsv``, one row per document in global-ID order,
ending with a ``#crc`` comment line whose CRC32 covers the preceding
body — :meth:`DocTable.load` raises
:class:`~repro.robustness.errors.ChecksumError` when the table was
damaged on disk.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass

from repro.robustness.errors import ChecksumError

__all__ = ["DocTable", "DocTableRow", "DOCTABLE_FILENAME"]

DOCTABLE_FILENAME = "doctable.tsv"


@dataclass(frozen=True)
class DocTableRow:
    """One document's location record."""

    doc_id: int
    source_file: str
    uri: str
    offset: int


class DocTable:
    """Append-ordered document location table."""

    def __init__(self) -> None:
        self.rows: list[DocTableRow] = []

    def add(self, source_file: str, uri: str, offset: int) -> int:
        """Append the next document; returns its global ID."""
        doc_id = len(self.rows)
        self.rows.append(DocTableRow(doc_id, source_file, uri, offset))
        return doc_id

    def lookup(self, doc_id: int) -> DocTableRow:
        """Location of a global document ID."""
        if not 0 <= doc_id < len(self.rows):
            raise KeyError(f"document {doc_id} not in table (0..{len(self.rows) - 1})")
        return self.rows[doc_id]

    def documents_in_file(self, source_file: str) -> list[DocTableRow]:
        """All documents that came from one collection file."""
        return [r for r in self.rows if r.source_file == source_file]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, output_dir: str) -> str:
        """Write ``doctable.tsv`` (body + ``#crc`` line) into the index."""
        path = os.path.join(output_dir, DOCTABLE_FILENAME)
        body = "".join(
            f"{row.doc_id}\t{row.source_file}\t{row.uri}\t{row.offset}\n"
            for row in self.rows
        )
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(body)
            fh.write(f"#crc\t{crc:08x}\n")
        return path

    @classmethod
    def load(cls, output_dir: str) -> "DocTable":
        """Read ``doctable.tsv`` back, verifying its ``#crc`` line."""
        path = os.path.join(output_dir, DOCTABLE_FILENAME)
        table = cls()
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        body: list[str] = []
        stored_crc: int | None = None
        for line in lines:
            if line.startswith("#crc"):
                stored_crc = int(line.rstrip("\n").split("\t")[1], 16)
            elif not line.startswith("#"):
                body.append(line)
        if stored_crc is not None:
            actual = zlib.crc32("".join(body).encode("utf-8")) & 0xFFFFFFFF
            if actual != stored_crc:
                raise ChecksumError(path, stored_crc, actual)
        for line in body:
            doc_id_s, source_file, uri, offset_s = line.rstrip("\n").split("\t")
            row = DocTableRow(int(doc_id_s), source_file, uri, int(offset_s))
            if row.doc_id != len(table.rows):
                raise ValueError(f"doctable corrupt: expected id {len(table.rows)}")
            table.rows.append(row)
        return table

    @classmethod
    def exists(cls, output_dir: str) -> bool:
        """Whether an index directory carries a doc table."""
        return os.path.exists(os.path.join(output_dir, DOCTABLE_FILENAME))

    def __len__(self) -> int:
        return len(self.rows)
