"""Postings lists, compression codecs, and the paper's run-output format.

Section II notes that "almost all the above strategies perform compression
on the postings lists": document IDs are sorted inside each list, so gaps
between neighbours are encoded with variable-byte, Elias-γ, or Golomb codes.
Section III.F defines the on-disk layout: one output file per *run* whose
header holds a mapping table from postings pointers to (offset, length)
pairs, plus an auxiliary file mapping document-ID ranges to run files so a
query restricted to a docID range touches only overlapping partial lists.

- :mod:`repro.postings.compression` — gap transform + the three codecs.
- :mod:`repro.postings.lists` — in-memory accumulation during a run.
- :mod:`repro.postings.output` — run files with header mapping tables.
- :mod:`repro.postings.reader` — term → merged postings across runs.
- :mod:`repro.postings.merge` — the optional post-processing step that
  splices partial lists into one monolithic list per term.
"""

from repro.postings.compression import (
    CODECS,
    EliasGammaCodec,
    GolombCodec,
    PostingsCodec,
    VarByteCodec,
    VarBytePositionalCodec,
    decode_uvarint,
    encode_uvarint,
    from_gaps,
    get_codec,
    to_gaps,
)
from repro.postings.doctable import DocTable, DocTableRow
from repro.postings.lists import PostingsAccumulator, PostingsList
from repro.postings.merge import merge_index
from repro.postings.output import DocRangeMap, RunWriter
from repro.postings.reader import PostingsReader

__all__ = [
    "PostingsCodec",
    "VarByteCodec",
    "VarBytePositionalCodec",
    "EliasGammaCodec",
    "GolombCodec",
    "CODECS",
    "get_codec",
    "to_gaps",
    "from_gaps",
    "encode_uvarint",
    "decode_uvarint",
    "PostingsList",
    "PostingsAccumulator",
    "RunWriter",
    "DocRangeMap",
    "DocTable",
    "DocTableRow",
    "PostingsReader",
    "merge_index",
]
