"""Calibration targets and the fit-quality audit.

The cost constants in :mod:`repro.core.costs` were derived from the
paper's own measurements; this module keeps the derivation auditable:

- :data:`PAPER_TARGETS` — every number the constants were fit against,
  with its paper locus;
- :func:`audit_calibration` — re-simulates each target with the *current*
  constants and reports relative deviations, so any future change to the
  models that silently degrades the fit shows up in tests;
- :func:`derive_cpu_costs` — the closed-form solve (documented in
  DESIGN.md §5) that recovers the CPU cost trio from the Table IV
  throughputs, used as a regression check that the shipped constants are
  the solution of the published system of equations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PlatformConfig
from repro.core.costs import CostConstants, StageCosts
from repro.core.pipeline import simulate_full_build, simulate_pipeline
from repro.core.workload import WorkloadModel

__all__ = ["PAPER_TARGETS", "CalibrationTarget", "audit_calibration", "derive_cpu_costs"]


@dataclass(frozen=True)
class CalibrationTarget:
    """One fitted-against number."""

    key: str
    source: str
    description: str
    paper_value: float
    tolerance: float  # acceptable |relative deviation|


PAPER_TARGETS: list[CalibrationTarget] = [
    CalibrationTarget(
        "read_s", "§IV.A", "seconds to read one ~160MB compressed file", 1.6, 0.15
    ),
    CalibrationTarget(
        "decompress_s", "§IV.A", "seconds to decompress one ~1GB file", 3.2, 0.25
    ),
    CalibrationTarget(
        "thpt_gpu_only", "Table IV", "indexing MB/s, 6P + 2 GPUs", 75.41, 0.05
    ),
    CalibrationTarget(
        "thpt_one_cpu", "Table IV", "indexing MB/s, 6P + 1 CPU", 129.53, 0.05
    ),
    CalibrationTarget(
        "thpt_two_cpu", "Table IV", "indexing MB/s, 6P + 2 CPU", 229.08, 0.05
    ),
    CalibrationTarget(
        "thpt_combined", "Table IV", "indexing MB/s, 6P + 2 CPU + 2 GPU", 315.46, 0.05
    ),
    CalibrationTarget(
        "total_clueweb", "Table VI", "end-to-end MB/s, ClueWeb09", 262.76, 0.10
    ),
    CalibrationTarget(
        "total_clueweb_nogpu", "Table VI", "end-to-end MB/s, ClueWeb09 w/o GPUs",
        204.32, 0.10,
    ),
    CalibrationTarget(
        "dict_combine_s", "Table VI", "dictionary combine seconds (84.8M terms)",
        2.46, 0.05,
    ),
    CalibrationTarget(
        "dict_write_s", "Table VI", "dictionary write seconds (84.8M terms)",
        59.21, 0.05,
    ),
    CalibrationTarget(
        "sampling_s", "Table VI", "sampling seconds, ClueWeb09", 59.53, 0.25
    ),
]


def audit_calibration(
    constants: CostConstants | None = None,
) -> dict[str, tuple[float, float, float, bool]]:
    """Re-measure every target; returns ``key → (paper, ours, dev, ok)``."""
    costs = StageCosts(constants if constants is not None else CostConstants())
    works = WorkloadModel.paper_scale("clueweb09").files()
    work = works[700]

    measured: dict[str, float] = {
        "read_s": costs.read_seconds(work),
        "decompress_s": costs.decompress_seconds(work),
        "thpt_gpu_only": simulate_pipeline(
            works, PlatformConfig(num_cpu_indexers=0, num_gpus=2), costs
        ).indexing_throughput_mbps,
        "thpt_one_cpu": simulate_pipeline(
            works, PlatformConfig(num_cpu_indexers=1, num_gpus=0), costs
        ).indexing_throughput_mbps,
        "thpt_two_cpu": simulate_pipeline(
            works, PlatformConfig(num_cpu_indexers=2, num_gpus=0), costs
        ).indexing_throughput_mbps,
        "thpt_combined": simulate_pipeline(
            works, PlatformConfig(), costs
        ).indexing_throughput_mbps,
        "total_clueweb": simulate_full_build(works, PlatformConfig(), costs).throughput_mbps,
        "total_clueweb_nogpu": simulate_full_build(
            works, PlatformConfig(num_gpus=0), costs
        ).throughput_mbps,
        "dict_combine_s": costs.dict_combine_seconds(84_799_475),
        "dict_write_s": costs.dict_write_seconds(84_799_475),
        "sampling_s": costs.sampling_seconds(works, 0.001),
    }

    out: dict[str, tuple[float, float, float, bool]] = {}
    for target in PAPER_TARGETS:
        ours = measured[target.key]
        dev = (ours - target.paper_value) / target.paper_value
        out[target.key] = (target.paper_value, ours, dev, abs(dev) <= target.tolerance)
    return out


def derive_cpu_costs(
    one_cpu_mbps: float = 129.53,
    two_cpu_mbps: float = 229.08,
) -> dict[str, float]:
    """Recover CPU calibration facts from the Table IV system of equations.

    Returns the implied per-file single-thread indexing seconds and the
    memory-bandwidth contention factor:

    - ``t1 = bytes_per_file / one_cpu_mbps``
    - speedup ``s = two_cpu / one_cpu``; with a balanced split the model
      time is ``t1/2 · (1 + γ)``, so ``γ = 2/s − 1``.
    """
    bytes_per_file = 1422 * 1024**3 / 1492
    t1 = bytes_per_file / (one_cpu_mbps * 1024 * 1024)
    speedup = two_cpu_mbps / one_cpu_mbps
    gamma = 2.0 / speedup - 1.0
    return {
        "single_thread_seconds_per_file": t1,
        "two_thread_speedup": speedup,
        "bandwidth_contention": gamma,
    }
