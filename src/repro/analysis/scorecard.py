"""The reproduction scorecard: every headline claim, checked in one pass.

Collects the paper's quantitative and qualitative claims (Tables IV/VI,
Figs 10–12, and the §III design assertions that the ablations measure)
and evaluates them against the current models in a single run, producing
a machine-checkable pass/fail list.  ``bench_scorecard.py`` prints it;
the integration tests assert everything passes, which makes any future
calibration drift loud.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.figures import fig10_parser_sweep, fig11_per_file_series, fig12_comparison
from repro.core.config import PlatformConfig
from repro.core.pipeline import simulate_full_build, simulate_pipeline
from repro.core.workload import WorkloadModel

__all__ = ["Claim", "reproduction_scorecard"]


@dataclass(frozen=True)
class Claim:
    """One checked claim."""

    source: str  # paper locus, e.g. "Table IV"
    statement: str
    paper_value: str
    ours_value: str
    passed: bool


def _pct(ours: float, paper: float) -> str:
    return f"{ours:.2f} ({(ours - paper) / paper:+.1%})"


def reproduction_scorecard() -> list[Claim]:
    """Evaluate every headline claim; returns the full list."""
    claims: list[Claim] = []
    works = WorkloadModel.paper_scale("clueweb09").files()

    # ---- Table IV ------------------------------------------------------ #
    configs = {
        "gpu_only": PlatformConfig(num_cpu_indexers=0, num_gpus=2),
        "one_cpu": PlatformConfig(num_cpu_indexers=1, num_gpus=0),
        "two_cpu": PlatformConfig(num_cpu_indexers=2, num_gpus=0),
        "combined": PlatformConfig(),
    }
    thpt = {
        name: simulate_pipeline(works, cfg).indexing_throughput_mbps
        for name, cfg in configs.items()
    }
    paper4 = {"gpu_only": 75.41, "one_cpu": 129.53, "two_cpu": 229.08, "combined": 315.46}
    for name, paper in paper4.items():
        ours = thpt[name]
        claims.append(
            Claim(
                "Table IV",
                f"indexing throughput, {name.replace('_', ' ')} (MB/s)",
                f"{paper:.2f}",
                _pct(ours, paper),
                abs(ours - paper) / paper < 0.10,
            )
        )
    claims.append(
        Claim(
            "Table IV / §IV.B",
            "two CPU indexers ≈ 1.77× one",
            "1.77",
            f"{thpt['two_cpu'] / thpt['one_cpu']:.2f}",
            abs(thpt["two_cpu"] / thpt["one_cpu"] - 1.77) < 0.10,
        )
    )
    claims.append(
        Claim(
            "§IV.B",
            "GPUs add ≈ 37.7% over two CPU indexers",
            "+37.7%",
            f"{thpt['combined'] / thpt['two_cpu'] - 1:+.1%}",
            abs(thpt["combined"] / thpt["two_cpu"] - 1.377) < 0.10,
        )
    )
    claims.append(
        Claim(
            "§IV.B",
            "superlinear split: combined ≥ CPU-only + GPU-only",
            "superlinear",
            f"{thpt['combined']:.1f} vs {thpt['two_cpu'] + thpt['gpu_only']:.1f}",
            thpt["combined"] > 0.97 * (thpt["two_cpu"] + thpt["gpu_only"]),
        )
    )
    claims.append(
        Claim(
            "§IV.B",
            "two GPUs alone lose to one CPU indexer",
            "GPU-only slowest",
            f"{thpt['gpu_only']:.1f} < {thpt['one_cpu']:.1f}",
            thpt["gpu_only"] < thpt["one_cpu"],
        )
    )

    # ---- Fig 10 --------------------------------------------------------- #
    sweep = fig10_parser_sweep(works)
    no_gpu = sweep["M parsers + (8-M) CPU indexers"]
    with_gpu = sweep["M parsers + CPU + 2 GPU indexers"]
    claims.append(
        Claim(
            "Fig 10",
            "near-linear parser scaling for M=1..5",
            "linear",
            f"M=5 at {no_gpu[4] / no_gpu[0]:.2f}x of M=1",
            abs(no_gpu[4] / no_gpu[0] - 5.0) < 0.6,
        )
    )
    claims.append(
        Claim(
            "Fig 10 / §IV.A",
            "without GPUs the best ratio is 5 parsers : 3 indexers",
            "peak at M=5",
            f"peak at M={max(range(7), key=lambda i: no_gpu[i]) + 1}",
            max(range(7), key=lambda i: no_gpu[i]) == 4,
        )
    )
    claims.append(
        Claim(
            "Fig 10 / §IV.A",
            "with GPUs six parsers are optimal",
            "peak at M=6",
            f"peak at M={max(range(7), key=lambda i: with_gpu[i]) + 1}",
            max(range(7), key=lambda i: with_gpu[i]) == 5,
        )
    )

    # ---- Fig 11 --------------------------------------------------------- #
    fig11 = fig11_per_file_series(works, sample_points=10)
    combined_series = fig11["2 CPU + 2 GPU indexers"]
    claims.append(
        Claim(
            "Fig 11",
            "sharp early decline flattening out (inverse B-tree depth)",
            "decline → plateau",
            f"{combined_series[0]:.0f} → {combined_series[3]:.0f} → {combined_series[5]:.0f}",
            combined_series[0] > combined_series[3] > 0
            and (combined_series[0] - combined_series[3])
            > 3 * abs(combined_series[3] - combined_series[5]),
        )
    )
    claims.append(
        Claim(
            "Fig 11",
            "throughput drop at file 1200 (Wikipedia.org segment)",
            "cliff at 1200",
            f"boundary at {fig11['segment_boundary']}",
            fig11["segment_boundary"] == 1200,
        )
    )
    claims.append(
        Claim(
            "Fig 11 / §IV.B",
            "the combined CPU+GPU configuration is especially affected",
            "largest drop",
            f"drops: combined {fig11['2 CPU + 2 GPU indexers drop']:.2f} vs "
            f"2-CPU {fig11['2 CPU indexers drop']:.2f}",
            fig11["2 CPU + 2 GPU indexers drop"] < fig11["2 CPU indexers drop"],
        )
    )

    # ---- Table VI ------------------------------------------------------- #
    paper6 = {
        "clueweb09": (PlatformConfig(), 262.76),
        "wikipedia": (PlatformConfig(), 78.29),
        "congress": (PlatformConfig(), 208.06),
    }
    built = {}
    for ds, (cfg, paper) in paper6.items():
        ds_works = works if ds == "clueweb09" else WorkloadModel.paper_scale(ds).files()
        b = simulate_full_build(ds_works, cfg)
        built[ds] = b.throughput_mbps
        claims.append(
            Claim(
                "Table VI",
                f"end-to-end throughput, {ds} (MB/s)",
                f"{paper:.2f}",
                _pct(b.throughput_mbps, paper),
                abs(b.throughput_mbps - paper) / paper < 0.20,
            )
        )
    nogpu = simulate_full_build(works, PlatformConfig(num_gpus=0)).throughput_mbps
    claims.append(
        Claim(
            "Table VI",
            "end-to-end throughput, clueweb09 w/o GPUs (MB/s)",
            "204.32",
            _pct(nogpu, 204.32),
            abs(nogpu - 204.32) / 204.32 < 0.10,
        )
    )
    claims.append(
        Claim(
            "§IV.C",
            "Wikipedia below 100 MB/s (pure text is token-dense)",
            "< 100",
            f"{built['wikipedia']:.1f}",
            built["wikipedia"] < 100,
        )
    )

    # ---- Fig 12 ---------------------------------------------------------- #
    bars = fig12_comparison()
    order = [b.throughput_mbps for b in bars]
    claims.append(
        Claim(
            "Fig 12",
            "best raw performance with or without GPUs vs clusters",
            "ours > Ivory > SP-MR",
            " > ".join(f"{v:.0f}" for v in order),
            order == sorted(order, reverse=True),
        )
    )
    claims.append(
        Claim(
            "Fig 12 / §IV.D",
            "per-core advantage over the 99-node cluster",
            "≈30×",
            f"{bars[0].mbps_per_core / bars[2].mbps_per_core:.0f}×",
            bars[0].mbps_per_core > 10 * bars[2].mbps_per_core,
        )
    )
    return claims
