"""Builders for Tables I–VII."""

from __future__ import annotations

from repro.baselines.cluster import (
    IVORY_PLATFORM,
    SP_MR_PLATFORM,
    THIS_PAPER_PLATFORM,
    ClusterPlatform,
)
from repro.core.config import PlatformConfig
from repro.core.costs import StageCosts
from repro.core.pipeline import simulate_full_build, simulate_pipeline
from repro.core.workload import FileWork, WorkloadModel
from repro.corpus.collection import CollectionStats
from repro.corpus.datasets import PAPER_COLLECTION_STATS
from repro.dictionary.layout import DEFAULT_DEGREE, node_layout
from repro.dictionary.trie import TrieTable
from repro.util.fmt import fmt_bytes, fmt_count, fmt_seconds

__all__ = [
    "table1_trie_categories",
    "table2_node_layout",
    "table3_collection_stats",
    "table4_indexer_configs",
    "table5_work_split",
    "table6_datasets",
    "table7_platforms",
    "TABLE4_PAPER",
    "TABLE5_PAPER",
    "TABLE6_PAPER",
]

Headers = list[str]
Rows = list[list[object]]


# ---------------------------------------------------------------------- #
# Table I — trie-collection index definition
# ---------------------------------------------------------------------- #

def table1_trie_categories(
    trie: TrieTable | None = None, sampled_tokens: dict[int, int] | None = None
) -> tuple[Headers, Rows]:
    """Category ranges + the paper's worked examples, optionally with a
    measured token distribution per category."""
    trie = trie if trie is not None else TrieTable()
    examples = {
        "special": ["-80", "3d", "česky"],
        "pure_number": ["01", "0195", "9", "954"],
        "short_or_special": ["a", "at", "act", "zoo", "zoé"],
        "full_prefix": ["aaat", "aabomycin", "application", "zzzy"],
    }
    headers = ["Category", "Index range", "Entries", "Examples (index)"]
    rows: Rows = []
    for category, (lo, hi) in trie.category_ranges().items():
        shown = ", ".join(
            f"{ex}→{trie.trie_index(ex)}" for ex in examples[category.value]
        )
        rows.append([category.value, f"{lo}..{hi}", hi - lo + 1, shown])
    if sampled_tokens:
        totals = {c: 0 for c in trie.category_ranges()}
        for cidx, tok in sampled_tokens.items():
            totals[trie.category_of(cidx)] += tok
        total = sum(totals.values()) or 1
        headers.append("Token share")
        for row, category in zip(rows, trie.category_ranges()):
            row.append(f"{totals[category] / total:.1%}")
    return headers, rows


# ---------------------------------------------------------------------- #
# Table II — B-tree node layout
# ---------------------------------------------------------------------- #

#: The paper's published field sizes for degree 16.
TABLE2_PAPER = {
    "valid_term_number": 4,
    "term_string_pointers": 124,
    "leaf_indicator": 4,
    "postings_pointers": 124,
    "child_pointers": 128,
    "string_caches": 124,
    "padding": 4,
    "total": 512,  # repro-lint: disable=RPR001 - published Table II value, quoted
}


def table2_node_layout(degree: int = DEFAULT_DEGREE) -> tuple[Headers, Rows]:
    """Field sizes of a B-tree node, ours vs the published Table II."""
    layout = node_layout(degree)
    headers = ["Field", "Bytes (ours)", "Bytes (paper)"]
    rows: Rows = []
    for name, size in layout.items():
        rows.append([name, size, TABLE2_PAPER.get(name, "-") if degree == 16 else "-"])
    return headers, rows


# ---------------------------------------------------------------------- #
# Table III — collection statistics
# ---------------------------------------------------------------------- #

def table3_collection_stats(
    measured: list[CollectionStats],
) -> tuple[Headers, Rows]:
    """Mini-collection statistics next to the paper's full-scale ones."""
    headers = [
        "Collection", "Compressed", "Uncompressed", "Documents", "Terms",
        "Tokens", "Tokens/doc",
    ]
    rows: Rows = []
    for stats in measured:
        rows.append(
            [
                stats.name,
                fmt_bytes(stats.compressed_bytes),
                fmt_bytes(stats.uncompressed_bytes),
                fmt_count(stats.num_docs),
                fmt_count(stats.num_terms),
                fmt_count(stats.num_tokens),
                f"{stats.tokens_per_doc:.0f}",
            ]
        )
    for paper in PAPER_COLLECTION_STATS.values():
        rows.append(
            [
                f"[paper] {paper.name}",
                fmt_bytes(paper.compressed_bytes),
                fmt_bytes(paper.uncompressed_bytes),
                fmt_count(paper.num_docs),
                fmt_count(paper.num_terms),
                fmt_count(paper.num_tokens),
                f"{paper.num_tokens / paper.num_docs:.0f}",
            ]
        )
    return headers, rows


# ---------------------------------------------------------------------- #
# Table IV — indexer configurations
# ---------------------------------------------------------------------- #

#: Paper values: columns are (6P+2GPU, 6P+1CPU, 6P+2CPU, 6P+2CPU+2GPU).
TABLE4_PAPER = {
    "Pre-Processing (s)": [107.01, 93.44, 111.74, 104.15],
    "Indexing (s)": [19313.6, 11243.61, 6357.67, 4616.78],
    "Post-Processing (s)": [417.21, 416.66, 521.52, 464.04],
    "Sum of above (s)": [19837.82, 11753.71, 6990.93, 5184.97],
    "Total Indexer (s)": [19858.69, 11758.81, 7019.87, 5408.25],
    "Indexing Throughput (MB/s)": [75.41, 129.53, 229.08, 315.46],
    "Total Indexer Throughput (MB/s)": [73.34, 123.86, 207.47, 269.29],
}

TABLE4_CONFIGS = [
    ("6P + 2 GPU", dict(num_parsers=6, num_cpu_indexers=0, num_gpus=2)),
    ("6P + 1 CPU", dict(num_parsers=6, num_cpu_indexers=1, num_gpus=0)),
    ("6P + 2 CPU", dict(num_parsers=6, num_cpu_indexers=2, num_gpus=0)),
    ("6P + 2 CPU + 2 GPU", dict(num_parsers=6, num_cpu_indexers=2, num_gpus=2)),
]


def table4_indexer_configs(
    works: list[FileWork] | None = None, costs: StageCosts | None = None
) -> tuple[Headers, Rows]:
    """Simulate the four configurations over a workload (paper scale by
    default) and tabulate ours-vs-paper per row."""
    if works is None:
        works = WorkloadModel.paper_scale("clueweb09").files()
    reports = [
        simulate_pipeline(works, PlatformConfig(**kwargs), costs)
        for _, kwargs in TABLE4_CONFIGS
    ]
    headers = ["Metric"] + [name for name, _ in TABLE4_CONFIGS]
    ours = {
        "Pre-Processing (s)": [r.pre_total_s for r in reports],
        "Indexing (s)": [r.indexing_total_s for r in reports],
        "Post-Processing (s)": [r.post_total_s for r in reports],
        "Sum of above (s)": [r.sum_of_three_s for r in reports],
        "Total Indexer (s)": [r.total_indexer_s for r in reports],
        "Indexing Throughput (MB/s)": [r.indexing_throughput_mbps for r in reports],
        "Total Indexer Throughput (MB/s)": [
            r.total_indexer_throughput_mbps for r in reports
        ],
    }
    rows: Rows = []
    for metric, values in ours.items():
        rows.append([metric] + [fmt_seconds(v) for v in values])
        rows.append([f"  [paper] {metric}"] + [fmt_seconds(v) for v in TABLE4_PAPER[metric]])
    return headers, rows


# ---------------------------------------------------------------------- #
# Table V — CPU/GPU work split
# ---------------------------------------------------------------------- #

TABLE5_PAPER = {
    "Token Number": (14_465_084_050, 18_179_424_205),
    "Term Number": (24_244_017, 60_555_458),
    "Character Number": (239_433_858, 513_640_554),
}


def table5_work_split(split) -> tuple[Headers, Rows]:
    """``split`` is an :class:`repro.core.engine.WorkSplit`."""
    headers = ["Metric", "CPU Indexers", "GPU Indexers", "GPU/CPU ratio", "[paper] ratio"]
    rows: Rows = [
        [
            "Token Number",
            fmt_count(split.cpu_tokens),
            fmt_count(split.gpu_tokens),
            f"{split.gpu_tokens / max(1, split.cpu_tokens):.2f}",
            f"{TABLE5_PAPER['Token Number'][1] / TABLE5_PAPER['Token Number'][0]:.2f}",
        ],
        [
            "Term Number",
            fmt_count(split.cpu_terms),
            fmt_count(split.gpu_terms),
            f"{split.gpu_terms / max(1, split.cpu_terms):.2f}",
            f"{TABLE5_PAPER['Term Number'][1] / TABLE5_PAPER['Term Number'][0]:.2f}",
        ],
        [
            "Character Number",
            fmt_count(split.cpu_characters),
            fmt_count(split.gpu_characters),
            f"{split.gpu_characters / max(1, split.cpu_characters):.2f}",
            f"{TABLE5_PAPER['Character Number'][1] / TABLE5_PAPER['Character Number'][0]:.2f}",
        ],
    ]
    return headers, rows


# ---------------------------------------------------------------------- #
# Table VI — datasets end to end
# ---------------------------------------------------------------------- #

TABLE6_PAPER = {
    "ClueWeb09": dict(sampling=59.53, parsers=5410.89, indexers=5408.25,
                      combine=2.46, write=59.21, total=5541.62, mbps=262.76),
    "ClueWeb09 w/o GPUs": dict(sampling=57.53, parsers=7024.86, indexers=7019.87,
                               combine=2.54, write=54.92, total=7126.77, mbps=204.32),
    "Wikipedia 01-07": dict(sampling=7.27, parsers=999.45, indexers=1023.96,
                            combine=0.26, write=0.57, total=1033.34, mbps=78.29),
    "Library of Congress": dict(sampling=29.01, parsers=2437.79, indexers=2458.64,
                                combine=0.21, write=0.80, total=2495.29, mbps=208.06),
}


def table6_datasets(costs: StageCosts | None = None) -> tuple[Headers, Rows]:
    """Simulated full builds of the paper's three datasets (± GPUs)."""
    cases = [
        ("ClueWeb09", "clueweb09", PlatformConfig()),
        ("ClueWeb09 w/o GPUs", "clueweb09", PlatformConfig(num_gpus=0)),
        ("Wikipedia 01-07", "wikipedia", PlatformConfig()),
        ("Library of Congress", "congress", PlatformConfig()),
    ]
    headers = ["Row"] + [name for name, _, _ in cases]
    built = {
        name: simulate_full_build(WorkloadModel.paper_scale(ds).files(), cfg, costs)
        for name, ds, cfg in cases
    }
    metric_rows = [
        ("Sampling Time (s)", lambda b: b.sampling_s, "sampling"),
        ("Parallel Parsers (s)", lambda b: b.pipeline.parser_finish_s, "parsers"),
        ("Parallel Indexers (s)", lambda b: b.pipeline.indexer_finish_s, "indexers"),
        ("Dictionary Combine (s)", lambda b: b.dict_combine_s, "combine"),
        ("Dictionary Write (s)", lambda b: b.dict_write_s, "write"),
        ("Total Time (s)", lambda b: b.total_s, "total"),
        ("Throughput (MB/s)", lambda b: b.throughput_mbps, "mbps"),
    ]
    rows: Rows = []
    for label, getter, paper_key in metric_rows:
        rows.append([label] + [fmt_seconds(getter(built[name])) for name, _, _ in cases])
        rows.append(
            [f"  [paper] {label}"]
            + [fmt_seconds(TABLE6_PAPER[name][paper_key]) for name, _, _ in cases]
        )
    return headers, rows


# ---------------------------------------------------------------------- #
# Table VII — platforms
# ---------------------------------------------------------------------- #

def table7_platforms(
    platforms: list[ClusterPlatform] | None = None,
) -> tuple[Headers, Rows]:
    """The Table VII platform-configuration matrix."""
    platforms = platforms or [THIS_PAPER_PLATFORM, IVORY_PLATFORM, SP_MR_PLATFORM]
    headers = ["Platform", "Nodes", "Cores/node", "Usable cores", "Clock",
               "RAM/node", "Filesystem", "Accelerators"]
    rows: Rows = [
        [
            p.name,
            p.nodes,
            p.cores_per_node,
            p.usable_cores,
            f"{p.clock_ghz:.1f} GHz",
            f"{p.ram_gb_per_node} GB",
            p.filesystem,
            p.accelerators or "-",
        ]
        for p in platforms
    ]
    return headers, rows
