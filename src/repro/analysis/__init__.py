"""Experiment report builders: the paper's tables and figures as data.

Each function returns ``(headers, rows)`` pairs (or series dictionaries
for figures) that the benchmark harnesses print with
:func:`repro.util.fmt.render_table` next to the paper's published values.
Keeping the builders here — instead of inline in ``benchmarks/`` — makes
the report structure unit-testable.
"""

from repro.analysis.calibration import PAPER_TARGETS, audit_calibration
from repro.analysis.report import generate_full_report
from repro.analysis.scorecard import Claim, reproduction_scorecard
from repro.analysis.figures import (
    ablation_block_sweep,
    fig10_parser_sweep,
    fig11_per_file_series,
    fig12_comparison,
)
from repro.analysis.tables import (
    table1_trie_categories,
    table2_node_layout,
    table3_collection_stats,
    table4_indexer_configs,
    table5_work_split,
    table6_datasets,
    table7_platforms,
)

__all__ = [
    "table1_trie_categories",
    "table2_node_layout",
    "table3_collection_stats",
    "table4_indexer_configs",
    "table5_work_split",
    "table6_datasets",
    "table7_platforms",
    "fig10_parser_sweep",
    "fig11_per_file_series",
    "fig12_comparison",
    "ablation_block_sweep",
    "reproduction_scorecard",
    "Claim",
    "generate_full_report",
    "audit_calibration",
    "PAPER_TARGETS",
]
