"""Builders for Fig 10, Fig 11, Fig 12 and the ablation sweeps."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cluster import (
    CLUEWEB09_MR_STATS,
    GOV2_MR_STATS,
    IVORY_PLATFORM,
    SP_MR_PLATFORM,
    ClusterModel,
)
from repro.core.config import PlatformConfig
from repro.core.costs import StageCosts
from repro.core.pipeline import simulate_full_build, simulate_pipeline
from repro.core.workload import FileWork, WorkloadModel
from repro.gpusim.kernel import KernelLaunch, WorkItem

__all__ = [
    "fig10_parser_sweep",
    "fig11_per_file_series",
    "fig12_comparison",
    "ablation_block_sweep",
]


# ---------------------------------------------------------------------- #
# Fig 10 — optimal number of parallel parsers
# ---------------------------------------------------------------------- #

def fig10_parser_sweep(
    works: list[FileWork] | None = None,
    costs: StageCosts | None = None,
    max_parsers: int = 7,
) -> dict[str, list[float]]:
    """The three scenario curves (MB/s) for M = 1..7 parsers.

    Scenario 1: M parsers + (8−M) CPU indexers, no GPUs.
    Scenario 2: M parsers + min(8−M, 2) CPU indexers + 2 GPUs.
    Scenario 3: M parsers, no indexers (parse-only).
    """
    if works is None:
        works = WorkloadModel.paper_scale("clueweb09").files()
    no_gpu, with_gpu, parse_only = [], [], []
    for m in range(1, max_parsers + 1):
        r1 = simulate_pipeline(
            works, PlatformConfig(num_parsers=m, num_cpu_indexers=8 - m, num_gpus=0), costs
        )
        no_gpu.append(r1.overall_throughput_mbps)
        r2 = simulate_pipeline(
            works,
            PlatformConfig(num_parsers=m, num_cpu_indexers=min(8 - m, 2), num_gpus=2),
            costs,
        )
        with_gpu.append(r2.overall_throughput_mbps)
        r3 = simulate_pipeline(
            works,
            PlatformConfig(num_parsers=m, num_cpu_indexers=1, num_gpus=0),
            costs,
            parse_only=True,
        )
        parse_only.append(r3.overall_throughput_mbps)
    return {
        "parsers": list(range(1, max_parsers + 1)),
        "M parsers + (8-M) CPU indexers": no_gpu,
        "M parsers + CPU + 2 GPU indexers": with_gpu,
        "M parsers only": parse_only,
    }


# ---------------------------------------------------------------------- #
# Fig 11 — per-file indexing throughput
# ---------------------------------------------------------------------- #

def fig11_per_file_series(
    works: list[FileWork] | None = None,
    costs: StageCosts | None = None,
    sample_points: int = 16,
) -> dict[str, object]:
    """Per-file throughput curves for scenarios (ii), (iii), (iv).

    Returns down-sampled series plus the segment boundary (the Fig 11
    "file index 1,200" cliff) and summary drop factors.
    """
    if works is None:
        works = WorkloadModel.paper_scale("clueweb09").files()
    scenarios = {
        "1 CPU indexer": PlatformConfig(num_cpu_indexers=1, num_gpus=0),
        "2 CPU indexers": PlatformConfig(num_cpu_indexers=2, num_gpus=0),
        "2 CPU + 2 GPU indexers": PlatformConfig(num_cpu_indexers=2, num_gpus=2),
    }
    n = len(works)
    stride = max(1, n // sample_points)
    points = list(range(0, n, stride))
    if points[-1] != n - 1:
        points.append(n - 1)
    out: dict[str, object] = {"file_index": points}
    boundary = next(
        (i for i, w in enumerate(works) if w.segment != works[0].segment), None
    )
    out["segment_boundary"] = boundary
    for name, cfg in scenarios.items():
        report = simulate_pipeline(works, cfg, costs)
        series = report.per_file_throughput_mbps()
        out[name] = [series[i] for i in points]
        if boundary:
            before = sum(series[boundary - 50 : boundary]) / 50
            after = sum(series[-50:]) / 50
            out[f"{name} drop"] = after / before if before else 0.0
    return out


# ---------------------------------------------------------------------- #
# Fig 12 — comparison with the fastest known indexers
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class ComparisonBar:
    """One Fig 12 bar."""

    system: str
    dataset: str
    nodes: int
    cores: int
    throughput_mbps: float

    @property
    def mbps_per_core(self) -> float:
        return self.throughput_mbps / self.cores if self.cores else 0.0


def fig12_comparison(costs: StageCosts | None = None) -> list[ComparisonBar]:
    """All four bars: ours ± GPUs (DES) and the two MapReduce baselines
    (cluster cost model on their Table VII platforms)."""
    works = WorkloadModel.paper_scale("clueweb09").files()
    ours_gpu = simulate_full_build(works, PlatformConfig(), costs)
    ours_cpu = simulate_full_build(works, PlatformConfig(num_gpus=0), costs)
    ivory = ClusterModel(IVORY_PLATFORM).throughput_mbps(CLUEWEB09_MR_STATS, "ivory")
    spmr = ClusterModel(SP_MR_PLATFORM).throughput_mbps(GOV2_MR_STATS, "single-pass")
    return [
        ComparisonBar("This paper (2 CPU + 2 GPU)", "ClueWeb09", 1, 8,
                      ours_gpu.throughput_mbps),
        ComparisonBar("This paper (no GPUs)", "ClueWeb09", 1, 8,
                      ours_cpu.throughput_mbps),
        ComparisonBar("Ivory MapReduce", "ClueWeb09", IVORY_PLATFORM.nodes,
                      IVORY_PLATFORM.usable_cores, ivory),
        ComparisonBar("Single-Pass MapReduce", ".GOV2", SP_MR_PLATFORM.nodes,
                      SP_MR_PLATFORM.usable_cores, spmr),
    ]


# ---------------------------------------------------------------------- #
# Ablation D — thread blocks per GPU (the 480 optimum)
# ---------------------------------------------------------------------- #

def ablation_block_sweep(
    items: list[WorkItem],
    block_counts: list[int] | None = None,
    schedule: str = "dynamic",
) -> dict[int, float]:
    """Kernel time (s) per thread-block count over fixed work items."""
    block_counts = block_counts or [30, 60, 120, 240, 360, 480, 720, 960, 1920]
    return {
        nb: KernelLaunch(num_blocks=nb, schedule=schedule).run(items).elapsed_seconds
        for nb in block_counts
    }
